/**
 * @file
 * lifecycletool — inspect, verify, and compact `.dtss` snapshots.
 *
 * Operates on a single snapshot file or on a whole snapshot directory
 * (every `*.dtss` inside, non-recursive) — the on-disk form of a
 * DirSnapshotStore that dracod runs with `--snapshot-dir`.
 *
 *   inspect: print each snapshot's tenant, policy key, counters, and
 *            per-table occupancy.
 *   verify:  structure-check every block CRC and the End terminator;
 *            exit 1 when any snapshot is corrupt.
 *   compact: re-serialize each verified snapshot in place (tmp +
 *            rename), dropping any trailing garbage an interrupted
 *            writer left behind. --prune deletes snapshots that fail
 *            verification instead of leaving them to fail restores.
 *
 * Usage:
 *   lifecycletool inspect <file.dtss | dir>
 *   lifecycletool verify <file.dtss | dir>
 *   lifecycletool compact <file.dtss | dir> [--prune]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lifecycle/snapshot.hh"
#include "lifecycle/store.hh"

using namespace draco;
namespace fs = std::filesystem;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: lifecycletool inspect <file.dtss | dir>\n"
                 "       lifecycletool verify <file.dtss | dir>\n"
                 "       lifecycletool compact <file.dtss | dir> "
                 "[--prune]\n");
    return 2;
}

/** Expand @p target into the snapshot files it names (sorted). */
std::vector<std::string>
snapshotFiles(const std::string &target)
{
    std::error_code ec;
    if (!fs::is_directory(target, ec))
        return {target};
    std::vector<std::string> files;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(target, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".dtss")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

int
inspectOne(const std::string &path)
{
    std::vector<uint8_t> bytes;
    if (!lifecycle::readSnapshotFile(path, bytes)) {
        std::fprintf(stderr, "lifecycletool: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    lifecycle::SnapshotInfo info;
    std::string error;
    if (!lifecycle::inspectSnapshot(bytes, info, &error)) {
        std::fprintf(stderr, "lifecycletool: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("%s:\n", path.c_str());
    std::printf("  tenant         %s\n", info.tenant.c_str());
    std::printf("  policy_key     %016llx\n",
                static_cast<unsigned long long>(info.policyKey));
    std::printf("  version        %u\n", info.version);
    std::printf("  filter_copies  %u\n", info.filterCopies);
    std::printf("  bytes          %zu\n", info.bytes);
    std::printf("  checks         %llu (spt_allow_all %llu, vat_hits "
                "%llu, filter_runs %llu, denials %llu)\n",
                static_cast<unsigned long long>(info.stats.checks),
                static_cast<unsigned long long>(info.stats.sptAllowAll),
                static_cast<unsigned long long>(info.stats.vatHits),
                static_cast<unsigned long long>(info.stats.filterRuns),
                static_cast<unsigned long long>(info.stats.denials));
    std::printf("  vat            %zu tables, %llu evictions\n",
                info.tables.size(),
                static_cast<unsigned long long>(info.vatEvictions));
    for (const lifecycle::SnapshotTableInfo &table : info.tables) {
        std::printf("    sid %-5u bitmask %02llx  %llu/%llu slots\n",
                    table.sid,
                    static_cast<unsigned long long>(table.bitmask),
                    static_cast<unsigned long long>(table.sets),
                    static_cast<unsigned long long>(table.buckets * 2));
    }
    return 0;
}

int
verifyOne(const std::string &path, bool quiet)
{
    std::vector<uint8_t> bytes;
    if (!lifecycle::readSnapshotFile(path, bytes)) {
        std::fprintf(stderr, "lifecycletool: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::vector<lifecycle::RawBlock> blocks;
    std::string error;
    if (!lifecycle::parseSnapshotBlocks(bytes, blocks, &error)) {
        std::fprintf(stderr, "lifecycletool: %s: CORRUPT: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    if (!quiet)
        std::printf("%s: ok (%zu blocks, %zu bytes)\n", path.c_str(),
                    blocks.size(), bytes.size());
    return 0;
}

int
compactOne(const std::string &path, bool prune)
{
    std::vector<uint8_t> bytes;
    if (!lifecycle::readSnapshotFile(path, bytes)) {
        std::fprintf(stderr, "lifecycletool: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::vector<lifecycle::RawBlock> blocks;
    std::string error;
    if (!lifecycle::parseSnapshotBlocks(bytes, blocks, &error)) {
        if (prune) {
            std::error_code ec;
            fs::remove(path, ec);
            std::printf("%s: corrupt (%s), pruned\n", path.c_str(),
                        error.c_str());
            return ec ? 1 : 0;
        }
        std::fprintf(stderr, "lifecycletool: %s: CORRUPT: %s "
                     "(use --prune to delete)\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    std::vector<uint8_t> compacted =
        lifecycle::serializeSnapshotBlocks(blocks);
    if (compacted == bytes) {
        std::printf("%s: already compact (%zu bytes)\n", path.c_str(),
                    bytes.size());
        return 0;
    }
    if (!lifecycle::writeSnapshotFile(path, compacted)) {
        std::fprintf(stderr, "lifecycletool: cannot rewrite %s\n",
                     path.c_str());
        return 1;
    }
    std::printf("%s: %zu -> %zu bytes\n", path.c_str(), bytes.size(),
                compacted.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    std::string target;
    bool prune = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prune") == 0 && command == "compact")
            prune = true;
        else if (target.empty() && argv[i][0] != '-')
            target = argv[i];
        else
            return usage();
    }
    if (target.empty())
        return usage();

    std::vector<std::string> files = snapshotFiles(target);
    if (files.empty()) {
        std::fprintf(stderr, "lifecycletool: no .dtss files in %s\n",
                     target.c_str());
        return 1;
    }

    int failures = 0;
    for (const std::string &path : files) {
        int rc;
        if (command == "inspect")
            rc = inspectOne(path);
        else if (command == "verify")
            rc = verifyOne(path, false);
        else if (command == "compact")
            rc = compactOne(path, prune);
        else
            return usage();
        failures += rc != 0;
    }
    if (files.size() > 1)
        std::printf("%zu snapshots, %d bad\n", files.size(), failures);
    return failures == 0 ? 0 : 1;
}
