/**
 * @file
 * dracoload — load generator for the check-serving subsystem.
 *
 * Replays a recorded trace (any format openTraceStream understands)
 * against either a dracod daemon (--socket path or --connect
 * host:port) or an in-process CheckService (--shards), dealing events
 * round-robin across N tenants exactly like the consolidation
 * experiments do. Closed-loop mode (the default) drives each tenant
 * with blocking batches and reports wall latency quantiles;
 * --open-loop fires every batch without waiting for verdicts, which
 * is how admission control is pushed into visible load shedding.
 *
 * Overloaded verdicts are a backpressure signal, not a loss: the
 * server attaches a retryAfterUs hint and dracoload honors it, waiting
 * (capped by --retry-cap-us) before re-submitting the shed requests up
 * to --retries times. The summary separates `retried` (re-submissions
 * that eventually got a verdict) from `shed` (requests still
 * Overloaded after the retry budget was spent).
 *
 * Closed-loop extras: --mux-tenants groups several logical tenants
 * onto one driver (and in socket mode one connection), interleaving
 * their batches round-robin; --swap-profile-every hot-swaps each
 * tenant's profile through the --swap-profiles rotation at fixed
 * batch boundaries, exercising the epoch-versioned policy subsystem
 * under live traffic.
 *
 * The per-tenant verdict lines printed at the end come from
 * *server-side* tenant stats, so two closed-loop runs against different
 * shard counts must print byte-identical verdict counts — the CI smoke
 * job asserts exactly that. Swaps don't break this: a swap fires
 * between two blocking batches of the same tenant, so its position in
 * the tenant's request stream is identical at any shard count.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/tracer.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "support/cliflags.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "trace/replay.hh"

using namespace draco;
namespace wire = draco::serve::wire;

namespace {

constexpr size_t kStatusCount = 5;

struct TenantLoad {
    std::string name;
    serve::TenantId id = serve::kInvalidTenant;
    std::vector<os::SyscallRequest> reqs;
    uint64_t statuses[kStatusCount] = {};
    uint64_t transportErrors = 0;
    uint64_t retried = 0; ///< Requests re-submitted after Overloaded.
    uint64_t shed = 0;    ///< Still Overloaded with no retries left.
    uint64_t batchesDone = 0;  ///< Completed batches (swap cadence).
    uint64_t swapsIssued = 0;  ///< UpdateProfile calls that succeeded.
    uint64_t swapFailures = 0; ///< UpdateProfile calls that failed.
    size_t swapCursor = 0;     ///< Next entry in the swap rotation.
    QuantileSketch latencyUs;
};

/**
 * Live hot-swap schedule: every `every` completed batches a tenant's
 * profile is replaced with the next entry of `profiles`, rotating.
 * Swaps fire between two of the tenant's blocking batches, so the swap
 * boundary in the tenant's request stream is deterministic no matter
 * how many shards or driver threads are in play — that's what lets the
 * CI smoke job compare verdict fingerprints across shard counts even
 * with swaps in flight.
 */
struct SwapPlan {
    uint64_t every = 0; ///< Batches between swaps; 0 disables.
    std::vector<std::string> profiles;
};

/** How Overloaded verdicts are retried. */
struct RetryPolicy {
    unsigned retries = 0;  ///< Re-submissions per request; 0 disables.
    uint32_t capUs = 50000; ///< Ceiling on one retryAfterUs wait.
};

/** Honor the server's backpressure hint, bounded by the cap. */
void
backoffSleep(uint32_t hintUs, const RetryPolicy &policy)
{
    uint32_t us = std::min(std::max<uint32_t>(hintUs, 1u),
                           policy.capUs);
    std::this_thread::sleep_for(std::chrono::microseconds(us));
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** One closed-loop batch for @p tenant at @p pos; returns requests consumed. */
uint32_t
runClosedBatch(serve::Client &client, TenantLoad &tenant, size_t pos,
               uint32_t batch, const RetryPolicy &policy,
               std::vector<os::SyscallRequest> &work,
               std::vector<os::SyscallRequest> &again,
               std::vector<serve::CheckResponse> &resps)
{
    uint32_t n = static_cast<uint32_t>(
        std::min<size_t>(batch, tenant.reqs.size() - pos));
    work.assign(tenant.reqs.begin() + pos,
                tenant.reqs.begin() + pos + n);
    unsigned attempt = 0;
    while (!work.empty()) {
        resps.resize(work.size());
        auto t0 = std::chrono::steady_clock::now();
        if (!client.checkBatch(tenant.id, work.data(),
                               static_cast<uint32_t>(work.size()),
                               resps.data())) {
            tenant.transportErrors += work.size();
            break;
        }
        tenant.latencyUs.add(elapsedSeconds(t0) * 1e6);
        // Overloaded is a backpressure signal: retry those
        // requests after the server's hinted wait, tally
        // everything else as a final verdict.
        again.clear();
        uint32_t waitUs = 0;
        for (size_t i = 0; i < work.size(); ++i) {
            bool overloaded = resps[i].status ==
                              serve::CheckStatus::Overloaded;
            if (overloaded && attempt < policy.retries) {
                again.push_back(work[i]);
                waitUs = std::max(waitUs, resps[i].retryAfterUs);
                continue;
            }
            ++tenant.statuses[static_cast<size_t>(resps[i].status)];
            if (overloaded)
                ++tenant.shed;
        }
        if (again.empty())
            break;
        ++attempt;
        tenant.retried += again.size();
        backoffSleep(waitUs, policy);
        work.swap(again);
    }
    return n;
}

/**
 * Closed loop over a tenant group sharing one client: blocking
 * batches, dealt round-robin across the group's tenants so several
 * logical tenants multiplex one connection (--mux-tenants). Per-tenant
 * request order is preserved — a tenant's next batch is never issued
 * before its previous one resolved — which keeps both verdicts and
 * swap boundaries deterministic.
 */
void
runClosedLoopGroup(serve::Client &client,
                   std::vector<TenantLoad *> &group, uint32_t batch,
                   const RetryPolicy &policy, const SwapPlan &swap)
{
    std::vector<serve::CheckResponse> resps(batch);
    std::vector<os::SyscallRequest> work;
    std::vector<os::SyscallRequest> again;
    std::vector<size_t> pos(group.size(), 0);
    bool more = true;
    while (more) {
        more = false;
        for (size_t g = 0; g < group.size(); ++g) {
            TenantLoad &tenant = *group[g];
            if (pos[g] >= tenant.reqs.size())
                continue;
            pos[g] += runClosedBatch(client, tenant, pos[g], batch,
                                     policy, work, again, resps);
            if (pos[g] < tenant.reqs.size())
                more = true;
            // Swap boundary: between two blocking batches of this
            // tenant, so every request before it ran under the old
            // profile and every request after it under the new one.
            ++tenant.batchesDone;
            if (swap.every > 0 && tenant.batchesDone % swap.every == 0 &&
                pos[g] < tenant.reqs.size()) {
                const std::string &next =
                    swap.profiles[tenant.swapCursor++ %
                                  swap.profiles.size()];
                if (client.updateProfile(tenant.id, next))
                    ++tenant.swapsIssued;
                else
                    ++tenant.swapFailures;
            }
        }
    }
}

/** Open loop, in-process: fire every batch, wait only at the end. */
void
runOpenLoopLocal(serve::CheckService &service,
                 std::vector<TenantLoad> &tenants, uint32_t batch,
                 const RetryPolicy &policy)
{
    struct Pending {
        TenantLoad *tenant;
        std::vector<os::SyscallRequest> reqs;
        std::vector<serve::CheckResponse> resps;
        serve::Batch done;
    };
    std::vector<std::unique_ptr<Pending>> pending;
    // Interleave tenants round-robin so every shard sees arrivals from
    // all of its tenants at once, as a real open-loop frontend would.
    size_t remaining = tenants.size();
    std::vector<size_t> cursor(tenants.size(), 0);
    while (remaining > 0) {
        remaining = 0;
        for (TenantLoad &tenant : tenants) {
            size_t i = &tenant - tenants.data();
            if (cursor[i] >= tenant.reqs.size())
                continue;
            uint32_t n = static_cast<uint32_t>(std::min<size_t>(
                batch, tenant.reqs.size() - cursor[i]));
            auto p = std::make_unique<Pending>();
            p->tenant = &tenant;
            p->reqs.assign(tenant.reqs.begin() + cursor[i],
                           tenant.reqs.begin() + cursor[i] + n);
            p->resps.resize(n);
            service.submitBatch(tenant.id, p->reqs.data(), n,
                                p->resps.data(), p->done);
            pending.push_back(std::move(p));
            cursor[i] += n;
            if (cursor[i] < tenant.reqs.size())
                ++remaining;
        }
    }
    // Collect verdicts; Overloaded batches go back for another round
    // after the server's hinted wait, until the retry budget is spent.
    for (unsigned attempt = 0; !pending.empty(); ++attempt) {
        std::vector<std::unique_ptr<Pending>> next;
        uint32_t waitUs = 0;
        for (auto &p : pending) {
            p->done.wait();
            std::vector<os::SyscallRequest> again;
            for (size_t i = 0; i < p->reqs.size(); ++i) {
                bool overloaded = p->resps[i].status ==
                                  serve::CheckStatus::Overloaded;
                if (overloaded && attempt < policy.retries) {
                    again.push_back(p->reqs[i]);
                    waitUs = std::max(waitUs, p->resps[i].retryAfterUs);
                    continue;
                }
                ++p->tenant->statuses[
                    static_cast<size_t>(p->resps[i].status)];
                if (overloaded)
                    ++p->tenant->shed;
            }
            if (again.empty())
                continue;
            auto r = std::make_unique<Pending>();
            r->tenant = p->tenant;
            r->reqs = std::move(again);
            r->resps.resize(r->reqs.size());
            r->tenant->retried += r->reqs.size();
            next.push_back(std::move(r));
        }
        if (next.empty())
            break;
        backoffSleep(waitUs, policy);
        for (auto &r : next)
            service.submitBatch(r->tenant->id, r->reqs.data(),
                                static_cast<uint32_t>(r->reqs.size()),
                                r->resps.data(), r->done);
        pending = std::move(next);
    }
}

/** Open loop over the wire: pipeline frames, reap replies in parallel. */
void
runOpenLoopSocket(serve::SocketClient &client,
                  std::vector<TenantLoad> &tenants, uint32_t batch,
                  const RetryPolicy &policy)
{
    // Every in-flight batch keeps its requests so an Overloaded
    // verdict can be re-submitted under a fresh batchId.
    struct Flight {
        TenantLoad *tenant;
        std::vector<os::SyscallRequest> reqs;
        unsigned attempt = 0;
    };
    std::mutex flightMutex;
    std::map<uint64_t, Flight> flights;
    std::atomic<uint64_t> nextBatchId{1};
    std::atomic<uint64_t> outstanding{0};
    std::atomic<bool> readerFailed{false};
    // The reader re-sends shed batches while the main thread is still
    // pipelining planned ones, so writes must not interleave.
    std::mutex writeMutex;

    auto sendBatch = [&](Flight flight) {
        wire::CheckBatch msg;
        msg.batchId = nextBatchId.fetch_add(1);
        msg.tenantId = flight.tenant->id;
        msg.reqs = flight.reqs;
        std::vector<uint8_t> payload;
        wire::encode(payload, msg);
        {
            std::lock_guard<std::mutex> lock(flightMutex);
            flights.emplace(msg.batchId, std::move(flight));
        }
        std::lock_guard<std::mutex> lock(writeMutex);
        if (!wire::writeFrame(client.fd(), payload)) {
            std::lock_guard<std::mutex> flock(flightMutex);
            flights.erase(msg.batchId);
            return false;
        }
        return true;
    };

    // Pre-plan every batch so the reader knows the total reply count
    // before the first frame goes out.
    std::vector<Flight> planned;
    std::vector<size_t> cursor(tenants.size(), 0);
    size_t remaining = tenants.size();
    while (remaining > 0) {
        remaining = 0;
        for (TenantLoad &tenant : tenants) {
            size_t i = &tenant - tenants.data();
            if (cursor[i] >= tenant.reqs.size())
                continue;
            uint32_t n = static_cast<uint32_t>(std::min<size_t>(
                batch, tenant.reqs.size() - cursor[i]));
            Flight flight;
            flight.tenant = &tenant;
            flight.reqs.assign(tenant.reqs.begin() + cursor[i],
                               tenant.reqs.begin() + cursor[i] + n);
            planned.push_back(std::move(flight));
            cursor[i] += n;
            if (cursor[i] < tenant.reqs.size())
                ++remaining;
        }
    }
    outstanding.store(planned.size());

    std::thread reader([&] {
        std::vector<uint8_t> payload;
        while (outstanding.load() > 0) {
            wire::CheckBatchReply reply;
            if (!wire::readFrame(client.fd(), payload) ||
                !wire::decode(payload, reply)) {
                readerFailed.store(true);
                return;
            }
            Flight flight;
            {
                std::lock_guard<std::mutex> lock(flightMutex);
                auto it = flights.find(reply.batchId);
                if (it == flights.end() ||
                    it->second.reqs.size() != reply.resps.size()) {
                    readerFailed.store(true);
                    return;
                }
                flight = std::move(it->second);
                flights.erase(it);
            }
            std::vector<os::SyscallRequest> again;
            uint32_t waitUs = 0;
            for (size_t i = 0; i < reply.resps.size(); ++i) {
                bool overloaded = reply.resps[i].status ==
                                  serve::CheckStatus::Overloaded;
                if (overloaded && flight.attempt < policy.retries) {
                    again.push_back(flight.reqs[i]);
                    waitUs = std::max(waitUs,
                                      reply.resps[i].retryAfterUs);
                    continue;
                }
                ++flight.tenant->statuses[
                    static_cast<size_t>(reply.resps[i].status)];
                if (overloaded)
                    ++flight.tenant->shed;
            }
            if (again.empty()) {
                outstanding.fetch_sub(1);
                continue;
            }
            // Same batch, next attempt: the reply count stays owed, so
            // `outstanding` is untouched.
            flight.tenant->retried += again.size();
            backoffSleep(waitUs, policy);
            Flight retry;
            retry.tenant = flight.tenant;
            retry.reqs = std::move(again);
            retry.attempt = flight.attempt + 1;
            if (!sendBatch(std::move(retry))) {
                readerFailed.store(true);
                outstanding.fetch_sub(1);
                return;
            }
        }
    });
    for (Flight &flight : planned) {
        if (!sendBatch(std::move(flight))) {
            warn("dracoload: open-loop write failed");
            break;
        }
    }
    reader.join();
    if (readerFailed.load())
        warn("dracoload: open-loop reply stream failed");
}

} // namespace

int
main(int argc, char **argv)
{
    support::CliFlags flags(
        "dracoload",
        "Replay a syscall trace against dracod (or an in-process "
        "service) across N tenants.");
    flags.addString("socket", "path",
                    "dracod Unix socket (omit to serve in-process)");
    flags.addString("connect", "host:port",
                    "dracod TCP endpoint (alternative to --socket)");
    flags.addString("trace", "path", "trace to replay (.dtrc/text/strace)");
    flags.addString("profile", "name",
                    "built-in profile every tenant runs",
                    "docker-default");
    flags.addUint("tenants", "n", "tenant count", 4);
    flags.addString("zipf", "s",
                    "deal events to tenants Zipf(s)-skewed instead of "
                    "round-robin (hot tenants model a real fleet)");
    flags.addUint("batch", "k", "requests per check batch", 32);
    flags.addUint("repeat", "n", "replay the trace this many times", 1);
    flags.addUint("max-events", "n", "cap events read from the trace",
                  1u << 20);
    flags.addUint("max-inflight", "n",
                  "per-tenant in-flight admission cap", 1024);
    flags.addUint("filter-copies", "n", "filter copies per tenant", 1);
    flags.addUint("shards", "n", "in-process service shards", 1);
    flags.addUint("queue-capacity", "n",
                  "in-process per-shard queue capacity", 4096);
    flags.addUint("max-batch", "n", "in-process drain batch", 64);
    flags.addUint("swap-profile-every", "n",
                  "hot-swap each tenant's profile every n completed "
                  "batches (closed loop only; 0 disables)", 0);
    flags.addString("swap-profiles", "a,b,...",
                    "built-in profiles the swap schedule rotates "
                    "through", "docker-default,gvisor");
    flags.addUint("mux-tenants", "n",
                  "closed loop: logical tenants multiplexed per "
                  "driver connection", 1);
    flags.addUint("retries", "n",
                  "re-submissions per Overloaded request", 3);
    flags.addUint("retry-cap-us", "us",
                  "cap on one retryAfterUs backoff wait", 50000);
    flags.addFlag("open-loop",
                  "fire batches without waiting (pushes backpressure)");
    flags.addString("latency-json", "path",
                    "write the full client-side latency breakdown "
                    "(per-tenant and merged quantile sketches) as JSON");
    flags.addFlag("shutdown", "send Shutdown to the daemon when done");
    flags.addCommon();

    if (!flags.parse(argc, argv)) {
        fprintf(stderr, "dracoload: %s\n%s", flags.error().c_str(),
                flags.helpText().c_str());
        return 1;
    }
    if (flags.helpRequested()) {
        fputs(flags.helpText().c_str(), stdout);
        return 0;
    }
    if (flags.str("trace").empty())
        fatal("dracoload: --trace is required");

    // ---- load and deal the trace ----

    trace::OpenedTrace opened = trace::openTraceStream(flags.str("trace"));
    if (!opened.ok())
        fatal("dracoload: %s: %s", flags.str("trace").c_str(),
              opened.error.c_str());

    uint64_t tenantCount = std::max<uint64_t>(1, flags.uintValue("tenants"));
    std::vector<TenantLoad> tenants(tenantCount);
    for (uint64_t i = 0; i < tenantCount; ++i)
        tenants[i].name = "t" + std::to_string(i);

    double zipfSkew = 0.0;
    if (!flags.str("zipf").empty()) {
        char *end = nullptr;
        zipfSkew = strtod(flags.str("zipf").c_str(), &end);
        if (end == nullptr || *end != '\0' || zipfSkew < 0.0)
            fatal("dracoload: --zipf wants a non-negative number, got "
                  "'%s'", flags.str("zipf").c_str());
    }
    std::unique_ptr<ZipfSampler> zipf;
    Rng zipfRng(splitSeed(0x647261636f6c6fULL, "dracoload/zipf"));
    if (zipfSkew > 0.0)
        zipf = std::make_unique<ZipfSampler>(tenantCount, zipfSkew);

    uint64_t maxEvents = flags.uintValue("max-events");
    workload::TraceEvent event;
    uint64_t loaded = 0;
    while (loaded < maxEvents && opened.stream->next(event)) {
        uint64_t slot = zipf ? zipf->sample(zipfRng)
                             : loaded % tenantCount;
        tenants[slot].reqs.push_back(event.req);
        ++loaded;
    }
    if (loaded == 0)
        fatal("dracoload: trace %s holds no events",
              flags.str("trace").c_str());
    uint64_t repeat = std::max<uint64_t>(1, flags.uintValue("repeat"));
    if (repeat > 1) {
        for (TenantLoad &tenant : tenants) {
            std::vector<os::SyscallRequest> base = tenant.reqs;
            tenant.reqs.reserve(base.size() * repeat);
            for (uint64_t r = 1; r < repeat; ++r)
                tenant.reqs.insert(tenant.reqs.end(), base.begin(),
                                   base.end());
        }
    }
    uint64_t totalRequests = 0;
    for (const TenantLoad &tenant : tenants)
        totalRequests += tenant.reqs.size();

    // ---- backend ----

    if (!flags.str("socket").empty() && !flags.str("connect").empty())
        fatal("dracoload: --socket and --connect are exclusive");
    bool socketMode = !flags.str("socket").empty() ||
                      !flags.str("connect").empty();
    auto dialServer = [&flags]() {
        return flags.str("socket").empty()
                   ? serve::SocketClient::connectTcp(flags.str("connect"))
                   : serve::SocketClient::connect(flags.str("socket"));
    };
    obs::TraceSession session;
    std::unique_ptr<serve::CheckService> localService;
    std::unique_ptr<serve::SocketClient> socketClient;
    std::unique_ptr<serve::LocalClient> localClient;
    serve::Client *client = nullptr;

    if (socketMode) {
        socketClient = dialServer();
        if (!socketClient)
            return 1;
        client = socketClient.get();
    } else {
        if (!flags.str("trace-out").empty()) {
            obs::SessionConfig config;
            config.outPath = flags.str("trace-out");
            config.tracer.recordEvents = false;
            config.tracer.capacity = 1024;
            config.tracer.sampleEveryCycles =
                flags.given("sample-every")
                    ? flags.uintValue("sample-every") : 100000;
            session.configure(config);
        }
        serve::ServiceOptions options;
        options.shards =
            static_cast<unsigned>(flags.uintValue("shards"));
        options.queueCapacity =
            static_cast<uint32_t>(flags.uintValue("queue-capacity"));
        options.maxBatch =
            static_cast<uint32_t>(flags.uintValue("max-batch"));
        options.session = session.enabled() ? &session : nullptr;
        localService = std::make_unique<serve::CheckService>(options);
        localClient = std::make_unique<serve::LocalClient>(*localService);
        client = localClient.get();
    }

    serve::TenantOptions tenantOptions;
    tenantOptions.maxInFlight =
        static_cast<uint32_t>(flags.uintValue("max-inflight"));
    tenantOptions.filterCopies =
        static_cast<unsigned>(flags.uintValue("filter-copies"));
    for (TenantLoad &tenant : tenants) {
        tenant.id = client->createTenant(tenant.name,
                                         flags.str("profile"),
                                         tenantOptions);
        if (tenant.id == serve::kInvalidTenant)
            fatal("dracoload: could not create tenant %s",
                  tenant.name.c_str());
    }

    // ---- drive ----

    uint32_t batch = static_cast<uint32_t>(
        std::max<uint64_t>(1, flags.uintValue("batch")));
    RetryPolicy retryPolicy;
    retryPolicy.retries =
        static_cast<unsigned>(flags.uintValue("retries"));
    retryPolicy.capUs = static_cast<uint32_t>(
        std::max<uint64_t>(1, flags.uintValue("retry-cap-us")));

    SwapPlan swapPlan;
    swapPlan.every = flags.uintValue("swap-profile-every");
    if (swapPlan.every > 0) {
        // Swaps need a blocking request stream to define the
        // boundary; the open-loop pipelines can't provide one.
        if (flags.flag("open-loop"))
            fatal("dracoload: --swap-profile-every needs the closed "
                  "loop (drop --open-loop)");
        std::string list = flags.str("swap-profiles");
        size_t from = 0;
        while (from <= list.size()) {
            size_t comma = list.find(',', from);
            if (comma == std::string::npos)
                comma = list.size();
            std::string name = list.substr(from, comma - from);
            if (!name.empty()) {
                if (!serve::builtinProfileByName(name))
                    fatal("dracoload: --swap-profiles: unknown "
                          "profile '%s'", name.c_str());
                swapPlan.profiles.push_back(std::move(name));
            }
            from = comma + 1;
        }
        if (swapPlan.profiles.empty())
            fatal("dracoload: --swap-profiles names no profiles");
    }
    uint64_t mux = std::max<uint64_t>(1, flags.uintValue("mux-tenants"));
    if (mux > 1 && flags.flag("open-loop"))
        inform("dracoload: open loop already multiplexes every tenant "
               "on one connection; --mux-tenants ignored");

    auto start = std::chrono::steady_clock::now();

    if (flags.flag("open-loop")) {
        if (socketMode)
            runOpenLoopSocket(*socketClient, tenants, batch,
                              retryPolicy);
        else
            runOpenLoopLocal(*localService, tenants, batch,
                             retryPolicy);
    } else {
        // Tenants are dealt into groups of --mux-tenants; one driver
        // (and in socket mode one connection) serves a whole group,
        // interleaving its tenants' batches round-robin. The default
        // group size of 1 keeps the original one-tenant-per-driver
        // closed loop.
        std::vector<std::vector<TenantLoad *>> groups;
        for (size_t i = 0; i < tenants.size(); i += mux) {
            std::vector<TenantLoad *> group;
            for (size_t j = i;
                 j < std::min<size_t>(i + mux, tenants.size()); ++j)
                group.push_back(&tenants[j]);
            groups.push_back(std::move(group));
        }
        uint64_t drivers = flags.given("threads")
            ? std::max<uint64_t>(1, flags.uintValue("threads"))
            : groups.size();
        drivers = std::min<uint64_t>(drivers, groups.size());
        std::atomic<size_t> nextGroup{0};
        std::vector<std::thread> threads;
        for (uint64_t d = 0; d < drivers; ++d) {
            threads.emplace_back([&] {
                // Socket mode: a connection per driver, so drivers
                // don't serialize on one lock-step client.
                std::unique_ptr<serve::SocketClient> own;
                serve::Client *c = client;
                if (socketMode) {
                    own = dialServer();
                    if (!own)
                        return;
                    c = own.get();
                }
                for (;;) {
                    size_t i = nextGroup.fetch_add(1);
                    if (i >= groups.size())
                        break;
                    runClosedLoopGroup(*c, groups[i], batch,
                                       retryPolicy, swapPlan);
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    double wallSeconds = elapsedSeconds(start);

    // ---- report ----

    uint64_t totals[kStatusCount] = {};
    uint64_t retried = 0;
    uint64_t shed = 0;
    uint64_t swapsIssued = 0;
    uint64_t swapFailures = 0;
    QuantileSketch latency;
    for (TenantLoad &tenant : tenants) {
        for (size_t s = 0; s < kStatusCount; ++s)
            totals[s] += tenant.statuses[s];
        retried += tenant.retried;
        shed += tenant.shed;
        swapsIssued += tenant.swapsIssued;
        swapFailures += tenant.swapFailures;
        latency.merge(tenant.latencyUs);
    }
    uint64_t answered = 0;
    for (uint64_t n : totals)
        answered += n;

    MetricRegistry registry;
    registry.setText("load.trace", flags.str("trace"));
    registry.setText("load.mode",
                     flags.flag("open-loop") ? "open" : "closed");
    registry.setCounter("load.requests", totalRequests);
    registry.setCounter("load.answered", answered);
    for (size_t s = 0; s < kStatusCount; ++s) {
        registry.setCounter(
            std::string("load.statuses.") +
                serve::checkStatusName(
                    static_cast<serve::CheckStatus>(s)),
            totals[s]);
    }
    registry.setGauge("load.wall_seconds", wallSeconds);
    registry.setGauge("load.wall_qps",
                      wallSeconds > 0.0 ? answered / wallSeconds : 0.0);
    registry.setCounter("load.backpressure.retried", retried);
    registry.setCounter("load.backpressure.shed", shed);
    registry.setCounter("load.backpressure.retries_allowed",
                        retryPolicy.retries);
    registry.setCounter("load.backpressure.retry_cap_us",
                        retryPolicy.capUs);
    if (swapPlan.every > 0) {
        registry.setCounter("load.swap.every", swapPlan.every);
        registry.setCounter("load.swap.issued", swapsIssued);
        registry.setCounter("load.swap.failed", swapFailures);
    }
    if (latency.count() > 0) {
        registry.setGauge("load.latency_us.p50", latency.quantile(0.50));
        registry.setGauge("load.latency_us.p90", latency.quantile(0.90));
        registry.setGauge("load.latency_us.p99", latency.quantile(0.99));
    }

    // Server-side verdict lines: the CI determinism check compares
    // these across shard counts byte for byte.
    for (TenantLoad &tenant : tenants) {
        serve::TenantStats stats;
        if (!client->tenantStats(tenant.id, stats)) {
            warn("dracoload: no stats for tenant %s",
                 tenant.name.c_str());
            continue;
        }
        printf("tenant %s checks=%llu allowed=%llu denied=%llu "
               "vat_hits=%llu rejects=%llu epoch=%llu swaps=%llu\n",
               tenant.name.c_str(),
               static_cast<unsigned long long>(stats.check.checks),
               static_cast<unsigned long long>(stats.allowed),
               static_cast<unsigned long long>(stats.denied),
               static_cast<unsigned long long>(stats.check.vatHits),
               static_cast<unsigned long long>(stats.rejects),
               static_cast<unsigned long long>(stats.epoch),
               static_cast<unsigned long long>(stats.swaps));
        std::string prefix =
            "load.tenants." + MetricRegistry::sanitize(tenant.name);
        registry.setCounter(prefix + ".allowed", stats.allowed);
        registry.setCounter(prefix + ".denied", stats.denied);
        registry.setCounter(prefix + ".rejects", stats.rejects);
        registry.setCounter(prefix + ".checks", stats.check.checks);
        registry.setCounter(prefix + ".epoch", stats.epoch);
        registry.setCounter(prefix + ".swaps", stats.swaps);
    }
    // Service-wide lifecycle line (the dracod stats op): meaningful
    // when the server runs with a resident cap, harmless otherwise.
    serve::ServiceStatsSnapshot svc;
    if (client->serviceStats(svc)) {
        printf("service tenants=%llu resident=%llu snapshotted=%llu "
               "evictions=%llu restores=%llu restore_failures=%llu "
               "policies=%llu dedup_hits=%llu store_bytes=%llu "
               "swaps=%llu swap_failures=%llu stale_discards=%llu "
               "max_epoch=%llu\n",
               static_cast<unsigned long long>(svc.tenants),
               static_cast<unsigned long long>(svc.resident),
               static_cast<unsigned long long>(svc.snapshotted),
               static_cast<unsigned long long>(svc.evictions),
               static_cast<unsigned long long>(svc.restores),
               static_cast<unsigned long long>(svc.restoreFailures),
               static_cast<unsigned long long>(svc.dedupPolicies),
               static_cast<unsigned long long>(svc.dedupHits),
               static_cast<unsigned long long>(svc.storeBytes),
               static_cast<unsigned long long>(svc.policySwaps),
               static_cast<unsigned long long>(svc.policySwapFailures),
               static_cast<unsigned long long>(svc.staleSnapshotDiscards),
               static_cast<unsigned long long>(svc.maxEpoch));
        registry.setCounter("load.service.tenants", svc.tenants);
        registry.setCounter("load.service.resident", svc.resident);
        registry.setCounter("load.service.evictions", svc.evictions);
        registry.setCounter("load.service.restores", svc.restores);
        registry.setCounter("load.service.restore_failures",
                            svc.restoreFailures);
        registry.setCounter("load.service.dedup_policies",
                            svc.dedupPolicies);
        registry.setCounter("load.service.swaps", svc.policySwaps);
        registry.setCounter("load.service.swap_failures",
                            svc.policySwapFailures);
        registry.setCounter("load.service.stale_snapshot_discards",
                            svc.staleSnapshotDiscards);
        registry.setCounter("load.service.max_epoch", svc.maxEpoch);
    }
    printf("summary requests=%llu answered=%llu overloaded=%llu "
           "retried=%llu shed=%llu swaps=%llu wall_s=%.3f "
           "wall_qps=%.0f\n",
           static_cast<unsigned long long>(totalRequests),
           static_cast<unsigned long long>(answered),
           static_cast<unsigned long long>(
               totals[static_cast<size_t>(
                   serve::CheckStatus::Overloaded)]),
           static_cast<unsigned long long>(retried),
           static_cast<unsigned long long>(shed),
           static_cast<unsigned long long>(swapsIssued),
           wallSeconds,
           wallSeconds > 0.0 ? answered / wallSeconds : 0.0);

    if (!socketMode) {
        localService->stop();
        localService->exportMetrics(registry);
        if (session.enabled()) {
            session.exportMetrics(registry, "obs");
            session.writeOutput();
        }
    }
    if (!flags.str("json").empty())
        registry.writeJsonFile(flags.str("json"));

    // Full client-side latency breakdown: one sketch per tenant plus
    // the merged view, with counts, so a harness can compare tails
    // across tenants rather than settling for the three headline
    // gauges above.
    if (!flags.str("latency-json").empty()) {
        MetricRegistry lat;
        lat.setText("latency_us.source", "dracoload client round-trip");
        lat.setCounter("latency_us.all.count", latency.count());
        if (latency.count() > 0)
            lat.setQuantiles("latency_us.all.rtt", latency);
        for (TenantLoad &tenant : tenants) {
            std::string prefix = "latency_us.tenants." +
                                 MetricRegistry::sanitize(tenant.name);
            lat.setCounter(prefix + ".count",
                           tenant.latencyUs.count());
            if (tenant.latencyUs.count() > 0)
                lat.setQuantiles(prefix + ".rtt", tenant.latencyUs);
        }
        lat.writeJsonFile(flags.str("latency-json"));
    }

    if (socketMode && flags.flag("shutdown") &&
        !socketClient->shutdownServer()) {
        warn("dracoload: shutdown request failed");
        return 1;
    }
    return 0;
}
