/**
 * @file
 * dracod — the syscall-check serving daemon.
 *
 * Hosts a serve::CheckService behind a Unix-domain socket speaking the
 * serve/wire protocol. Clients (dracoload, or anything else speaking
 * the protocol) create tenants by profile name and stream check
 * batches; the daemon runs until a Shutdown frame or SIGINT/SIGTERM,
 * then drains, optionally writes its `serve.*` metrics as JSON and its
 * per-shard telemetry as a trace, and exits.
 *
 * Typical CI/EXPERIMENTS use:
 *   dracod --socket /tmp/dracod.sock --shards 4 \
 *          --json dracod_metrics.json &
 *   dracoload --socket /tmp/dracod.sock --trace sample.dtrc --shutdown
 */

#include <csignal>

#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "support/cliflags.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

using namespace draco;

namespace {

serve::SocketServer *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    support::CliFlags flags(
        "dracod", "Serve syscall checks for multiple tenants over a "
                  "Unix-domain socket.");
    flags.addString("socket", "path", "Unix-domain socket to listen on");
    flags.addUint("shards", "n", "shard (worker thread) count", 1);
    flags.addUint("queue-capacity", "n",
                  "bounded per-shard queue, in requests", 4096);
    flags.addUint("max-batch", "n", "max requests drained per wakeup",
                  64);
    flags.addUint("max-tenants", "n", "tenant table capacity", 4096);
    flags.addFlag("old-kernel",
                  "price checks with the old-kernel cost preset");
    flags.addCommon();

    if (!flags.parse(argc, argv)) {
        fprintf(stderr, "dracod: %s\n%s", flags.error().c_str(),
                flags.helpText().c_str());
        return 1;
    }
    if (flags.helpRequested()) {
        fputs(flags.helpText().c_str(), stdout);
        return 0;
    }
    if (flags.str("socket").empty())
        fatal("dracod: --socket is required");

    obs::TraceSession session;
    if (!flags.str("trace-out").empty()) {
        obs::SessionConfig config;
        config.outPath = flags.str("trace-out");
        // The serve tracks carry telemetry channels only; keep the
        // per-track event ring tiny.
        config.tracer.recordEvents = false;
        config.tracer.capacity = 1024;
        config.tracer.sampleEveryCycles =
            flags.given("sample-every") ? flags.uintValue("sample-every")
                                        : 100000;
        session.configure(config);
    }

    serve::ServiceOptions options;
    options.shards = static_cast<unsigned>(flags.uintValue("shards"));
    options.queueCapacity =
        static_cast<uint32_t>(flags.uintValue("queue-capacity"));
    options.maxBatch =
        static_cast<uint32_t>(flags.uintValue("max-batch"));
    options.maxTenants =
        static_cast<uint32_t>(flags.uintValue("max-tenants"));
    options.costs = flags.flag("old-kernel") ? &os::oldKernelCosts()
                                             : &os::newKernelCosts();
    options.session = session.enabled() ? &session : nullptr;

    serve::CheckService service(options);
    serve::SocketServer server(service, flags.str("socket"));
    if (!server.start())
        fatal("dracod: could not listen on %s",
              flags.str("socket").c_str());

    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    inform("dracod: serving on %s (%u shards, queue %u, batch %u)",
           flags.str("socket").c_str(), service.shards(),
           options.queueCapacity, options.maxBatch);
    server.wait();
    gServer = nullptr;
    service.stop();

    inform("dracod: served %llu checks, shed %llu, %llu connections",
           static_cast<unsigned long long>(service.totalChecks()),
           static_cast<unsigned long long>(service.totalRejects()),
           static_cast<unsigned long long>(
               server.connectionsAccepted()));

    if (!flags.str("json").empty() || session.enabled()) {
        MetricRegistry registry;
        service.exportMetrics(registry);
        if (session.enabled()) {
            session.exportMetrics(registry, "obs");
            session.writeOutput();
        }
        if (!flags.str("json").empty())
            registry.writeJsonFile(flags.str("json"));
    }
    return 0;
}
