/**
 * @file
 * dracod — the syscall-check serving daemon.
 *
 * Hosts a serve::CheckService behind a Unix-domain socket (--socket),
 * a TCP endpoint (--listen host:port), or both at once, speaking the
 * serve/wire protocol from a fixed pool of epoll event-loop threads
 * (--event-threads). Clients (dracoload, or anything else speaking
 * the protocol) create tenants by profile name and stream check
 * batches; the daemon runs until a Shutdown frame or SIGINT/SIGTERM,
 * then drains, optionally writes its `serve.*` metrics as JSON and its
 * per-shard telemetry as a trace, and exits.
 *
 * Typical CI/EXPERIMENTS use:
 *   dracod --socket /tmp/dracod.sock --shards 4 \
 *          --json dracod_metrics.json &
 *   dracoload --socket /tmp/dracod.sock --trace sample.dtrc --shutdown
 */

#include <algorithm>
#include <csignal>
#include <string>

#include "lifecycle/store.hh"
#include "obs/serveobs.hh"
#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "support/cliflags.hh"
#include "support/epoll.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

using namespace draco;

namespace {

serve::SocketServer *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    support::CliFlags flags(
        "dracod", "Serve syscall checks for multiple tenants over a "
                  "Unix-domain socket and/or TCP.");
    flags.addString("socket", "path", "Unix-domain socket to listen on");
    flags.addString("listen", "host:port",
                    "TCP endpoint to listen on (port 0 picks a free "
                    "port)");
    flags.addUint("event-threads", "n",
                  "connection event-loop thread count", 2);
    flags.addUint("shards", "n", "shard (worker thread) count", 1);
    flags.addUint("queue-capacity", "n",
                  "bounded per-shard queue, in requests", 4096);
    flags.addUint("max-batch", "n", "max requests drained per wakeup",
                  64);
    flags.addUint("max-tenants", "n", "tenant table capacity", 4096);
    flags.addUint("max-resident-tenants", "n",
                  "resident-tenant budget; colder tenants snapshot to "
                  "the store and restore on demand (0 = unbounded)", 0);
    flags.addString("snapshot-dir", "path",
                    "directory for evicted-tenant .dtss snapshots "
                    "(default: in-memory store)");
    flags.addString("metrics-listen", "host:port",
                    "HTTP observability endpoint: /metrics (Prometheus "
                    "text), /healthz, /statz, /slowz (port 0 picks a "
                    "free port)");
    flags.addUint("slow-us", "n",
                  "capture requests slower than n microseconds "
                  "(admit to reply-flushed) into the /slowz ring "
                  "(0 = off; needs --metrics-listen)", 0);
    flags.addFlag("old-kernel",
                  "price checks with the old-kernel cost preset");
    flags.addCommon();

    if (!flags.parse(argc, argv)) {
        fprintf(stderr, "dracod: %s\n%s", flags.error().c_str(),
                flags.helpText().c_str());
        return 1;
    }
    if (flags.helpRequested()) {
        fputs(flags.helpText().c_str(), stdout);
        return 0;
    }
    if (flags.str("socket").empty() && flags.str("listen").empty())
        fatal("dracod: --socket and/or --listen is required");

    obs::TraceSession session;
    if (!flags.str("trace-out").empty()) {
        obs::SessionConfig config;
        config.outPath = flags.str("trace-out");
        // The serve tracks carry telemetry channels only; keep the
        // per-track event ring tiny.
        config.tracer.recordEvents = false;
        config.tracer.capacity = 1024;
        config.tracer.sampleEveryCycles =
            flags.given("sample-every") ? flags.uintValue("sample-every")
                                        : 100000;
        session.configure(config);
    }

    serve::ServiceOptions options;
    options.shards = static_cast<unsigned>(flags.uintValue("shards"));
    options.queueCapacity =
        static_cast<uint32_t>(flags.uintValue("queue-capacity"));
    options.maxBatch =
        static_cast<uint32_t>(flags.uintValue("max-batch"));
    options.maxTenants =
        static_cast<uint32_t>(flags.uintValue("max-tenants"));
    options.costs = flags.flag("old-kernel") ? &os::oldKernelCosts()
                                             : &os::newKernelCosts();
    options.session = session.enabled() ? &session : nullptr;
    options.maxResidentTenants = static_cast<uint32_t>(
        flags.uintValue("max-resident-tenants"));
    std::unique_ptr<lifecycle::DirSnapshotStore> snapshotStore;
    if (!flags.str("snapshot-dir").empty()) {
        snapshotStore = std::make_unique<lifecycle::DirSnapshotStore>(
            flags.str("snapshot-dir"));
        if (!snapshotStore->ok())
            fatal("dracod: cannot use snapshot dir '%s'",
                  flags.str("snapshot-dir").c_str());
        options.snapshotStore = snapshotStore.get();
        if (options.maxResidentTenants == 0)
            warn("dracod: --snapshot-dir without "
                 "--max-resident-tenants; no tenant will ever be "
                 "evicted to it");
    }

    // Thousands of concurrent connections need more than the default
    // 1024-fd soft limit most distros (and CI runners) ship with.
    support::raiseFdLimit(16384);

    serve::CheckService service(options);
    serve::ServerOptions serverOptions;
    serverOptions.socketPath = flags.str("socket");
    serverOptions.tcpAddress = flags.str("listen");
    serverOptions.eventThreads = static_cast<unsigned>(
        std::max<uint64_t>(1, flags.uintValue("event-threads")));
    serverOptions.metricsAddress = flags.str("metrics-listen");
    serverOptions.slowUs =
        static_cast<uint32_t>(flags.uintValue("slow-us"));
    if (serverOptions.slowUs != 0 &&
        serverOptions.metricsAddress.empty())
        warn("dracod: --slow-us has no effect without "
             "--metrics-listen");
    serve::SocketServer server(service, serverOptions);
    if (!server.start())
        fatal("dracod: could not listen (socket '%s', tcp '%s')",
              flags.str("socket").c_str(), flags.str("listen").c_str());

    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::string where;
    if (!serverOptions.socketPath.empty())
        where += "unix:" + serverOptions.socketPath;
    if (server.tcpPort() != 0) {
        if (!where.empty())
            where += " + ";
        where += "tcp port " + std::to_string(server.tcpPort());
    }
    inform("dracod: serving on %s (%u shards, queue %u, batch %u, "
           "%u event threads)",
           where.c_str(), service.shards(), options.queueCapacity,
           options.maxBatch, serverOptions.eventThreads);
    if (server.metricsPort() != 0)
        inform("dracod: metrics port %u (/metrics /healthz /statz "
               "/slowz, slow threshold %u us)",
               server.metricsPort(), serverOptions.slowUs);
    server.wait();
    gServer = nullptr;
    service.stop();

    inform("dracod: served %llu checks, shed %llu, "
           "%llu connections accepted, %llu reaped",
           static_cast<unsigned long long>(service.totalChecks()),
           static_cast<unsigned long long>(service.totalRejects()),
           static_cast<unsigned long long>(server.connectionsAccepted()),
           static_cast<unsigned long long>(server.connectionsReaped()));
    if (service.lifecycleEnabled()) {
        serve::ServiceStatsSnapshot ls;
        service.serviceStats(ls);
        inform("dracod: lifecycle: %llu evictions, %llu restores "
               "(%llu failed), %llu distinct policies for %llu tenants",
               static_cast<unsigned long long>(ls.evictions),
               static_cast<unsigned long long>(ls.restores),
               static_cast<unsigned long long>(ls.restoreFailures),
               static_cast<unsigned long long>(ls.dedupPolicies),
               static_cast<unsigned long long>(ls.tenants));
    }
    serve::ServiceStatsSnapshot ps;
    service.serviceStats(ps);
    if (ps.policySwaps > 0 || ps.policySwapFailures > 0 ||
        ps.staleSnapshotDiscards > 0) {
        inform("dracod: policy: %llu hot-swaps (%llu failed), "
               "%llu stale snapshots discarded, max epoch %llu",
               static_cast<unsigned long long>(ps.policySwaps),
               static_cast<unsigned long long>(ps.policySwapFailures),
               static_cast<unsigned long long>(ps.staleSnapshotDiscards),
               static_cast<unsigned long long>(ps.maxEpoch));
    }

    if (!flags.str("json").empty() || session.enabled()) {
        MetricRegistry registry;
        service.exportMetrics(registry);
        if (server.serveObs())
            server.serveObs()->exportMetrics(registry);
        if (session.enabled()) {
            session.exportMetrics(registry, "obs");
            session.writeOutput();
        }
        if (!flags.str("json").empty())
            registry.writeJsonFile(flags.str("json"));
    }
    return 0;
}
