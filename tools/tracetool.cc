/**
 * @file
 * tracetool — convert, inspect, and slice syscall traces.
 *
 * One binary for the trace pipeline: ingest strace captures or
 * `# draco-trace` text, convert losslessly to/from compact `.dtrc`
 * binaries, summarize corpora, filter by pid/syscall, merge shards,
 * and fit AppModels from real traces. Output format follows the
 * destination extension: `.dtrc` selects the binary format, anything
 * else the text format.
 *
 * Usage:
 *   tracetool convert <in> <out>
 *   tracetool inspect <in.dtrc>
 *   tracetool stats <in> [--json <file>]
 *   tracetool filter <in> <out> [--pid N] [--sid NAME|ID] [--max N]
 *   tracetool merge <out> <in>...
 *   tracetool fit <in> [--name NAME] [--micro]
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "os/syscalls.hh"
#include "support/metrics.hh"
#include "trace/dtrc.hh"
#include "trace/replay.hh"
#include "trace/strace.hh"
#include "workload/appmodel.hh"
#include "workload/tracefile.hh"

using namespace draco;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: tracetool convert <in> <out>\n"
                 "       tracetool inspect <in.dtrc>\n"
                 "       tracetool stats <in> [--json <file>]\n"
                 "       tracetool filter <in> <out> [--pid N] "
                 "[--sid NAME|ID] [--max N]\n"
                 "       tracetool merge <out> <in>...\n"
                 "       tracetool fit <in> [--name NAME] [--micro]\n");
    return 2;
}

bool
hasSuffix(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Open @p path or exit with its error on stderr. */
trace::OpenedTrace
openOrDie(const std::string &path)
{
    trace::OpenedTrace opened = trace::openTraceStream(path);
    if (!opened.ok()) {
        std::fprintf(stderr, "tracetool: %s\n", opened.error.c_str());
        std::exit(1);
    }
    return opened;
}

/** Drain @p events into a materialized trace. */
workload::Trace
drain(workload::EventStream &events)
{
    workload::Trace trace;
    workload::TraceEvent event;
    while (events.next(event))
        trace.push_back(event);
    return trace;
}

/** Write @p trace to @p path in the format its extension selects. */
void
writeAs(const workload::Trace &trace, const std::string &path)
{
    if (hasSuffix(path, ".dtrc"))
        trace::writeDtrcFile(trace, path);
    else
        workload::writeTraceFile(trace, path);
}

int
cmdConvert(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return usage();
    trace::OpenedTrace opened = openOrDie(args[0]);

    uint64_t count;
    if (hasSuffix(args[1], ".dtrc")) {
        // Binary destinations stream: O(1) memory end to end.
        trace::TraceWriter writer(args[1]);
        workload::TraceEvent event;
        while (opened.stream->next(event))
            writer.add(event);
        writer.finish();
        count = writer.eventsWritten();
    } else {
        workload::Trace trace = drain(*opened.stream);
        workload::writeTraceFile(trace, args[1]);
        count = trace.size();
    }

    if (auto *reader =
            dynamic_cast<trace::TraceReader *>(opened.stream.get());
        reader && reader->failed()) {
        std::fprintf(stderr, "tracetool: %s\n",
                     reader->error().c_str());
        return 1;
    }
    std::printf("converted %llu events (%s -> %s)\n",
                static_cast<unsigned long long>(count),
                opened.format.c_str(),
                hasSuffix(args[1], ".dtrc") ? "dtrc" : "text");
    return 0;
}

int
cmdInspect(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    trace::DtrcInfo info;
    std::string error;
    if (!trace::inspectDtrc(args[0], info, error)) {
        std::fprintf(stderr, "tracetool: %s\n", error.c_str());
        return 1;
    }
    std::printf("format:       dtrc v%u\n", info.version);
    std::printf("block events: %u\n", info.blockEvents);
    std::printf("total events: %llu\n",
                static_cast<unsigned long long>(info.totalEvents));
    std::printf("blocks:       %zu (%s index)\n", info.blocks.size(),
                info.indexed ? "footer" : "scanned");
    uint64_t payload = 0;
    for (const auto &block : info.blocks)
        payload += block.payloadBytes;
    if (info.totalEvents)
        std::printf("payload:      %llu bytes (%.2f bytes/event)\n",
                    static_cast<unsigned long long>(payload),
                    static_cast<double>(payload) /
                        static_cast<double>(info.totalEvents));
    for (size_t i = 0; i < info.blocks.size() && i < 16; ++i)
        std::printf("  block %3zu: offset=%llu events=%u payload=%u\n",
                    i,
                    static_cast<unsigned long long>(
                        info.blocks[i].offset),
                    info.blocks[i].events, info.blocks[i].payloadBytes);
    if (info.blocks.size() > 16)
        std::printf("  ... %zu more blocks\n", info.blocks.size() - 16);
    return 0;
}

int
cmdStats(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string jsonPath;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json" && i + 1 < args.size())
            jsonPath = args[++i];
        else
            return usage();
    }

    trace::OpenedTrace opened = openOrDie(args[0]);
    std::map<uint16_t, uint64_t> bySid;
    double totalWorkNs = 0.0;
    uint64_t totalBytes = 0, events = 0;
    workload::TraceEvent event;
    while (opened.stream->next(event)) {
        ++bySid[event.req.sid];
        totalWorkNs += event.userWorkNs;
        totalBytes += event.bytesTouched;
        ++events;
    }

    std::printf("format:        %s\n", opened.format.c_str());
    std::printf("events:        %llu\n",
                static_cast<unsigned long long>(events));
    std::printf("distinct sids: %zu\n", bySid.size());
    if (events) {
        std::printf("user work:     %.0f ns total, %.1f ns/event\n",
                    totalWorkNs, totalWorkNs / events);
        std::printf("gap traffic:   %llu bytes total\n",
                    static_cast<unsigned long long>(totalBytes));
    }

    // Top syscalls by frequency.
    std::vector<std::pair<uint64_t, uint16_t>> ranked;
    ranked.reserve(bySid.size());
    for (auto [sid, count] : bySid)
        ranked.emplace_back(count, sid);
    std::sort(ranked.rbegin(), ranked.rend());
    size_t shown = std::min<size_t>(ranked.size(), 15);
    for (size_t i = 0; i < shown; ++i) {
        const auto *desc = os::syscallById(ranked[i].second);
        std::printf("  %6.2f%% %8llu  %s\n",
                    100.0 * static_cast<double>(ranked[i].first) /
                        static_cast<double>(events),
                    static_cast<unsigned long long>(ranked[i].first),
                    desc ? desc->name : "?");
    }

    if (!jsonPath.empty()) {
        MetricRegistry registry;
        registry.setText("trace.file", args[0]);
        registry.setText("trace.format", opened.format);
        registry.setCounter("trace.events", events);
        registry.setCounter("trace.distinct_sids", bySid.size());
        registry.setGauge("trace.user_work_ns", totalWorkNs);
        registry.setCounter("trace.gap_bytes", totalBytes);
        for (auto [sid, count] : bySid) {
            const auto *desc = os::syscallById(sid);
            std::string key = desc
                ? std::string(desc->name)
                : "sid" + std::to_string(sid);
            registry.setCounter("trace.calls." + key, count);
        }
        if (opened.format == "strace")
            opened.straceStats.exportInto(registry);
        registry.writeJsonFile(jsonPath);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}

int
cmdFilter(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    long pid = -1;
    int sid = -1;
    uint64_t maxEvents = 0;
    for (size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--pid" && i + 1 < args.size()) {
            pid = std::strtol(args[++i].c_str(), nullptr, 10);
        } else if (args[i] == "--sid" && i + 1 < args.size()) {
            const std::string &token = args[++i];
            if (const auto *desc = os::syscallByName(token)) {
                sid = desc->id;
            } else {
                char *end = nullptr;
                sid = static_cast<int>(
                    std::strtol(token.c_str(), &end, 10));
                if (!end || *end != '\0' || !os::syscallById(
                        static_cast<uint16_t>(sid))) {
                    std::fprintf(stderr,
                                 "tracetool: unknown syscall '%s'\n",
                                 token.c_str());
                    return 1;
                }
            }
        } else if (args[i] == "--max" && i + 1 < args.size()) {
            maxEvents = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else {
            return usage();
        }
    }

    workload::Trace trace;
    if (pid >= 0) {
        // Pid selection only exists in strace captures.
        trace::StraceResult parsed =
            trace::parseStraceFile(args[0], {});
        if (!parsed.ok()) {
            std::fprintf(stderr, "tracetool: %s\n",
                         parsed.error.c_str());
            return 1;
        }
        trace = parsed.eventsForPid(static_cast<uint32_t>(pid));
    } else {
        trace::OpenedTrace opened = openOrDie(args[0]);
        trace = drain(*opened.stream);
    }

    workload::Trace kept;
    for (const auto &event : trace) {
        if (sid >= 0 && event.req.sid != sid)
            continue;
        kept.push_back(event);
        if (maxEvents && kept.size() >= maxEvents)
            break;
    }
    writeAs(kept, args[1]);
    std::printf("kept %zu of %zu events\n", kept.size(), trace.size());
    return 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage();
    workload::Trace merged;
    for (size_t i = 1; i < args.size(); ++i) {
        trace::OpenedTrace opened = openOrDie(args[i]);
        workload::Trace part = drain(*opened.stream);
        merged.insert(merged.end(), part.begin(), part.end());
    }
    writeAs(merged, args[0]);
    std::printf("merged %zu events from %zu inputs\n", merged.size(),
                args.size() - 1);
    return 0;
}

int
cmdFit(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string name = "trace";
    bool macro = true;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--name" && i + 1 < args.size())
            name = args[++i];
        else if (args[i] == "--micro")
            macro = false;
        else
            return usage();
    }

    trace::OpenedTrace opened = openOrDie(args[0]);
    workload::AppModel model =
        workload::AppModel::fitFromTrace(name, *opened.stream, macro);
    std::printf("app model '%s' (%s)\n", model.name.c_str(),
                macro ? "macro" : "micro");
    std::printf("  mean user work: %.1f ns (sigma %.2f)\n",
                model.userWorkMeanNs, model.userWorkSigma);
    std::printf("  bytes per gap:  %llu\n",
                static_cast<unsigned long long>(model.bytesPerGap));
    std::printf("  syscalls:\n");
    for (const auto &usage : model.usage) {
        const auto *desc = os::syscallById(usage.sid);
        std::printf("    %-16s w=%6.2f tuples=%u sites=%u zipf=%.2f\n",
                    desc ? desc->name : "?", usage.weight,
                    usage.argSets, usage.pcSites, usage.argZipf);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "convert")
        return cmdConvert(args);
    if (command == "inspect")
        return cmdInspect(args);
    if (command == "stats")
        return cmdStats(args);
    if (command == "filter")
        return cmdFilter(args);
    if (command == "merge")
        return cmdMerge(args);
    if (command == "fit")
        return cmdFit(args);
    return usage();
}
