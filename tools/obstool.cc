/**
 * @file
 * obstool — inspect, convert, and compare `.devt` event traces.
 *
 * The companion binary of the obs subsystem: simulator runs export
 * compact `.devt` traces (cheap to write, cheap to re-load), and
 * obstool turns them into Perfetto timelines or terminal summaries
 * after the fact — so a sweep can always record in binary and defer
 * the JSON conversion to the one trace someone actually wants to look
 * at.
 *
 * Usage:
 *   obstool export <in.devt> <out.json|out.devt>
 *   obstool stats <in.devt> [--json <file>]
 *   obstool top <in.devt> [--by flow|sid|kind] [--limit N]
 *   obstool diff <a.devt> <b.devt>
 *   obstool slowz <slowz.json|-> [--limit N]
 *
 * `slowz` pretty-prints a /slowz dump from dracod's observability
 * endpoint (curl .../slowz > slowz.json; obstool slowz slowz.json)
 * as a per-request stage-latency table, slowest first.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "obs/export.hh"
#include "os/syscalls.hh"
#include "support/metrics.hh"

using namespace draco;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: obstool export <in.devt> <out.json|out.devt>\n"
                 "       obstool stats <in.devt> [--json <file>]\n"
                 "       obstool top <in.devt> [--by flow|sid|kind] "
                 "[--limit N]\n"
                 "       obstool diff <a.devt> <b.devt>\n"
                 "       obstool slowz <slowz.json|-> [--limit N]\n");
    return 2;
}

bool
hasSuffix(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Load @p path or exit with its error on stderr. */
obs::LoadedTrace
loadOrDie(const std::string &path)
{
    obs::LoadedTrace trace;
    std::string error;
    if (!obs::loadDevt(path, trace, error)) {
        std::fprintf(stderr, "obstool: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(1);
    }
    return trace;
}

/** Aggregate counts of one loaded trace. */
struct TraceSummary {
    uint64_t events = 0;
    uint64_t dropped = 0;
    uint64_t samples = 0;
    uint64_t byKind[obs::kEventKinds] = {};
    uint64_t byFlow[obs::kFlowCodes] = {};   ///< Syscall spans only.
    double flowCycles[obs::kFlowCodes] = {}; ///< Summed span durations.
};

TraceSummary
summarize(const obs::LoadedTrace &trace)
{
    TraceSummary sum;
    for (const obs::TrackStore &track : trace.tracks) {
        sum.events += track.events.size();
        sum.dropped += track.dropped;
        sum.samples +=
            track.sampleCycles.size() * track.series.size();
        for (const obs::Event &e : track.events) {
            ++sum.byKind[static_cast<size_t>(e.kind)];
            if (e.kind == obs::EventKind::Syscall &&
                e.arg < obs::kFlowCodes) {
                ++sum.byFlow[e.arg];
                sum.flowCycles[e.arg] += e.dur;
            }
        }
    }
    return sum;
}

int
cmdExport(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return usage();
    obs::LoadedTrace trace = loadOrDie(args[0]);

    bool ok = hasSuffix(args[1], ".json")
        ? obs::writePerfettoJson(trace.views(), args[1])
        : obs::writeDevt(trace.views(), args[1]);
    if (!ok) {
        std::fprintf(stderr, "obstool: failed to write '%s'\n",
                     args[1].c_str());
        return 1;
    }
    uint64_t events = 0;
    for (const obs::TrackStore &track : trace.tracks)
        events += track.events.size();
    std::printf("exported %zu tracks, %llu events -> %s\n",
                trace.tracks.size(),
                static_cast<unsigned long long>(events),
                args[1].c_str());
    return 0;
}

int
cmdStats(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string jsonPath;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--json" && i + 1 < args.size())
            jsonPath = args[++i];
        else
            return usage();
    }

    obs::LoadedTrace trace = loadOrDie(args[0]);
    TraceSummary sum = summarize(trace);

    std::printf("tracks:  %zu\n", trace.tracks.size());
    std::printf("events:  %llu (%llu dropped)\n",
                static_cast<unsigned long long>(sum.events),
                static_cast<unsigned long long>(sum.dropped));
    std::printf("samples: %llu\n",
                static_cast<unsigned long long>(sum.samples));
    for (const obs::TrackStore &track : trace.tracks) {
        uint64_t spanEnd = 0;
        for (const obs::Event &e : track.events)
            spanEnd = std::max(spanEnd, e.cycle + e.dur);
        std::printf("  %-28s %8zu events  %6zu samples x %zu ch"
                    "  %12llu cycles\n",
                    track.name.c_str(), track.events.size(),
                    track.sampleCycles.size(), track.series.size(),
                    static_cast<unsigned long long>(spanEnd));
    }

    std::printf("by kind:\n");
    for (size_t k = 0; k < obs::kEventKinds; ++k)
        if (sum.byKind[k])
            std::printf("  %-18s %10llu\n",
                        obs::eventKindName(
                            static_cast<obs::EventKind>(k)),
                        static_cast<unsigned long long>(sum.byKind[k]));
    std::printf("by flow (syscall spans):\n");
    for (size_t f = 0; f < obs::kFlowCodes; ++f)
        if (sum.byFlow[f])
            std::printf("  %-18s %10llu  avg %8.1f cycles\n",
                        obs::flowCodeName(
                            static_cast<obs::FlowCode>(f)),
                        static_cast<unsigned long long>(sum.byFlow[f]),
                        sum.flowCycles[f] /
                            static_cast<double>(sum.byFlow[f]));

    if (!jsonPath.empty()) {
        MetricRegistry registry;
        registry.setText("trace.file", args[0]);
        registry.setCounter("trace.tracks", trace.tracks.size());
        registry.setCounter("trace.events", sum.events);
        registry.setCounter("trace.dropped", sum.dropped);
        registry.setCounter("trace.samples", sum.samples);
        for (size_t k = 0; k < obs::kEventKinds; ++k)
            if (sum.byKind[k])
                registry.setCounter(
                    std::string("trace.kind.") +
                        obs::eventKindName(
                            static_cast<obs::EventKind>(k)),
                    sum.byKind[k]);
        for (size_t f = 0; f < obs::kFlowCodes; ++f)
            if (sum.byFlow[f])
                registry.setCounter(
                    std::string("trace.flow.") +
                        obs::flowCodeName(
                            static_cast<obs::FlowCode>(f)),
                    sum.byFlow[f]);
        registry.writeJsonFile(jsonPath);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}

int
cmdTop(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::string by = "flow";
    size_t limit = 15;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--by" && i + 1 < args.size())
            by = args[++i];
        else if (args[i] == "--limit" && i + 1 < args.size())
            limit = std::strtoull(args[++i].c_str(), nullptr, 10);
        else
            return usage();
    }
    if (by != "flow" && by != "sid" && by != "kind")
        return usage();

    obs::LoadedTrace trace = loadOrDie(args[0]);

    // key -> (count, summed span cycles)
    std::map<std::string, std::pair<uint64_t, double>> groups;
    uint64_t total = 0;
    for (const obs::TrackStore &track : trace.tracks) {
        for (const obs::Event &e : track.events) {
            std::string key;
            double cycles = 0.0;
            if (by == "kind") {
                key = obs::eventKindName(e.kind);
            } else {
                // Flow and sid rank the syscall spans only.
                if (e.kind != obs::EventKind::Syscall)
                    continue;
                cycles = e.dur;
                if (by == "flow") {
                    key = e.arg < obs::kFlowCodes
                        ? obs::flowCodeName(
                              static_cast<obs::FlowCode>(e.arg))
                        : "?";
                } else {
                    const auto *desc = os::syscallById(e.sid);
                    key = desc ? desc->name
                               : "sid" + std::to_string(e.sid);
                }
            }
            auto &slot = groups[key];
            ++slot.first;
            slot.second += cycles;
            ++total;
        }
    }

    std::vector<std::pair<uint64_t, std::string>> ranked;
    ranked.reserve(groups.size());
    for (const auto &[key, slot] : groups)
        ranked.emplace_back(slot.first, key);
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("top %s (%llu %s):\n", by.c_str(),
                static_cast<unsigned long long>(total),
                by == "kind" ? "events" : "syscall spans");
    for (size_t i = 0; i < ranked.size() && i < limit; ++i) {
        const auto &slot = groups[ranked[i].second];
        if (by == "kind")
            std::printf("  %6.2f%% %10llu  %s\n",
                        100.0 * static_cast<double>(slot.first) /
                            static_cast<double>(total),
                        static_cast<unsigned long long>(slot.first),
                        ranked[i].second.c_str());
        else
            std::printf("  %6.2f%% %10llu  avg %8.1f cycles  %s\n",
                        100.0 * static_cast<double>(slot.first) /
                            static_cast<double>(total),
                        static_cast<unsigned long long>(slot.first),
                        slot.second / static_cast<double>(slot.first),
                        ranked[i].second.c_str());
    }
    if (ranked.size() > limit)
        std::printf("  ... %zu more\n", ranked.size() - limit);
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return usage();
    obs::LoadedTrace a = loadOrDie(args[0]);
    obs::LoadedTrace b = loadOrDie(args[1]);
    TraceSummary sa = summarize(a);
    TraceSummary sb = summarize(b);

    int differences = 0;
    auto compare = [&](const char *what, uint64_t va, uint64_t vb) {
        if (va == vb)
            return;
        ++differences;
        std::printf("  %-22s %10llu -> %10llu (%+lld)\n", what,
                    static_cast<unsigned long long>(va),
                    static_cast<unsigned long long>(vb),
                    static_cast<long long>(vb) -
                        static_cast<long long>(va));
    };

    std::printf("diff %s -> %s\n", args[0].c_str(), args[1].c_str());
    compare("tracks", a.tracks.size(), b.tracks.size());
    compare("events", sa.events, sb.events);
    compare("dropped", sa.dropped, sb.dropped);
    compare("samples", sa.samples, sb.samples);
    for (size_t k = 0; k < obs::kEventKinds; ++k)
        compare(obs::eventKindName(static_cast<obs::EventKind>(k)),
                sa.byKind[k], sb.byKind[k]);
    for (size_t f = 0; f < obs::kFlowCodes; ++f)
        compare(obs::flowCodeName(static_cast<obs::FlowCode>(f)),
                sa.byFlow[f], sb.byFlow[f]);

    // Per-track event counts, matched by name.
    std::map<std::string, std::pair<uint64_t, uint64_t>> byTrack;
    for (const obs::TrackStore &track : a.tracks)
        byTrack[track.name].first = track.events.size();
    for (const obs::TrackStore &track : b.tracks)
        byTrack[track.name].second = track.events.size();
    for (const auto &[name, counts] : byTrack)
        compare(name.c_str(), counts.first, counts.second);

    if (!differences) {
        std::printf("  identical counts\n");
        return 0;
    }
    std::printf("%d differing counters\n", differences);
    return 1;
}

/**
 * Extract the number following `"key": ` inside @p object, or @p fallback
 * when the key is absent. Keyed to the flat one-level records the
 * /slowz endpoint emits; not a general JSON parser.
 */
double
jsonNumber(const std::string &object, const std::string &key,
           double fallback = 0.0)
{
    std::string needle = "\"" + key + "\":";
    size_t at = object.find(needle);
    if (at == std::string::npos)
        return fallback;
    return std::strtod(object.c_str() + at + needle.size(), nullptr);
}

int
cmdSlowz(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    size_t limit = 20;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--limit" && i + 1 < args.size())
            limit = std::strtoull(args[++i].c_str(), nullptr, 10);
        else
            return usage();
    }

    std::string text;
    if (args[0] == "-") {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0)
            text.append(buf, n);
    } else {
        FILE *f = std::fopen(args[0].c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "obstool: cannot open '%s'\n",
                         args[0].c_str());
            return 1;
        }
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }

    // Slice the records array into one string per record. Records are
    // flat objects, so matching braces without nesting is safe.
    std::vector<std::string> records;
    size_t cursor = text.find("\"records\"");
    if (cursor == std::string::npos) {
        std::fprintf(stderr,
                     "obstool: no \"records\" array in input "
                     "(expected a /slowz dump)\n");
        return 1;
    }
    while ((cursor = text.find('{', cursor + 1)) != std::string::npos) {
        size_t end = text.find('}', cursor);
        if (end == std::string::npos)
            break;
        records.push_back(text.substr(cursor, end - cursor + 1));
        cursor = end;
    }

    std::printf("slow requests: %.0f captured (ring %.0f, threshold "
                "%.0f us), %zu shown\n",
                jsonNumber(text, "total_slow"),
                jsonNumber(text, "capacity"),
                jsonNumber(text, "threshold_us"),
                std::min(limit, records.size()));
    if (records.empty())
        return 0;

    std::sort(records.begin(), records.end(),
              [](const std::string &a, const std::string &b) {
                  return jsonNumber(a, "total_us") >
                      jsonNumber(b, "total_us");
              });

    std::printf("%8s %6s %5s %9s %5s %5s %5s %4s  "
                "%9s %9s %9s %9s %9s %10s\n",
                "seq", "tenant", "shard", "batch_id", "batch", "allow",
                "deny", "shed", "parse_us", "submit_us", "queue_us",
                "check_us", "reply_us", "total_us");
    for (size_t i = 0; i < records.size() && i < limit; ++i) {
        const std::string &r = records[i];
        std::printf("%8.0f %6.0f %5.0f %9.0f %5.0f %5.0f %5.0f %4.0f  "
                    "%9.1f %9.1f %9.1f %9.1f %9.1f %10.1f\n",
                    jsonNumber(r, "seq"), jsonNumber(r, "tenant"),
                    jsonNumber(r, "shard"), jsonNumber(r, "batch_id"),
                    jsonNumber(r, "batch"), jsonNumber(r, "allowed"),
                    jsonNumber(r, "denied"), jsonNumber(r, "shed"),
                    jsonNumber(r, "parse_us"),
                    jsonNumber(r, "submit_us"),
                    jsonNumber(r, "queue_us"),
                    jsonNumber(r, "check_us"),
                    jsonNumber(r, "reply_us"),
                    jsonNumber(r, "total_us"));
    }
    if (records.size() > limit)
        std::printf("  ... %zu more\n", records.size() - limit);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "export")
        return cmdExport(args);
    if (command == "stats")
        return cmdStats(args);
    if (command == "top")
        return cmdTop(args);
    if (command == "diff")
        return cmdDiff(args);
    if (command == "slowz")
        return cmdSlowz(args);
    return usage();
}
