#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) scrape body.

usage: check_prom.py <metrics-file> [required-family...]

Every non-comment line must match the exposition grammar (metric name,
optional well-formed label set, numeric value), and every family named
on the command line must appear — either bare or via its _count /
_bucket series. Exits non-zero with a pointed message otherwise.
"""
import re
import sys

LINE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?'
                  r' (-?(?:[0-9]*\.)?[0-9]+(?:[eE][-+]?[0-9]+)?'
                  r'|NaN|[-+]?Inf)$')
LABEL_PAIR = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"')


def fail(msg):
    sys.exit(f"check_prom: {msg}")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_prom.py <metrics-file> [family...]")
    path, required = sys.argv[1], sys.argv[2:]
    seen = set()
    for n, raw in enumerate(open(path), 1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        m = LINE.match(line)
        if not m:
            fail(f"{path}:{n}: malformed exposition line: {line!r}")
        name, labels = m.group(1), m.group(2)
        if labels:
            # Strip valid pairs; only commas may remain between them.
            leftover = LABEL_PAIR.sub("", labels[1:-1]).replace(",", "")
            if leftover:
                fail(f"{path}:{n}: malformed label set: {labels!r}")
        seen.add(name)
    missing = [f for f in required
               if not (f in seen or f + "_count" in seen
                       or f + "_bucket" in seen)]
    if missing:
        fail(f"missing families {missing}; scrape had {len(seen)}")
    print(f"check_prom: ok ({len(seen)} series names, "
          f"{len(required)} required families present)")


main()
