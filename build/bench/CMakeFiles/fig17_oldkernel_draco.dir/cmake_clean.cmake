file(REMOVE_RECURSE
  "CMakeFiles/fig17_oldkernel_draco.dir/fig17_oldkernel_draco.cc.o"
  "CMakeFiles/fig17_oldkernel_draco.dir/fig17_oldkernel_draco.cc.o.d"
  "fig17_oldkernel_draco"
  "fig17_oldkernel_draco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_oldkernel_draco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
