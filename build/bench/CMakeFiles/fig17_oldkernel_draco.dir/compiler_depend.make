# Empty compiler generated dependencies file for fig17_oldkernel_draco.
# This may be replaced when dependencies are built.
