file(REMOVE_RECURSE
  "CMakeFiles/fig16_oldkernel_seccomp.dir/fig16_oldkernel_seccomp.cc.o"
  "CMakeFiles/fig16_oldkernel_seccomp.dir/fig16_oldkernel_seccomp.cc.o.d"
  "fig16_oldkernel_seccomp"
  "fig16_oldkernel_seccomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_oldkernel_seccomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
