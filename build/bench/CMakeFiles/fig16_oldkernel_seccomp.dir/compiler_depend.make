# Empty compiler generated dependencies file for fig16_oldkernel_seccomp.
# This may be replaced when dependencies are built.
