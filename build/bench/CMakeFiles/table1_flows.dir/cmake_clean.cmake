file(REMOVE_RECURSE
  "CMakeFiles/table1_flows.dir/table1_flows.cc.o"
  "CMakeFiles/table1_flows.dir/table1_flows.cc.o.d"
  "table1_flows"
  "table1_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
