# Empty dependencies file for table1_flows.
# This may be replaced when dependencies are built.
