file(REMOVE_RECURSE
  "CMakeFiles/fig02_seccomp_overhead.dir/fig02_seccomp_overhead.cc.o"
  "CMakeFiles/fig02_seccomp_overhead.dir/fig02_seccomp_overhead.cc.o.d"
  "fig02_seccomp_overhead"
  "fig02_seccomp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_seccomp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
