file(REMOVE_RECURSE
  "CMakeFiles/profile_comparison.dir/profile_comparison.cc.o"
  "CMakeFiles/profile_comparison.dir/profile_comparison.cc.o.d"
  "profile_comparison"
  "profile_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
