# Empty compiler generated dependencies file for profile_comparison.
# This may be replaced when dependencies are built.
