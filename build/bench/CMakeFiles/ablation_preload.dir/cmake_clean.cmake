file(REMOVE_RECURSE
  "CMakeFiles/ablation_preload.dir/ablation_preload.cc.o"
  "CMakeFiles/ablation_preload.dir/ablation_preload.cc.o.d"
  "ablation_preload"
  "ablation_preload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
