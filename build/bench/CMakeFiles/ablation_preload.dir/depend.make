# Empty dependencies file for ablation_preload.
# This may be replaced when dependencies are built.
