file(REMOVE_RECURSE
  "CMakeFiles/ablation_ctxswitch.dir/ablation_ctxswitch.cc.o"
  "CMakeFiles/ablation_ctxswitch.dir/ablation_ctxswitch.cc.o.d"
  "ablation_ctxswitch"
  "ablation_ctxswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ctxswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
