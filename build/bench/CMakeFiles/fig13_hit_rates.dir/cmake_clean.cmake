file(REMOVE_RECURSE
  "CMakeFiles/fig13_hit_rates.dir/fig13_hit_rates.cc.o"
  "CMakeFiles/fig13_hit_rates.dir/fig13_hit_rates.cc.o.d"
  "fig13_hit_rates"
  "fig13_hit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
