# Empty dependencies file for fig11_draco_software.
# This may be replaced when dependencies are built.
