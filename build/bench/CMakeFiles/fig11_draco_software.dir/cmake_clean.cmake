file(REMOVE_RECURSE
  "CMakeFiles/fig11_draco_software.dir/fig11_draco_software.cc.o"
  "CMakeFiles/fig11_draco_software.dir/fig11_draco_software.cc.o.d"
  "fig11_draco_software"
  "fig11_draco_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_draco_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
