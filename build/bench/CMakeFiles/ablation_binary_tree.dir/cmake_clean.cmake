file(REMOVE_RECURSE
  "CMakeFiles/ablation_binary_tree.dir/ablation_binary_tree.cc.o"
  "CMakeFiles/ablation_binary_tree.dir/ablation_binary_tree.cc.o.d"
  "ablation_binary_tree"
  "ablation_binary_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binary_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
