# Empty dependencies file for ablation_binary_tree.
# This may be replaced when dependencies are built.
