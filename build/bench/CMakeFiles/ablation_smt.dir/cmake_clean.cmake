file(REMOVE_RECURSE
  "CMakeFiles/ablation_smt.dir/ablation_smt.cc.o"
  "CMakeFiles/ablation_smt.dir/ablation_smt.cc.o.d"
  "ablation_smt"
  "ablation_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
