file(REMOVE_RECURSE
  "CMakeFiles/fig12_draco_hardware.dir/fig12_draco_hardware.cc.o"
  "CMakeFiles/fig12_draco_hardware.dir/fig12_draco_hardware.cc.o.d"
  "fig12_draco_hardware"
  "fig12_draco_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_draco_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
