# Empty compiler generated dependencies file for fig12_draco_hardware.
# This may be replaced when dependencies are built.
