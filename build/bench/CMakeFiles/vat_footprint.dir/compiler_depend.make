# Empty compiler generated dependencies file for vat_footprint.
# This may be replaced when dependencies are built.
