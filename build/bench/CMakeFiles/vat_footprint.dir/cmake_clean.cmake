file(REMOVE_RECURSE
  "CMakeFiles/vat_footprint.dir/vat_footprint.cc.o"
  "CMakeFiles/vat_footprint.dir/vat_footprint.cc.o.d"
  "vat_footprint"
  "vat_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vat_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
