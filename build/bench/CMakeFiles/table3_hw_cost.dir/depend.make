# Empty dependencies file for table3_hw_cost.
# This may be replaced when dependencies are built.
