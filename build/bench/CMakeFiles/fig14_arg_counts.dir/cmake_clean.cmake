file(REMOVE_RECURSE
  "CMakeFiles/fig14_arg_counts.dir/fig14_arg_counts.cc.o"
  "CMakeFiles/fig14_arg_counts.dir/fig14_arg_counts.cc.o.d"
  "fig14_arg_counts"
  "fig14_arg_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_arg_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
