# Empty compiler generated dependencies file for fig14_arg_counts.
# This may be replaced when dependencies are built.
