# Empty compiler generated dependencies file for multicore_consolidation.
# This may be replaced when dependencies are built.
