file(REMOVE_RECURSE
  "CMakeFiles/multicore_consolidation.dir/multicore_consolidation.cc.o"
  "CMakeFiles/multicore_consolidation.dir/multicore_consolidation.cc.o.d"
  "multicore_consolidation"
  "multicore_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
