file(REMOVE_RECURSE
  "libdraco_bench_common.a"
)
