file(REMOVE_RECURSE
  "CMakeFiles/draco_bench_common.dir/common.cc.o"
  "CMakeFiles/draco_bench_common.dir/common.cc.o.d"
  "libdraco_bench_common.a"
  "libdraco_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
