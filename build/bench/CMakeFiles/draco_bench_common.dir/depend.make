# Empty dependencies file for draco_bench_common.
# This may be replaced when dependencies are built.
