file(REMOVE_RECURSE
  "CMakeFiles/fig15_profile_security.dir/fig15_profile_security.cc.o"
  "CMakeFiles/fig15_profile_security.dir/fig15_profile_security.cc.o.d"
  "fig15_profile_security"
  "fig15_profile_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_profile_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
