# Empty dependencies file for fig15_profile_security.
# This may be replaced when dependencies are built.
