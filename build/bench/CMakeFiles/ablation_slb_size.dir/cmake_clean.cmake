file(REMOVE_RECURSE
  "CMakeFiles/ablation_slb_size.dir/ablation_slb_size.cc.o"
  "CMakeFiles/ablation_slb_size.dir/ablation_slb_size.cc.o.d"
  "ablation_slb_size"
  "ablation_slb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
