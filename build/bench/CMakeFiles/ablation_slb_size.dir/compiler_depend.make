# Empty compiler generated dependencies file for ablation_slb_size.
# This may be replaced when dependencies are built.
