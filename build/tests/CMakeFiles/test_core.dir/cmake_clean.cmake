file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_checkspec.cc.o"
  "CMakeFiles/test_core.dir/core/test_checkspec.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hw_engine.cc.o"
  "CMakeFiles/test_core.dir/core/test_hw_engine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hw_structures.cc.o"
  "CMakeFiles/test_core.dir/core/test_hw_structures.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_smt.cc.o"
  "CMakeFiles/test_core.dir/core/test_smt.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_software.cc.o"
  "CMakeFiles/test_core.dir/core/test_software.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_vat.cc.o"
  "CMakeFiles/test_core.dir/core/test_vat.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
