
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/test_random.cc" "tests/CMakeFiles/test_support.dir/support/test_random.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_random.cc.o.d"
  "/root/repo/tests/support/test_stats.cc" "tests/CMakeFiles/test_support.dir/support/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_stats.cc.o.d"
  "/root/repo/tests/support/test_table.cc" "tests/CMakeFiles/test_support.dir/support/test_table.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/draco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/draco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/draco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/draco_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/seccomp/CMakeFiles/draco_seccomp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/draco_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/draco_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
