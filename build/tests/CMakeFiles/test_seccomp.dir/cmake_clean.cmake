file(REMOVE_RECURSE
  "CMakeFiles/test_seccomp.dir/seccomp/test_bpf.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_bpf.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_bpf_fuzz.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_bpf_fuzz.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_filter_builder.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_filter_builder.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_filter_chain.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_filter_chain.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profile_gen.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profile_gen.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profile_io.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profile_io.cc.o.d"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profiles.cc.o"
  "CMakeFiles/test_seccomp.dir/seccomp/test_profiles.cc.o.d"
  "test_seccomp"
  "test_seccomp.pdb"
  "test_seccomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seccomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
