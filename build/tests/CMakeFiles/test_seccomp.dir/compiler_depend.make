# Empty compiler generated dependencies file for test_seccomp.
# This may be replaced when dependencies are built.
