
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seccomp/test_bpf.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_bpf.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_bpf.cc.o.d"
  "/root/repo/tests/seccomp/test_bpf_fuzz.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_bpf_fuzz.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_bpf_fuzz.cc.o.d"
  "/root/repo/tests/seccomp/test_filter_builder.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_filter_builder.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_filter_builder.cc.o.d"
  "/root/repo/tests/seccomp/test_filter_chain.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_filter_chain.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_filter_chain.cc.o.d"
  "/root/repo/tests/seccomp/test_profile_gen.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profile_gen.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profile_gen.cc.o.d"
  "/root/repo/tests/seccomp/test_profile_io.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profile_io.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profile_io.cc.o.d"
  "/root/repo/tests/seccomp/test_profiles.cc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profiles.cc.o" "gcc" "tests/CMakeFiles/test_seccomp.dir/seccomp/test_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/draco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/draco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/draco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/draco_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/seccomp/CMakeFiles/draco_seccomp.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/draco_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/draco_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
