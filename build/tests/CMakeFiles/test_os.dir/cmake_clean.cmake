file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_regmap.cc.o"
  "CMakeFiles/test_os.dir/os/test_regmap.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_seccomp_abi.cc.o"
  "CMakeFiles/test_os.dir/os/test_seccomp_abi.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_syscalls.cc.o"
  "CMakeFiles/test_os.dir/os/test_syscalls.cc.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
