# Empty compiler generated dependencies file for container_webserver.
# This may be replaced when dependencies are built.
