file(REMOVE_RECURSE
  "CMakeFiles/container_webserver.dir/container_webserver.cpp.o"
  "CMakeFiles/container_webserver.dir/container_webserver.cpp.o.d"
  "container_webserver"
  "container_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
