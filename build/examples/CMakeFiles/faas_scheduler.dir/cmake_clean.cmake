file(REMOVE_RECURSE
  "CMakeFiles/faas_scheduler.dir/faas_scheduler.cpp.o"
  "CMakeFiles/faas_scheduler.dir/faas_scheduler.cpp.o.d"
  "faas_scheduler"
  "faas_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
