# Empty compiler generated dependencies file for faas_scheduler.
# This may be replaced when dependencies are built.
