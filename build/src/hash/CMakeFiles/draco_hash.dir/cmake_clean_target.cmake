file(REMOVE_RECURSE
  "libdraco_hash.a"
)
