file(REMOVE_RECURSE
  "CMakeFiles/draco_hash.dir/crc64.cc.o"
  "CMakeFiles/draco_hash.dir/crc64.cc.o.d"
  "libdraco_hash.a"
  "libdraco_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
