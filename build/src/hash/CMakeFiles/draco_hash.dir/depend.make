# Empty dependencies file for draco_hash.
# This may be replaced when dependencies are built.
