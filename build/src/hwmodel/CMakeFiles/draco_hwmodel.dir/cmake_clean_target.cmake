file(REMOVE_RECURSE
  "libdraco_hwmodel.a"
)
