# Empty dependencies file for draco_hwmodel.
# This may be replaced when dependencies are built.
