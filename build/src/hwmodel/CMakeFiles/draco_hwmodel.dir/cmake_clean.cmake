file(REMOVE_RECURSE
  "CMakeFiles/draco_hwmodel.dir/draco_costs.cc.o"
  "CMakeFiles/draco_hwmodel.dir/draco_costs.cc.o.d"
  "CMakeFiles/draco_hwmodel.dir/sram.cc.o"
  "CMakeFiles/draco_hwmodel.dir/sram.cc.o.d"
  "libdraco_hwmodel.a"
  "libdraco_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
