
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/draco_costs.cc" "src/hwmodel/CMakeFiles/draco_hwmodel.dir/draco_costs.cc.o" "gcc" "src/hwmodel/CMakeFiles/draco_hwmodel.dir/draco_costs.cc.o.d"
  "/root/repo/src/hwmodel/sram.cc" "src/hwmodel/CMakeFiles/draco_hwmodel.dir/sram.cc.o" "gcc" "src/hwmodel/CMakeFiles/draco_hwmodel.dir/sram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
