# Empty dependencies file for draco_workload.
# This may be replaced when dependencies are built.
