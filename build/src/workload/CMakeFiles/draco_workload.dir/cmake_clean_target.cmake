file(REMOVE_RECURSE
  "libdraco_workload.a"
)
