file(REMOVE_RECURSE
  "CMakeFiles/draco_workload.dir/appmodel.cc.o"
  "CMakeFiles/draco_workload.dir/appmodel.cc.o.d"
  "CMakeFiles/draco_workload.dir/generator.cc.o"
  "CMakeFiles/draco_workload.dir/generator.cc.o.d"
  "CMakeFiles/draco_workload.dir/tracefile.cc.o"
  "CMakeFiles/draco_workload.dir/tracefile.cc.o.d"
  "libdraco_workload.a"
  "libdraco_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
