file(REMOVE_RECURSE
  "CMakeFiles/draco_support.dir/logging.cc.o"
  "CMakeFiles/draco_support.dir/logging.cc.o.d"
  "CMakeFiles/draco_support.dir/random.cc.o"
  "CMakeFiles/draco_support.dir/random.cc.o.d"
  "CMakeFiles/draco_support.dir/stats.cc.o"
  "CMakeFiles/draco_support.dir/stats.cc.o.d"
  "CMakeFiles/draco_support.dir/table.cc.o"
  "CMakeFiles/draco_support.dir/table.cc.o.d"
  "libdraco_support.a"
  "libdraco_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
