file(REMOVE_RECURSE
  "libdraco_support.a"
)
