# Empty dependencies file for draco_support.
# This may be replaced when dependencies are built.
