file(REMOVE_RECURSE
  "CMakeFiles/draco_sim.dir/cache.cc.o"
  "CMakeFiles/draco_sim.dir/cache.cc.o.d"
  "CMakeFiles/draco_sim.dir/machine.cc.o"
  "CMakeFiles/draco_sim.dir/machine.cc.o.d"
  "CMakeFiles/draco_sim.dir/multicore.cc.o"
  "CMakeFiles/draco_sim.dir/multicore.cc.o.d"
  "CMakeFiles/draco_sim.dir/scheduler.cc.o"
  "CMakeFiles/draco_sim.dir/scheduler.cc.o.d"
  "libdraco_sim.a"
  "libdraco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
