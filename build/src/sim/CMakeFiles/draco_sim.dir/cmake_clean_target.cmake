file(REMOVE_RECURSE
  "libdraco_sim.a"
)
