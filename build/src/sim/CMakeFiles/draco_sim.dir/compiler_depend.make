# Empty compiler generated dependencies file for draco_sim.
# This may be replaced when dependencies are built.
