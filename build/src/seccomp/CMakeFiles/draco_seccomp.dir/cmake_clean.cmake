file(REMOVE_RECURSE
  "CMakeFiles/draco_seccomp.dir/bpf.cc.o"
  "CMakeFiles/draco_seccomp.dir/bpf.cc.o.d"
  "CMakeFiles/draco_seccomp.dir/filter_builder.cc.o"
  "CMakeFiles/draco_seccomp.dir/filter_builder.cc.o.d"
  "CMakeFiles/draco_seccomp.dir/profile.cc.o"
  "CMakeFiles/draco_seccomp.dir/profile.cc.o.d"
  "CMakeFiles/draco_seccomp.dir/profile_gen.cc.o"
  "CMakeFiles/draco_seccomp.dir/profile_gen.cc.o.d"
  "CMakeFiles/draco_seccomp.dir/profile_io.cc.o"
  "CMakeFiles/draco_seccomp.dir/profile_io.cc.o.d"
  "CMakeFiles/draco_seccomp.dir/profiles_builtin.cc.o"
  "CMakeFiles/draco_seccomp.dir/profiles_builtin.cc.o.d"
  "libdraco_seccomp.a"
  "libdraco_seccomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_seccomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
