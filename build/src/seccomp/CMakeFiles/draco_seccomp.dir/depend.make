# Empty dependencies file for draco_seccomp.
# This may be replaced when dependencies are built.
