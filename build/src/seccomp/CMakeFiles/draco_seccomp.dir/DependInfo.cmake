
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seccomp/bpf.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/bpf.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/bpf.cc.o.d"
  "/root/repo/src/seccomp/filter_builder.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/filter_builder.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/filter_builder.cc.o.d"
  "/root/repo/src/seccomp/profile.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile.cc.o.d"
  "/root/repo/src/seccomp/profile_gen.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile_gen.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile_gen.cc.o.d"
  "/root/repo/src/seccomp/profile_io.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile_io.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profile_io.cc.o.d"
  "/root/repo/src/seccomp/profiles_builtin.cc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profiles_builtin.cc.o" "gcc" "src/seccomp/CMakeFiles/draco_seccomp.dir/profiles_builtin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/draco_os.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
