file(REMOVE_RECURSE
  "libdraco_seccomp.a"
)
