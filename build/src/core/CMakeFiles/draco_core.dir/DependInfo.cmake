
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkspec.cc" "src/core/CMakeFiles/draco_core.dir/checkspec.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/checkspec.cc.o.d"
  "/root/repo/src/core/hw_engine.cc" "src/core/CMakeFiles/draco_core.dir/hw_engine.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/hw_engine.cc.o.d"
  "/root/repo/src/core/hw_structures.cc" "src/core/CMakeFiles/draco_core.dir/hw_structures.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/hw_structures.cc.o.d"
  "/root/repo/src/core/smt.cc" "src/core/CMakeFiles/draco_core.dir/smt.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/smt.cc.o.d"
  "/root/repo/src/core/software.cc" "src/core/CMakeFiles/draco_core.dir/software.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/software.cc.o.d"
  "/root/repo/src/core/vat.cc" "src/core/CMakeFiles/draco_core.dir/vat.cc.o" "gcc" "src/core/CMakeFiles/draco_core.dir/vat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seccomp/CMakeFiles/draco_seccomp.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/draco_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/draco_os.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
