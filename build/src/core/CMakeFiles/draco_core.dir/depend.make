# Empty dependencies file for draco_core.
# This may be replaced when dependencies are built.
