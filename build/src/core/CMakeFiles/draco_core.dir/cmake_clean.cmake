file(REMOVE_RECURSE
  "CMakeFiles/draco_core.dir/checkspec.cc.o"
  "CMakeFiles/draco_core.dir/checkspec.cc.o.d"
  "CMakeFiles/draco_core.dir/hw_engine.cc.o"
  "CMakeFiles/draco_core.dir/hw_engine.cc.o.d"
  "CMakeFiles/draco_core.dir/hw_structures.cc.o"
  "CMakeFiles/draco_core.dir/hw_structures.cc.o.d"
  "CMakeFiles/draco_core.dir/smt.cc.o"
  "CMakeFiles/draco_core.dir/smt.cc.o.d"
  "CMakeFiles/draco_core.dir/software.cc.o"
  "CMakeFiles/draco_core.dir/software.cc.o.d"
  "CMakeFiles/draco_core.dir/vat.cc.o"
  "CMakeFiles/draco_core.dir/vat.cc.o.d"
  "libdraco_core.a"
  "libdraco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
