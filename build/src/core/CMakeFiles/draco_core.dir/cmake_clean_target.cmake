file(REMOVE_RECURSE
  "libdraco_core.a"
)
