
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernelcosts.cc" "src/os/CMakeFiles/draco_os.dir/kernelcosts.cc.o" "gcc" "src/os/CMakeFiles/draco_os.dir/kernelcosts.cc.o.d"
  "/root/repo/src/os/regmap.cc" "src/os/CMakeFiles/draco_os.dir/regmap.cc.o" "gcc" "src/os/CMakeFiles/draco_os.dir/regmap.cc.o.d"
  "/root/repo/src/os/syscalls.cc" "src/os/CMakeFiles/draco_os.dir/syscalls.cc.o" "gcc" "src/os/CMakeFiles/draco_os.dir/syscalls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/draco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
