file(REMOVE_RECURSE
  "libdraco_os.a"
)
