file(REMOVE_RECURSE
  "CMakeFiles/draco_os.dir/kernelcosts.cc.o"
  "CMakeFiles/draco_os.dir/kernelcosts.cc.o.d"
  "CMakeFiles/draco_os.dir/regmap.cc.o"
  "CMakeFiles/draco_os.dir/regmap.cc.o.d"
  "CMakeFiles/draco_os.dir/syscalls.cc.o"
  "CMakeFiles/draco_os.dir/syscalls.cc.o.d"
  "libdraco_os.a"
  "libdraco_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draco_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
