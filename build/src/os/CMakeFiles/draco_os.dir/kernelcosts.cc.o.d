src/os/CMakeFiles/draco_os.dir/kernelcosts.cc.o: \
 /root/repo/src/os/kernelcosts.cc /usr/include/stdc-predef.h \
 /root/repo/src/os/kernelcosts.hh
