# Empty dependencies file for draco_os.
# This may be replaced when dependencies are built.
