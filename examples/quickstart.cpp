/**
 * @file
 * Quickstart: build a Seccomp profile, enforce it three ways (BPF
 * filter, software Draco, hardware Draco), and watch the caching
 * behaviour that gives Draco its speedup.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "draco/draco.hh"

using namespace draco;

namespace {

os::SyscallRequest
call(uint16_t sid, std::array<uint64_t, 6> args, uint64_t pc = 0x401000)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    req.pc = pc;
    return req;
}

} // namespace

int
main()
{
    // 1. A policy: this process may read fd 3 in 4 KB chunks, write fd
    //    1, and call getpid. Everything else is denied.
    seccomp::Profile profile("quickstart");
    profile.allowTuple(os::sc::read, {3, 0, 4096, 0, 0, 0});
    profile.allowTuple(os::sc::write, {1, 0, 512, 0, 0, 0});
    profile.allow(os::sc::getpid);

    // 2. Compile it to a classic-BPF filter, like the kernel would.
    seccomp::BpfProgram filter = seccomp::buildFilter(profile);
    std::printf("compiled filter: %zu BPF instructions\n\n",
                filter.size());

    auto describe = [&](const char *what, const os::SyscallRequest &req) {
        auto result = filter.run(req.toSeccompData());
        std::printf("%-34s -> %s (%llu filter insns)\n", what,
                    os::actionAllows(
                        static_cast<os::SeccompAction>(result.action))
                        ? "ALLOW"
                        : "DENY",
                    static_cast<unsigned long long>(
                        result.insnsExecuted));
    };
    describe("read(3, buf, 4096)", call(os::sc::read, {3, 0x7000, 4096}));
    describe("read(4, buf, 4096)", call(os::sc::read, {4, 0x7000, 4096}));
    describe("getpid()", call(os::sc::getpid, {}));
    describe("execve(...)", call(os::sc::execve, {0x7000, 0, 0}));

    // 3. Software Draco: the first check runs the filter, every repeat
    //    hits the VAT and skips it.
    std::printf("\nsoftware Draco on 1000 repeated read() calls:\n");
    core::DracoSoftwareChecker draco(profile);
    for (int i = 0; i < 1000; ++i)
        draco.check(call(os::sc::read, {3, 0x7000u + i, 4096}));
    const auto &stats = draco.stats();
    std::printf("  checks=%llu filter-runs=%llu vat-hits=%llu "
                "(vat footprint %zu bytes)\n",
                static_cast<unsigned long long>(stats.checks),
                static_cast<unsigned long long>(stats.filterRuns),
                static_cast<unsigned long long>(stats.vatHits),
                draco.vat().footprintBytes());

    // 4. Hardware Draco: after one cold miss the call settles into
    //    flow 1 (STB hit, SLB preload hit, SLB access hit) — zero
    //    memory accesses, zero filter work.
    std::printf("\nhardware Draco flows for the same call:\n");
    core::HwProcessContext proc(profile);
    core::DracoHardwareEngine engine;
    engine.switchTo(&proc);
    for (int i = 0; i < 3; ++i) {
        auto out = engine.onSyscall(call(os::sc::read, {3, 0x9000, 4096}));
        std::printf("  call %d: flow=%d %s\n", i + 1,
                    static_cast<int>(out.flow),
                    out.fast() ? "(fast)" : "(slow)");
    }
    return 0;
}
