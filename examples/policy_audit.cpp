/**
 * @file
 * Scenario: a security engineer auditing a proposed tightening of a
 * container's policy. Records a workload's behaviour, builds the
 * candidate syscall-complete profile, then replays a *different*
 * (longer, differently-seeded) run to find would-be violations — the
 * classic profile-generation pitfall the paper's §X-B toolkit faces —
 * and inspects the compiled filter.
 *
 * Run: ./build/examples/policy_audit [workload]
 */

#include <cstdio>
#include <map>

#include "draco/draco.hh"

using namespace draco;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "mysql";
    const auto *app = workload::workloadByName(name);
    if (!app)
        fatal("unknown workload '%s'", name);

    // Step 1: record a short training run (what strace would capture).
    seccomp::ProfileRecorder recorder;
    workload::TraceGenerator trainGen(*app, 1001);
    for (const auto &event : trainGen.prologue())
        recorder.record(event.req);
    for (int i = 0; i < 20000; ++i)
        recorder.record(trainGen.next().req);
    seccomp::Profile candidate =
        recorder.makeComplete(std::string(name) + "-candidate");

    auto stats = candidate.stats();
    std::printf("candidate profile for %s: %u syscalls, %u argument "
                "values\n",
                name, stats.syscallsAllowed, stats.valuesAllowed);

    seccomp::FilterChain chain = seccomp::buildFilterChain(candidate);
    std::printf("compiles to %zu filter(s), %zu BPF instructions "
                "total\n\n",
                chain.filterCount(), chain.totalInsns());

    // Step 2: replay a longer production-like run under the candidate.
    workload::TraceGenerator prodGen(*app, 2002);
    std::map<uint16_t, uint64_t> denialsBySid;
    uint64_t total = 0, denied = 0;
    for (int i = 0; i < 200000; ++i) {
        os::SyscallRequest req = prodGen.next().req;
        ++total;
        auto result = chain.run(req.toSeccompData());
        if (!os::actionAllows(
                static_cast<os::SeccompAction>(result.action))) {
            ++denied;
            ++denialsBySid[req.sid];
        }
    }

    std::printf("replay: %llu of %llu calls (%.3f%%) would be denied\n",
                static_cast<unsigned long long>(denied),
                static_cast<unsigned long long>(total),
                100.0 * denied / total);

    if (!denialsBySid.empty()) {
        TextTable table("would-be violations (training run too short: "
                        "these argument sets were never observed)");
        table.setHeader({"syscall", "denied-calls"});
        for (const auto &[sid, count] : denialsBySid)
            table.addRow({os::syscallById(sid)->name,
                          std::to_string(count)});
        table.print();
    }

    // Step 3: what the kernel actually executes — first instructions
    // of the compiled filter.
    std::printf("filter disassembly (first 12 instructions):\n");
    std::string disasm = chain.programs().front().disassemble();
    size_t pos = 0;
    for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
        size_t next = disasm.find('\n', pos);
        std::printf("%s\n",
                    disasm.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    return 0;
}
