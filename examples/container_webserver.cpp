/**
 * @file
 * Scenario: a containerized web server (the paper's motivating
 * deployment). Generates the server's §X-B profiles, then measures the
 * cost of securing it under every mechanism — the per-application view
 * of Figures 2, 11, and 12.
 *
 * Run: ./build/examples/container_webserver [workload] [calls]
 * (default: nginx, 100000 calls)
 */

#include <cstdio>
#include <cstdlib>

#include "draco/draco.hh"

using namespace draco;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "nginx";
    size_t calls = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 100000;

    const auto *app = workload::workloadByName(name);
    if (!app)
        fatal("unknown workload '%s' (try nginx, httpd, redis, ...)",
              name);

    std::printf("profiling %s to generate its Seccomp profiles...\n",
                app->name.c_str());
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 7);
    auto completeStats = profiles.complete.stats();
    std::printf("  syscall-complete: %u syscalls (%u runtime-required), "
                "%u argument values whitelisted\n\n",
                completeStats.syscallsAllowed,
                completeStats.runtimeRequired,
                completeStats.valuesAllowed);

    TextTable table("securing " + app->name + " (" +
                    std::to_string(calls) + " calls, normalized to "
                    "insecure)");
    table.setHeader({"profile", "mechanism", "normalized",
                     "check-ns/call"});

    sim::ExperimentRunner runner;
    seccomp::Profile docker = seccomp::dockerDefaultProfile();

    struct Config {
        const char *label;
        const seccomp::Profile *profile;
        sim::Mechanism mech;
        unsigned copies;
    };
    const Config configs[] = {
        {"docker-default", &docker, sim::Mechanism::Seccomp, 1},
        {"syscall-noargs", &profiles.noargs, sim::Mechanism::Seccomp, 1},
        {"syscall-complete", &profiles.complete, sim::Mechanism::Seccomp,
         1},
        {"syscall-complete", &profiles.complete, sim::Mechanism::DracoSW,
         1},
        {"syscall-complete", &profiles.complete, sim::Mechanism::DracoHW,
         1},
        {"syscall-complete-2x", &profiles.complete,
         sim::Mechanism::Seccomp, 2},
        {"syscall-complete-2x", &profiles.complete,
         sim::Mechanism::DracoSW, 2},
        {"syscall-complete-2x", &profiles.complete,
         sim::Mechanism::DracoHW, 2},
    };

    for (const Config &config : configs) {
        sim::RunOptions options;
        options.mechanism = config.mech;
        options.filterCopies = config.copies;
        options.steadyCalls = calls;
        options.seed = 7;
        sim::RunResult r = runner.run(*app, *config.profile, options);
        table.addRow({config.label, r.mechanism,
                      TextTable::num(r.normalized(), 3),
                      TextTable::num(r.checkNs / r.syscalls, 1)});
    }
    table.print();

    std::printf("takeaway: argument checking makes Seccomp expensive; "
                "software Draco trims it, hardware Draco removes it.\n");
    return 0;
}
