/**
 * @file
 * Scenario: a Function-as-a-Service node packing several sandboxed
 * functions onto one core. Context switches are hardware Draco's only
 * real enemy (the SLB/STB/SPT are invalidated for isolation, §VII-B) —
 * this example sweeps the scheduling quantum and shows the Accessed-bit
 * SPT save/restore mitigation at work.
 *
 * Run: ./build/examples/faas_scheduler [calls]
 */

#include <cstdio>
#include <cstdlib>

#include "draco/draco.hh"

using namespace draco;

int
main(int argc, char **argv)
{
    size_t calls = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                            : 150000;

    // Three functions sharing a core: two short compute functions and
    // one chatty IPC worker.
    std::vector<const workload::AppModel *> functions = {
        workload::workloadByName("pwgen"),
        workload::workloadByName("grep"),
        workload::workloadByName("pipe-ipc"),
    };
    std::printf("FaaS node: %zu functions round-robin on one core, "
                "%zu total syscalls\n\n",
                functions.size(), calls);

    TextTable table("quantum sweep (hardware Draco, per-function "
                    "syscall-complete profiles)");
    table.setHeader({"quantum", "save-restore", "switches",
                     "normalized", "stb-hit%", "slb-access%"});

    for (double quantumUs : {25.0, 100.0, 1000.0}) {
        for (bool mitigation : {false, true}) {
            sim::SchedOptions options;
            options.quantumNs = quantumUs * 1000.0;
            options.sptSaveRestore = mitigation;
            options.totalCalls = calls;
            options.seed = 7;
            sim::MultiProcessSimulator sim;
            sim::SchedResult r = sim.run(functions, options);

            double stb = r.stb.lookups
                ? 100.0 * r.stb.hits / r.stb.lookups
                : 0.0;
            double slb = r.slb.accesses
                ? 100.0 * r.slb.accessHits / r.slb.accesses
                : 0.0;
            char quantum[32];
            std::snprintf(quantum, sizeof(quantum), "%.0f us",
                          quantumUs);
            table.addRow({quantum, mitigation ? "on" : "off",
                          std::to_string(r.contextSwitches),
                          TextTable::num(r.normalized(), 4),
                          TextTable::num(stb, 1),
                          TextTable::num(slb, 1)});
        }
    }
    table.print();

    std::printf("even at aggressive 25 us quanta the restart cost stays "
                "small, and millisecond quanta make it disappear — the "
                "paper's \"lightweight virtualization without the "
                "checking tax\" story.\n");
    return 0;
}
