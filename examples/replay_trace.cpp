/**
 * @file
 * Scenario: offline trace replay. Records a workload trace to disk,
 * saves its generated profile, then — as a separate "deployment" step —
 * loads both back and replays the trace through every checking
 * mechanism. This is the workflow for bringing *real* traces (converted
 * from strace output) to the library.
 *
 * Run: ./build/examples/replay_trace [workload] [calls]
 *          [--trace-out <path.json|path.devt>] [--sample-every <cycles>]
 *
 * With `--trace-out`, the timed replay additionally records a
 * cycle-level event trace — one track per mechanism — and exports it
 * for ui.perfetto.dev (`.json`) or obstool (`.devt`).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "draco/draco.hh"

using namespace draco;

int
main(int argc, char **argv)
{
    std::string traceOut;
    uint64_t sampleEvery = 0;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc)
            traceOut = argv[++i];
        else if (!std::strcmp(argv[i], "--sample-every") && i + 1 < argc)
            sampleEvery = std::strtoull(argv[++i], nullptr, 10);
        else
            positional.push_back(argv[i]);
    }
    const char *name = positional.size() > 0 ? positional[0] : "redis";
    size_t calls = positional.size() > 1
        ? std::strtoull(positional[1], nullptr, 10)
        : 50000;

    const auto *app = workload::workloadByName(name);
    if (!app)
        fatal("unknown workload '%s'", name);

    // Step 1 (recording host): capture a trace and derive its profile.
    // Written twice — text and compact `.dtrc` binary — to show both.
    std::string tracePath = "/tmp/draco_replay_trace.txt";
    std::string dtrcPath = "/tmp/draco_replay_trace.dtrc";
    std::string profilePath = "/tmp/draco_replay_profile.txt";
    {
        workload::TraceGenerator gen(*app, 7);
        workload::Trace trace = gen.generate(calls);
        workload::writeTraceFile(trace, tracePath);
        trace::writeDtrcFile(trace, dtrcPath);

        seccomp::ProfileRecorder recorder;
        for (const auto &event : trace)
            recorder.record(event.req);
        seccomp::writeProfileFile(
            recorder.makeComplete(std::string(name) + "-complete"),
            profilePath);
        std::printf("recorded %zu events -> %s (+ %s)\n", trace.size(),
                    tracePath.c_str(), dtrcPath.c_str());
    }

    // Step 2 (deployment host): load both and replay.
    workload::Trace trace = workload::readTraceFile(tracePath);
    seccomp::Profile profile = seccomp::readProfileFile(profilePath);
    std::printf("loaded profile '%s': %u syscalls, %u values\n\n",
                profile.name().c_str(), profile.stats().syscallsAllowed,
                profile.stats().valuesAllowed);

    seccomp::FilterChain chain = seccomp::buildFilterChain(profile);
    core::DracoSoftwareChecker sw(profile);
    core::HwProcessContext hwProc(profile);
    core::DracoHardwareEngine hw;
    hw.switchTo(&hwProc);

    uint64_t filterInsns = 0, swFilterRuns = 0, hwFast = 0, denied = 0;
    for (const auto &event : trace) {
        auto r = chain.run(event.req.toSeccompData());
        filterInsns += r.insnsExecuted;
        denied += !os::rawActionAllows(r.action);

        auto swOut = sw.check(event.req);
        swFilterRuns += swOut.filterInsns > 0;

        hwFast += hw.onSyscall(event.req).fast();
    }

    std::printf("replayed %zu calls:\n", trace.size());
    std::printf("  seccomp:   %.1f BPF insns/call, %llu denied\n",
                static_cast<double>(filterInsns) / trace.size(),
                static_cast<unsigned long long>(denied));
    std::printf("  draco-sw:  filter executed on %.2f%% of calls\n",
                100.0 * swFilterRuns / trace.size());
    std::printf("  draco-hw:  %.2f%% fast flows\n",
                100.0 * hwFast / trace.size());

    // Step 3: the timed experiment, streamed straight off the `.dtrc`
    // file — the same path real ingested corpora take, with O(1)
    // memory no matter how long the capture is.
    obs::TraceSession session;
    if (!traceOut.empty()) {
        obs::SessionConfig sc;
        sc.outPath = traceOut;
        sc.tracer.sampleEveryCycles = sampleEvery;
        session.configure(sc);
    }

    std::printf("\nstreamed timing replay (%s):\n", dtrcPath.c_str());
    for (auto mechanism :
         {sim::Mechanism::Seccomp, sim::Mechanism::DracoSW,
          sim::Mechanism::DracoHW}) {
        trace::TraceReader stream(dtrcPath);
        sim::RunOptions options;
        options.mechanism = mechanism;
        options.warmupCalls = calls / 10;
        options.steadyCalls = 0; // To stream exhaustion.
        options.tracer = session.tracer(sim::mechanismName(mechanism));
        sim::ExperimentRunner runner;
        sim::RunResult result =
            runner.replay(stream, profile, options, name);
        std::printf("  %-9s %.4fx normalized\n",
                    sim::mechanismName(mechanism),
                    result.normalized());
    }

    if (session.enabled() && session.writeOutput())
        std::printf("\nwrote %s (%llu trace events)\n",
                    traceOut.c_str(),
                    static_cast<unsigned long long>(
                        session.totalEvents()));

    std::remove(tracePath.c_str());
    std::remove(dtrcPath.c_str());
    std::remove(profilePath.c_str());
    return 0;
}
