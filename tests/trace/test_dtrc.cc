/**
 * @file
 * Tests for the `.dtrc` compact binary trace format: lossless round
 * trips, streaming decode, corruption handling, the seekable index,
 * and the compression-ratio claim.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/dtrc.hh"
#include "workload/generator.hh"
#include "workload/tracefile.hh"

namespace draco::trace {
namespace {

workload::Trace
sampleTrace(size_t n, const char *app = "nginx", uint64_t seed = 7)
{
    const workload::AppModel *model = workload::workloadByName(app);
    workload::TraceGenerator gen(*model, seed);
    return gen.generate(n);
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
expectSameTrace(const workload::Trace &a, const workload::Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].req.pc, b[i].req.pc) << i;
        EXPECT_EQ(a[i].req.sid, b[i].req.sid) << i;
        EXPECT_EQ(a[i].req.args, b[i].req.args) << i;
        EXPECT_EQ(a[i].bytesTouched, b[i].bytesTouched) << i;
        // Bit-exact doubles, not approximately equal.
        EXPECT_EQ(a[i].userWorkNs, b[i].userWorkNs) << i;
    }
}

TEST(Dtrc, RoundTripIsLossless)
{
    workload::Trace original = sampleTrace(2000);
    std::string path = tempPath("dtrc_roundtrip.dtrc");
    writeDtrcFile(original, path);
    std::string error;
    workload::Trace parsed = readDtrcFile(path, &error);
    ASSERT_TRUE(error.empty()) << error;
    expectSameTrace(original, parsed);
    std::remove(path.c_str());
}

TEST(Dtrc, MultiBlockRoundTripAndIndex)
{
    workload::Trace original = sampleTrace(1000);
    std::string path = tempPath("dtrc_multiblock.dtrc");
    writeDtrcFile(original, path, 64);

    std::string error;
    workload::Trace parsed = readDtrcFile(path, &error);
    ASSERT_TRUE(error.empty()) << error;
    expectSameTrace(original, parsed);

    DtrcInfo info;
    ASSERT_TRUE(inspectDtrc(path, info, error)) << error;
    EXPECT_TRUE(info.indexed);
    EXPECT_EQ(info.version, kDtrcVersion);
    EXPECT_EQ(info.blockEvents, 64u);
    EXPECT_EQ(info.totalEvents, original.size());
    EXPECT_EQ(info.blocks.size(), (original.size() + 63) / 64);
    uint64_t eventsInBlocks = 0;
    for (const auto &block : info.blocks)
        eventsInBlocks += block.events;
    EXPECT_EQ(eventsInBlocks, original.size());
    std::remove(path.c_str());
}

TEST(Dtrc, EmptyTraceRoundTrips)
{
    std::string path = tempPath("dtrc_empty.dtrc");
    writeDtrcFile({}, path);
    std::string error;
    workload::Trace parsed = readDtrcFile(path, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(parsed.empty());

    DtrcInfo info;
    ASSERT_TRUE(inspectDtrc(path, info, error)) << error;
    EXPECT_EQ(info.totalEvents, 0u);
    EXPECT_TRUE(info.indexed);
    std::remove(path.c_str());
}

TEST(Dtrc, StreamingReaderMatchesMaterialized)
{
    workload::Trace original = sampleTrace(500);
    std::string path = tempPath("dtrc_stream.dtrc");
    writeDtrcFile(original, path, 128);

    TraceReader reader(path);
    ASSERT_FALSE(reader.failed()) << reader.error();
    workload::Trace streamed;
    workload::TraceEvent event;
    while (reader.next(event))
        streamed.push_back(event);
    EXPECT_FALSE(reader.failed()) << reader.error();
    EXPECT_EQ(reader.eventsRead(), original.size());
    expectSameTrace(original, streamed);
    std::remove(path.c_str());
}

TEST(Dtrc, WritesAreByteDeterministic)
{
    workload::Trace trace = sampleTrace(700);
    std::string pathA = tempPath("dtrc_det_a.dtrc");
    std::string pathB = tempPath("dtrc_det_b.dtrc");
    writeDtrcFile(trace, pathA, 100);
    writeDtrcFile(trace, pathB, 100);
    EXPECT_EQ(fileBytes(pathA), fileBytes(pathB));
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

TEST(Dtrc, TruncatedFinalBlockReportsError)
{
    workload::Trace trace = sampleTrace(600);
    std::string path = tempPath("dtrc_truncated.dtrc");
    writeDtrcFile(trace, path, 100);

    std::string bytes = fileBytes(path);
    DtrcInfo info;
    std::string inspectError;
    ASSERT_TRUE(inspectDtrc(path, info, inspectError)) << inspectError;
    // Chop the file mid-way through the last block's payload.
    const BlockInfo &last = info.blocks.back();
    size_t cut = last.offset + 16 + last.payloadBytes / 2;
    ASSERT_LT(cut, bytes.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();

    TraceReader reader(path);
    workload::TraceEvent event;
    size_t decoded = 0;
    while (reader.next(event))
        ++decoded;
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("truncated"), std::string::npos)
        << reader.error();
    EXPECT_LT(decoded, trace.size());

    // The materializing helper surfaces the same error, no crash.
    std::string error;
    workload::Trace parsed = readDtrcFile(path, &error);
    EXPECT_TRUE(parsed.empty());
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Dtrc, CorruptBlockFailsCrc)
{
    workload::Trace trace = sampleTrace(600);
    std::string path = tempPath("dtrc_corrupt.dtrc");
    writeDtrcFile(trace, path, 100);

    std::string bytes = fileBytes(path);
    // Flip one byte inside the first block's payload (header is 16
    // bytes, block header another 16).
    bytes[48] = static_cast<char>(bytes[48] ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();

    std::string error;
    workload::Trace parsed = readDtrcFile(path, &error);
    EXPECT_TRUE(parsed.empty());
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Dtrc, NotADtrcFileReportsBadMagic)
{
    std::string path = tempPath("dtrc_not_binary.txt");
    std::ofstream(path) << "# draco-trace v1\n";
    TraceReader reader(path);
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("magic"), std::string::npos)
        << reader.error();
    EXPECT_FALSE(isDtrcFile(path));
    std::remove(path.c_str());
}

TEST(Dtrc, InspectFallsBackToScanWithoutIndex)
{
    workload::Trace trace = sampleTrace(300);
    std::string path = tempPath("dtrc_noindex.dtrc");
    writeDtrcFile(trace, path, 100);

    // Strip everything after the end-of-blocks marker: the streaming
    // reader and inspect's scan path must still work.
    std::string bytes = fileBytes(path);
    DtrcInfo info;
    std::string error;
    ASSERT_TRUE(inspectDtrc(path, info, error)) << error;
    const BlockInfo &last = info.blocks.back();
    size_t endMarker = last.offset + 16 + last.payloadBytes + 4;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(endMarker));
    out.close();

    DtrcInfo scanned;
    ASSERT_TRUE(inspectDtrc(path, scanned, error)) << error;
    EXPECT_FALSE(scanned.indexed);
    EXPECT_EQ(scanned.totalEvents, trace.size());
    EXPECT_EQ(scanned.blocks.size(), info.blocks.size());

    workload::Trace parsed = readDtrcFile(path, &error);
    EXPECT_TRUE(error.empty()) << error;
    expectSameTrace(trace, parsed);
    std::remove(path.c_str());
}

TEST(Dtrc, AtLeastFourTimesSmallerThanText)
{
    // The acceptance bar: on a representative corpus the binary format
    // is >=4x smaller than the text serialization.
    workload::Trace trace = sampleTrace(2000);
    std::stringstream text;
    workload::writeTrace(trace, text);

    std::string path = tempPath("dtrc_ratio.dtrc");
    writeDtrcFile(trace, path);
    size_t binaryBytes = fileBytes(path).size();
    size_t textBytes = text.str().size();
    EXPECT_GE(static_cast<double>(textBytes) /
                  static_cast<double>(binaryBytes),
              4.0)
        << "text=" << textBytes << " binary=" << binaryBytes;
    std::remove(path.c_str());
}

} // namespace
} // namespace draco::trace
