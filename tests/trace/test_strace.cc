/**
 * @file
 * Tests for strace text ingestion: happy-path parsing, pid demux,
 * unfinished/resumed splicing, timestamp-derived gaps, and the
 * tolerant/strict error paths.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "os/syscalls.hh"
#include "support/metrics.hh"
#include "trace/strace.hh"

namespace draco::trace {
namespace {

StraceResult
parse(const std::string &text, const StraceOptions &options = {})
{
    std::istringstream in(text);
    return parseStrace(in, options);
}

TEST(Strace, ParsesPlainCalls)
{
    StraceResult result = parse(
        "openat(AT_FDCWD, \"/etc/passwd\", O_RDONLY) = 3\n"
        "read(3, \"root:x\", 4096) = 813\n"
        "close(3) = 0\n");
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.events.size(), 3u);
    EXPECT_EQ(result.events[0].req.sid, os::sc::openat);
    EXPECT_EQ(result.events[1].req.sid, os::sc::read);
    EXPECT_EQ(result.events[2].req.sid, os::sc::close);

    // Numeric args parse verbatim.
    EXPECT_EQ(result.events[1].req.args[0], 3u);
    EXPECT_EQ(result.events[1].req.args[2], 4096u);
    EXPECT_EQ(result.events[2].req.args[0], 3u);

    // read()'s positive return drives the gap footprint.
    EXPECT_EQ(result.events[1].bytesTouched, 813u);
    EXPECT_EQ(result.stats.events, 3u);
}

TEST(Strace, StringArgsHashDeterministically)
{
    StraceResult result = parse(
        "openat(AT_FDCWD, \"/etc/passwd\", O_RDONLY) = 3\n"
        "openat(AT_FDCWD, \"/etc/passwd\", O_RDONLY) = 4\n"
        "openat(AT_FDCWD, \"/etc/group\", O_RDONLY) = 5\n");
    ASSERT_EQ(result.events.size(), 3u);
    // Same path token, same hashed value; different path, different.
    EXPECT_EQ(result.events[0].req.args[1], result.events[1].req.args[1]);
    EXPECT_NE(result.events[0].req.args[1], result.events[2].req.args[1]);
    // The hash stays inside the 48 checkable bits.
    EXPECT_LT(result.events[0].req.args[1], 1ULL << 48);
}

TEST(Strace, DemuxesPids)
{
    StraceResult result = parse(
        "[pid 101] getpid() = 101\n"
        "[pid  202] write(1, \"x\", 1) = 1\n"
        "[pid 101] close(3) = 0\n"
        "303   getpid() = 303\n");
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.events.size(), 4u);
    EXPECT_EQ(result.distinctPids(), 3u);
    EXPECT_EQ(result.pids, (std::vector<uint32_t>{101, 202, 303}));

    workload::Trace pid101 = result.eventsForPid(101);
    ASSERT_EQ(pid101.size(), 2u);
    EXPECT_EQ(pid101[0].req.sid, os::sc::getpid);
    EXPECT_EQ(pid101[1].req.sid, os::sc::close);
}

TEST(Strace, SplicesUnfinishedResumed)
{
    StraceResult result = parse(
        "[pid 7] read(5,  <unfinished ...>\n"
        "[pid 8] getpid() = 8\n"
        "[pid 7] <... read resumed> \"data\", 512) = 4\n");
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.events.size(), 2u);
    EXPECT_EQ(result.stats.splicedResumed, 1u);
    workload::Trace pid7 = result.eventsForPid(7);
    ASSERT_EQ(pid7.size(), 1u);
    EXPECT_EQ(pid7[0].req.sid, os::sc::read);
    EXPECT_EQ(pid7[0].req.args[0], 5u);
    EXPECT_EQ(pid7[0].req.args[2], 512u);
}

TEST(Strace, DanglingUnfinishedCounted)
{
    StraceResult result = parse(
        "read(5, <unfinished ...>\n"
        "getpid() = 1\n");
    EXPECT_EQ(result.events.size(), 1u);
    EXPECT_EQ(result.stats.danglingUnfinished, 1u);
}

TEST(Strace, TimestampsBecomeUserWorkGaps)
{
    StraceOptions options;
    options.defaultUserWorkNs = 1111.0;
    StraceResult result = parse(
        "1000000000.000100 getpid() = 1 <0.000010>\n"
        "1000000000.000200 getpid() = 1 <0.000010>\n"
        "1000000000.000500 getpid() = 1 <0.000010>\n",
        options);
    ASSERT_EQ(result.events.size(), 3u);
    // First event of a pid has no predecessor: the default applies.
    EXPECT_DOUBLE_EQ(result.events[0].userWorkNs, 1111.0);
    // gap = timestamp delta minus the previous call's kernel time.
    EXPECT_NEAR(result.events[1].userWorkNs, 100000.0 - 10000.0, 1.0);
    EXPECT_NEAR(result.events[2].userWorkNs, 300000.0 - 10000.0, 1.0);
}

TEST(Strace, WallClockTimestampsParse)
{
    StraceResult result = parse(
        "12:00:01.000000 getpid() = 1\n"
        "12:00:01.000050 getpid() = 1\n");
    ASSERT_EQ(result.events.size(), 2u);
    EXPECT_NEAR(result.events[1].userWorkNs, 50000.0, 1.0);
}

TEST(Strace, InstructionPointerBecomesPc)
{
    StraceResult result = parse(
        "[00007f2a1b3c4d5e] getpid() = 1\n"
        "getpid() = 1\n");
    ASSERT_EQ(result.events.size(), 2u);
    EXPECT_EQ(result.events[0].req.pc, 0x7f2a1b3c4d5eULL);
    // Without -i the site is synthesized per syscall id.
    StraceOptions options;
    EXPECT_EQ(result.events[1].req.pc,
              options.pcBase + os::sc::getpid * 0x40ULL);
}

TEST(Strace, MetaLinesSkipped)
{
    StraceResult result = parse(
        "--- SIGCHLD {si_signo=SIGCHLD} ---\n"
        "getpid() = 1\n"
        "+++ exited with 0 +++\n");
    EXPECT_EQ(result.events.size(), 1u);
    EXPECT_EQ(result.stats.skippedMeta, 2u);
}

TEST(Strace, TolerantModeCountsAndSkips)
{
    StraceResult result = parse(
        "this is not strace output\n"
        "frobnicate_xyz(1, 2) = 0\n"
        "getpid() = 1\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.events.size(), 1u);
    EXPECT_EQ(result.stats.skippedMalformed, 1u);
    EXPECT_EQ(result.stats.skippedUnknown, 1u);
}

TEST(Strace, StrictModeReportsLineNumbers)
{
    StraceOptions strict;
    strict.strict = true;
    StraceResult malformed = parse(
        "getpid() = 1\n"
        "not parseable at all\n",
        strict);
    EXPECT_FALSE(malformed.ok());
    EXPECT_NE(malformed.error.find("line 2"), std::string::npos)
        << malformed.error;

    StraceResult unknown = parse("frobnicate_xyz(1) = 0\n", strict);
    EXPECT_FALSE(unknown.ok());
    EXPECT_NE(unknown.error.find("line 1"), std::string::npos)
        << unknown.error;
    EXPECT_NE(unknown.error.find("frobnicate_xyz"), std::string::npos)
        << unknown.error;
}

TEST(Strace, NegativeReturnsDoNotDriveFootprint)
{
    StraceOptions options;
    options.defaultBytesTouched = 2048;
    StraceResult result =
        parse("read(3, \"\", 4096) = -1 EAGAIN (Resource "
              "temporarily unavailable)\n",
              options);
    ASSERT_EQ(result.events.size(), 1u);
    EXPECT_EQ(result.events[0].bytesTouched, 2048u);
}

TEST(Strace, StatsExportIntoRegistry)
{
    StraceResult result = parse(
        "getpid() = 1\n"
        "frobnicate_xyz(1) = 0\n"
        "--- SIGINT ---\n");
    MetricRegistry registry;
    result.stats.exportInto(registry);
    std::string json = registry.toJson();
    EXPECT_NE(json.find("skipped_unknown"), std::string::npos);
    EXPECT_NE(json.find("skipped_meta"), std::string::npos);
}

} // namespace
} // namespace draco::trace
