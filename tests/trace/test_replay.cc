/**
 * @file
 * Tests for trace replay: the streamed-vs-materialized equivalence
 * contract, format sniffing, round-robin tenant splitting, multicore
 * replay, and AppModel fitting from real traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/machine.hh"
#include "trace/dtrc.hh"
#include "trace/replay.hh"
#include "workload/generator.hh"
#include "workload/tracefile.hh"

namespace draco::trace {
namespace {

workload::Trace
sampleTrace(size_t n, const char *app = "nginx", uint64_t seed = 11)
{
    const workload::AppModel *model = workload::workloadByName(app);
    workload::TraceGenerator gen(*model, seed);
    return gen.generate(n);
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
resultJson(const sim::RunResult &result)
{
    MetricRegistry registry;
    result.exportMetrics(registry, "run");
    return registry.toJson();
}

TEST(Replay, StreamedDtrcMatchesInMemoryTrace)
{
    // The acceptance contract: replaying a `.dtrc` through the
    // streaming reader produces the same metrics JSON as replaying the
    // equivalent in-memory trace.
    workload::Trace trace = sampleTrace(3000);
    std::string path = tempPath("replay_equiv.dtrc");
    writeDtrcFile(trace, path, 256);

    const workload::AppModel *app = workload::workloadByName("nginx");
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 11, 3000);

    sim::RunOptions options;
    options.mechanism = sim::Mechanism::DracoHW;
    options.warmupCalls = 500;
    options.steadyCalls = 2000;

    sim::ExperimentRunner runner;
    workload::TraceStream memoryStream(trace);
    sim::RunResult fromMemory =
        runner.replay(memoryStream, profiles.complete, options, "t");

    TraceReader fileStream(path);
    ASSERT_FALSE(fileStream.failed()) << fileStream.error();
    sim::RunResult fromFile =
        runner.replay(fileStream, profiles.complete, options, "t");

    EXPECT_GT(fromMemory.totalNs, 0.0);
    EXPECT_EQ(fromMemory.syscalls, 2000u);
    EXPECT_EQ(resultJson(fromMemory), resultJson(fromFile));
    std::remove(path.c_str());
}

TEST(Replay, StreamedEquivalenceHoldsForEveryMechanism)
{
    workload::Trace trace = sampleTrace(1500);
    std::string path = tempPath("replay_equiv_mech.dtrc");
    writeDtrcFile(trace, path);

    const workload::AppModel *app = workload::workloadByName("nginx");
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 11, 1500);

    for (auto mechanism :
         {sim::Mechanism::Insecure, sim::Mechanism::Seccomp,
          sim::Mechanism::DracoSW, sim::Mechanism::DracoHW}) {
        sim::RunOptions options;
        options.mechanism = mechanism;
        options.warmupCalls = 200;
        options.steadyCalls = 0; // To exhaustion.

        sim::ExperimentRunner runner;
        workload::TraceStream memoryStream(trace);
        sim::RunResult fromMemory = runner.replay(
            memoryStream, profiles.complete, options, "t");
        TraceReader fileStream(path);
        sim::RunResult fromFile =
            runner.replay(fileStream, profiles.complete, options, "t");

        EXPECT_EQ(fromMemory.syscalls, trace.size() - 200);
        EXPECT_EQ(resultJson(fromMemory), resultJson(fromFile))
            << sim::mechanismName(mechanism);
    }
    std::remove(path.c_str());
}

TEST(Replay, OpenTraceStreamSniffsFormats)
{
    workload::Trace trace = sampleTrace(100);

    std::string dtrcPath = tempPath("sniff.dtrc");
    writeDtrcFile(trace, dtrcPath);
    OpenedTrace dtrc = openTraceStream(dtrcPath);
    ASSERT_TRUE(dtrc.ok()) << dtrc.error;
    EXPECT_EQ(dtrc.format, "dtrc");

    std::string textPath = tempPath("sniff.trace");
    workload::writeTraceFile(trace, textPath);
    OpenedTrace text = openTraceStream(textPath);
    ASSERT_TRUE(text.ok()) << text.error;
    EXPECT_EQ(text.format, "text");

    std::string stracePath = tempPath("sniff.strace");
    std::ofstream(stracePath)
        << "getpid() = 42\nread(3, \"x\", 1) = 1\n";
    OpenedTrace strace = openTraceStream(stracePath);
    ASSERT_TRUE(strace.ok()) << strace.error;
    EXPECT_EQ(strace.format, "strace");
    EXPECT_EQ(strace.straceStats.events, 2u);

    // All three agree on the events they carry.
    workload::TraceEvent a, b;
    ASSERT_TRUE(dtrc.stream->next(a));
    ASSERT_TRUE(text.stream->next(b));
    EXPECT_EQ(a.req.sid, b.req.sid);
    EXPECT_EQ(a.req.args, b.req.args);

    std::string missing = openTraceStream("/nonexistent/zz").error;
    EXPECT_FALSE(missing.empty());

    std::remove(dtrcPath.c_str());
    std::remove(textPath.c_str());
    std::remove(stracePath.c_str());
}

TEST(Replay, RoundRobinSplitterDealsInOrder)
{
    // Ten synthetic events tagged by position in args[0].
    workload::Trace trace(10);
    for (size_t i = 0; i < trace.size(); ++i) {
        trace[i].req.sid = 39;
        trace[i].req.args[0] = i;
        trace[i].userWorkNs = 100.0;
    }
    workload::TraceStream source(trace);
    RoundRobinSplitter splitter(source, 3);
    ASSERT_EQ(splitter.tenants(), 3u);

    // Child i must see events i, i+3, i+6, ... regardless of the order
    // the children are pulled in.
    workload::TraceEvent event;
    ASSERT_TRUE(splitter.child(2).next(event));
    EXPECT_EQ(event.req.args, trace[2].req.args);
    ASSERT_TRUE(splitter.child(0).next(event));
    EXPECT_EQ(event.req.args, trace[0].req.args);
    ASSERT_TRUE(splitter.child(0).next(event));
    EXPECT_EQ(event.req.args, trace[3].req.args);
    ASSERT_TRUE(splitter.child(1).next(event));
    EXPECT_EQ(event.req.args, trace[1].req.args);

    // 10 events over 3 tenants: child 0 gets 4, children 1/2 get 3.
    size_t remaining0 = 0;
    while (splitter.child(0).next(event))
        ++remaining0;
    EXPECT_EQ(remaining0, 2u); // Already pulled 2 of its 4.
    ASSERT_TRUE(splitter.child(2).next(event));
    EXPECT_EQ(event.req.args, trace[5].req.args);
}

TEST(Replay, MulticoreRoundRobinRuns)
{
    workload::Trace trace = sampleTrace(4000);
    const workload::AppModel *app = workload::workloadByName("nginx");
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 11, 4000);

    sim::MulticoreOptions options;
    options.warmupCallsPerCore = 100;
    options.callsPerCore = 0; // Run every stream dry.

    workload::TraceStream source(trace);
    auto results = replayMulticoreRoundRobin(
        source, profiles.complete, 4, sim::Mechanism::DracoHW, options);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &core : results) {
        EXPECT_GT(core.totalNs, 0.0);
        EXPECT_GE(core.normalized(), 1.0);
        EXPECT_EQ(core.mechanism, "draco-hw");
    }
}

TEST(Replay, FitFromTraceRecoversMix)
{
    const workload::AppModel *app = workload::workloadByName("nginx");
    workload::Trace trace = sampleTrace(20000);

    workload::AppModel fitted =
        workload::AppModel::fitFromTrace("refit", trace, true);
    EXPECT_EQ(fitted.name, "refit");
    EXPECT_TRUE(fitted.isMacro);
    ASSERT_FALSE(fitted.usage.empty());

    // Weights form a percentage distribution.
    EXPECT_NEAR(fitted.totalWeight(), 100.0, 1e-6);

    // The fitted mix contains the source model's top syscall with a
    // comparable weight, and the gap mean lands near the source's.
    const workload::SyscallUsage &top = fitted.usage.front();
    double sourceTopWeight = 0.0;
    for (const auto &usage : app->usage)
        if (usage.sid == top.sid)
            sourceTopWeight = usage.weight;
    EXPECT_GT(sourceTopWeight, 0.0);
    EXPECT_NEAR(top.weight / fitted.totalWeight(),
                sourceTopWeight / app->totalWeight(), 0.1);
    EXPECT_NEAR(fitted.userWorkMeanNs, app->userWorkMeanNs,
                0.25 * app->userWorkMeanNs);

    // A fitted model drives the generator end to end (generate()
    // prepends the fixed startup prologue to the requested calls).
    workload::TraceGenerator gen(fitted, 5);
    workload::Trace synthesized = gen.generate(100);
    EXPECT_GE(synthesized.size(), 100u);
}

TEST(Replay, CheckedInSamplesStayInSync)
{
    // The three files in examples/traces/ are one capture in three
    // formats; conversion between them must stay lossless, and the
    // checked-in .dtrc must match a fresh deterministic encode.
    std::string base = DRACO_SOURCE_DIR "/examples/traces/sample";
    OpenedTrace strace = openTraceStream(base + ".strace");
    ASSERT_TRUE(strace.ok()) << strace.error;
    EXPECT_EQ(strace.format, "strace");
    EXPECT_EQ(strace.straceStats.splicedResumed, 1u);

    std::string error;
    workload::Trace text = workload::readTraceFile(base + ".trace");
    workload::Trace binary = readDtrcFile(base + ".dtrc", &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(text.size(), binary.size());
    ASSERT_EQ(text.size(), 22u);
    for (size_t i = 0; i < text.size(); ++i) {
        EXPECT_EQ(text[i].req.sid, binary[i].req.sid) << i;
        EXPECT_EQ(text[i].req.pc, binary[i].req.pc) << i;
        EXPECT_EQ(text[i].req.args, binary[i].req.args) << i;
        EXPECT_EQ(text[i].userWorkNs, binary[i].userWorkNs) << i;
        EXPECT_EQ(text[i].bytesTouched, binary[i].bytesTouched) << i;
    }

    // Re-encoding the text sample reproduces the checked-in binary
    // byte for byte.
    std::ostringstream encoded;
    {
        TraceWriter writer(encoded);
        for (const auto &event : text)
            writer.add(event);
    }
    std::ifstream in(base + ".dtrc", std::ios::binary);
    std::stringstream checkedIn;
    checkedIn << in.rdbuf();
    EXPECT_EQ(encoded.str(), checkedIn.str());
}

TEST(Replay, FitFromEmptyStreamIsEmpty)
{
    workload::Trace empty;
    workload::AppModel fitted =
        workload::AppModel::fitFromTrace("empty", empty, false);
    EXPECT_TRUE(fitted.usage.empty());
    EXPECT_FALSE(fitted.isMacro);
}

} // namespace
} // namespace draco::trace
