/**
 * @file
 * Unit tests for the seccomp ABI structures.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "os/seccomp_abi.hh"

namespace draco::os {
namespace {

TEST(SeccompAbi, LayoutMatchesLinuxUapi)
{
    EXPECT_EQ(sizeof(SeccompData), 64u);
    EXPECT_EQ(offsetof(SeccompData, nr), sd_off::nr);
    EXPECT_EQ(offsetof(SeccompData, arch), sd_off::arch);
    EXPECT_EQ(offsetof(SeccompData, instruction_pointer),
              static_cast<size_t>(sd_off::ip_lo));
    EXPECT_EQ(offsetof(SeccompData, args), sd_off::argLo(0));
}

TEST(SeccompAbi, ArgOffsets)
{
    for (unsigned i = 0; i < kMaxSyscallArgs; ++i) {
        EXPECT_EQ(sd_off::argLo(i), 16 + 8 * i);
        EXPECT_EQ(sd_off::argHi(i), 16 + 8 * i + 4);
    }
}

TEST(SeccompAbi, RequestToSeccompData)
{
    SyscallRequest req;
    req.pc = 0xdeadbeef;
    req.sid = 42;
    req.args = {1, 2, 3, 4, 5, 0x1122334455667788ULL};
    SeccompData d = req.toSeccompData();
    EXPECT_EQ(d.nr, 42u);
    EXPECT_EQ(d.arch, kAuditArchX86_64);
    EXPECT_EQ(d.instruction_pointer, 0xdeadbeefULL);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(d.args[i], i + 1);
    EXPECT_EQ(d.args[5], 0x1122334455667788ULL);
}

TEST(SeccompAbi, ActionAllows)
{
    EXPECT_TRUE(actionAllows(SeccompAction::Allow));
    EXPECT_TRUE(actionAllows(SeccompAction::Log));
    EXPECT_FALSE(actionAllows(SeccompAction::KillProcess));
    EXPECT_FALSE(actionAllows(SeccompAction::KillThread));
    EXPECT_FALSE(actionAllows(SeccompAction::Errno));
    EXPECT_FALSE(actionAllows(SeccompAction::Trap));
    EXPECT_FALSE(actionAllows(SeccompAction::Trace));
}

TEST(SeccompAbi, ActionValuesMatchLinux)
{
    EXPECT_EQ(static_cast<uint32_t>(SeccompAction::Allow), 0x7fff0000U);
    EXPECT_EQ(static_cast<uint32_t>(SeccompAction::KillProcess),
              0x80000000U);
    EXPECT_EQ(static_cast<uint32_t>(SeccompAction::Errno), 0x00050000U);
    EXPECT_EQ(static_cast<uint32_t>(SeccompAction::Trap), 0x00030000U);
    EXPECT_EQ(static_cast<uint32_t>(SeccompAction::Log), 0x7ffc0000U);
}

TEST(SeccompAbi, RetDataDecomposition)
{
    uint32_t errnoEperm =
        static_cast<uint32_t>(SeccompAction::Errno) | 1;
    EXPECT_EQ(actionOf(errnoEperm), SeccompAction::Errno);
    EXPECT_EQ(retDataOf(errnoEperm), 1);
    EXPECT_FALSE(rawActionAllows(errnoEperm));
    EXPECT_TRUE(rawActionAllows(
        static_cast<uint32_t>(SeccompAction::Allow)));
    EXPECT_EQ(actionOf(static_cast<uint32_t>(
                  SeccompAction::KillProcess)),
              SeccompAction::KillProcess);
    // KillThread is numerically zero; data bits must not disturb it.
    EXPECT_EQ(actionOf(0x00000007), SeccompAction::KillThread);
    EXPECT_EQ(retDataOf(0x00000007), 7);
}

TEST(SeccompAbi, ArchConstant)
{
    EXPECT_EQ(kAuditArchX86_64, 0xC000003EU);
}

} // namespace
} // namespace draco::os
