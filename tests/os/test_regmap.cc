/**
 * @file
 * Tests for the OS-programmable argument-register mapping (§VIII).
 */

#include <gtest/gtest.h>

#include "os/regmap.hh"

namespace draco::os {
namespace {

TEST(RegMap, LinuxConvention)
{
    const auto &map = ArgRegisterMap::linuxSyscall();
    EXPECT_EQ(map.idReg(), Reg::Rax);
    EXPECT_EQ(map.argReg(0), Reg::Rdi);
    EXPECT_EQ(map.argReg(1), Reg::Rsi);
    EXPECT_EQ(map.argReg(2), Reg::Rdx);
    EXPECT_EQ(map.argReg(3), Reg::R10);
    EXPECT_EQ(map.argReg(4), Reg::R8);
    EXPECT_EQ(map.argReg(5), Reg::R9);
}

TEST(RegMap, RegisterNames)
{
    EXPECT_STREQ(regName(Reg::Rax), "rax");
    EXPECT_STREQ(regName(Reg::R10), "r10");
    EXPECT_STREQ(regName(Reg::Rsp), "rsp");
}

TEST(RegMap, ExtractDecodesTheFigureOneExample)
{
    // Figure 1: movl 0xffffffff,%rdi; movl $135,%rax; syscall.
    RegisterFile regs;
    regs.pc = 0x400321;
    regs[Reg::Rax] = 135;        // personality
    regs[Reg::Rdi] = 0xffffffff; // persona
    SyscallRequest req = ArgRegisterMap::linuxSyscall().extract(regs);
    EXPECT_EQ(req.sid, 135);
    EXPECT_EQ(req.args[0], 0xffffffffULL);
    EXPECT_EQ(req.pc, 0x400321ULL);
}

TEST(RegMap, MaterializeRoundTrips)
{
    SyscallRequest req;
    req.pc = 0x401000;
    req.sid = 42;
    req.args = {1, 2, 3, 4, 5, 6};
    const auto &map = ArgRegisterMap::linuxSyscall();
    SyscallRequest back = map.extract(map.materialize(req));
    EXPECT_EQ(back.sid, req.sid);
    EXPECT_EQ(back.pc, req.pc);
    EXPECT_EQ(back.args, req.args);
}

TEST(RegMap, CustomConventionWorks)
{
    // A hypothetical guardian-call convention using different registers
    // — the §VIII point: nothing in the checking stack cares.
    ArgRegisterMap map("guardian", Reg::Rbx,
                       {Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi,
                        Reg::R12, Reg::R13});
    RegisterFile regs;
    regs[Reg::Rbx] = 7;
    regs[Reg::Rcx] = 0xaa;
    regs[Reg::R13] = 0xbb;
    SyscallRequest req = map.extract(regs);
    EXPECT_EQ(req.sid, 7);
    EXPECT_EQ(req.args[0], 0xaaULL);
    EXPECT_EQ(req.args[5], 0xbbULL);
}

TEST(RegMap, XenHypercallConventionAvailable)
{
    const auto &map = ArgRegisterMap::xenHypercall();
    EXPECT_EQ(map.idReg(), Reg::Rax);
    EXPECT_EQ(map.name(), "xen-x86_64-hypercall");
}

TEST(RegMapDeathTest, IdRegisterReuseIsFatal)
{
    EXPECT_EXIT(ArgRegisterMap("bad", Reg::Rax,
                               {Reg::Rax, Reg::Rsi, Reg::Rdx, Reg::R10,
                                Reg::R8, Reg::R9}),
                testing::ExitedWithCode(1), "reused");
}

} // namespace
} // namespace draco::os
