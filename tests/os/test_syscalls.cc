/**
 * @file
 * Unit tests for the syscall descriptor table.
 */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "os/syscalls.hh"

namespace draco::os {
namespace {

TEST(SyscallTable, SortedUniqueIds)
{
    const auto &table = syscallTable();
    ASSERT_FALSE(table.empty());
    for (size_t i = 1; i < table.size(); ++i)
        EXPECT_LT(table[i - 1].id, table[i].id);
}

TEST(SyscallTable, CoversNativeRange)
{
    // Contiguous native ids 0..334 plus the 424..435 block.
    for (uint16_t id = 0; id <= 334; ++id)
        EXPECT_NE(syscallById(id), nullptr) << "missing id " << id;
    for (uint16_t id = 424; id <= 435; ++id)
        EXPECT_NE(syscallById(id), nullptr) << "missing id " << id;
    EXPECT_EQ(syscallTable().size(), 347u);
}

TEST(SyscallTable, LookupByIdAndName)
{
    const SyscallDesc *read = syscallById(0);
    ASSERT_NE(read, nullptr);
    EXPECT_STREQ(read->name, "read");
    EXPECT_EQ(syscallByName("read"), read);
    EXPECT_EQ(syscallByName("no_such_call"), nullptr);
    EXPECT_EQ(syscallById(400), nullptr);
}

TEST(SyscallTable, IdBound)
{
    EXPECT_EQ(syscallIdBound(), 436);
}

TEST(SyscallTable, KnownSignatures)
{
    const SyscallDesc *read = syscallByName("read");
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->nargs, 3);
    EXPECT_FALSE(read->argIsPointer(0)); // fd
    EXPECT_TRUE(read->argIsPointer(1));  // buf
    EXPECT_FALSE(read->argIsPointer(2)); // count
    EXPECT_EQ(read->checkedArgCount(), 2u);

    const SyscallDesc *getpid = syscallByName("getpid");
    ASSERT_NE(getpid, nullptr);
    EXPECT_EQ(getpid->nargs, 0);
    EXPECT_EQ(getpid->checkedArgCount(), 0u);

    const SyscallDesc *futex = syscallByName("futex");
    ASSERT_NE(futex, nullptr);
    EXPECT_EQ(futex->nargs, 6);
    EXPECT_TRUE(futex->argIsPointer(0));  // uaddr
    EXPECT_FALSE(futex->argIsPointer(1)); // op
    EXPECT_TRUE(futex->argIsPointer(3));  // timeout
    EXPECT_TRUE(futex->argIsPointer(4));  // uaddr2

    const SyscallDesc *mmap = syscallByName("mmap");
    ASSERT_NE(mmap, nullptr);
    EXPECT_EQ(mmap->nargs, 6);
    EXPECT_EQ(mmap->argBytes(1), 8u); // length is wide
    EXPECT_EQ(mmap->argBytes(2), 4u); // prot is an int
}

TEST(SyscallTable, ArgBytesBeyondNargsIsZero)
{
    const SyscallDesc *close = syscallByName("close");
    ASSERT_NE(close, nullptr);
    EXPECT_EQ(close->argBytes(0), 4u);
    EXPECT_EQ(close->argBytes(1), 0u);
    EXPECT_EQ(close->argBytes(5), 0u);
}

TEST(SyscallTable, PointerArgsAreEightBytes)
{
    for (const auto &desc : syscallTable()) {
        for (unsigned i = 0; i < desc.nargs; ++i) {
            if (desc.argIsPointer(i)) {
                EXPECT_EQ(desc.argBytes(i), 8u) << desc.name;
            }
        }
    }
}

TEST(SyscallTable, BitmaskExcludesPointerBytes)
{
    // Checked args contribute all eight register bytes (full 64-bit
    // comparison, like seccomp_data); pointer args contribute none.
    for (const auto &desc : syscallTable()) {
        uint64_t mask = desc.argumentBitmask();
        for (unsigned i = 0; i < kMaxSyscallArgs; ++i) {
            uint8_t argMask = (mask >> (i * 8)) & 0xff;
            if (i >= desc.nargs || desc.argIsPointer(i)) {
                EXPECT_EQ(argMask, 0) << desc.name << " arg " << i;
            } else {
                EXPECT_EQ(argMask, 0xff) << desc.name << " arg " << i;
            }
        }
    }
}

TEST(SyscallTable, BitmaskPopcountMatchesCheckedBytes)
{
    for (const auto &desc : syscallTable()) {
        EXPECT_EQ(static_cast<unsigned>(
                      std::popcount(desc.argumentBitmask())),
                  desc.checkedArgCount() * 8)
            << desc.name;
    }
}

TEST(SyscallTable, MasksFitWithinNargs)
{
    for (const auto &desc : syscallTable()) {
        EXPECT_LE(desc.nargs, 6) << desc.name;
        uint8_t beyond = 0xff << desc.nargs;
        EXPECT_EQ(desc.pointerMask & beyond, 0) << desc.name;
        EXPECT_EQ(desc.wideMask & beyond, 0) << desc.name;
        // An argument cannot be both a pointer and a wide scalar.
        EXPECT_EQ(desc.pointerMask & desc.wideMask, 0) << desc.name;
    }
}

TEST(SyscallTable, ScConstantsResolve)
{
    EXPECT_STREQ(syscallById(sc::openat)->name, "openat");
    EXPECT_STREQ(syscallById(sc::futex)->name, "futex");
    EXPECT_STREQ(syscallById(sc::personality)->name, "personality");
    EXPECT_STREQ(syscallById(sc::clone)->name, "clone");
    EXPECT_STREQ(syscallById(sc::epoll_wait)->name, "epoll_wait");
    EXPECT_STREQ(syscallById(sc::accept4)->name, "accept4");
    EXPECT_STREQ(syscallById(sc::mq_timedreceive)->name,
                 "mq_timedreceive");
}

TEST(SyscallTable, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &desc : syscallTable())
        EXPECT_TRUE(names.insert(desc.name).second) << desc.name;
}

} // namespace
} // namespace draco::os
