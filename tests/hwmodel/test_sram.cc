/**
 * @file
 * Tests for the analytic hardware cost model.
 */

#include <gtest/gtest.h>

#include "hwmodel/draco_costs.hh"
#include "hwmodel/sram.hh"

namespace draco::hwmodel {
namespace {

TEST(Sram, GeometryHelpers)
{
    SramGeometry g{256, 4, 20, 100};
    EXPECT_EQ(g.totalBits(), 256u * 120u);
    EXPECT_EQ(g.sets(), 64u);
}

TEST(Sram, AreaMonotoneInBits)
{
    SramGeometry small{64, 4, 20, 64};
    SramGeometry big{256, 4, 20, 64};
    EXPECT_LT(estimateSram(small).areaMm2, estimateSram(big).areaMm2);
}

TEST(Sram, LeakageMonotoneInBits)
{
    SramGeometry small{64, 4, 20, 64};
    SramGeometry big{512, 4, 20, 64};
    EXPECT_LT(estimateSram(small).leakageMw, estimateSram(big).leakageMw);
}

TEST(Sram, AccessSlowerWithMoreSets)
{
    SramGeometry small{64, 4, 20, 64};
    SramGeometry big{4096, 4, 20, 64};
    EXPECT_LT(estimateSram(small).accessPs, estimateSram(big).accessPs);
}

TEST(Sram, HigherAssocCostsArea)
{
    SramGeometry direct{256, 1, 20, 64};
    SramGeometry assoc{256, 8, 20, 64};
    EXPECT_LT(estimateSram(direct).areaMm2, estimateSram(assoc).areaMm2);
}

TEST(Sram, EnergyGrowsWithReadWidth)
{
    SramGeometry narrow{256, 2, 20, 32};
    SramGeometry wide{256, 2, 20, 400};
    EXPECT_LT(estimateSram(narrow).readEnergyPj,
              estimateSram(wide).readEnergyPj);
}

TEST(Crc, WiderDatapathCostsMore)
{
    EXPECT_LT(estimateCrcDatapath(64, 1).areaMm2,
              estimateCrcDatapath(64, 6).areaMm2);
    EXPECT_LT(estimateCrcDatapath(32, 4).areaMm2,
              estimateCrcDatapath(64, 4).areaMm2);
}

TEST(Table3, HasFourRows)
{
    auto rows = dracoTable3();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].name, "SPT");
    EXPECT_EQ(rows[1].name, "STB");
    EXPECT_EQ(rows[2].name, "SLB");
    EXPECT_EQ(rows[3].name, "CRC Hash");
}

TEST(Table3, CalibratedMatchesPaper)
{
    for (const auto &row : dracoTable3()) {
        EXPECT_NEAR(row.calibrated.areaMm2, row.paper.areaMm2,
                    row.paper.areaMm2 * 1e-9)
            << row.name;
        EXPECT_NEAR(row.calibrated.accessPs, row.paper.accessPs,
                    row.paper.accessPs * 1e-9)
            << row.name;
        EXPECT_NEAR(row.calibrated.readEnergyPj, row.paper.readEnergyPj,
                    row.paper.readEnergyPj * 1e-9)
            << row.name;
        EXPECT_NEAR(row.calibrated.leakageMw, row.paper.leakageMw,
                    row.paper.leakageMw * 1e-9)
            << row.name;
    }
}

TEST(Table3, PaperAnchorsAreTheMicro2020Numbers)
{
    auto rows = dracoTable3();
    EXPECT_DOUBLE_EQ(rows[0].paper.areaMm2, 0.0036);
    EXPECT_DOUBLE_EQ(rows[1].paper.areaMm2, 0.0063);
    EXPECT_DOUBLE_EQ(rows[2].paper.areaMm2, 0.01549);
    EXPECT_DOUBLE_EQ(rows[3].paper.accessPs, 964.0);
}

TEST(Table3, BaseEstimatesWithinAnOrderOfMagnitude)
{
    // The uncalibrated model should be physically plausible — within
    // roughly 10× of CACTI on every metric.
    for (const auto &row : dracoTable3()) {
        double ratio = row.paper.areaMm2 / row.base.areaMm2;
        EXPECT_GT(ratio, 0.1) << row.name;
        EXPECT_LT(ratio, 10.0) << row.name;
    }
}

TEST(Table3, TablesAccessWithinTwoCyclesAtTwoGhz)
{
    // §X-C: all structures are assigned 2-cycle access; the CRC gets 3.
    for (const auto &row : dracoTable3()) {
        unsigned cycles = cyclesFor(row.paper.accessPs, 2.0);
        if (row.name == "CRC Hash")
            EXPECT_EQ(cycles, 2u); // 964 ps -> ceil at 2 GHz
        else
            EXPECT_EQ(cycles, 1u);
    }
    // The paper conservatively uses 2 cycles for tables, 3 for CRC at
    // its higher-frequency design point; check that convention too.
    EXPECT_EQ(cyclesFor(964.0, 3.1), 3u);
    EXPECT_EQ(cyclesFor(131.61, 3.1), 1u);
}

TEST(SlbSweep, AreaScalesWithEntries)
{
    SramCosts half = scaledSlbCost(0.5);
    SramCosts full = scaledSlbCost(1.0);
    SramCosts quad = scaledSlbCost(4.0);
    EXPECT_LT(half.areaMm2, full.areaMm2);
    EXPECT_LT(full.areaMm2, quad.areaMm2);
    EXPECT_LT(half.leakageMw, full.leakageMw);
    EXPECT_LT(full.leakageMw, quad.leakageMw);
}

TEST(SlbSweep, UnitScaleMatchesPaper)
{
    SramCosts full = scaledSlbCost(1.0);
    EXPECT_NEAR(full.areaMm2, 0.01549, 1e-6);
    EXPECT_NEAR(full.accessPs, 112.75, 1e-3);
}

TEST(SlbGeometry, MatchesTableII)
{
    auto tables = slbGeometries();
    ASSERT_EQ(tables.size(), 7u); // 6 subtables + temporary buffer
    EXPECT_EQ(tables[0].entries, 32u);
    EXPECT_EQ(tables[1].entries, 64u);
    EXPECT_EQ(tables[2].entries, 64u);
    EXPECT_EQ(tables[5].entries, 16u);
    EXPECT_EQ(tables[6].entries, 8u);
    for (const auto &g : tables)
        EXPECT_EQ(g.ways, 4u);
}

} // namespace
} // namespace draco::hwmodel
