/**
 * @file
 * Adversarial wire-protocol tests: the decoders and the incremental
 * FrameParser against hostile bytes. Every message type survives
 * every truncation; forged element counts near kMaxBatchRequests are
 * rejected before any count-sized allocation; payloads decoded as the
 * wrong type fail cleanly (type confusion); and a deterministic
 * byte-flip fuzz over every encoding must never crash, hang, or
 * return success with out-of-range fields.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/wire.hh"

namespace draco::serve::wire {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t pc, uint64_t a0)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = pc;
    req.args[0] = a0;
    req.args[5] = ~a0;
    return req;
}

/** One representative encoding of every message type. */
std::vector<std::vector<uint8_t>>
allEncodings()
{
    std::vector<std::vector<uint8_t>> out;
    auto add = [&](const auto &msg) {
        std::vector<uint8_t> payload;
        encode(payload, msg);
        out.push_back(std::move(payload));
    };

    add(Hello{});
    HelloReply helloReply;
    helloReply.shards = 4;
    add(helloReply);

    CreateTenant create;
    create.name = "tenant-7";
    create.profile = "docker-default";
    create.maxInFlight = 256;
    create.filterCopies = 2;
    add(create);
    CreateTenantReply createReply;
    createReply.tenantId = 7;
    createReply.error = "no";
    add(createReply);

    CheckBatch batch;
    batch.batchId = 0x0123456789ABCDEFULL;
    batch.tenantId = 3;
    for (int i = 0; i < 5; ++i)
        batch.reqs.push_back(request(i, 0x400000 + i, i * 17));
    add(batch);
    CheckBatchReply batchReply;
    batchReply.batchId = 1;
    for (int i = 0; i < 5; ++i) {
        CheckResponse resp;
        resp.status = i % 2 ? CheckStatus::Denied : CheckStatus::Allowed;
        resp.path = static_cast<uint8_t>(i);
        resp.retryAfterUs = i * 1000;
        batchReply.resps.push_back(resp);
    }
    add(batchReply);

    TenantStatsReq statsReq;
    statsReq.tenantId = 3;
    add(statsReq);
    TenantStatsReply statsReply;
    statsReply.ok = true;
    statsReply.stats.name = "t3";
    statsReply.stats.allowed = 10;
    add(statsReply);

    EvictTenant evict;
    evict.tenantId = 3;
    add(evict);
    EvictTenantReply evictReply;
    evictReply.ok = true;
    add(evictReply);

    UpdateProfile update;
    update.tenantId = 3;
    update.profile = "gvisor";
    add(update);
    UpdateProfileReply updateReply;
    updateReply.ok = true;
    updateReply.epoch = 2;
    add(updateReply);

    std::vector<uint8_t> shutdown;
    encodeShutdown(shutdown);
    out.push_back(shutdown);
    std::vector<uint8_t> shutdownReply;
    encodeShutdownReply(shutdownReply);
    out.push_back(shutdownReply);
    return out;
}

/** Run @p payload through every decoder; none may crash. */
void
decodeAsEverything(const std::vector<uint8_t> &payload)
{
    { Hello out; decode(payload, out); }
    { HelloReply out; decode(payload, out); }
    { CreateTenant out; decode(payload, out); }
    { CreateTenantReply out; decode(payload, out); }
    { CheckBatch out; decode(payload, out); }
    { CheckBatchReply out; decode(payload, out); }
    { TenantStatsReq out; decode(payload, out); }
    { TenantStatsReply out; decode(payload, out); }
    { EvictTenant out; decode(payload, out); }
    { EvictTenantReply out; decode(payload, out); }
    { UpdateProfile out; decode(payload, out); }
    { UpdateProfileReply out; decode(payload, out); }
}

TEST(WireFuzz, EveryTruncationOfEveryTypeIsRejected)
{
    for (const auto &payload : allEncodings()) {
        // A truncated payload must fail whatever decoder it reaches
        // (the Shutdown pair has no fields, so only type-bearing
        // decoders apply — decodeAsEverything covers them all).
        for (size_t len = 0; len < payload.size(); ++len) {
            std::vector<uint8_t> cut(payload.begin(),
                                     payload.begin() + len);
            switch (peekType(payload)) {
              case MsgType::Hello: {
                Hello out;
                EXPECT_FALSE(decode(cut, out));
                break;
              }
              case MsgType::CheckBatch: {
                CheckBatch out;
                EXPECT_FALSE(decode(cut, out));
                break;
              }
              case MsgType::CheckBatchReply: {
                CheckBatchReply out;
                EXPECT_FALSE(decode(cut, out));
                break;
              }
              case MsgType::CreateTenant: {
                CreateTenant out;
                EXPECT_FALSE(decode(cut, out));
                break;
              }
              case MsgType::TenantStatsReply: {
                TenantStatsReply out;
                EXPECT_FALSE(decode(cut, out));
                break;
              }
              default:
                break;
            }
            decodeAsEverything(cut); // and nothing crashes
        }
    }
}

/**
 * Forged counts around kMaxBatchRequests: the decoder must reject a
 * count the payload cannot back *before* sizing any container by it,
 * so a 16-byte frame claiming 8192 requests costs nothing.
 */
TEST(WireFuzz, ForgedRequestCountsNearTheCapAreRejected)
{
    CheckBatch msg;
    msg.batchId = 1;
    msg.tenantId = 2;
    msg.reqs.push_back(request(1, 0x400000, 7));
    std::vector<uint8_t> payload;
    encode(payload, msg);
    // Layout: type u8 | batchId u64 | tenantId u32 | count u32.
    constexpr size_t kCountOffset = 1 + 8 + 4;
    ASSERT_GT(payload.size(), kCountOffset + 4);

    for (uint32_t forged :
         {kMaxBatchRequests - 1, kMaxBatchRequests, kMaxBatchRequests + 1,
          0x10000u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
        std::vector<uint8_t> evil = payload;
        std::memcpy(evil.data() + kCountOffset, &forged, sizeof(forged));
        CheckBatch out;
        EXPECT_FALSE(decode(evil, out)) << "count " << forged;
        // Reject means reject: nothing was handed to the caller.
        EXPECT_TRUE(out.reqs.empty()) << "count " << forged;
    }
}

TEST(WireFuzz, ForgedResponseCountsNearTheCapAreRejected)
{
    CheckBatchReply msg;
    msg.batchId = 1;
    CheckResponse resp;
    resp.status = CheckStatus::Allowed;
    msg.resps.push_back(resp);
    std::vector<uint8_t> payload;
    encode(payload, msg);
    // Layout: type u8 | batchId u64 | count u32.
    constexpr size_t kCountOffset = 1 + 8;
    ASSERT_GT(payload.size(), kCountOffset + 4);

    for (uint32_t forged :
         {kMaxBatchRequests, kMaxBatchRequests + 1, 0xFFFFFFFFu}) {
        std::vector<uint8_t> evil = payload;
        std::memcpy(evil.data() + kCountOffset, &forged, sizeof(forged));
        CheckBatchReply out;
        EXPECT_FALSE(decode(evil, out)) << "count " << forged;
        EXPECT_TRUE(out.resps.empty()) << "count " << forged;
    }
}

/** The biggest batch the protocol admits still round-trips exactly. */
TEST(WireFuzz, MaximalLegitimateBatchRoundTrips)
{
    CheckBatch msg;
    msg.batchId = 42;
    msg.tenantId = 1;
    msg.reqs.reserve(kMaxBatchRequests);
    for (uint32_t i = 0; i < kMaxBatchRequests; ++i)
        msg.reqs.push_back(request(static_cast<uint16_t>(i & 0x1FF),
                                   0x400000 + i, i));
    std::vector<uint8_t> payload;
    encode(payload, msg);
    ASSERT_LE(payload.size(), kMaxFrameBytes)
        << "a full batch must fit one frame";

    CheckBatch out;
    ASSERT_TRUE(decode(payload, out));
    ASSERT_EQ(out.reqs.size(), msg.reqs.size());
    EXPECT_EQ(out.reqs.back().pc, msg.reqs.back().pc);

    // One more request and the count check must trip.
    msg.reqs.push_back(request(0, 0, 0));
    payload.clear();
    encode(payload, msg);
    EXPECT_FALSE(decode(payload, out));
}

/** Every encoding fed to every wrong decoder: clean false, no crash. */
TEST(WireFuzz, TypeConfusionMatrixFailsCleanly)
{
    for (const auto &payload : allEncodings()) {
        const MsgType type = peekType(payload);
        { Hello out;
          EXPECT_EQ(decode(payload, out), type == MsgType::Hello); }
        { HelloReply out;
          EXPECT_EQ(decode(payload, out), type == MsgType::HelloReply); }
        { CreateTenant out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::CreateTenant); }
        { CreateTenantReply out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::CreateTenantReply); }
        { CheckBatch out;
          EXPECT_EQ(decode(payload, out), type == MsgType::CheckBatch); }
        { CheckBatchReply out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::CheckBatchReply); }
        { TenantStatsReq out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::TenantStatsReq); }
        { TenantStatsReply out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::TenantStatsReply); }
        { EvictTenant out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::EvictTenant); }
        { EvictTenantReply out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::EvictTenantReply); }
        { UpdateProfile out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::UpdateProfile); }
        { UpdateProfileReply out;
          EXPECT_EQ(decode(payload, out),
                    type == MsgType::UpdateProfileReply); }
    }
}

/**
 * Deterministic byte-flip fuzz: thousands of single- and multi-byte
 * corruptions of valid encodings. Decoders are total functions — any
 * outcome is fine except a crash, a hang, or success with fields the
 * protocol forbids.
 */
TEST(WireFuzz, SeededByteFlipsNeverCrashTheDecoders)
{
    uint64_t x = 0x9E3779B97F4A7C15ULL; // fixed seed: reproducible
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };

    for (const auto &payload : allEncodings()) {
        for (int round = 0; round < 500; ++round) {
            std::vector<uint8_t> mut = payload;
            const int flips = 1 + next() % 4;
            for (int f = 0; f < flips; ++f)
                mut[next() % mut.size()] ^=
                    static_cast<uint8_t>(1u << (next() % 8));
            decodeAsEverything(mut);

            // A corrupted CheckBatchReply that still decodes must
            // carry only in-range statuses — type confusion between
            // payload bytes and the status enum is not acceptable.
            CheckBatchReply reply;
            if (decode(mut, reply)) {
                for (const CheckResponse &resp : reply.resps)
                    EXPECT_LE(
                        static_cast<uint8_t>(resp.status),
                        static_cast<uint8_t>(CheckStatus::ShuttingDown));
            }
        }
    }
}

/**
 * FrameParser versus a dribbling peer: a stream of frames delivered
 * one byte at a time comes out intact and in order.
 */
TEST(WireFuzz, FrameParserReassemblesByteByByte)
{
    std::vector<uint8_t> stream;
    std::vector<std::vector<uint8_t>> sent;
    for (uint64_t b = 1; b <= 5; ++b) {
        CheckBatch msg;
        msg.batchId = b;
        msg.tenantId = 9;
        for (uint64_t i = 0; i < b; ++i)
            msg.reqs.push_back(request(1, 0x1000 * b, i));
        std::vector<uint8_t> payload;
        encode(payload, msg);
        ASSERT_TRUE(appendFrame(stream, payload));
        sent.push_back(std::move(payload));
    }

    FrameParser parser;
    std::vector<std::vector<uint8_t>> got;
    std::vector<uint8_t> frame;
    for (uint8_t byte : stream) {
        parser.append(&byte, 1);
        while (parser.next(frame) == FrameParser::Result::Frame)
            got.push_back(frame);
    }
    EXPECT_EQ(got, sent);
    EXPECT_FALSE(parser.corrupt());
    EXPECT_EQ(parser.buffered(), 0u);
}

/** An over-limit length prefix poisons the parser permanently. */
TEST(WireFuzz, FrameParserCorruptionIsSticky)
{
    FrameParser parser;
    const uint32_t evil = kMaxFrameBytes + 1;
    uint8_t prefix[4];
    std::memcpy(prefix, &evil, sizeof(prefix));
    parser.append(prefix, sizeof(prefix));

    std::vector<uint8_t> frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Corrupt);
    EXPECT_TRUE(parser.corrupt());

    // Even a perfectly valid frame afterwards cannot resynchronize:
    // the stream is dead, exactly what the server relies on.
    std::vector<uint8_t> good;
    encodeShutdown(good);
    std::vector<uint8_t> framed;
    ASSERT_TRUE(appendFrame(framed, good));
    parser.append(framed.data(), framed.size());
    EXPECT_EQ(parser.next(frame), FrameParser::Result::Corrupt);
}

/** Random garbage streams may desync but never crash the parser. */
TEST(WireFuzz, FrameParserSurvivesGarbageStreams)
{
    uint64_t x = 0xDEADBEEF12345678ULL;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };

    for (int round = 0; round < 50; ++round) {
        FrameParser parser;
        std::vector<uint8_t> frame;
        size_t fed = 0;
        while (fed < 4096 && !parser.corrupt()) {
            uint8_t chunk[64];
            const size_t n = 1 + next() % sizeof(chunk);
            for (size_t i = 0; i < n; ++i) {
                // Bias low bytes so some length prefixes are small
                // enough to parse as (garbage) frames.
                chunk[i] = static_cast<uint8_t>(
                    next() % ((round % 2) ? 4 : 256));
            }
            parser.append(chunk, n);
            fed += n;
            while (parser.next(frame) == FrameParser::Result::Frame)
                decodeAsEverything(frame);
        }
        // Buffering stays bounded by one frame + one chunk, corrupt
        // or not: garbage cannot make the parser hoard memory.
        EXPECT_LE(parser.buffered(), kMaxFrameBytes + sizeof(uint64_t) +
                                         64);
    }
}

} // namespace
} // namespace draco::serve::wire
