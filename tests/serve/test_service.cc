/**
 * @file
 * CheckService unit tests: tenant lifecycle, verdict correctness, FIFO
 * stats snapshots, eviction semantics, shutdown draining, and the
 * determinism contract — per-tenant verdict counts identical at every
 * shard count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/client.hh"
#include "serve/service.hh"
#include "support/metrics.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0, uint64_t pc = 0x1000)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = pc;
    req.args[0] = arg0;
    return req;
}

/** read: allowed unconditionally; write: allowed only to fd 1. */
seccomp::Profile
testProfile()
{
    seccomp::Profile profile("serve-test");
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    return profile;
}

/**
 * A deterministic request mix exercising allow, tuple-allow, tuple-deny
 * and unknown-syscall paths; @p seed varies the order per tenant.
 */
std::vector<os::SyscallRequest>
trafficMix(uint64_t seed, size_t n)
{
    std::vector<os::SyscallRequest> reqs;
    reqs.reserve(n);
    uint64_t x = seed * 2654435761u + 1;
    for (size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        switch ((x >> 33) % 4) {
          case 0:
            reqs.push_back(request(os::sc::read, x % 8));
            break;
          case 1:
            reqs.push_back(request(os::sc::write, 1));
            break;
          case 2:
            reqs.push_back(request(os::sc::write, 2)); // denied tuple
            break;
          default:
            reqs.push_back(request(os::sc::openat)); // not in profile
            break;
        }
    }
    return reqs;
}

TEST(CheckService, ChecksVerdictsAgainstTheProfile)
{
    ServiceOptions options;
    options.shards = 2;
    CheckService service(options);
    TenantId id = service.createTenant("a", testProfile());
    ASSERT_NE(id, kInvalidTenant);

    EXPECT_EQ(service.check(id, request(os::sc::read)).status,
              CheckStatus::Allowed);
    EXPECT_EQ(service.check(id, request(os::sc::write, 1)).status,
              CheckStatus::Allowed);
    EXPECT_EQ(service.check(id, request(os::sc::write, 2)).status,
              CheckStatus::Denied);
    EXPECT_EQ(service.check(id, request(os::sc::openat)).status,
              CheckStatus::Denied);
    EXPECT_EQ(service.totalChecks(), 4u);
    EXPECT_GT(service.maxShardBusyNs(), 0.0);
}

TEST(CheckService, CreateTenantIsIdempotentByName)
{
    CheckService service;
    TenantId a = service.createTenant("a", testProfile());
    TenantId b = service.createTenant("b", testProfile());
    EXPECT_NE(a, kInvalidTenant);
    EXPECT_NE(b, kInvalidTenant);
    EXPECT_NE(a, b);
    EXPECT_EQ(service.createTenant("a", testProfile()), a);
    EXPECT_EQ(service.findTenant("b"), b);
    EXPECT_EQ(service.findTenant("nope"), kInvalidTenant);
}

TEST(CheckService, TenantTableCapacityIsEnforced)
{
    ServiceOptions options;
    options.maxTenants = 2;
    CheckService service(options);
    EXPECT_NE(service.createTenant("a", testProfile()), kInvalidTenant);
    EXPECT_NE(service.createTenant("b", testProfile()), kInvalidTenant);
    EXPECT_EQ(service.createTenant("c", testProfile()), kInvalidTenant);
}

TEST(CheckService, UnknownTenantRejectsImmediately)
{
    CheckService service;
    CheckResponse resp = service.check(42, request(os::sc::read));
    EXPECT_EQ(resp.status, CheckStatus::UnknownTenant);
}

TEST(CheckService, SubmitBatchFillsEveryResponseSlot)
{
    CheckService service;
    TenantId id = service.createTenant("a", testProfile());
    std::vector<os::SyscallRequest> reqs = trafficMix(1, 256);
    std::vector<CheckResponse> resps(reqs.size());
    Batch batch;
    service.submitBatch(id, reqs.data(),
                        static_cast<uint32_t>(reqs.size()),
                        resps.data(), batch);
    batch.wait();
    for (const CheckResponse &resp : resps)
        EXPECT_TRUE(resp.status == CheckStatus::Allowed ||
                    resp.status == CheckStatus::Denied);
}

TEST(CheckService, EmptySubmitCompletesImmediately)
{
    CheckService service;
    TenantId id = service.createTenant("a", testProfile());
    Batch batch;
    service.submitBatch(id, nullptr, 0, nullptr, batch);
    EXPECT_TRUE(batch.done());
}

TEST(CheckService, TenantStatsSnapshotIsFifoExact)
{
    CheckService service;
    TenantId id = service.createTenant("a", testProfile());
    std::vector<os::SyscallRequest> reqs = trafficMix(2, 100);
    std::vector<CheckResponse> resps(reqs.size());
    Batch batch;
    service.submitBatch(id, reqs.data(),
                        static_cast<uint32_t>(reqs.size()),
                        resps.data(), batch);

    // The Stats op is enqueued behind the check batch on the same
    // shard, so the snapshot sees exactly those 100 requests even
    // though we never waited for the batch ourselves.
    TenantStats stats;
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_EQ(stats.allowed + stats.denied, 100u);
    EXPECT_EQ(stats.check.checks, 100u);
    EXPECT_EQ(stats.rejects, 0u);
    EXPECT_EQ(stats.name, "a");
    EXPECT_FALSE(stats.evicted);
    EXPECT_GT(stats.busyNs, 0.0);
    EXPECT_TRUE(batch.done());
}

TEST(CheckService, VerdictCountsIdenticalAtEveryShardCount)
{
    constexpr unsigned kTenants = 8;
    std::vector<std::vector<os::SyscallRequest>> traffic;
    for (unsigned t = 0; t < kTenants; ++t)
        traffic.push_back(trafficMix(100 + t, 400));

    std::vector<std::pair<uint64_t, uint64_t>> baseline;
    for (unsigned shards : {1u, 2u, 4u}) {
        ServiceOptions options;
        options.shards = shards;
        CheckService service(options);
        std::vector<TenantId> ids;
        for (unsigned t = 0; t < kTenants; ++t)
            ids.push_back(service.createTenant("t" + std::to_string(t),
                                               testProfile()));

        std::vector<std::vector<CheckResponse>> resps(kTenants);
        std::vector<std::unique_ptr<Batch>> batches;
        for (unsigned t = 0; t < kTenants; ++t) {
            resps[t].resize(traffic[t].size());
            batches.push_back(std::make_unique<Batch>());
            service.submitBatch(
                ids[t], traffic[t].data(),
                static_cast<uint32_t>(traffic[t].size()),
                resps[t].data(), *batches[t]);
        }
        for (auto &batch : batches)
            batch->wait();

        std::vector<std::pair<uint64_t, uint64_t>> verdicts;
        for (unsigned t = 0; t < kTenants; ++t) {
            TenantStats stats;
            ASSERT_TRUE(service.tenantStats(ids[t], stats));
            verdicts.emplace_back(stats.allowed, stats.denied);
            EXPECT_EQ(stats.allowed + stats.denied, traffic[t].size());
        }
        if (baseline.empty())
            baseline = verdicts;
        else
            EXPECT_EQ(verdicts, baseline) << shards << " shards";
        EXPECT_EQ(service.totalRejects(), 0u);
    }
}

TEST(CheckService, EvictedTenantRejectsNewWorkButReportsStats)
{
    CheckService service;
    TenantId id = service.createTenant("a", testProfile());
    EXPECT_EQ(service.check(id, request(os::sc::read)).status,
              CheckStatus::Allowed);

    ASSERT_TRUE(service.evictTenant(id));
    EXPECT_FALSE(service.evictTenant(id)); // already evicted
    EXPECT_EQ(service.check(id, request(os::sc::read)).status,
              CheckStatus::UnknownTenant);

    TenantStats stats;
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_TRUE(stats.evicted);
    EXPECT_EQ(stats.allowed, 1u);

    // The name is free for reuse; the new tenant gets a fresh id.
    TenantId fresh = service.createTenant("a", testProfile());
    EXPECT_NE(fresh, kInvalidTenant);
    EXPECT_NE(fresh, id);
}

TEST(CheckService, StopDrainsThenRejectsWithShuttingDown)
{
    CheckService service;
    TenantId id = service.createTenant("a", testProfile());
    std::vector<os::SyscallRequest> reqs = trafficMix(3, 200);
    std::vector<CheckResponse> resps(reqs.size());
    Batch batch;
    service.submitBatch(id, reqs.data(),
                        static_cast<uint32_t>(reqs.size()),
                        resps.data(), batch);
    service.stop();
    EXPECT_TRUE(batch.done());
    // Everything accepted before stop() drained to a real verdict.
    for (const CheckResponse &resp : resps)
        EXPECT_TRUE(resp.status == CheckStatus::Allowed ||
                    resp.status == CheckStatus::Denied);

    CheckResponse late = service.check(id, request(os::sc::read));
    EXPECT_EQ(late.status, CheckStatus::ShuttingDown);
    EXPECT_EQ(service.createTenant("late", testProfile()),
              kInvalidTenant);
}

TEST(CheckService, LocalClientRoundTrips)
{
    CheckService service;
    LocalClient client(service);
    TenantId id = client.createTenant("a", "docker-default");
    ASSERT_NE(id, kInvalidTenant);
    EXPECT_EQ(client.createTenant("bad", "no-such-profile"),
              kInvalidTenant);

    os::SyscallRequest req = request(os::sc::read);
    CheckResponse resp;
    ASSERT_TRUE(client.checkBatch(id, &req, 1, &resp));
    EXPECT_EQ(resp.status, CheckStatus::Allowed);

    TenantStats stats;
    ASSERT_TRUE(client.tenantStats(id, stats));
    EXPECT_EQ(stats.allowed, 1u);
    EXPECT_TRUE(client.evictTenant(id));
}

TEST(CheckService, ExportMetricsMatchesCounters)
{
    ServiceOptions options;
    options.shards = 2;
    CheckService service(options);
    TenantId id = service.createTenant("a", testProfile());
    for (int i = 0; i < 10; ++i)
        service.check(id, request(os::sc::read));
    service.stop();

    MetricRegistry registry;
    service.exportMetrics(registry);
    EXPECT_EQ(registry.counterValue("serve.checks"), 10u);
    EXPECT_EQ(registry.counterValue("serve.shard_count"), 2u);
    EXPECT_EQ(registry.counterValue("serve.rejects.total"), 0u);
    EXPECT_EQ(registry.counterValue("serve.tenants.count"), 1u);
    EXPECT_EQ(registry.counterValue("serve.tenants.a.allowed"), 10u);
    EXPECT_GT(registry.gaugeValue("serve.modeled_qps"), 0.0);
}

} // namespace
} // namespace draco::serve
