/**
 * @file
 * Admission-control tests: the per-tenant in-flight cap and the bounded
 * shard queue both shed deterministically with Overloaded + a sane
 * retry-after hint, rejects are attributed, and control-plane ops
 * (stats, evict) are never shed.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/service.hh"
#include "support/metrics.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
readRequest()
{
    os::SyscallRequest req;
    req.sid = os::sc::read;
    req.pc = 0x1000;
    return req;
}

seccomp::Profile
allowReadProfile()
{
    seccomp::Profile profile("bp-test");
    profile.allow(os::sc::read);
    return profile;
}

TEST(Backpressure, TenantCapShedsTheWholeOverflowingBatch)
{
    ServiceOptions options;
    options.queueCapacity = 4096;
    CheckService service(options);
    TenantOptions tenantOptions;
    tenantOptions.maxInFlight = 4;
    TenantId id =
        service.createTenant("a", allowReadProfile(), tenantOptions);

    // A single submit larger than the cap can never be admitted, so the
    // shed is deterministic: no race against the worker draining.
    std::vector<os::SyscallRequest> reqs(8, readRequest());
    std::vector<CheckResponse> resps(reqs.size());
    Batch batch;
    service.submitBatch(id, reqs.data(),
                        static_cast<uint32_t>(reqs.size()),
                        resps.data(), batch);
    EXPECT_TRUE(batch.done()); // shed completes inline, never blocks
    for (const CheckResponse &resp : resps) {
        EXPECT_EQ(resp.status, CheckStatus::Overloaded);
        EXPECT_GE(resp.retryAfterUs, 1u);
        EXPECT_LE(resp.retryAfterUs, 100000u);
    }

    TenantStats stats;
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_EQ(stats.rejects, 8u);
    EXPECT_EQ(stats.allowed + stats.denied, 0u);
    EXPECT_EQ(service.totalRejects(), 8u);
    EXPECT_EQ(service.totalChecks(), 0u);
}

TEST(Backpressure, BoundedQueueShedsBatchesBeyondCapacity)
{
    ServiceOptions options;
    options.queueCapacity = 8;
    CheckService service(options);
    TenantOptions tenantOptions;
    tenantOptions.maxInFlight = 1024; // cap out of the way
    TenantId id =
        service.createTenant("a", allowReadProfile(), tenantOptions);

    // 9 requests can never fit an 8-request queue, even empty: the
    // queue, not the tenant cap, does the shedding.
    std::vector<os::SyscallRequest> reqs(9, readRequest());
    std::vector<CheckResponse> resps(reqs.size());
    Batch batch;
    service.submitBatch(id, reqs.data(),
                        static_cast<uint32_t>(reqs.size()),
                        resps.data(), batch);
    EXPECT_TRUE(batch.done());
    for (const CheckResponse &resp : resps)
        EXPECT_EQ(resp.status, CheckStatus::Overloaded);

    service.stop();
    MetricRegistry registry;
    service.exportMetrics(registry);
    EXPECT_EQ(registry.counterValue("serve.rejects.queue_full"), 9u);
    EXPECT_EQ(registry.counterValue("serve.rejects.total"), 9u);
    EXPECT_EQ(registry.counterValue("serve.checks"), 0u);

    // A fitting batch on a fresh service passes the same gate.
    CheckService ok(options);
    TenantId id2 = ok.createTenant("a", allowReadProfile(),
                                   tenantOptions);
    std::vector<CheckResponse> okResps(8);
    Batch okBatch;
    ok.submitBatch(id2, reqs.data(), 8, okResps.data(), okBatch);
    okBatch.wait();
    for (const CheckResponse &resp : okResps)
        EXPECT_EQ(resp.status, CheckStatus::Allowed);
}

TEST(Backpressure, ControlOpsBypassTheQueueBound)
{
    ServiceOptions options;
    options.queueCapacity = 1;
    CheckService service(options);
    TenantId id = service.createTenant("a", allowReadProfile());

    // Stats and evict must stay serviceable no matter how small the
    // data-plane budget is.
    TenantStats stats;
    EXPECT_TRUE(service.tenantStats(id, stats));
    EXPECT_TRUE(service.evictTenant(id));
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_TRUE(stats.evicted);
}

TEST(Backpressure, OpenLoopFloodShedsButNeverLosesAccounting)
{
    ServiceOptions options;
    options.queueCapacity = 64;
    CheckService service(options);
    TenantOptions tenantOptions;
    tenantOptions.maxInFlight = 32;
    TenantId id =
        service.createTenant("a", allowReadProfile(), tenantOptions);

    // Fire far more than the caps admit without ever waiting; every
    // request must resolve to exactly one of {verdict, Overloaded}.
    constexpr int kBatches = 200;
    constexpr uint32_t kPerBatch = 16;
    std::vector<os::SyscallRequest> reqs(kPerBatch, readRequest());
    std::vector<std::vector<CheckResponse>> resps(
        kBatches, std::vector<CheckResponse>(kPerBatch));
    std::vector<std::unique_ptr<Batch>> batches;
    for (int b = 0; b < kBatches; ++b) {
        batches.push_back(std::make_unique<Batch>());
        service.submitBatch(id, reqs.data(), kPerBatch,
                            resps[b].data(), *batches[b]);
    }
    for (auto &batch : batches)
        batch->wait();
    service.stop();

    uint64_t verdicts = 0;
    uint64_t overloaded = 0;
    for (const auto &group : resps) {
        for (const CheckResponse &resp : group) {
            if (resp.status == CheckStatus::Allowed)
                ++verdicts;
            else if (resp.status == CheckStatus::Overloaded)
                ++overloaded;
            else
                FAIL() << "unexpected status "
                       << checkStatusName(resp.status);
        }
    }
    EXPECT_EQ(verdicts + overloaded,
              static_cast<uint64_t>(kBatches) * kPerBatch);
    EXPECT_EQ(service.totalChecks(), verdicts);
    EXPECT_EQ(service.totalRejects(), overloaded);
    TenantStats stats;
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_EQ(stats.allowed, verdicts);
    EXPECT_EQ(stats.rejects, overloaded);
}

TEST(Backpressure, SubmitAfterStopIsShuttingDown)
{
    CheckService service;
    TenantId id = service.createTenant("a", allowReadProfile());
    service.stop();
    os::SyscallRequest req = readRequest();
    CheckResponse resp;
    Batch batch;
    service.submitBatch(id, &req, 1, &resp, batch);
    EXPECT_TRUE(batch.done());
    EXPECT_EQ(resp.status, CheckStatus::ShuttingDown);
    EXPECT_EQ(resp.retryAfterUs, 0u);
}

} // namespace
} // namespace draco::serve
