/**
 * @file
 * SocketServer lifecycle tests: the regressions behind the event-loop
 * rewrite. Shutdown under pipelined load must terminate (the old
 * design could lose the writer wakeup and hang); connect/disconnect
 * churn must return the process to its fd baseline (connections were
 * leaked until shutdown); a peer that vanishes with replies in flight
 * must be reaped, not left a zombie; a half-closed client must still
 * receive every in-flight reply; and the per-tenant verdict
 * fingerprint must be identical over TCP and the Unix socket.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = 0x1000;
    req.args[0] = arg0;
    return req;
}

/** Deterministic allow/deny/unknown mix, order varied by @p seed. */
std::vector<os::SyscallRequest>
trafficMix(uint64_t seed, size_t n)
{
    std::vector<os::SyscallRequest> reqs;
    reqs.reserve(n);
    uint64_t x = seed * 2654435761u + 1;
    for (size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        switch ((x >> 33) % 3) {
          case 0:
            reqs.push_back(request(os::sc::read, x % 8));
            break;
          case 1:
            reqs.push_back(request(os::sc::write, (x >> 8) % 3));
            break;
          default:
            reqs.push_back(request(os::sc::openat));
            break;
        }
    }
    return reqs;
}

/** A per-test Unix socket path that parallel test runs cannot share. */
std::string
socketPath(const char *tag)
{
    return "/tmp/draco_test_" + std::to_string(getpid()) + "_" + tag +
           ".sock";
}

size_t
openFdCount()
{
    DIR *dir = opendir("/proc/self/fd");
    if (dir == nullptr)
        return 0;
    size_t n = 0;
    while (readdir(dir) != nullptr)
        ++n;
    closedir(dir);
    return n;
}

/** Spin until @p cond holds or ~5s pass. @return cond's final value. */
template <typename Cond>
bool
eventually(Cond cond)
{
    for (int i = 0; i < 1000; ++i) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/**
 * The lost-wakeup regression: stopping the server while clients have
 * batches in flight must neither hang nor crash, every iteration.
 * Repeated because the original race (a reply enqueued between the
 * writer's last queue check and its shutdown check) was timing-
 * dependent; under TSan this is also the teardown-ordering stress.
 */
TEST(SocketServer, ShutdownUnderPipelinedLoadTerminates)
{
    const std::string path = socketPath("shutload");
    const auto reqs = trafficMix(1, 64);

    for (int round = 0; round < 8; ++round) {
        CheckService service;
        SocketServer server(service, path);
        ASSERT_TRUE(server.start());

        constexpr unsigned kClients = 4;
        std::atomic<uint64_t> answered{0};
        std::vector<std::thread> clients;
        for (unsigned c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                auto client = SocketClient::connect(path);
                if (!client)
                    return;
                TenantId id = client->createTenant(
                    "t" + std::to_string(c), "docker-default");
                if (id == kInvalidTenant)
                    return;
                std::vector<CheckResponse> resps(reqs.size());
                // Hammer until the server goes away under us.
                while (client->checkBatch(
                    id, reqs.data(), static_cast<uint32_t>(reqs.size()),
                    resps.data())) {
                    answered.fetch_add(reqs.size());
                }
            });
        }

        // Let the load build, then yank the server mid-flight.
        while (answered.load() < reqs.size())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        server.requestStop();
        server.stop();
        for (std::thread &client : clients)
            client.join();

        EXPECT_EQ(server.activeConnections(), 0u) << "round " << round;
        EXPECT_EQ(server.connectionsAccepted(),
                  server.connectionsReaped())
            << "round " << round;
        service.stop();
    }
}

/**
 * The connection-leak regression: churning connections must free each
 * one at disconnect, not park it until server shutdown. Both the
 * server's own accounting and the process fd table must return to
 * baseline while the server keeps running.
 */
TEST(SocketServer, ConnectionChurnReturnsToTheFdBaseline)
{
    const std::string path = socketPath("churn");
    CheckService service;
    SocketServer server(service, path);
    ASSERT_TRUE(server.start());

    // One throwaway connection first so any lazily created fds
    // (tenant state, logging) do not pollute the baseline.
    { auto warm = SocketClient::connect(path); ASSERT_NE(warm, nullptr); }
    ASSERT_TRUE(eventually(
        [&] { return server.activeConnections() == 0; }));
    const size_t fdBaseline = openFdCount();
    const uint64_t reapedBaseline = server.connectionsReaped();

    constexpr int kChurn = 50;
    const auto reqs = trafficMix(2, 16);
    for (int i = 0; i < kChurn; ++i) {
        auto client = SocketClient::connect(path);
        ASSERT_NE(client, nullptr);
        if (i % 2 == 0) {
            // Half the churn does real work before vanishing.
            TenantId id = client->createTenant("churn", "docker-default");
            ASSERT_NE(id, kInvalidTenant);
            std::vector<CheckResponse> resps(reqs.size());
            ASSERT_TRUE(client->checkBatch(
                id, reqs.data(), static_cast<uint32_t>(reqs.size()),
                resps.data()));
        }
    }

    ASSERT_TRUE(eventually(
        [&] { return server.activeConnections() == 0; }))
        << server.activeConnections() << " connections never reaped";
    EXPECT_EQ(server.connectionsReaped() - reapedBaseline,
              static_cast<uint64_t>(kChurn));
    // The fd table is back where it started: nothing leaked. Exact
    // equality, not slack — every churned fd must be gone.
    EXPECT_EQ(openFdCount(), fdBaseline);
    server.stop();
    service.stop();
}

/**
 * The zombie-connection regression: a peer that disappears while its
 * replies are still being produced (so the server's write fails or
 * its read sees a reset) must be fully reaped, never left half-dead
 * with a closed writer and a live reader.
 */
TEST(SocketServer, VanishingPeerWithRepliesInFlightIsReaped)
{
    const std::string path = socketPath("vanish");
    CheckService service;
    SocketServer server(service, path);
    ASSERT_TRUE(server.start());

    auto admin = SocketClient::connect(path);
    ASSERT_NE(admin, nullptr);
    TenantId id = admin->createTenant("vanish", "docker-default");
    ASSERT_NE(id, kInvalidTenant);

    const auto reqs = trafficMix(3, 256);
    for (int i = 0; i < 10; ++i) {
        auto victim = SocketClient::connect(path);
        ASSERT_NE(victim, nullptr);
        // Pipeline several batches raw, then slam the socket shut
        // without reading a single reply.
        for (uint64_t b = 1; b <= 4; ++b) {
            wire::CheckBatch msg;
            msg.batchId = b;
            msg.tenantId = id;
            msg.reqs = reqs;
            std::vector<uint8_t> payload;
            wire::encode(payload, msg);
            ASSERT_TRUE(wire::writeFrame(victim->fd(), payload));
        }
        victim.reset(); // close(2) with ~16k response bytes in flight
    }

    ASSERT_TRUE(eventually(
        [&] { return server.activeConnections() == 1; }))
        << server.activeConnections()
        << " connections alive (want only the admin client)";

    // The server is still healthy for the surviving connection.
    std::vector<CheckResponse> resps(reqs.size());
    EXPECT_TRUE(admin->checkBatch(id, reqs.data(),
                                  static_cast<uint32_t>(reqs.size()),
                                  resps.data()));
    server.stop();
    service.stop();
}

/**
 * Half-close drain: a client that shuts down its write side after
 * pipelining batches must still receive every reply, then a clean
 * EOF once the server reaps the drained connection.
 */
TEST(SocketServer, HalfClosedClientReceivesInFlightReplies)
{
    const std::string path = socketPath("halfclose");
    CheckService service;
    SocketServer server(service, path);
    ASSERT_TRUE(server.start());

    auto admin = SocketClient::connect(path);
    ASSERT_NE(admin, nullptr);
    TenantId id = admin->createTenant("half", "docker-default");
    ASSERT_NE(id, kInvalidTenant);

    auto client = SocketClient::connect(path);
    ASSERT_NE(client, nullptr);
    const auto reqs = trafficMix(4, 32);
    constexpr uint64_t kBatches = 8;
    for (uint64_t b = 1; b <= kBatches; ++b) {
        wire::CheckBatch msg;
        msg.batchId = b;
        msg.tenantId = id;
        msg.reqs = reqs;
        std::vector<uint8_t> payload;
        wire::encode(payload, msg);
        ASSERT_TRUE(wire::writeFrame(client->fd(), payload));
    }
    ASSERT_EQ(shutdown(client->fd(), SHUT_WR), 0);

    // Every pipelined batch still answers, in some order.
    uint64_t seen = 0;
    for (uint64_t b = 1; b <= kBatches; ++b) {
        std::vector<uint8_t> payload;
        ASSERT_TRUE(wire::readFrame(client->fd(), payload))
            << "reply " << b << " never arrived";
        wire::CheckBatchReply reply;
        ASSERT_TRUE(wire::decode(payload, reply));
        ASSERT_EQ(reply.resps.size(), reqs.size());
        ASSERT_GE(reply.batchId, 1u);
        ASSERT_LE(reply.batchId, kBatches);
        seen |= 1ULL << reply.batchId;
    }
    EXPECT_EQ(seen, ((1ULL << kBatches) - 1) << 1);

    // ...then EOF: the server drained and reaped the connection.
    std::vector<uint8_t> payload;
    EXPECT_FALSE(wire::readFrame(client->fd(), payload));
    ASSERT_TRUE(eventually(
        [&] { return server.activeConnections() == 1; }));
    server.stop();
    service.stop();
}

/** A Shutdown frame stops the whole server, unblocking wait(). */
TEST(SocketServer, ShutdownFrameStopsTheServer)
{
    const std::string path = socketPath("shutframe");
    CheckService service;
    SocketServer server(service, path);
    ASSERT_TRUE(server.start());
    EXPECT_FALSE(server.stopRequested());

    std::thread waiter([&] { server.wait(); });
    auto client = SocketClient::connect(path);
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->shutdownServer());
    waiter.join(); // hangs here if the frame did not stop the server
    EXPECT_TRUE(server.stopRequested());
    server.stop();
    service.stop();
}

/**
 * Transport equivalence: the per-tenant verdict fingerprint (allowed,
 * denied counts) must be byte-identical whether batches travel over
 * the Unix socket or TCP — the transport must never reorder, drop, or
 * duplicate a tenant's requests.
 */
TEST(SocketServer, TcpAndUnixVerdictFingerprintsMatch)
{
    constexpr unsigned kTenants = 4;
    constexpr size_t kReqs = 512;

    // fingerprints[transport][tenant] = (allowed, denied)
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> fingerprints;
    for (int transport = 0; transport < 2; ++transport) {
        CheckService service;
        ServerOptions options;
        if (transport == 0)
            options.socketPath = socketPath("fingerprint");
        else
            options.tcpAddress = "127.0.0.1:0";
        SocketServer server(service, options);
        ASSERT_TRUE(server.start());

        auto client =
            transport == 0
                ? SocketClient::connect(options.socketPath)
                : SocketClient::connectTcp(
                      "127.0.0.1:" + std::to_string(server.tcpPort()));
        ASSERT_NE(client, nullptr);

        std::vector<std::pair<uint64_t, uint64_t>> verdicts;
        for (unsigned t = 0; t < kTenants; ++t) {
            TenantId id = client->createTenant("t" + std::to_string(t),
                                               "docker-default");
            ASSERT_NE(id, kInvalidTenant);
            const auto reqs = trafficMix(100 + t, kReqs);
            std::vector<CheckResponse> resps(kReqs);
            ASSERT_TRUE(client->checkBatch(
                id, reqs.data(), static_cast<uint32_t>(kReqs),
                resps.data()));
            TenantStats stats;
            ASSERT_TRUE(client->tenantStats(id, stats));
            EXPECT_EQ(stats.allowed + stats.denied, kReqs);
            verdicts.emplace_back(stats.allowed, stats.denied);
        }
        fingerprints.push_back(std::move(verdicts));
        server.stop();
        service.stop();
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

/**
 * The control-plane stats op over the socket: a capped service's
 * lifecycle gauges arrive at the client intact.
 */
TEST(SocketServer, ServiceStatsOverTheSocket)
{
    ServiceOptions serviceOptions;
    serviceOptions.maxResidentTenants = 1;
    CheckService service(serviceOptions);
    const std::string path = socketPath("svcstats");
    SocketServer server(service, path);
    ASSERT_TRUE(server.start());

    auto client = SocketClient::connect(path);
    ASSERT_NE(client, nullptr);
    TenantId a = client->createTenant("a", "docker-default");
    TenantId b = client->createTenant("b", "docker-default");
    ASSERT_NE(a, kInvalidTenant);
    ASSERT_NE(b, kInvalidTenant);
    // Touching both under a cap of 1 forces one eviction.
    const auto reqs = trafficMix(1, 32);
    std::vector<CheckResponse> resps(reqs.size());
    ASSERT_TRUE(client->checkBatch(
        a, reqs.data(), static_cast<uint32_t>(reqs.size()),
        resps.data()));
    ASSERT_TRUE(client->checkBatch(
        b, reqs.data(), static_cast<uint32_t>(reqs.size()),
        resps.data()));

    ServiceStatsSnapshot stats;
    ASSERT_TRUE(client->serviceStats(stats));
    EXPECT_EQ(stats.tenants, 2u);
    EXPECT_EQ(stats.resident, 1u);
    EXPECT_EQ(stats.snapshotted, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.dedupPolicies, 1u);
    EXPECT_EQ(stats.dedupHits, 1u);
    EXPECT_GT(stats.storeBytes, 0u);
    EXPECT_EQ(stats.checks, 2 * reqs.size());
    server.stop();
    service.stop();
}

/** Both listeners at once: one service, either doorway. */
TEST(SocketServer, ServesUnixAndTcpSimultaneously)
{
    CheckService service;
    ServerOptions options;
    options.socketPath = socketPath("dual");
    options.tcpAddress = "127.0.0.1:0";
    SocketServer server(service, options);
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.tcpPort(), 0);

    auto unixClient = SocketClient::connect(options.socketPath);
    auto tcpClient = SocketClient::connectTcp(
        "127.0.0.1:" + std::to_string(server.tcpPort()));
    ASSERT_NE(unixClient, nullptr);
    ASSERT_NE(tcpClient, nullptr);

    // Same tenant namespace: create over Unix, check over TCP.
    TenantId id = unixClient->createTenant("dual", "docker-default");
    ASSERT_NE(id, kInvalidTenant);
    const auto reqs = trafficMix(5, 64);
    std::vector<CheckResponse> resps(reqs.size());
    EXPECT_TRUE(tcpClient->checkBatch(
        id, reqs.data(), static_cast<uint32_t>(reqs.size()),
        resps.data()));
    server.stop();
    service.stop();
}

} // namespace
} // namespace draco::serve
