/**
 * @file
 * Live policy hot-swap tests: the swap boundary is exact (old policy
 * up to the swap point, new policy after), the VAT restarts cold under
 * the new epoch while lifetime counters carry over, a snapshot taken
 * under a retired epoch fails closed to the new policy, concurrent
 * swap storms stay consistent with per-epoch reference evaluation
 * (this file runs under the TSan CI job), verdict streams are
 * shard-count invariant with swaps in flight, and UpdateProfile works
 * end to end over the wire.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/software.hh"
#include "lifecycle/store.hh"
#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "support/metrics.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0, uint64_t pc = 0x1000)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = pc;
    req.args[0] = arg0;
    return req;
}

/** write allowed only to fd 1 (plus unconditional read). */
seccomp::Profile
profileFd1()
{
    seccomp::Profile profile("hotswap-fd1");
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    return profile;
}

/** write allowed to fds 1 and 2. */
seccomp::Profile
profileFd12()
{
    seccomp::Profile profile("hotswap-fd12");
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    profile.allowTuple(os::sc::write, {2, 0, 0, 0, 0, 0});
    return profile;
}

/** read only: every write denied. */
seccomp::Profile
profileReadOnly()
{
    seccomp::Profile profile("hotswap-ro");
    profile.allow(os::sc::read);
    return profile;
}

TEST(HotSwap, SwapChangesVerdictsAtTheBoundary)
{
    CheckService service;
    TenantId id = service.createTenant("t", profileFd1());
    ASSERT_NE(id, kInvalidTenant);

    CheckResponse before = service.check(id, request(os::sc::write, 1));
    EXPECT_EQ(before.status, CheckStatus::Allowed);
    EXPECT_EQ(before.epoch, 1u);

    uint64_t epoch = 0;
    ASSERT_TRUE(service.swapProfile(id, profileReadOnly(), &epoch));
    EXPECT_EQ(epoch, 2u);

    // swapProfile returns only after the owning worker published the
    // new epoch, so the very next check is already under it.
    CheckResponse after = service.check(id, request(os::sc::write, 1));
    EXPECT_EQ(after.status, CheckStatus::Denied);
    EXPECT_EQ(after.epoch, 2u);
    CheckResponse read = service.check(id, request(os::sc::read));
    EXPECT_EQ(read.status, CheckStatus::Allowed);

    TenantStats stats;
    ASSERT_TRUE(service.tenantStats(id, stats));
    EXPECT_EQ(stats.epoch, 2u);
    EXPECT_EQ(stats.swaps, 1u);
    EXPECT_EQ(stats.allowed, 2u);
    EXPECT_EQ(stats.denied, 1u);

    ServiceStatsSnapshot svc;
    service.serviceStats(svc);
    EXPECT_EQ(svc.policySwaps, 1u);
    EXPECT_EQ(svc.policySwapFailures, 0u);
    EXPECT_EQ(svc.maxEpoch, 2u);
}

TEST(HotSwap, SwapInvalidatesTheVatButKeepsLifetimeCounters)
{
    CheckService service;
    TenantId id = service.createTenant("t", profileFd1());
    ASSERT_NE(id, kInvalidTenant);

    // Warm the VAT: the first argument-checked write runs the filter
    // and inserts; repeats hit the cached verdict.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(service.check(id, request(os::sc::write, 1)).status,
                  CheckStatus::Allowed);
    TenantStats warm;
    ASSERT_TRUE(service.tenantStats(id, warm));
    EXPECT_EQ(warm.check.vatHits, 3u);
    const uint64_t warmRuns = warm.check.filterRuns;

    // Swap to a profile that still allows write(1): the verdict is
    // unchanged, but the namespace is new — the next check must run
    // the filter again instead of trusting a retired epoch's cache.
    ASSERT_TRUE(service.swapProfile(id, profileFd12()));
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(service.check(id, request(os::sc::write, 1)).status,
                  CheckStatus::Allowed);

    TenantStats after;
    ASSERT_TRUE(service.tenantStats(id, after));
    EXPECT_EQ(after.check.filterRuns, warmRuns + 1)
        << "post-swap check did not re-run the filter: stale VAT";
    EXPECT_EQ(after.check.vatHits, 4u);
    // Lifetime counters survived the swap (cumulative, not reset).
    EXPECT_EQ(after.check.checks, warm.check.checks + 2);
}

TEST(HotSwap, SwapFailsClosedOnUnknownOrEvictedTenants)
{
    CheckService service;
    TenantId id = service.createTenant("t", profileFd1());
    ASSERT_NE(id, kInvalidTenant);
    EXPECT_FALSE(service.swapProfile(id + 100, profileReadOnly()));
    ASSERT_TRUE(service.evictTenant(id));
    EXPECT_FALSE(service.swapProfile(id, profileReadOnly()));

    ServiceStatsSnapshot svc;
    service.serviceStats(svc);
    EXPECT_EQ(svc.policySwaps, 0u);
    EXPECT_EQ(svc.policySwapFailures, 2u);
}

TEST(HotSwap, StaleSnapshotIsDiscardedAndFailsClosedToTheNewEpoch)
{
    ServiceOptions options;
    options.shards = 1;
    options.maxResidentTenants = 2;
    lifecycle::MemorySnapshotStore store;
    options.snapshotStore = &store;
    CheckService service(options);

    TenantId victim = service.createTenant("victim", profileFd1());
    ASSERT_NE(victim, kInvalidTenant);
    std::vector<TenantId> fillers;
    for (int i = 0; i < 2; ++i)
        fillers.push_back(service.createTenant(
            "filler-" + std::to_string(i), profileFd1()));

    // Warm the victim's VAT, then touch the fillers so the victim is
    // coldest and gets evicted with a .dtss taken under epoch 1.
    EXPECT_EQ(service.check(victim, request(os::sc::write, 1)).status,
              CheckStatus::Allowed);
    for (TenantId f : fillers)
        EXPECT_EQ(service.check(f, request(os::sc::read)).status,
                  CheckStatus::Allowed);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(store.get("victim", bytes)) << "victim not snapshotted";

    // Swap the evicted-but-snapshotted victim: the epoch advances but
    // the stale snapshot stays in the store until the next access.
    uint64_t epoch = 0;
    ASSERT_TRUE(service.swapProfile(victim, profileReadOnly(), &epoch));
    EXPECT_EQ(epoch, 2u);
    ASSERT_TRUE(store.get("victim", bytes));

    // Restore must fail closed to the NEW policy: the epoch-1 cache
    // would answer Allowed for write(1); the rebuilt epoch-2 checker
    // answers Denied. A wrong verdict here is the bug this subsystem
    // exists to prevent.
    CheckResponse resp = service.check(victim, request(os::sc::write, 1));
    EXPECT_EQ(resp.status, CheckStatus::Denied);
    EXPECT_EQ(resp.epoch, 2u);

    ServiceStatsSnapshot svc;
    service.serviceStats(svc);
    EXPECT_EQ(svc.staleSnapshotDiscards, 1u);
    EXPECT_EQ(svc.restores, 0u) << "stale snapshot was restored";
    EXPECT_EQ(svc.restoreFailures, 0u)
        << "stale is not corrupt: it must not count as a failure";

    MetricRegistry registry;
    service.exportMetrics(registry, "serve");
    EXPECT_EQ(
        registry.counterValue("serve.policy.stale_snapshot_discards"),
        1u);
    EXPECT_EQ(registry.counterValue("serve.policy.swaps"), 1u);
}

/**
 * Concurrent swap storm: swapper threads rotate profiles under live
 * checker traffic. Every response carries its admission epoch; each
 * swapper records which profile produced which epoch, so afterwards
 * every single verdict can be re-derived from a per-profile reference
 * checker — "old policy up to the swap point, new policy after" with
 * no mixed batches. Runs under TSan in CI.
 */
TEST(HotSwap, SwapStormMatchesPerEpochReferenceEvaluation)
{
    constexpr int kTenants = 4;
    constexpr int kSwappers = 3;
    constexpr int kSwapsEach = 40;
    constexpr int kChecksPerTenant = 2000;

    const std::vector<seccomp::Profile> profiles = {
        profileFd1(), profileFd12(), profileReadOnly()};

    ServiceOptions options;
    options.shards = 2;
    CheckService service(options);
    std::vector<TenantId> ids;
    for (int t = 0; t < kTenants; ++t) {
        ids.push_back(service.createTenant("t" + std::to_string(t),
                                           profiles[0]));
        ASSERT_NE(ids.back(), kInvalidTenant);
    }

    // epoch -> profile index, per tenant. Epoch 1 is the creation
    // profile; every later epoch is recorded by exactly one swapper.
    std::vector<std::map<uint64_t, size_t>> epochProfile(kTenants);
    std::vector<std::mutex> epochMutex(kTenants);
    for (int t = 0; t < kTenants; ++t)
        epochProfile[t][1] = 0;

    struct Observed {
        uint64_t epoch;
        uint64_t arg0;
        bool allowed;
    };
    std::vector<std::vector<Observed>> observed(kTenants);

    std::vector<std::thread> checkers;
    for (int t = 0; t < kTenants; ++t) {
        checkers.emplace_back([&, t] {
            observed[t].reserve(kChecksPerTenant);
            uint64_t x = 0x9E3779B97F4A7C15ULL + t;
            for (int i = 0; i < kChecksPerTenant; ++i) {
                x = x * 6364136223846793005ULL + 1442695040888963407ULL;
                const uint64_t fd = (x >> 33) % 3; // 0, 1, 2
                CheckResponse resp =
                    service.check(ids[t], request(os::sc::write, fd));
                ASSERT_TRUE(resp.status == CheckStatus::Allowed ||
                            resp.status == CheckStatus::Denied);
                observed[t].push_back(
                    {resp.epoch, fd,
                     resp.status == CheckStatus::Allowed});
            }
        });
    }

    std::vector<std::thread> swappers;
    for (int s = 0; s < kSwappers; ++s) {
        swappers.emplace_back([&, s] {
            for (int i = 0; i < kSwapsEach; ++i) {
                const int t = (s + i) % kTenants;
                const size_t p = (s * kSwapsEach + i) % profiles.size();
                uint64_t epoch = 0;
                ASSERT_TRUE(
                    service.swapProfile(ids[t], profiles[p], &epoch));
                std::lock_guard<std::mutex> lock(epochMutex[t]);
                ASSERT_TRUE(epochProfile[t].emplace(epoch, p).second)
                    << "epoch " << epoch << " published twice";
            }
        });
    }
    for (std::thread &thread : swappers)
        thread.join();
    for (std::thread &thread : checkers)
        thread.join();

    // Reference checkers: verdicts are a pure function of (policy,
    // request), so one warm checker per profile re-derives them all.
    std::vector<std::unique_ptr<core::DracoSoftwareChecker>> reference;
    for (const seccomp::Profile &profile : profiles)
        reference.push_back(std::make_unique<core::DracoSoftwareChecker>(
            core::CompiledPolicy::compile(profile), 1));

    for (int t = 0; t < kTenants; ++t) {
        uint64_t last = 0;
        for (const Observed &o : observed[t]) {
            // Epochs move monotonically within one blocking stream.
            ASSERT_GE(o.epoch, last);
            last = o.epoch;
            auto it = epochProfile[t].find(o.epoch);
            ASSERT_NE(it, epochProfile[t].end())
                << "verdict under unpublished epoch " << o.epoch;
            const bool expect =
                reference[it->second]
                    ->check(request(os::sc::write, o.arg0))
                    .allowed;
            ASSERT_EQ(o.allowed, expect)
                << "tenant " << t << " epoch " << o.epoch << " write("
                << o.arg0 << ")";
        }
        TenantStats stats;
        ASSERT_TRUE(service.tenantStats(ids[t], stats));
        ASSERT_EQ(stats.epoch, epochProfile[t].rbegin()->first);
    }

    ServiceStatsSnapshot svc;
    service.serviceStats(svc);
    EXPECT_EQ(svc.policySwaps,
              static_cast<uint64_t>(kSwappers) * kSwapsEach);
    EXPECT_EQ(svc.policySwapFailures, 0u);
}

/**
 * Shard-count invariance with swaps in flight: the same per-tenant
 * stream with swaps at the same batch positions produces a
 * byte-identical verdict sequence and identical server-side stats on
 * 1-shard and 2-shard services.
 */
TEST(HotSwap, VerdictStreamIsShardCountInvariantUnderSwaps)
{
    constexpr int kTenants = 4;
    constexpr int kChecks = 600;
    constexpr int kSwapEvery = 97;

    const std::vector<seccomp::Profile> profiles = {
        profileFd1(), profileFd12(), profileReadOnly()};

    auto run = [&](unsigned shards) {
        ServiceOptions options;
        options.shards = shards;
        CheckService service(options);
        std::vector<TenantId> ids;
        for (int t = 0; t < kTenants; ++t)
            ids.push_back(service.createTenant(
                "t" + std::to_string(t), profiles[0]));

        // One thread per tenant: concurrent across tenants, blocking
        // (ordered) within each — the dracoload closed loop in
        // miniature.
        std::vector<std::vector<uint8_t>> verdicts(kTenants);
        std::vector<std::thread> threads;
        for (int t = 0; t < kTenants; ++t) {
            threads.emplace_back([&, t] {
                uint64_t x = 42 + t;
                size_t cursor = t; // stagger rotations per tenant
                for (int i = 0; i < kChecks; ++i) {
                    x = x * 6364136223846793005ULL +
                        1442695040888963407ULL;
                    CheckResponse resp = service.check(
                        ids[t],
                        request(os::sc::write, (x >> 33) % 3));
                    verdicts[t].push_back(
                        static_cast<uint8_t>(resp.status));
                    verdicts[t].push_back(
                        static_cast<uint8_t>(resp.epoch));
                    if ((i + 1) % kSwapEvery == 0)
                        ASSERT_TRUE(service.swapProfile(
                            ids[t],
                            profiles[++cursor % profiles.size()]));
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();

        // Append the server-side per-tenant counters: they must be as
        // deterministic as the verdicts (vatHits included — the swap
        // invalidation point is part of the contract).
        for (int t = 0; t < kTenants; ++t) {
            TenantStats stats;
            EXPECT_TRUE(service.tenantStats(ids[t], stats));
            for (uint64_t v :
                 {stats.check.checks, stats.check.vatHits,
                  stats.check.filterRuns, stats.allowed, stats.denied,
                  stats.epoch, stats.swaps})
                verdicts[t].push_back(static_cast<uint8_t>(v & 0xFF));
        }
        return verdicts;
    };

    EXPECT_EQ(run(1), run(2));
}

TEST(HotSwap, UpdateProfileOverTheSocket)
{
    CheckService service;
    ServerOptions options;
    options.socketPath = "/tmp/draco_hotswap_" +
                         std::to_string(getpid()) + ".sock";
    SocketServer server(service, options);
    ASSERT_TRUE(server.start());

    auto client = SocketClient::connect(options.socketPath);
    ASSERT_NE(client, nullptr);
    TenantId id = client->createTenant("t", "docker-default");
    ASSERT_NE(id, kInvalidTenant);

    os::SyscallRequest req = request(os::sc::read);
    CheckResponse resp;
    ASSERT_TRUE(client->checkBatch(id, &req, 1, &resp));
    EXPECT_EQ(resp.status, CheckStatus::Allowed);
    EXPECT_EQ(resp.epoch, 1u);

    // Unknown profile and unknown tenant both fail without bumping
    // the tenant's epoch.
    EXPECT_FALSE(client->updateProfile(id, "no-such-profile"));
    EXPECT_FALSE(client->updateProfile(id + 7, "gvisor"));

    uint64_t epoch = 0;
    ASSERT_TRUE(client->updateProfile(id, "gvisor", &epoch));
    EXPECT_EQ(epoch, 2u);

    ASSERT_TRUE(client->checkBatch(id, &req, 1, &resp));
    EXPECT_EQ(resp.status, CheckStatus::Allowed);
    EXPECT_EQ(resp.epoch, 2u);

    TenantStats stats;
    ASSERT_TRUE(client->tenantStats(id, stats));
    EXPECT_EQ(stats.epoch, 2u);
    EXPECT_EQ(stats.swaps, 1u);

    ServiceStatsSnapshot svc;
    ASSERT_TRUE(client->serviceStats(svc));
    EXPECT_EQ(svc.policySwaps, 1u);
    EXPECT_EQ(svc.policySwapFailures, 1u); // the unknown-tenant swap
    EXPECT_EQ(svc.maxEpoch, 2u);

    server.stop();
    service.stop();
    unlink(options.socketPath.c_str());
}

} // namespace
} // namespace draco::serve
