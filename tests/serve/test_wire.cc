/**
 * @file
 * Wire-protocol tests: bit-exact encode/decode round-trips for every
 * message type, total decoders on malformed payloads (truncations,
 * wrong type byte, oversized counts), and frame I/O over a socketpair.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "serve/wire.hh"

namespace draco::serve::wire {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t pc, uint64_t a0, uint64_t a5)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = pc;
    req.args[0] = a0;
    req.args[5] = a5;
    return req;
}

template <typename Msg>
Msg
roundTrip(const Msg &in, MsgType type)
{
    std::vector<uint8_t> payload;
    encode(payload, in);
    EXPECT_EQ(peekType(payload), type);
    Msg out;
    EXPECT_TRUE(decode(payload, out));
    return out;
}

TEST(Wire, HelloRoundTrip)
{
    Hello hello;
    hello.version = 7;
    EXPECT_EQ(roundTrip(hello, MsgType::Hello).version, 7u);

    HelloReply reply;
    reply.version = 1;
    reply.shards = 8;
    HelloReply out = roundTrip(reply, MsgType::HelloReply);
    EXPECT_EQ(out.version, 1u);
    EXPECT_EQ(out.shards, 8u);
}

TEST(Wire, CreateTenantRoundTrip)
{
    CreateTenant msg;
    msg.name = "tenant-with-a-long-name";
    msg.profile = "docker-default";
    msg.maxInFlight = 512;
    msg.filterCopies = 2;
    CreateTenant out = roundTrip(msg, MsgType::CreateTenant);
    EXPECT_EQ(out.name, msg.name);
    EXPECT_EQ(out.profile, msg.profile);
    EXPECT_EQ(out.maxInFlight, 512u);
    EXPECT_EQ(out.filterCopies, 2u);

    CreateTenantReply reply;
    reply.tenantId = 42;
    reply.error = "";
    EXPECT_EQ(roundTrip(reply, MsgType::CreateTenantReply).tenantId,
              42u);
    reply.tenantId = kInvalidTenant;
    reply.error = "tenant table full";
    EXPECT_EQ(roundTrip(reply, MsgType::CreateTenantReply).error,
              reply.error);
}

TEST(Wire, CheckBatchRoundTripIsBitExact)
{
    CheckBatch msg;
    msg.batchId = 0xDEADBEEFCAFE0001ULL;
    msg.tenantId = 3;
    msg.reqs.push_back(request(0, 0, 0, 0));
    msg.reqs.push_back(request(1, 0x7fffffffffffULL, ~0ULL, 1));
    msg.reqs.push_back(request(999, 0x400000, 42, 0));
    CheckBatch out = roundTrip(msg, MsgType::CheckBatch);
    EXPECT_EQ(out.batchId, msg.batchId);
    EXPECT_EQ(out.tenantId, msg.tenantId);
    ASSERT_EQ(out.reqs.size(), msg.reqs.size());
    for (size_t i = 0; i < msg.reqs.size(); ++i) {
        EXPECT_EQ(out.reqs[i].sid, msg.reqs[i].sid);
        EXPECT_EQ(out.reqs[i].pc, msg.reqs[i].pc);
        EXPECT_EQ(out.reqs[i].args, msg.reqs[i].args);
    }
}

TEST(Wire, CheckBatchReplyCarriesEveryStatus)
{
    CheckBatchReply msg;
    msg.batchId = 99;
    for (CheckStatus status :
         {CheckStatus::Allowed, CheckStatus::Denied,
          CheckStatus::Overloaded, CheckStatus::UnknownTenant,
          CheckStatus::ShuttingDown}) {
        CheckResponse resp;
        resp.status = status;
        resp.path = static_cast<uint8_t>(msg.resps.size());
        resp.retryAfterUs =
            status == CheckStatus::Overloaded ? 12345 : 0;
        resp.epoch = msg.resps.size() * 7 + 1;
        msg.resps.push_back(resp);
    }
    CheckBatchReply out = roundTrip(msg, MsgType::CheckBatchReply);
    ASSERT_EQ(out.resps.size(), msg.resps.size());
    for (size_t i = 0; i < msg.resps.size(); ++i) {
        EXPECT_EQ(out.resps[i].status, msg.resps[i].status);
        EXPECT_EQ(out.resps[i].path, msg.resps[i].path);
        EXPECT_EQ(out.resps[i].retryAfterUs, msg.resps[i].retryAfterUs);
        EXPECT_EQ(out.resps[i].epoch, msg.resps[i].epoch);
    }
}

TEST(Wire, TenantStatsRoundTrip)
{
    TenantStatsReq req;
    req.tenantId = 5;
    EXPECT_EQ(roundTrip(req, MsgType::TenantStatsReq).tenantId, 5u);

    TenantStatsReply reply;
    reply.ok = true;
    reply.stats.name = "t0";
    reply.stats.id = 5;
    reply.stats.shard = 2;
    reply.stats.evicted = true;
    reply.stats.check.checks = 1000;
    reply.stats.check.vatHits = 900;
    reply.stats.check.filterRuns = 100;
    reply.stats.allowed = 990;
    reply.stats.denied = 10;
    reply.stats.rejects = 77;
    reply.stats.busyNs = 123456.0;
    reply.stats.epoch = 4;
    reply.stats.swaps = 3;
    TenantStatsReply out = roundTrip(reply, MsgType::TenantStatsReply);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.stats.name, "t0");
    EXPECT_EQ(out.stats.shard, 2u);
    EXPECT_TRUE(out.stats.evicted);
    EXPECT_EQ(out.stats.check.checks, 1000u);
    EXPECT_EQ(out.stats.check.vatHits, 900u);
    EXPECT_EQ(out.stats.allowed, 990u);
    EXPECT_EQ(out.stats.denied, 10u);
    EXPECT_EQ(out.stats.rejects, 77u);
    EXPECT_DOUBLE_EQ(out.stats.busyNs, 123456.0);
    EXPECT_EQ(out.stats.epoch, 4u);
    EXPECT_EQ(out.stats.swaps, 3u);
}

TEST(Wire, UpdateProfileRoundTrip)
{
    UpdateProfile msg;
    msg.tenantId = 11;
    msg.profile = "gvisor";
    UpdateProfile out = roundTrip(msg, MsgType::UpdateProfile);
    EXPECT_EQ(out.tenantId, 11u);
    EXPECT_EQ(out.profile, "gvisor");

    UpdateProfileReply reply;
    reply.ok = true;
    reply.epoch = 9;
    UpdateProfileReply rout =
        roundTrip(reply, MsgType::UpdateProfileReply);
    EXPECT_TRUE(rout.ok);
    EXPECT_EQ(rout.epoch, 9u);
    EXPECT_TRUE(rout.error.empty());

    reply.ok = false;
    reply.epoch = 0;
    reply.error = "unknown profile: bogus";
    rout = roundTrip(reply, MsgType::UpdateProfileReply);
    EXPECT_FALSE(rout.ok);
    EXPECT_EQ(rout.error, reply.error);

    // Total decoders: every truncation and any trailing byte fail.
    std::vector<uint8_t> payload;
    encode(payload, msg);
    for (size_t len = 0; len < payload.size(); ++len) {
        std::vector<uint8_t> cut(payload.begin(),
                                 payload.begin() + len);
        UpdateProfile bad;
        EXPECT_FALSE(decode(cut, bad)) << "length " << len;
    }
    payload.push_back(0);
    UpdateProfile bad;
    EXPECT_FALSE(decode(payload, bad));
}

TEST(Wire, EvictAndShutdownRoundTrip)
{
    EvictTenant msg;
    msg.tenantId = 9;
    EXPECT_EQ(roundTrip(msg, MsgType::EvictTenant).tenantId, 9u);
    EvictTenantReply reply;
    reply.ok = true;
    EXPECT_TRUE(roundTrip(reply, MsgType::EvictTenantReply).ok);

    std::vector<uint8_t> payload;
    encodeShutdown(payload);
    EXPECT_EQ(peekType(payload), MsgType::Shutdown);
    payload.clear();
    encodeShutdownReply(payload);
    EXPECT_EQ(peekType(payload), MsgType::ShutdownReply);
}

TEST(Wire, ServiceStatsRoundTrip)
{
    std::vector<uint8_t> payload;
    encodeServiceStatsReq(payload);
    EXPECT_EQ(peekType(payload), MsgType::ServiceStatsReq);
    EXPECT_EQ(payload.size(), 1u);

    ServiceStatsReply reply;
    reply.stats.tenants = 1000000;
    reply.stats.resident = 10000;
    reply.stats.snapshotted = 990000;
    reply.stats.evictions = 424970;
    reply.stats.restores = 209305;
    reply.stats.restoreFailures = 3;
    reply.stats.snapshotPutFailures = 1;
    reply.stats.dedupPolicies = 1;
    reply.stats.dedupHits = 999999;
    reply.stats.snapshotBytesWritten = 54000000;
    reply.stats.snapshotBytesRead = 26000000;
    reply.stats.storeBytes = 123456789;
    reply.stats.checks = 2000000;
    reply.stats.rejects = 42;
    reply.stats.policySwaps = 1234;
    reply.stats.policySwapFailures = 5;
    reply.stats.staleSnapshotDiscards = 17;
    reply.stats.maxEpoch = 88;
    ServiceStatsReply out =
        roundTrip(reply, MsgType::ServiceStatsReply);
    EXPECT_EQ(out.stats.tenants, 1000000u);
    EXPECT_EQ(out.stats.resident, 10000u);
    EXPECT_EQ(out.stats.snapshotted, 990000u);
    EXPECT_EQ(out.stats.evictions, 424970u);
    EXPECT_EQ(out.stats.restores, 209305u);
    EXPECT_EQ(out.stats.restoreFailures, 3u);
    EXPECT_EQ(out.stats.snapshotPutFailures, 1u);
    EXPECT_EQ(out.stats.dedupPolicies, 1u);
    EXPECT_EQ(out.stats.dedupHits, 999999u);
    EXPECT_EQ(out.stats.snapshotBytesWritten, 54000000u);
    EXPECT_EQ(out.stats.snapshotBytesRead, 26000000u);
    EXPECT_EQ(out.stats.storeBytes, 123456789u);
    EXPECT_EQ(out.stats.checks, 2000000u);
    EXPECT_EQ(out.stats.rejects, 42u);
    EXPECT_EQ(out.stats.policySwaps, 1234u);
    EXPECT_EQ(out.stats.policySwapFailures, 5u);
    EXPECT_EQ(out.stats.staleSnapshotDiscards, 17u);
    EXPECT_EQ(out.stats.maxEpoch, 88u);

    // Truncations and trailing garbage are malformed.
    payload.clear();
    encode(payload, reply);
    for (size_t len = 0; len < payload.size(); ++len) {
        std::vector<uint8_t> cut(payload.begin(),
                                 payload.begin() + len);
        ServiceStatsReply bad;
        EXPECT_FALSE(decode(cut, bad)) << "length " << len;
    }
    payload.push_back(0);
    ServiceStatsReply bad;
    EXPECT_FALSE(decode(payload, bad));
}

TEST(Wire, DecodersRejectEveryTruncation)
{
    CheckBatch msg;
    msg.batchId = 1;
    msg.tenantId = 2;
    msg.reqs.push_back(request(3, 0x400000, 4, 5));
    msg.reqs.push_back(request(6, 0x400010, 7, 8));
    std::vector<uint8_t> payload;
    encode(payload, msg);

    for (size_t len = 0; len < payload.size(); ++len) {
        std::vector<uint8_t> cut(payload.begin(),
                                 payload.begin() + len);
        CheckBatch out;
        EXPECT_FALSE(decode(cut, out)) << "length " << len;
    }
    // Trailing garbage is malformed too: decoders consume exactly.
    payload.push_back(0);
    CheckBatch out;
    EXPECT_FALSE(decode(payload, out));
}

TEST(Wire, DecodersRejectTheWrongType)
{
    std::vector<uint8_t> payload;
    encode(payload, Hello{});
    CheckBatch batch;
    EXPECT_FALSE(decode(payload, batch));
    EvictTenant evict;
    EXPECT_FALSE(decode(payload, evict));
    EXPECT_EQ(peekType({}), static_cast<MsgType>(0));
}

TEST(Wire, DecodersRejectAnAbsurdRequestCount)
{
    CheckBatch msg;
    msg.batchId = 1;
    msg.tenantId = 2;
    std::vector<uint8_t> payload;
    encode(payload, msg);
    // Patch the request-count field (type u8 + batchId u64 + tenant
    // u32 precede it) to a count the payload cannot possibly back.
    ASSERT_GE(payload.size(), 17u);
    const uint32_t absurd = 0xFFFFFFFFu;
    std::memcpy(payload.data() + 13, &absurd, sizeof(absurd));
    CheckBatch out;
    EXPECT_FALSE(decode(payload, out));
}

TEST(Wire, FrameRoundTripOverASocketpair)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::vector<uint8_t> payload;
    CheckBatch msg;
    msg.batchId = 77;
    msg.tenantId = 1;
    for (int i = 0; i < 100; ++i)
        msg.reqs.push_back(request(i, 0x1000 + i, i * 3, i));
    encode(payload, msg);

    ASSERT_TRUE(writeFrame(fds[0], payload));
    std::vector<uint8_t> received;
    ASSERT_TRUE(readFrame(fds[1], received));
    EXPECT_EQ(received, payload);

    // EOF: the peer closing mid-stream reads as a clean false.
    close(fds[0]);
    EXPECT_FALSE(readFrame(fds[1], received));
    close(fds[1]);
}

TEST(Wire, FrameIoEnforcesTheSizeCap)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::vector<uint8_t> oversized(kMaxFrameBytes + 1, 0xAB);
    EXPECT_FALSE(writeFrame(fds[0], oversized));

    // A forged over-limit length prefix must be rejected before any
    // allocation of that size happens.
    uint32_t evil = kMaxFrameBytes + 1;
    ASSERT_EQ(write(fds[0], &evil, sizeof(evil)),
              static_cast<ssize_t>(sizeof(evil)));
    std::vector<uint8_t> received;
    EXPECT_FALSE(readFrame(fds[1], received));
    close(fds[0]);
    close(fds[1]);
}

} // namespace
} // namespace draco::serve::wire
