/**
 * @file
 * Noisy-neighbour isolation: a flooding tenant sharing a victim's shard
 * sheds its own excess at the per-tenant cap — the rejects are
 * attributed to the flooder, the victim completes every request with a
 * real verdict, and the victim's tail latency stays within a bounded
 * factor of its flood-free baseline (the shard queue ahead of any
 * victim batch is bounded by the flooder's in-flight cap, not by the
 * flooder's offered load).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/service.hh"
#include "support/stats.hh"

namespace draco::serve {
namespace {

constexpr int kVictimBatches = 300;
constexpr uint32_t kVictimBatch = 16;

os::SyscallRequest
readRequest()
{
    os::SyscallRequest req;
    req.sid = os::sc::read;
    req.pc = 0x1000;
    return req;
}

seccomp::Profile
allowReadProfile()
{
    seccomp::Profile profile("iso-test");
    profile.allow(os::sc::read);
    return profile;
}

double
elapsedUs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/**
 * Run the victim's closed loop against @p service, asserting every
 * response is a real verdict; returns the batch latency sketch.
 */
QuantileSketch
runVictim(CheckService &service, TenantId victim)
{
    QuantileSketch latencyUs;
    std::vector<os::SyscallRequest> reqs(kVictimBatch, readRequest());
    std::vector<CheckResponse> resps(kVictimBatch);
    for (int b = 0; b < kVictimBatches; ++b) {
        auto t0 = std::chrono::steady_clock::now();
        Batch batch;
        service.submitBatch(victim, reqs.data(), kVictimBatch,
                            resps.data(), batch);
        batch.wait();
        latencyUs.add(elapsedUs(t0));
        for (const CheckResponse &resp : resps)
            EXPECT_EQ(resp.status, CheckStatus::Allowed);
    }
    return latencyUs;
}

TEST(Isolation, FlooderShedsItsOwnTrafficNotTheVictims)
{
    ServiceOptions options;
    options.shards = 1; // same shard: worst case for the victim
    options.queueCapacity = 4096;

    // Baseline: victim alone on the service shape under test.
    double baselineP99;
    {
        CheckService service(options);
        TenantId victim =
            service.createTenant("victim", allowReadProfile());
        ASSERT_NE(victim, kInvalidTenant);
        baselineP99 = runVictim(service, victim).quantile(0.99);
    }

    CheckService service(options);
    TenantId victim = service.createTenant("victim", allowReadProfile());
    TenantOptions floodOptions;
    floodOptions.maxInFlight = 64; // the isolation knob under test
    TenantId flooder = service.createTenant("flooder",
                                            allowReadProfile(),
                                            floodOptions);
    ASSERT_NE(victim, kInvalidTenant);
    ASSERT_NE(flooder, kInvalidTenant);

    // The flooder fires open-loop, far beyond its cap, for the whole
    // victim run.
    std::atomic<bool> stopFlood{false};
    std::atomic<uint64_t> floodShed{0};
    std::thread floodThread([&] {
        constexpr uint32_t kFloodBatch = 32;
        std::vector<os::SyscallRequest> reqs(kFloodBatch, readRequest());
        while (!stopFlood.load()) {
            auto resps = std::make_shared<
                std::vector<CheckResponse>>(kFloodBatch);
            auto batch = std::make_shared<Batch>();
            // Keep completion asynchronous: count sheds, drop buffers.
            batch->onComplete([resps, batch, &floodShed] {
                for (const CheckResponse &resp : *resps)
                    if (resp.status == CheckStatus::Overloaded)
                        floodShed.fetch_add(1);
            });
            service.submitBatch(flooder, reqs.data(), kFloodBatch,
                                resps->data(), *batch);
        }
    });

    QuantileSketch contended = runVictim(service, victim);
    stopFlood.store(true);
    floodThread.join();
    service.stop();

    // The flooder was shed (it offered unbounded load against a finite
    // cap) and every shed is attributed to it; the victim lost nothing.
    EXPECT_GT(floodShed.load(), 0u);
    TenantStats victimStats, floodStats;
    ASSERT_TRUE(service.tenantStats(victim, victimStats));
    ASSERT_TRUE(service.tenantStats(flooder, floodStats));
    EXPECT_EQ(victimStats.rejects, 0u);
    EXPECT_EQ(victimStats.allowed,
              static_cast<uint64_t>(kVictimBatches) * kVictimBatch);
    EXPECT_EQ(floodStats.rejects, floodShed.load());

    // Tail latency stays within a bounded factor of the baseline. The
    // factor is generous (wall-clock on a shared CI box is noisy) but
    // still catches the unbounded-queue failure mode, where the victim
    // would wait behind the flooder's entire offered load and p99 grows
    // by orders of magnitude.
    double bound = 100.0 * std::max(baselineP99, 10.0) + 10000.0;
    EXPECT_LE(contended.quantile(0.99), bound)
        << "baseline p99 " << baselineP99 << "us";
}

} // namespace
} // namespace draco::serve
