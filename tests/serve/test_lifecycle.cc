/**
 * @file
 * Serve-layer lifecycle tests: capped services return verdicts
 * identical to all-resident ones, eviction/restore round-trips keep
 * per-tenant counters, every snapshot-corruption flavour fails closed
 * (fresh rebuild + error metric, never a wrong verdict), and the
 * lifecycle gauges show up in stats and metrics.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "lifecycle/snapshot.hh"
#include "lifecycle/store.hh"
#include "os/syscalls.hh"
#include "seccomp/profile.hh"
#include "serve/service.hh"
#include "support/metrics.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0, uint64_t pc = 0x1000)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = pc;
    req.args[0] = arg0;
    return req;
}

/** read: allowed unconditionally; write: allowed only to fd 1. */
seccomp::Profile
testProfile()
{
    seccomp::Profile profile("serve-test");
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    return profile;
}

/** Allow/tuple-allow/tuple-deny/unknown mix, order varied by seed. */
std::vector<os::SyscallRequest>
trafficMix(uint64_t seed, size_t n)
{
    std::vector<os::SyscallRequest> reqs;
    reqs.reserve(n);
    uint64_t x = seed * 2654435761u + 1;
    for (size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        switch ((x >> 33) % 4) {
          case 0:
            reqs.push_back(request(os::sc::read, x % 8));
            break;
          case 1:
            reqs.push_back(request(os::sc::write, 1));
            break;
          case 2:
            reqs.push_back(request(os::sc::write, 2)); // denied tuple
            break;
          default:
            reqs.push_back(request(os::sc::openat)); // not in profile
            break;
        }
    }
    return reqs;
}

TEST(ServeLifecycle, CappedVerdictsMatchAllResident)
{
    constexpr size_t kTenants = 24;
    constexpr size_t kRounds = 6;
    constexpr size_t kPerRound = 16;

    ServiceOptions capped;
    capped.shards = 2;
    capped.maxResidentTenants = 4;
    ServiceOptions uncapped;
    uncapped.shards = 2;

    CheckService a(capped);
    CheckService b(uncapped);
    for (size_t t = 0; t < kTenants; ++t) {
        std::string name = "tenant-" + std::to_string(t);
        ASSERT_EQ(a.createTenant(name, testProfile()),
                  b.createTenant(name, testProfile()));
    }

    // Round-robin rounds so every tenant is evicted and restored
    // several times in the capped service.
    for (size_t round = 0; round < kRounds; ++round) {
        for (size_t t = 0; t < kTenants; ++t) {
            TenantId id = static_cast<TenantId>(t + 1);
            for (const os::SyscallRequest &req :
                 trafficMix(round * kTenants + t, kPerRound)) {
                CheckResponse ra = a.check(id, req);
                CheckResponse rb = b.check(id, req);
                ASSERT_EQ(static_cast<int>(ra.status),
                          static_cast<int>(rb.status));
                ASSERT_EQ(ra.path, rb.path);
            }
        }
        // Cap enforced after every synchronous check.
        EXPECT_LE(a.residentTenants(), 4u);
    }

    ServiceStatsSnapshot stats;
    a.serviceStats(stats);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.restores, 0u);
    EXPECT_EQ(stats.restoreFailures, 0u);
    EXPECT_EQ(stats.resident + stats.snapshotted, kTenants);
    // All 24 tenants share one semantic profile.
    EXPECT_EQ(stats.dedupPolicies, 1u);
    EXPECT_EQ(stats.dedupHits, kTenants - 1);

    // Per-tenant lifetime counters survive the evict/restore cycles:
    // both services saw identical traffic, so identical stats.
    for (size_t t = 0; t < kTenants; ++t) {
        TenantId id = static_cast<TenantId>(t + 1);
        TenantStats sa, sb;
        ASSERT_TRUE(a.tenantStats(id, sa));
        ASSERT_TRUE(b.tenantStats(id, sb));
        EXPECT_EQ(sa.check.checks, sb.check.checks);
        EXPECT_EQ(sa.check.vatHits, sb.check.vatHits);
        EXPECT_EQ(sa.allowed, sb.allowed);
        EXPECT_EQ(sa.denied, sb.denied);
    }
}

/**
 * Fixture driving a single-shard capped service against an external
 * store so tests can corrupt snapshots between accesses.
 */
class CorruptionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        options.shards = 1;
        options.maxResidentTenants = 2;
        options.snapshotStore = &store;
        service = std::make_unique<CheckService>(options);
        victim = service->createTenant("victim", testProfile());
        ASSERT_NE(victim, kInvalidTenant);
        for (int i = 0; i < 2; ++i) {
            TenantId id = service->createTenant(
                "filler-" + std::to_string(i), testProfile());
            ASSERT_NE(id, kInvalidTenant);
            fillers.push_back(id);
        }
    }

    /** Touch the fillers so the victim becomes coldest and evicts. */
    void
    evictVictim()
    {
        ASSERT_EQ(service->check(victim, request(os::sc::read)).status,
                  CheckStatus::Allowed);
        for (TenantId id : fillers)
            ASSERT_EQ(service->check(id, request(os::sc::read)).status,
                      CheckStatus::Allowed);
        std::vector<uint8_t> bytes;
        ASSERT_TRUE(store.get("victim", bytes))
            << "victim was not snapshotted";
    }

    /** Rewrite the victim's stored snapshot through @p mutate. */
    void
    corrupt(const std::function<void(std::vector<uint8_t> &)> &mutate)
    {
        std::vector<uint8_t> bytes;
        ASSERT_TRUE(store.get("victim", bytes));
        mutate(bytes);
        ASSERT_TRUE(store.put("victim", bytes));
    }

    /**
     * The fail-closed contract: the next access after corruption gets
     * correct verdicts from a fresh rebuild and bumps the failure
     * counter — the snapshot is only a cache.
     */
    void
    expectFailClosed(uint64_t expectFailures)
    {
        EXPECT_EQ(service->check(victim, request(os::sc::read)).status,
                  CheckStatus::Allowed);
        EXPECT_EQ(
            service->check(victim, request(os::sc::write, 1)).status,
            CheckStatus::Allowed);
        EXPECT_EQ(
            service->check(victim, request(os::sc::write, 2)).status,
            CheckStatus::Denied);
        ServiceStatsSnapshot stats;
        service->serviceStats(stats);
        EXPECT_EQ(stats.restoreFailures, expectFailures);
    }

    ServiceOptions options;
    lifecycle::MemorySnapshotStore store;
    std::unique_ptr<CheckService> service;
    TenantId victim = kInvalidTenant;
    std::vector<TenantId> fillers;
};

TEST_F(CorruptionTest, TruncatedSnapshotFailsClosed)
{
    evictVictim();
    corrupt([](std::vector<uint8_t> &b) { b.resize(b.size() / 2); });
    expectFailClosed(1);
}

TEST_F(CorruptionTest, CrcFlipFailsClosed)
{
    evictVictim();
    // Flip one bit in the middle of the payload area.
    corrupt([](std::vector<uint8_t> &b) { b[b.size() / 2] ^= 0x10; });
    expectFailClosed(1);
}

TEST_F(CorruptionTest, BadMagicFailsClosed)
{
    evictVictim();
    corrupt([](std::vector<uint8_t> &b) { b[0] ^= 1; });
    expectFailClosed(1);
}

TEST_F(CorruptionTest, VersionSkewFailsClosed)
{
    evictVictim();
    corrupt([](std::vector<uint8_t> &b) {
        b[8] = static_cast<uint8_t>(lifecycle::kSnapshotVersion + 1);
    });
    expectFailClosed(1);
}

TEST_F(CorruptionTest, VanishedSnapshotFailsClosed)
{
    evictVictim();
    ASSERT_TRUE(store.remove("victim"));
    expectFailClosed(1);
}

TEST_F(CorruptionTest, IntactSnapshotRestoresCleanly)
{
    evictVictim();
    expectFailClosed(0); // No corruption: restore, no failure counted.
    ServiceStatsSnapshot stats;
    service->serviceStats(stats);
    EXPECT_EQ(stats.restores, 1u);
}

TEST_F(CorruptionTest, AdminEvictDropsTheSnapshot)
{
    evictVictim();
    ServiceStatsSnapshot stats;
    service->serviceStats(stats);
    EXPECT_EQ(stats.snapshotted, 1u);

    EXPECT_TRUE(service->evictTenant(victim));
    service->serviceStats(stats);
    EXPECT_EQ(stats.snapshotted, 0u);
    std::vector<uint8_t> bytes;
    EXPECT_FALSE(store.get("victim", bytes));
    EXPECT_EQ(service->check(victim, request(os::sc::read)).status,
              CheckStatus::UnknownTenant);
}

TEST(ServeLifecycle, MetricsExportLifecycleBlock)
{
    ServiceOptions options;
    options.maxResidentTenants = 1;
    CheckService service(options);
    TenantId a = service.createTenant("a", testProfile());
    TenantId b = service.createTenant("b", testProfile());
    ASSERT_EQ(service.check(a, request(os::sc::read)).status,
              CheckStatus::Allowed);
    ASSERT_EQ(service.check(b, request(os::sc::read)).status,
              CheckStatus::Allowed); // evicts a

    MetricRegistry registry;
    service.exportMetrics(registry, "serve");
    EXPECT_EQ(registry.counterValue("serve.lifecycle.enabled"), 1u);
    EXPECT_EQ(registry.counterValue("serve.lifecycle.resident_cap"), 1u);
    EXPECT_EQ(registry.counterValue("serve.lifecycle.resident"), 1u);
    EXPECT_EQ(registry.counterValue("serve.lifecycle.snapshotted"), 1u);
    EXPECT_EQ(registry.counterValue("serve.lifecycle.evictions"), 1u);
    EXPECT_EQ(registry.counterValue("serve.lifecycle.dedup.policies"),
              1u);
    EXPECT_EQ(registry.textValue("serve.lifecycle.store_kind"),
              "memory");
    EXPECT_GT(registry.counterValue("serve.lifecycle.store_bytes"), 0u);
    EXPECT_EQ(registry.gaugeValue("serve.lifecycle.dedup.ratio"), 2.0);
}

TEST(ServeLifecycle, UncappedServiceExportsDisabledLifecycle)
{
    CheckService service;
    service.createTenant("a", testProfile());
    MetricRegistry registry;
    service.exportMetrics(registry, "serve");
    EXPECT_EQ(registry.counterValue("serve.lifecycle.enabled"), 0u);
}

} // namespace
} // namespace draco::serve
