/**
 * @file
 * The dracod observability endpoint, end to end: a SocketServer with
 * --metrics-listen bound answers /healthz, /metrics, /statz, and
 * /slowz over plain HTTP/1.0 while check traffic flows on the wire
 * protocol; the scrape body carries the stage-latency families with
 * shard labels; the slow ring fills when the threshold is 1us; and —
 * the load-bearing invariant — per-tenant verdict fingerprints are
 * byte-identical with the pipeline on or off.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/serveobs.hh"
#include "os/syscalls.hh"
#include "serve/server.hh"
#include "serve/service.hh"

namespace draco::serve {
namespace {

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = 0x1000;
    req.args[0] = arg0;
    return req;
}

/** Deterministic allow/deny/unknown mix, order varied by @p seed. */
std::vector<os::SyscallRequest>
trafficMix(uint64_t seed, size_t n)
{
    std::vector<os::SyscallRequest> reqs;
    reqs.reserve(n);
    uint64_t x = seed * 2654435761u + 1;
    for (size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        switch ((x >> 33) % 3) {
          case 0:
            reqs.push_back(request(os::sc::read, x % 8));
            break;
          case 1:
            reqs.push_back(request(os::sc::write, (x >> 8) % 3));
            break;
          default:
            reqs.push_back(request(os::sc::openat));
            break;
        }
    }
    return reqs;
}

std::string
socketPath(const char *tag)
{
    return "/tmp/draco_test_" + std::to_string(getpid()) + "_" + tag +
           ".sock";
}

/** One blocking HTTP/1.0 GET against 127.0.0.1:@p port. */
std::string
httpGet(uint16_t port, const std::string &target)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close(fd);
        return "";
    }
    std::string reqText = "GET " + target + " HTTP/1.0\r\n\r\n";
    size_t sent = 0;
    while (sent < reqText.size()) {
        ssize_t w = write(fd, reqText.data() + sent,
                          reqText.size() - sent);
        if (w <= 0)
            break;
        sent += static_cast<size_t>(w);
    }
    std::string reply;
    char buf[4096];
    ssize_t r;
    while ((r = read(fd, buf, sizeof buf)) > 0)
        reply.append(buf, static_cast<size_t>(r));
    close(fd);
    return reply;
}

template <typename Cond>
bool
eventually(Cond cond)
{
    for (int i = 0; i < 1000; ++i) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/**
 * Run the standard mix through a server (obs on or off) and return
 * the per-tenant (allowed, denied) fingerprint.
 */
std::vector<std::pair<uint64_t, uint64_t>>
runTraffic(const char *tag, bool obs, uint32_t slowUs = 0)
{
    ServiceOptions options;
    options.shards = 2;
    CheckService service(options);

    ServerOptions serverOptions;
    serverOptions.socketPath = socketPath(tag);
    if (obs) {
        serverOptions.metricsAddress = "127.0.0.1:0";
        serverOptions.slowUs = slowUs;
    }
    SocketServer server(service, serverOptions);
    EXPECT_TRUE(server.start());
    EXPECT_EQ(server.serveObs() != nullptr, obs);

    auto client = SocketClient::connect(serverOptions.socketPath);
    EXPECT_NE(client, nullptr);

    std::vector<std::pair<uint64_t, uint64_t>> fingerprint;
    constexpr unsigned kTenants = 4;
    constexpr uint32_t kBatch = 32;
    for (unsigned t = 0; t < kTenants; ++t) {
        TenantId id = client->createTenant("t" + std::to_string(t),
                                           "docker-default");
        EXPECT_NE(id, kInvalidTenant);
        const auto reqs = trafficMix(t + 1, 256);
        std::vector<CheckResponse> resps(kBatch);
        for (size_t pos = 0; pos < reqs.size(); pos += kBatch)
            EXPECT_TRUE(client->checkBatch(id, reqs.data() + pos,
                                           kBatch, resps.data()));
        TenantStats stats;
        EXPECT_TRUE(client->tenantStats(id, stats));
        fingerprint.emplace_back(stats.allowed, stats.denied);
    }
    server.stop();
    service.stop();
    return fingerprint;
}

TEST(ObsEndpoint, HealthzMetricsStatzSlowzAnswerOverHttp)
{
    ServiceOptions options;
    options.shards = 2;
    CheckService service(options);

    ServerOptions serverOptions;
    serverOptions.socketPath = socketPath("obsep");
    serverOptions.metricsAddress = "127.0.0.1:0";
    serverOptions.slowUs = 1; // everything is "slow": ring must fill
    SocketServer server(service, serverOptions);
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.metricsPort(), 0);
    ASSERT_NE(server.serveObs(), nullptr);

    auto client = SocketClient::connect(serverOptions.socketPath);
    ASSERT_NE(client, nullptr);
    TenantId id = client->createTenant("t0", "docker-default");
    ASSERT_NE(id, kInvalidTenant);
    const auto reqs = trafficMix(3, 128);
    std::vector<CheckResponse> resps(32);
    for (size_t pos = 0; pos < reqs.size(); pos += 32)
        ASSERT_TRUE(
            client->checkBatch(id, reqs.data() + pos, 32,
                               resps.data()));

    // The flush commit races the client's reply read by a hair; wait
    // for all four batches to land in the hub.
    ASSERT_TRUE(eventually(
        [&] { return server.serveObs()->committed() >= 4; }));

    const uint16_t port = server.metricsPort();

    std::string healthz = httpGet(port, "/healthz");
    EXPECT_NE(healthz.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(healthz.find("ok"), std::string::npos);

    std::string metrics = httpGet(port, "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"),
              std::string::npos);
    // Native stage families with shard labels, live service counters,
    // and connection gauges all present.
    EXPECT_NE(metrics.find("draco_serve_stage_latency_us{shard=\"0\","
                           "stage=\"total\",quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("draco_serve_stage_latency_us_hist_bucket"),
              std::string::npos);
    EXPECT_NE(metrics.find("draco_serve_live_checks 128"),
              std::string::npos);
    EXPECT_NE(metrics.find("draco_serve_live_connections_active"),
              std::string::npos);
    EXPECT_NE(metrics.find("draco_serve_obs_records_total"),
              std::string::npos);

    std::string statz = httpGet(port, "/statz");
    EXPECT_NE(statz.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(statz.find("application/json"), std::string::npos);
    EXPECT_NE(statz.find("tenants"), std::string::npos);

    std::string slowz = httpGet(port, "/slowz");
    EXPECT_NE(slowz.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(slowz.find("\"threshold_us\": 1"), std::string::npos);
    EXPECT_NE(slowz.find("\"batch\": 32"), std::string::npos);
    EXPECT_NE(slowz.find("total_us"), std::string::npos);

    std::string missing = httpGet(port, "/nosuch");
    EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

    server.stop();
    service.stop();
}

TEST(ObsEndpoint, MetricsQueryStringAndSlowzEmptyWhenDisarmed)
{
    ServiceOptions options;
    CheckService service(options);
    ServerOptions serverOptions;
    serverOptions.socketPath = socketPath("obsq");
    serverOptions.metricsAddress = "127.0.0.1:0";
    // slowUs stays 0: endpoint up, ring disarmed.
    SocketServer server(service, serverOptions);
    ASSERT_TRUE(server.start());

    std::string metrics =
        httpGet(server.metricsPort(), "/metrics?format=text");
    EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);

    std::string slowz = httpGet(server.metricsPort(), "/slowz");
    EXPECT_NE(slowz.find("\"total_slow\": 0"), std::string::npos);
    EXPECT_NE(slowz.find("\"records\": []"), std::string::npos);

    server.stop();
    service.stop();
}

TEST(ObsEndpoint, VerdictFingerprintIdenticalWithObsOnOrOff)
{
    const auto off = runTraffic("fpoff", false);
    const auto on = runTraffic("fpon", true, /*slowUs=*/1);
    EXPECT_EQ(off, on);
    ASSERT_EQ(off.size(), 4u);
    for (const auto &[allowed, denied] : off)
        EXPECT_EQ(allowed + denied, 256u);
}

} // namespace
} // namespace draco::serve
