/**
 * @file
 * Unit tests for the CRC-64 engines.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "hash/crc64.hh"

namespace draco {
namespace {

TEST(Crc64, KnownEcmaCheckValue)
{
    // CRC-64/ECMA-182 (init 0, no reflection, no xorout) of the
    // standard check string "123456789" is 0x6C40DF5F0B497347.
    const char *msg = "123456789";
    EXPECT_EQ(crc64Ecma().compute(msg, 9), 0x6C40DF5F0B497347ULL);
}

TEST(Crc64, TableMatchesBitwiseReference)
{
    const char *msgs[] = {"", "a", "abc", "draco", "0123456789abcdef",
                          "The quick brown fox jumps over the lazy dog"};
    for (const char *msg : msgs) {
        size_t len = std::strlen(msg);
        EXPECT_EQ(crc64Ecma().compute(msg, len),
                  Crc64::computeBitwise(kCrc64EcmaPoly, msg, len))
            << "msg=" << msg;
        EXPECT_EQ(crc64NotEcma().compute(msg, len),
                  Crc64::computeBitwise(kCrc64NotEcmaPoly, msg, len))
            << "msg=" << msg;
    }
}

TEST(Crc64, EmptyInputIsInit)
{
    EXPECT_EQ(crc64Ecma().compute(nullptr, 0), 0u);
    EXPECT_EQ(crc64Ecma().compute(nullptr, 0, 0x1234), 0x1234u);
}

TEST(Crc64, TheTwoPolynomialsDisagree)
{
    // The ECMA and ¬ECMA engines should virtually never agree on
    // nonzero inputs (the all-zero input hashes to 0 under any CRC).
    int agreements = 0;
    for (uint32_t i = 1; i <= 1000; ++i) {
        agreements +=
            crc64Ecma().compute(&i, 4) == crc64NotEcma().compute(&i, 4);
    }
    EXPECT_EQ(agreements, 0);
}

TEST(Crc64, SingleBitFlipChangesHash)
{
    uint64_t data = 0xDEADBEEFCAFEF00DULL;
    uint64_t base = crc64Ecma().compute(&data, 8);
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t flipped = data ^ (1ULL << bit);
        EXPECT_NE(crc64Ecma().compute(&flipped, 8), base) << "bit " << bit;
    }
}

TEST(Crc64, IncrementalEqualsWhole)
{
    const char *msg = "hello, draco world";
    size_t len = std::strlen(msg);
    uint64_t whole = crc64Ecma().compute(msg, len);
    uint64_t part = crc64Ecma().compute(msg, 7);
    part = crc64Ecma().compute(msg + 7, len - 7, part);
    EXPECT_EQ(part, whole);
}

TEST(Crc64, LengthExtensionDiffersFromPadding)
{
    // "ab" and "ab\0" must hash differently (no trivial padding).
    const char a[] = {'a', 'b'};
    const char b[] = {'a', 'b', 0};
    EXPECT_NE(crc64Ecma().compute(a, 2), crc64Ecma().compute(b, 3));
}

TEST(Crc64, PolyAccessor)
{
    EXPECT_EQ(crc64Ecma().poly(), kCrc64EcmaPoly);
    EXPECT_EQ(crc64NotEcma().poly(), kCrc64NotEcmaPoly);
    EXPECT_EQ(kCrc64NotEcmaPoly, ~kCrc64EcmaPoly);
}

TEST(Crc64, DistributionOverBuckets)
{
    // Hash values modulo a small bucket count should spread evenly.
    constexpr int kBuckets = 16;
    int counts[kBuckets] = {};
    for (uint64_t i = 0; i < 16000; ++i)
        ++counts[crc64Ecma().compute(&i, 8) % kBuckets];
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Crc64, KnownNotEcmaCheckValue)
{
    // Same check string under the complement polynomial (computed with
    // the bit-serial LFSR; there is no published vector for ¬ECMA).
    const char *msg = "123456789";
    EXPECT_EQ(crc64NotEcma().compute(msg, 9), 0xC9183FC2C8BB41C4ULL);
    EXPECT_EQ(crc64NotEcma().computeTable(msg, 9), 0xC9183FC2C8BB41C4ULL);
    EXPECT_EQ(crc64NotEcma().computeClmul(msg, 9), 0xC9183FC2C8BB41C4ULL);
}

TEST(Crc64, CrossEngineIdentityEveryLengthZeroTo64)
{
    // Tail handling is where folding implementations break: check the
    // table, slice-by-8 (compute), and clmul engines agree on random
    // buffers of EVERY length 0..64, with random initial registers.
    uint64_t x = 0x9E3779B97F4A7C15ULL;
    auto next = [&x]() {
        // SplitMix64: cheap, deterministic, seeds the buffers.
        x += 0x9E3779B97F4A7C15ULL;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    };
    for (const Crc64 *engine : {&crc64Ecma(), &crc64NotEcma()}) {
        for (size_t len = 0; len <= 64; ++len) {
            for (int rep = 0; rep < 8; ++rep) {
                std::vector<uint8_t> buf(len);
                for (auto &b : buf)
                    b = static_cast<uint8_t>(next());
                uint64_t init = rep == 0 ? 0 : next();
                uint64_t ref = engine->computeTable(buf.data(), len, init);
                EXPECT_EQ(engine->compute(buf.data(), len, init), ref)
                    << "len=" << len;
                EXPECT_EQ(engine->computeClmul(buf.data(), len, init), ref)
                    << "len=" << len;
                EXPECT_EQ(Crc64::computeBitwise(engine->poly(), buf.data(),
                                                len, init),
                          ref)
                    << "len=" << len;
            }
        }
    }
}

TEST(Crc64, CrossEngineIdentityOnLongBuffers)
{
    // Long enough that compute() takes the folding path when the CPU
    // has PCLMULQDQ; every 16-byte phase of the tail is covered.
    std::vector<uint8_t> buf(4096 + 15);
    uint64_t x = 42;
    for (auto &b : buf)
        b = static_cast<uint8_t>(x = x * 6364136223846793005ULL + 1);
    for (size_t len : {64u, 65u, 79u, 80u, 128u, 1000u, 4096u, 4111u}) {
        for (uint64_t init : {0ull, 0xFFFFFFFFFFFFFFFFull,
                              0x0123456789ABCDEFull}) {
            uint64_t ref = crc64Ecma().computeTable(buf.data(), len, init);
            EXPECT_EQ(crc64Ecma().compute(buf.data(), len, init), ref);
            EXPECT_EQ(crc64Ecma().computeClmul(buf.data(), len, init), ref);
        }
    }
}

TEST(Crc64, ClmulIncrementalEqualsWhole)
{
    // init-register chaining across engine switches: fold a prefix
    // with one engine and finish with another.
    std::vector<uint8_t> buf(777);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 131 + 7);
    uint64_t whole = crc64Ecma().computeTable(buf.data(), buf.size());
    for (size_t cut : {1u, 15u, 16u, 17u, 63u, 64u, 100u, 776u}) {
        uint64_t part = crc64Ecma().computeClmul(buf.data(), cut);
        part = crc64Ecma().compute(buf.data() + cut, buf.size() - cut,
                                   part);
        EXPECT_EQ(part, whole) << "cut=" << cut;
    }
}

TEST(Crc64, EngineNameIsConsistentWithDispatch)
{
    std::string name = crc64EngineName();
    EXPECT_TRUE(name == "pclmul" || name == "slice8") << name;
    EXPECT_EQ(name == "pclmul", Crc64::clmulSupported());
}

TEST(Mix64, Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Mix64, ZeroMapsToZero)
{
    // The finalizer is a fixed point at zero (xorshift+multiply of 0).
    EXPECT_EQ(mix64(0), 0u);
}

TEST(Mix64, BijectiveOnSample)
{
    // No collisions among a large structured sample (consecutive ints
    // are exactly the keys the diffusion must handle).
    std::set<uint64_t> seen;
    for (uint64_t i = 1; i <= 20000; ++i)
        EXPECT_TRUE(seen.insert(mix64(i)).second) << i;
}

TEST(Mix64, BreaksCrcPairCorrelation)
{
    // The regression this exists for: structured keys hashed with the
    // ECMA/¬ECMA pair must index a small table pairwise-independently
    // after diffusion.
    constexpr uint64_t kBuckets = 64;
    int jointCollisions = 0;
    const int n = 300;
    std::vector<std::pair<uint64_t, uint64_t>> idx;
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t key = i; // consecutive fds
        uint64_t h1 = mix64(crc64Ecma().compute(&key, 8)) % kBuckets;
        uint64_t h2 = mix64(crc64NotEcma().compute(&key, 8)) % kBuckets;
        idx.emplace_back(h1, h2);
    }
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            jointCollisions += idx[a] == idx[b];
    // Expected joint collisions ~ C(300,2)/64^2 ≈ 11; allow slack.
    EXPECT_LT(jointCollisions, 40);
}

} // namespace
} // namespace draco
