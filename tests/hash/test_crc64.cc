/**
 * @file
 * Unit tests for the CRC-64 engines.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "hash/crc64.hh"

namespace draco {
namespace {

TEST(Crc64, KnownEcmaCheckValue)
{
    // CRC-64/ECMA-182 (init 0, no reflection, no xorout) of the
    // standard check string "123456789" is 0x6C40DF5F0B497347.
    const char *msg = "123456789";
    EXPECT_EQ(crc64Ecma().compute(msg, 9), 0x6C40DF5F0B497347ULL);
}

TEST(Crc64, TableMatchesBitwiseReference)
{
    const char *msgs[] = {"", "a", "abc", "draco", "0123456789abcdef",
                          "The quick brown fox jumps over the lazy dog"};
    for (const char *msg : msgs) {
        size_t len = std::strlen(msg);
        EXPECT_EQ(crc64Ecma().compute(msg, len),
                  Crc64::computeBitwise(kCrc64EcmaPoly, msg, len))
            << "msg=" << msg;
        EXPECT_EQ(crc64NotEcma().compute(msg, len),
                  Crc64::computeBitwise(kCrc64NotEcmaPoly, msg, len))
            << "msg=" << msg;
    }
}

TEST(Crc64, EmptyInputIsInit)
{
    EXPECT_EQ(crc64Ecma().compute(nullptr, 0), 0u);
    EXPECT_EQ(crc64Ecma().compute(nullptr, 0, 0x1234), 0x1234u);
}

TEST(Crc64, TheTwoPolynomialsDisagree)
{
    // The ECMA and ¬ECMA engines should virtually never agree on
    // nonzero inputs (the all-zero input hashes to 0 under any CRC).
    int agreements = 0;
    for (uint32_t i = 1; i <= 1000; ++i) {
        agreements +=
            crc64Ecma().compute(&i, 4) == crc64NotEcma().compute(&i, 4);
    }
    EXPECT_EQ(agreements, 0);
}

TEST(Crc64, SingleBitFlipChangesHash)
{
    uint64_t data = 0xDEADBEEFCAFEF00DULL;
    uint64_t base = crc64Ecma().compute(&data, 8);
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t flipped = data ^ (1ULL << bit);
        EXPECT_NE(crc64Ecma().compute(&flipped, 8), base) << "bit " << bit;
    }
}

TEST(Crc64, IncrementalEqualsWhole)
{
    const char *msg = "hello, draco world";
    size_t len = std::strlen(msg);
    uint64_t whole = crc64Ecma().compute(msg, len);
    uint64_t part = crc64Ecma().compute(msg, 7);
    part = crc64Ecma().compute(msg + 7, len - 7, part);
    EXPECT_EQ(part, whole);
}

TEST(Crc64, LengthExtensionDiffersFromPadding)
{
    // "ab" and "ab\0" must hash differently (no trivial padding).
    const char a[] = {'a', 'b'};
    const char b[] = {'a', 'b', 0};
    EXPECT_NE(crc64Ecma().compute(a, 2), crc64Ecma().compute(b, 3));
}

TEST(Crc64, PolyAccessor)
{
    EXPECT_EQ(crc64Ecma().poly(), kCrc64EcmaPoly);
    EXPECT_EQ(crc64NotEcma().poly(), kCrc64NotEcmaPoly);
    EXPECT_EQ(kCrc64NotEcmaPoly, ~kCrc64EcmaPoly);
}

TEST(Crc64, DistributionOverBuckets)
{
    // Hash values modulo a small bucket count should spread evenly.
    constexpr int kBuckets = 16;
    int counts[kBuckets] = {};
    for (uint64_t i = 0; i < 16000; ++i)
        ++counts[crc64Ecma().compute(&i, 8) % kBuckets];
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Mix64, Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Mix64, ZeroMapsToZero)
{
    // The finalizer is a fixed point at zero (xorshift+multiply of 0).
    EXPECT_EQ(mix64(0), 0u);
}

TEST(Mix64, BijectiveOnSample)
{
    // No collisions among a large structured sample (consecutive ints
    // are exactly the keys the diffusion must handle).
    std::set<uint64_t> seen;
    for (uint64_t i = 1; i <= 20000; ++i)
        EXPECT_TRUE(seen.insert(mix64(i)).second) << i;
}

TEST(Mix64, BreaksCrcPairCorrelation)
{
    // The regression this exists for: structured keys hashed with the
    // ECMA/¬ECMA pair must index a small table pairwise-independently
    // after diffusion.
    constexpr uint64_t kBuckets = 64;
    int jointCollisions = 0;
    const int n = 300;
    std::vector<std::pair<uint64_t, uint64_t>> idx;
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t key = i; // consecutive fds
        uint64_t h1 = mix64(crc64Ecma().compute(&key, 8)) % kBuckets;
        uint64_t h2 = mix64(crc64NotEcma().compute(&key, 8)) % kBuckets;
        idx.emplace_back(h1, h2);
    }
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            jointCollisions += idx[a] == idx[b];
    // Expected joint collisions ~ C(300,2)/64^2 ≈ 11; allow slack.
    EXPECT_LT(jointCollisions, 40);
}

} // namespace
} // namespace draco
