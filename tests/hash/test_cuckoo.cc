/**
 * @file
 * Unit and property tests for the 2-ary cuckoo table.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hash/crc64.hh"
#include "hash/cuckoo.hh"
#include "support/random.hh"

namespace draco {
namespace {

CuckooTable<uint64_t>
makeTable(size_t buckets, unsigned maxDisp = 16)
{
    // Diffused CRCs, exactly as the VAT indexes (see mix64).
    return CuckooTable<uint64_t>(
        buckets,
        [](const uint64_t &k) {
            return mix64(crc64Ecma().compute(&k, 8));
        },
        [](const uint64_t &k) {
            return mix64(crc64NotEcma().compute(&k, 8));
        },
        maxDisp);
}

TEST(Cuckoo, InsertThenLookup)
{
    auto t = makeTable(8);
    EXPECT_EQ(t.insert(42), CuckooInsert::Inserted);
    EXPECT_TRUE(t.contains(42));
    EXPECT_FALSE(t.contains(43));
    EXPECT_EQ(t.size(), 1u);
}

TEST(Cuckoo, DoubleInsertReportsPresent)
{
    auto t = makeTable(8);
    EXPECT_EQ(t.insert(7), CuckooInsert::Inserted);
    EXPECT_EQ(t.insert(7), CuckooInsert::AlreadyPresent);
    EXPECT_EQ(t.size(), 1u);
}

TEST(Cuckoo, EraseRemoves)
{
    auto t = makeTable(8);
    t.insert(1);
    t.insert(2);
    EXPECT_TRUE(t.erase(1));
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
    EXPECT_FALSE(t.erase(1));
    EXPECT_EQ(t.size(), 1u);
}

TEST(Cuckoo, ClearEmptiesTable)
{
    auto t = makeTable(8);
    for (uint64_t k = 0; k < 10; ++k)
        t.insert(k);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    for (uint64_t k = 0; k < 10; ++k)
        EXPECT_FALSE(t.contains(k));
}

TEST(Cuckoo, LookupReportsWayAndHash)
{
    auto t = makeTable(16);
    t.insert(99);
    auto found = t.lookup(99);
    ASSERT_TRUE(found.has_value());
    uint64_t k = 99;
    if (found->way == CuckooWay::H1)
        EXPECT_EQ(found->hash, mix64(crc64Ecma().compute(&k, 8)));
    else
        EXPECT_EQ(found->hash, mix64(crc64NotEcma().compute(&k, 8)));
    EXPECT_EQ(found->index, found->hash % t.buckets());
}

TEST(Cuckoo, AtReadsByLocation)
{
    auto t = makeTable(16);
    t.insert(1234);
    auto found = t.lookup(1234);
    ASSERT_TRUE(found);
    const uint64_t *stored = t.at(found->way, found->hash);
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(*stored, 1234u);
}

TEST(Cuckoo, AtOnEmptySlotIsNull)
{
    auto t = makeTable(16);
    EXPECT_EQ(t.at(CuckooWay::H1, 3), nullptr);
}

TEST(Cuckoo, DisplacementKeepsAllKeysFindable)
{
    // Fill to half capacity; every non-evicted key must remain findable
    // even after displacement chains.
    auto t = makeTable(64);
    std::set<uint64_t> live;
    Rng rng(5);
    for (int i = 0; i < 64; ++i) {
        uint64_t k = rng.next();
        uint64_t victim = 0;
        if (t.insert(k, &victim) == CuckooInsert::EvictedVictim)
            live.erase(victim);
        live.insert(k);
    }
    for (uint64_t k : live)
        EXPECT_TRUE(t.contains(k)) << k;
}

TEST(Cuckoo, OverfillEvictsExactlyOnePerFailure)
{
    auto t = makeTable(4, 8); // capacity 8
    std::set<uint64_t> inserted;
    uint64_t evictions = 0;
    Rng rng(11);
    for (int i = 0; i < 64; ++i) {
        uint64_t k = rng.next();
        uint64_t victim = 0;
        auto r = t.insert(k, &victim);
        inserted.insert(k);
        if (r == CuckooInsert::EvictedVictim) {
            ++evictions;
            inserted.erase(victim);
        }
    }
    EXPECT_GT(evictions, 0u);
    EXPECT_EQ(t.stats().evictions, evictions);
    EXPECT_LE(t.size(), t.capacity());
    // Size accounting: inserted-minus-evicted equals table size.
    EXPECT_EQ(t.size(), inserted.size());
    for (uint64_t k : inserted)
        EXPECT_TRUE(t.contains(k));
}

TEST(Cuckoo, CapacityNeverExceeded)
{
    auto t = makeTable(4);
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        t.insert(rng.next());
    EXPECT_LE(t.size(), t.capacity());
    EXPECT_EQ(t.capacity(), 8u);
}

TEST(Cuckoo, StatsCountersAdvance)
{
    auto t = makeTable(8);
    t.insert(1);
    t.contains(1);
    t.contains(2);
    const auto &s = t.stats();
    EXPECT_GE(s.lookups, 2u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_GE(s.hits, 1u);
}

TEST(Cuckoo, InsertDoesNotCountLookups)
{
    // Regression: insert()'s internal presence probe used to run through
    // contains(), inflating the lookup/hit counters with traffic the
    // caller never issued (and skewing the VAT hit rate).
    auto t = makeTable(8);
    EXPECT_EQ(t.insert(1), CuckooInsert::Inserted);
    EXPECT_EQ(t.insert(1), CuckooInsert::AlreadyPresent);
    EXPECT_EQ(t.insert(2), CuckooInsert::Inserted);
    EXPECT_EQ(t.stats().lookups, 0u);
    EXPECT_EQ(t.stats().hits, 0u);
    EXPECT_EQ(t.stats().insertions, 2u);

    // Externally observed traffic still counts.
    EXPECT_TRUE(t.contains(1));
    EXPECT_FALSE(t.contains(3));
    EXPECT_EQ(t.stats().lookups, 2u);
    EXPECT_EQ(t.stats().hits, 1u);
}

TEST(Cuckoo, EvictionAfterExactlyMaxDisplacements)
{
    // Regression: the displacement loop used to run max_displacements+1
    // swaps before giving up. Degenerate hashes (everything maps to
    // bucket 0 of both ways, capacity 2) make the chain length exact:
    // a third insert must swap precisely kMaxDisp times, then evict.
    constexpr unsigned kMaxDisp = 5;
    CuckooTable<uint64_t> t(
        1, [](const uint64_t &) { return uint64_t{0}; },
        [](const uint64_t &) { return uint64_t{0}; }, kMaxDisp);

    EXPECT_EQ(t.insert(10), CuckooInsert::Inserted);
    EXPECT_EQ(t.insert(20), CuckooInsert::Inserted);
    EXPECT_EQ(t.stats().displacements, 0u);

    uint64_t victim = 0;
    EXPECT_EQ(t.insert(30, &victim), CuckooInsert::EvictedVictim);
    EXPECT_EQ(t.stats().displacements, kMaxDisp);
    EXPECT_EQ(t.stats().evictions, 1u);
    EXPECT_EQ(t.size(), 2u);

    // The chain alternates ways each swap, so with an odd bound the
    // victim is deterministic: 10→way0, 20→way1, then the pending key
    // cycles 30,10,20,30,10 and ends holding 20.
    EXPECT_EQ(victim, 20u);
    EXPECT_TRUE(t.contains(10));
    EXPECT_TRUE(t.contains(30));
    EXPECT_FALSE(t.contains(20));
}

TEST(Cuckoo, ExportMetricsMatchesStats)
{
    auto t = makeTable(8);
    t.insert(1);
    t.insert(2);
    t.contains(1);
    t.contains(9);

    MetricRegistry registry;
    t.exportMetrics(registry, "cuckoo");
    EXPECT_EQ(registry.counterValue("cuckoo.lookups"), 2u);
    EXPECT_EQ(registry.counterValue("cuckoo.hits"), 1u);
    EXPECT_EQ(registry.counterValue("cuckoo.insertions"), 2u);
    EXPECT_EQ(registry.counterValue("cuckoo.displacements"),
              t.stats().displacements);
    EXPECT_EQ(registry.counterValue("cuckoo.evictions"), 0u);
    EXPECT_EQ(registry.counterValue("cuckoo.size"), 2u);
    EXPECT_EQ(registry.counterValue("cuckoo.capacity"), 16u);
    EXPECT_DOUBLE_EQ(registry.gaugeValue("cuckoo.hit_rate"), 0.5);
}

TEST(Cuckoo, ForEachVisitsAllKeys)
{
    auto t = makeTable(16);
    std::set<uint64_t> expect = {3, 5, 8, 13, 21};
    for (uint64_t k : expect)
        t.insert(k);
    std::set<uint64_t> seen;
    t.forEach([&](const uint64_t &k) { seen.insert(k); });
    EXPECT_EQ(seen, expect);
}

/** Randomized differential test against std::set. */
TEST(Cuckoo, PropertyMatchesReferenceSetWithoutEviction)
{
    auto t = makeTable(512);
    std::set<uint64_t> ref;
    Rng rng(17);
    for (int op = 0; op < 4000; ++op) {
        uint64_t k = rng.nextBelow(600);
        switch (rng.nextBelow(3)) {
          case 0: {
            auto r = t.insert(k);
            ASSERT_NE(r, CuckooInsert::EvictedVictim);
            ref.insert(k);
            break;
          }
          case 1:
            EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
            break;
          default:
            EXPECT_EQ(t.contains(k), ref.count(k) > 0) << k;
        }
        ASSERT_EQ(t.size(), ref.size());
    }
}

class CuckooLoadTest : public testing::TestWithParam<size_t>
{
};

TEST_P(CuckooLoadTest, HalfLoadEvictionsAreRare)
{
    // The VAT over-provisions 2× (§VII-A), which puts the table at the
    // 2-ary cuckoo load threshold when full: insertion failures are
    // legitimate there — that is exactly why the paper specifies the
    // evict-one-entry fallback — but they must stay rare.
    size_t buckets = GetParam();
    auto t = makeTable(buckets);
    Rng rng(buckets);
    for (size_t i = 0; i < buckets; ++i) // 50% of 2×buckets capacity
        t.insert(rng.next());
    EXPECT_LE(t.stats().evictions, std::max<size_t>(1, buckets / 50));
}

TEST_P(CuckooLoadTest, QuarterLoadInsertsWithoutEviction)
{
    // Well below the threshold, the displacement bound is never hit.
    size_t buckets = GetParam();
    auto t = makeTable(buckets, 32);
    Rng rng(buckets * 31 + 7);
    for (size_t i = 0; i < buckets / 2; ++i)
        ASSERT_NE(t.insert(rng.next()), CuckooInsert::EvictedVictim);
    EXPECT_EQ(t.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CuckooLoadTest,
                         testing::Values(8, 16, 64, 256, 1024, 4096));

} // namespace
} // namespace draco
