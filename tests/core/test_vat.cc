/**
 * @file
 * Tests for the Validated Argument Table.
 */

#include <gtest/gtest.h>

#include "core/vat.hh"
#include "hash/crc64.hh"
#include "support/random.hh"

namespace draco::core {
namespace {

ArgKey
keyOf(uint64_t bitmask, uint64_t a0, uint64_t a2 = 0)
{
    seccomp::ArgVector args{};
    args[0] = a0;
    args[2] = a2;
    return ArgKey(bitmask, args);
}

constexpr uint64_t kReadMask = 0xffULL << 16 | 0xfULL; // fd + count

TEST(Vat, ConfigureAndLookupMiss)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    EXPECT_TRUE(vat.configured(0));
    EXPECT_FALSE(vat.configured(1));
    EXPECT_EQ(vat.bitmask(0), kReadMask);
    EXPECT_FALSE(vat.lookup(0, keyOf(kReadMask, 3, 64)).has_value());
}

TEST(Vat, InsertThenHit)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    ArgKey key = keyOf(kReadMask, 3, 64);
    vat.insert(0, key);
    auto hit = vat.lookup(0, key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(vat.setCount(0), 1u);
}

TEST(Vat, HitTokenHashMatchesCrc)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    ArgKey key = keyOf(kReadMask, 3, 64);
    vat.insert(0, key);
    auto hit = vat.lookup(0, key);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->token.hash, vatHash(hit->token.way, key));
    // The token is the diffused CRC of the key's way (see vatHash).
    uint64_t ecma = crc64Ecma().compute(key.data(), key.size());
    uint64_t notEcma = crc64NotEcma().compute(key.data(), key.size());
    if (hit->token.way == CuckooWay::H1)
        EXPECT_EQ(hit->token.hash, mix64(ecma));
    else
        EXPECT_EQ(hit->token.hash, mix64(notEcma));
}

TEST(Vat, SlotContentsReadsByLocation)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    ArgKey key = keyOf(kReadMask, 5, 128);
    vat.insert(0, key);
    auto hit = vat.lookup(0, key);
    ASSERT_TRUE(hit);
    auto contents = vat.slotContents(0, hit->token);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(*contents, key);
}

TEST(Vat, SlotContentsEmptyWhenUnoccupied)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    EXPECT_FALSE(
        vat.slotContents(0, VatToken{CuckooWay::H1, 12345}).has_value());
}

TEST(Vat, EntryAddressesDistinctAndAligned)
{
    Vat vat;
    vat.configure(0, kReadMask, 8);
    uint64_t a1 = vat.entryAddress(0, VatToken{CuckooWay::H1, 0});
    uint64_t a2 = vat.entryAddress(0, VatToken{CuckooWay::H1, 1});
    uint64_t a3 = vat.entryAddress(0, VatToken{CuckooWay::H2, 0});
    EXPECT_NE(a1, a2);
    EXPECT_NE(a1, a3);
    EXPECT_NE(a2, a3);
}

TEST(Vat, AddressStableForSameToken)
{
    Vat vat;
    vat.configure(7, kReadMask, 8);
    VatToken token{CuckooWay::H2, 98765};
    EXPECT_EQ(vat.entryAddress(7, token), vat.entryAddress(7, token));
}

TEST(Vat, TablesHaveDistinctAddressRegions)
{
    Vat vat;
    vat.configure(0, kReadMask, 64);
    vat.configure(1, kReadMask, 64);
    uint64_t last0 = vat.entryAddress(0, VatToken{CuckooWay::H2, 63});
    uint64_t first1 = vat.entryAddress(1, VatToken{CuckooWay::H1, 0});
    EXPECT_NE(last0 / 4096, first1 / 4096);
}

TEST(Vat, EraseRemovesEntry)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    ArgKey key = keyOf(kReadMask, 3, 64);
    vat.insert(0, key);
    EXPECT_TRUE(vat.erase(0, key));
    EXPECT_FALSE(vat.lookup(0, key).has_value());
    EXPECT_FALSE(vat.erase(0, key));
}

TEST(Vat, OverProvisionedTwoX)
{
    // §VII-A: table capacity is at least twice the estimated set count,
    // so inserting all estimated sets keeps the table at or below the
    // cuckoo threshold — insert-pressure evictions stay (near) zero.
    Vat vat;
    vat.configure(0, kReadMask, 100);
    for (uint64_t i = 0; i < 100; ++i)
        vat.insert(0, keyOf(kReadMask, i, i * 8));
    EXPECT_LE(vat.evictions(), 1u);
    EXPECT_GE(vat.setCount(0), 99u);
}

TEST(Vat, PressureEvictsExactlyOneAtATime)
{
    Vat vat;
    vat.configure(0, kReadMask, 2); // tiny: capacity 4
    uint64_t inserted = 0;
    for (uint64_t i = 0; i < 200; ++i) {
        vat.insert(0, keyOf(kReadMask, i, 1));
        ++inserted;
        EXPECT_EQ(vat.setCount(0), inserted - vat.evictions());
    }
    EXPECT_GT(vat.evictions(), 0u);
    EXPECT_LE(vat.setCount(0), 4u);
}

TEST(Vat, FootprintBytesReasonable)
{
    Vat vat;
    // read-like: 12 checked bytes -> 16B key + 8B metadata = 24B/entry.
    vat.configure(0, kReadMask, 8);
    // buckets = 8 per way, 16 entries total.
    EXPECT_EQ(vat.footprintBytes(), 16u * 24u);
}

TEST(Vat, FootprintScalesWithTables)
{
    Vat vat;
    vat.configure(0, kReadMask, 8);
    size_t one = vat.footprintBytes();
    vat.configure(1, kReadMask, 8);
    EXPECT_EQ(vat.footprintBytes(), 2 * one);
    EXPECT_EQ(vat.tableCount(), 2u);
}

TEST(Vat, DistinctSidsIsolated)
{
    Vat vat;
    vat.configure(0, kReadMask, 4);
    vat.configure(1, kReadMask, 4);
    ArgKey key = keyOf(kReadMask, 3, 64);
    vat.insert(0, key);
    EXPECT_TRUE(vat.lookup(0, key));
    EXPECT_FALSE(vat.lookup(1, key));
}

TEST(Vat, RandomizedInsertLookupProperty)
{
    // Inserting only up to half the estimated capacity: everything
    // must be findable (no threshold effects at 25% load).
    Vat vat;
    vat.configure(0, kReadMask, 256);
    Rng rng(77);
    std::vector<ArgKey> keys;
    for (int i = 0; i < 128; ++i) {
        ArgKey key = keyOf(kReadMask, rng.nextBelow(1 << 20),
                           rng.nextBelow(1 << 16));
        vat.insert(0, key);
        keys.push_back(key);
    }
    EXPECT_EQ(vat.evictions(), 0u);
    for (const auto &key : keys)
        EXPECT_TRUE(vat.lookup(0, key).has_value());
}

TEST(VatDeathTest, ConfigureWithoutBitmaskIsFatal)
{
    Vat vat;
    EXPECT_EXIT(vat.configure(0, 0, 4), testing::ExitedWithCode(1), "");
}

TEST(VatDeathTest, InsertUnconfiguredPanics)
{
    Vat vat;
    EXPECT_DEATH(vat.insert(3, keyOf(kReadMask, 1, 2)), "");
}

} // namespace
} // namespace draco::core
