/**
 * @file
 * Tests for the hardware Draco engine: Table-I flows, speculation
 * safety, context-switch isolation, and semantic equivalence.
 */

#include <gtest/gtest.h>

#include "core/hw_engine.hh"
#include "seccomp/profile_gen.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/random.hh"
#include "workload/generator.hh"

namespace draco::core {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {},
        uint64_t pc = 0x400800)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    req.pc = pc;
    return req;
}

seccomp::Profile
readProfile()
{
    seccomp::Profile p("p");
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});
    p.allowTuple(os::sc::read, {4, 0, 128, 0, 0, 0});
    p.allow(os::sc::getpid);
    return p;
}

TEST(HwEngine, IdOnlyFlow)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto out = engine.onSyscall(request(os::sc::getpid));
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.flow, HwFlow::IdOnly);
    EXPECT_TRUE(out.fast());
}

TEST(HwEngine, ColdMissIsFlow6ThenWarmsToFlow1)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0x1000, 64});

    // Cold: STB miss, SLB miss, VAT miss -> filter runs (flow 6).
    auto out = engine.onSyscall(req);
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.flow, HwFlow::F6);
    EXPECT_TRUE(out.filterRun);
    EXPECT_TRUE(out.vatInserted);
    EXPECT_FALSE(out.fast());

    // Warm: everything hits (flow 1).
    out = engine.onSyscall(req);
    EXPECT_EQ(out.flow, HwFlow::F1);
    EXPECT_TRUE(out.fast());
    EXPECT_TRUE(out.accessHit);
    EXPECT_TRUE(out.stbHit);
    EXPECT_TRUE(out.preloadHit);
    EXPECT_TRUE(out.headMemAddrs.empty());
}

TEST(HwEngine, Flow5WhenSlbWarmButStbCold)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    engine.onSyscall(request(os::sc::read, {3, 0, 64}, 0x400800));
    // Same (sid, args) from a different PC: STB misses, SLB hits.
    auto out = engine.onSyscall(request(os::sc::read, {3, 0, 64},
                                        0x990000));
    EXPECT_EQ(out.flow, HwFlow::F5);
    EXPECT_TRUE(out.fast());
}

TEST(HwEngine, Flow2WhenArgsChangeUnderSamePc)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto reqA = request(os::sc::read, {3, 0, 64});
    auto reqB = request(os::sc::read, {4, 0, 128});
    engine.onSyscall(reqA); // flow 6, warms everything for tuple A
    engine.onSyscall(reqB); // flow 2/4/6 depending on state; warm both
    engine.onSyscall(reqA);
    // Now SLB holds both tuples; STB hash predicts the *last* tuple.
    auto out = engine.onSyscall(reqB);
    // STB hit; preload probes with A's hash... which misses or hits
    // depending on which tuple the STB saw last. Either way the access
    // must hit (both tuples cached) and be fast.
    EXPECT_TRUE(out.fast());
    EXPECT_TRUE(out.accessHit);
    EXPECT_TRUE(out.allowed);
}

TEST(HwEngine, Flow3PreloadFetchLeadsToAccessHit)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0x1000, 64});
    engine.onSyscall(req); // flow 6: VAT + STB warm, SLB warm
    // Evict the SLB entry but keep STB and VAT.
    engine.slb().invalidateAll();
    auto out = engine.onSyscall(req);
    EXPECT_EQ(out.flow, HwFlow::F3);
    EXPECT_TRUE(out.fast());
    // The fetch happened during preload, not at the head.
    EXPECT_FALSE(out.preloadMemAddrs.empty());
    EXPECT_TRUE(out.headMemAddrs.empty());
}

TEST(HwEngine, DeniedCallRunsFilterAndStaysDenied)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto out = engine.onSyscall(request(os::sc::read, {9, 0, 9}));
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.flow, HwFlow::Denied);
    EXPECT_TRUE(out.filterRun);
    // Still denied (and never cached) on repeat.
    out = engine.onSyscall(request(os::sc::read, {9, 0, 9}));
    EXPECT_FALSE(out.allowed);
    EXPECT_TRUE(out.filterRun);
}

TEST(HwEngine, DisallowedSyscallDenied)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto out = engine.onSyscall(request(os::sc::write, {1, 0, 8}));
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.flow, HwFlow::Denied);
}

TEST(HwEngine, SquashLeavesNoSideEffects)
{
    // §IX: preload followed by a squash must leave the SLB (contents
    // AND replacement state) as if the preload never happened.
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0x1000, 64});
    engine.onSyscall(req);          // warm VAT + STB
    engine.slb().invalidateAll();   // SLB cold, STB warm

    uint64_t preloadHitsBefore = engine.slbStats().preloadHits;
    engine.onDispatch(req.pc);      // speculative preload stages entry
    engine.onSquash();              // transient squashed

    // The SLB must still be empty: access from a *fresh* dispatch with
    // no preload (STB invalidated to prevent re-staging).
    engine.stb().invalidateAll();
    engine.onDispatch(req.pc);
    auto out = engine.onRobHead(req);
    EXPECT_EQ(out.flow, HwFlow::F6) << "squashed preload leaked into SLB";
    EXPECT_EQ(engine.slbStats().preloadHits, preloadHitsBefore);
    EXPECT_EQ(engine.stats().squashes, 1u);
}

TEST(HwEngine, SquashedPreloadStillCorrectLater)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0x1000, 64});
    engine.onSyscall(req);
    engine.slb().invalidateAll();
    engine.onDispatch(req.pc);
    engine.onSquash();
    // Re-executed instruction: full dispatch+head must succeed.
    auto out = engine.onSyscall(req);
    EXPECT_TRUE(out.allowed);
    EXPECT_TRUE(out.accessHit);
}

TEST(HwEngine, StalePreloadFromOtherPcIsDropped)
{
    // Regression (§IX): a dispatch at PC A stages a preload in the
    // Temporary Buffer; if the syscall that actually reaches the ROB
    // head was fetched at a different PC, the staged entries belong to
    // a prediction that never came true and must be dropped, not
    // committed into the SLB by the unrelated syscall.
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto reqA = request(os::sc::read, {3, 0, 64}, 0x400800);
    engine.onSyscall(reqA);       // warm VAT + STB for PC A
    engine.slb().invalidateAll(); // SLB cold, STB warm

    // PC A's dispatch stages tuple A, but the head sees the *same sid*
    // from a different PC — exactly the case where a sid-keyed commit
    // would adopt the stale staged entry.
    engine.onDispatch(reqA.pc);
    auto reqB = request(os::sc::read, {4, 0, 128}, 0x990000);
    engine.onRobHead(reqB);

    // Tuple A must not have leaked into the SLB: a fresh access with
    // no preload of its own (STB invalidated) has to fall through to
    // the VAT.
    engine.stb().invalidateAll();
    auto out = engine.onSyscall(reqA);
    EXPECT_FALSE(out.accessHit) << "stale preload leaked into SLB";
    EXPECT_EQ(out.flow, HwFlow::F6);
    EXPECT_TRUE(out.allowed);
    EXPECT_FALSE(out.filterRun); // VAT still remembers tuple A
}

TEST(HwEngine, TableOneFlowClassification)
{
    // Drive one syscall through each Table-I flow and check both the
    // engine's flow counters and their registry export agree with the
    // per-call classification.
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto reqA = request(os::sc::read, {3, 0, 64}, 0x400800);
    auto reqB = request(os::sc::read, {4, 0, 128}, 0x400800);

    // ID-only syscall: SPT says no argument checks.
    ASSERT_EQ(engine.onSyscall(request(os::sc::getpid, {}, 0x100)).flow,
              HwFlow::IdOnly);
    // Cold miss: filter validates and fills the VAT.
    ASSERT_EQ(engine.onSyscall(reqA).flow, HwFlow::F6);
    // Fully warm repeat: STB hit + preload hit + access hit.
    ASSERT_EQ(engine.onSyscall(reqA).flow, HwFlow::F1);
    // SLB evicted, STB warm: preload fetches from the VAT in time.
    engine.slb().invalidateAll();
    ASSERT_EQ(engine.onSyscall(reqA).flow, HwFlow::F3);
    // Same tuple from a new PC: no prediction, but the SLB access hits.
    ASSERT_EQ(engine.onSyscall(request(os::sc::read, {3, 0, 64},
                                       0x990000))
                  .flow,
              HwFlow::F5);
    // Same PC, different tuple: prediction hits the *old* tuple, the
    // access misses, the VAT misses -> filter revalidates.
    ASSERT_EQ(engine.onSyscall(reqB).flow, HwFlow::F2);
    // STB now predicts tuple B; evict the SLB and issue tuple A: the
    // preload fetches the wrong entry, the access misses, the VAT hits.
    engine.slb().invalidateAll();
    ASSERT_EQ(engine.onSyscall(reqA).flow, HwFlow::F4);
    // Argument set outside the profile.
    ASSERT_EQ(engine.onSyscall(request(os::sc::read, {9, 0, 9}, 0x7700))
                  .flow,
              HwFlow::Denied);

    const auto &stats = engine.stats();
    EXPECT_EQ(stats.syscalls, 8u);
    for (size_t i = 0; i < stats.flows.size(); ++i)
        EXPECT_EQ(stats.flows[i], 1u) << hwFlowMetricName(
            static_cast<HwFlow>(i));

    MetricRegistry registry;
    engine.exportMetrics(registry, "hw");
    EXPECT_EQ(registry.counterValue("hw.syscalls"), 8u);
    for (size_t i = 0; i < stats.flows.size(); ++i) {
        std::string name = MetricRegistry::join(
            "hw.flows", hwFlowMetricName(static_cast<HwFlow>(i)));
        EXPECT_EQ(registry.counterValue(name), stats.flows[i]) << name;
    }
    // Fast flows are IdOnly/F1/F3/F5 (Table I); slow excludes denials.
    EXPECT_EQ(registry.counterValue("hw.flows.fast"), 4u);
    EXPECT_EQ(registry.counterValue("hw.flows.slow"), 3u);
    EXPECT_DOUBLE_EQ(registry.gaugeValue("hw.flows.fast_fraction"), 0.5);
    // The scheduled process's VAT rides along under the same prefix.
    EXPECT_EQ(registry.counterValue("hw.vat.insertions"), 2u);
}

TEST(HwEngine, ContextSwitchIsolatesProcesses)
{
    // A process must never hit on another process's cached state.
    seccomp::Profile pa = readProfile();
    seccomp::Profile pb("pb");
    pb.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});

    HwProcessContext procA(pa), procB(pb);
    DracoHardwareEngine engine;
    engine.switchTo(&procA);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);
    EXPECT_EQ(engine.onSyscall(req).flow, HwFlow::F1);

    engine.switchTo(&procB);
    auto out = engine.onSyscall(req);
    // B's own VAT is cold: the SLB/STB must not serve A's entries.
    EXPECT_EQ(out.flow, HwFlow::F6);
    EXPECT_TRUE(out.filterRun);
}

TEST(HwEngine, SameProcessRescheduleKeepsState)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);
    engine.switchTo(&proc); // same process: no invalidation (§VII-B)
    EXPECT_EQ(engine.onSyscall(req).flow, HwFlow::F1);
    EXPECT_EQ(engine.stats().contextSwitches, 0u);
}

TEST(HwEngine, SptSaveRestoreSurvivesRoundTrip)
{
    HwProcessContext procA(readProfile());
    HwProcessContext procB(seccomp::dockerDefaultProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&procA);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);

    uint64_t sptHitsBefore = engine.spt().hits();
    engine.switchTo(&procB);
    engine.switchTo(&procA, /*spt_save_restore=*/true);
    // SPT restored: the head lookup hits without a memory fill. SLB is
    // still cold (only the SPT is saved), so flow falls back to the
    // VAT, but no softSpt read appears in headMemAddrs.
    auto out = engine.onSyscall(req);
    EXPECT_TRUE(out.allowed);
    EXPECT_GT(engine.spt().hits(), sptHitsBefore);
    EXPECT_GT(engine.stats().sptRestoredEntries, 0u);
    for (uint64_t addr : out.headMemAddrs)
        EXPECT_NE(addr, procA.softSptAddress(req.sid));
}

TEST(HwEngine, NoSaveRestoreForcesSptRefill)
{
    HwProcessContext procA(readProfile());
    HwProcessContext procB(seccomp::dockerDefaultProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&procA, false);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);
    engine.switchTo(&procB, false);
    engine.switchTo(&procA, false);
    auto out = engine.onSyscall(req);
    bool sawSptFill = false;
    for (uint64_t addr : out.headMemAddrs)
        sawSptFill |= addr == procA.softSptAddress(req.sid);
    EXPECT_TRUE(sawSptFill);
    EXPECT_EQ(engine.stats().sptRestoredEntries, 0u);
}

TEST(HwEngine, PreloadDisabledNeverPreloads)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine(false);
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);
    auto out = engine.onSyscall(req);
    // Without preloading the warm path is flow 5 (STB is never
    // consulted for preloads; stbHit is false in the result).
    EXPECT_EQ(out.flow, HwFlow::F5);
    EXPECT_EQ(engine.slbStats().preloadProbes, 0u);
}

TEST(HwEngine, FlowCountsAccumulate)
{
    HwProcessContext proc(readProfile());
    DracoHardwareEngine engine;
    engine.switchTo(&proc);
    auto req = request(os::sc::read, {3, 0, 64});
    engine.onSyscall(req);
    engine.onSyscall(req);
    engine.onSyscall(req);
    const auto &stats = engine.stats();
    EXPECT_EQ(stats.syscalls, 3u);
    EXPECT_EQ(stats.flows[static_cast<size_t>(HwFlow::F6)], 1u);
    EXPECT_EQ(stats.flows[static_cast<size_t>(HwFlow::F1)], 2u);
}

TEST(HwEngine, VatSharedAcrossEngineInstances)
{
    // The VAT is per-process software state: a second core (engine)
    // picking up the process sees already-validated sets (flow 5/6
    // without a filter run).
    HwProcessContext proc(readProfile());
    auto req = request(os::sc::read, {3, 0, 64});
    {
        DracoHardwareEngine engine1;
        engine1.switchTo(&proc);
        engine1.onSyscall(req);
    }
    DracoHardwareEngine engine2;
    engine2.switchTo(&proc);
    auto out = engine2.onSyscall(req);
    EXPECT_TRUE(out.allowed);
    EXPECT_FALSE(out.filterRun) << "VAT entry should have been reused";
    EXPECT_EQ(out.flow, HwFlow::F6);
}

/** Hardware Draco must agree with the profile on arbitrary streams. */
class HwEquivalenceTest : public testing::TestWithParam<const char *>
{
};

TEST_P(HwEquivalenceTest, MatchesProfileOnWorkloadTraces)
{
    const auto *app = workload::workloadByName(GetParam());
    ASSERT_NE(app, nullptr);

    workload::TraceGenerator profGen(*app, 99);
    seccomp::ProfileRecorder recorder;
    for (int i = 0; i < 2000; ++i)
        recorder.record(profGen.next().req);
    seccomp::Profile profile = recorder.makeComplete(app->name);

    HwProcessContext proc(profile);
    DracoHardwareEngine engine;
    engine.switchTo(&proc);

    workload::TraceGenerator gen(*app, 4321);
    Rng rng(1);
    for (int i = 0; i < 6000; ++i) {
        os::SyscallRequest req = gen.next().req;
        // Sprinkle squashed speculation between calls.
        if (rng.chance(0.1)) {
            engine.onDispatch(req.pc);
            engine.onSquash();
        }
        auto out = engine.onSyscall(req);
        EXPECT_EQ(out.allowed, profile.allows(req)) << "sid " << req.sid;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, HwEquivalenceTest,
                         testing::Values("httpd", "elasticsearch",
                                         "redis", "mysql", "fifo-ipc"));

} // namespace
} // namespace draco::core
