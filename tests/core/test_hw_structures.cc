/**
 * @file
 * Tests for the hardware SPT, SLB, STB, and Temporary Buffer.
 */

#include <gtest/gtest.h>

#include "core/hw_structures.hh"

namespace draco::core {
namespace {

ArgKey
keyOf(uint64_t v)
{
    seccomp::ArgVector args{};
    args[0] = v;
    return ArgKey(0xf, args);
}

TEST(HwSpt, MissThenFillThenHit)
{
    HardwareSpt spt;
    EXPECT_FALSE(spt.lookup(17).has_value());
    spt.fill(17, 0xfff);
    auto entry = spt.lookup(17);
    ASSERT_TRUE(entry);
    EXPECT_EQ(entry->bitmask, 0xfffu);
    EXPECT_EQ(entry->sid, 17);
}

TEST(HwSpt, DirectMappedConflict)
{
    HardwareSpt spt;
    // 40 and 424 map to the same slot (424 - 384 == 40).
    spt.fill(40, 1);
    ASSERT_TRUE(spt.lookup(40));
    spt.fill(424, 2);
    EXPECT_FALSE(spt.lookup(40).has_value());
    ASSERT_TRUE(spt.lookup(424));
}

TEST(HwSpt, InvalidateAllClears)
{
    HardwareSpt spt;
    spt.fill(1, 1);
    spt.fill(2, 2);
    spt.invalidateAll();
    EXPECT_FALSE(spt.lookup(1));
    EXPECT_FALSE(spt.lookup(2));
}

TEST(HwSpt, AccessedBitsTrackTouches)
{
    HardwareSpt spt;
    spt.fill(1, 1);
    spt.fill(2, 2);
    spt.clearAccessed();
    EXPECT_TRUE(spt.accessedEntries().empty());
    spt.lookup(1);
    auto accessed = spt.accessedEntries();
    ASSERT_EQ(accessed.size(), 1u);
    EXPECT_EQ(accessed[0].sid, 1);
}

TEST(HwSpt, HitCounters)
{
    HardwareSpt spt;
    spt.lookup(9);
    spt.fill(9, 0);
    spt.lookup(9);
    EXPECT_EQ(spt.lookups(), 2u);
    EXPECT_EQ(spt.hits(), 1u);
}

TEST(Slb, DefaultGeometryMatchesTableII)
{
    Slb slb;
    EXPECT_EQ(slb.geometry(1).entries, 32u);
    EXPECT_EQ(slb.geometry(2).entries, 64u);
    EXPECT_EQ(slb.geometry(3).entries, 64u);
    EXPECT_EQ(slb.geometry(4).entries, 32u);
    EXPECT_EQ(slb.geometry(5).entries, 32u);
    EXPECT_EQ(slb.geometry(6).entries, 16u);
    for (unsigned argc = 1; argc <= 6; ++argc)
        EXPECT_EQ(slb.geometry(argc).ways, 4u);
}

TEST(Slb, FillThenAccessHit)
{
    Slb slb;
    VatToken token{CuckooWay::H1, 0xabc};
    slb.fill(2, 0, token, keyOf(5));
    auto got = slb.accessLookup(2, 0, keyOf(5));
    ASSERT_TRUE(got);
    EXPECT_EQ(got->hash, 0xabcu);
    EXPECT_EQ(slb.stats().accessHits, 1u);
}

TEST(Slb, AccessMissOnDifferentKeyOrSid)
{
    Slb slb;
    slb.fill(2, 0, VatToken{CuckooWay::H1, 1}, keyOf(5));
    EXPECT_FALSE(slb.accessLookup(2, 0, keyOf(6)));
    EXPECT_FALSE(slb.accessLookup(2, 1, keyOf(5)));
}

TEST(Slb, SubtablesIsolatedByArgc)
{
    Slb slb;
    slb.fill(2, 0, VatToken{CuckooWay::H1, 1}, keyOf(5));
    EXPECT_FALSE(slb.accessLookup(3, 0, keyOf(5)));
}

TEST(Slb, PreloadProbeMatchesOnHash)
{
    Slb slb;
    VatToken token{CuckooWay::H2, 77};
    slb.fill(1, 3, token, keyOf(9));
    EXPECT_TRUE(slb.preloadProbe(1, 3, token));
    EXPECT_FALSE(slb.preloadProbe(1, 3, VatToken{CuckooWay::H2, 78}));
    EXPECT_FALSE(slb.preloadProbe(1, 3, VatToken{CuckooWay::H1, 77}));
    EXPECT_EQ(slb.stats().preloadProbes, 3u);
    EXPECT_EQ(slb.stats().preloadHits, 1u);
}

TEST(Slb, LruEvictionWithinSet)
{
    Slb slb;
    // 1-arg subtable: 32 entries, 4 ways -> 8 sets. Same sid -> same
    // set; five distinct keys for one sid must evict the oldest.
    for (uint64_t i = 0; i < 4; ++i)
        slb.fill(1, 0, VatToken{CuckooWay::H1, i}, keyOf(i));
    // Touch key 0 so key 1 becomes LRU.
    EXPECT_TRUE(slb.accessLookup(1, 0, keyOf(0)));
    slb.fill(1, 0, VatToken{CuckooWay::H1, 99}, keyOf(99));
    EXPECT_TRUE(slb.accessLookup(1, 0, keyOf(0)));
    EXPECT_FALSE(slb.accessLookup(1, 0, keyOf(1))); // evicted
    EXPECT_TRUE(slb.accessLookup(1, 0, keyOf(99)));
}

TEST(Slb, PreloadProbeDoesNotRefreshLru)
{
    // §IX: speculative probes must not perturb replacement state.
    Slb slb;
    for (uint64_t i = 0; i < 4; ++i)
        slb.fill(1, 0, VatToken{CuckooWay::H1, i}, keyOf(i));
    // Probe entry 0 speculatively (would refresh LRU if buggy).
    EXPECT_TRUE(slb.preloadProbe(1, 0, VatToken{CuckooWay::H1, 0}));
    // Fill a fifth entry: victim must be entry 0 (oldest by *access*).
    slb.fill(1, 0, VatToken{CuckooWay::H1, 99}, keyOf(99));
    EXPECT_FALSE(slb.accessLookup(1, 0, keyOf(0)));
}

TEST(Slb, RefillSameKeyUpdatesToken)
{
    Slb slb;
    slb.fill(1, 0, VatToken{CuckooWay::H1, 1}, keyOf(5));
    slb.fill(1, 0, VatToken{CuckooWay::H2, 2}, keyOf(5));
    auto got = slb.accessLookup(1, 0, keyOf(5));
    ASSERT_TRUE(got);
    EXPECT_EQ(got->way, CuckooWay::H2);
    EXPECT_EQ(got->hash, 2u);
}

TEST(Slb, InvalidateAllClears)
{
    Slb slb;
    slb.fill(1, 0, VatToken{CuckooWay::H1, 1}, keyOf(5));
    slb.invalidateAll();
    EXPECT_FALSE(slb.accessLookup(1, 0, keyOf(5)));
}

TEST(Slb, CustomGeometry)
{
    std::array<TableGeometry, 6> geom{{{8, 2}, {8, 2}, {8, 2},
                                       {8, 2}, {8, 2}, {8, 2}}};
    Slb slb(geom);
    EXPECT_EQ(slb.geometry(3).entries, 8u);
    EXPECT_EQ(slb.geometry(3).ways, 2u);
}

TEST(Stb, MissThenUpdateThenHit)
{
    Stb stb;
    EXPECT_FALSE(stb.lookup(0x400100));
    stb.update(0x400100, 17, VatToken{CuckooWay::H1, 5});
    auto pred = stb.lookup(0x400100);
    ASSERT_TRUE(pred);
    EXPECT_EQ(pred->sid, 17);
    EXPECT_EQ(pred->token.hash, 5u);
    EXPECT_EQ(stb.stats().lookups, 2u);
    EXPECT_EQ(stb.stats().hits, 1u);
}

TEST(Stb, UpdateExistingEntryChangesHash)
{
    Stb stb;
    stb.update(0x400100, 17, VatToken{CuckooWay::H1, 5});
    stb.update(0x400100, 17, VatToken{CuckooWay::H2, 9});
    auto pred = stb.lookup(0x400100);
    ASSERT_TRUE(pred);
    EXPECT_EQ(pred->token.way, CuckooWay::H2);
    EXPECT_EQ(pred->token.hash, 9u);
}

TEST(Stb, TwoWaySetEviction)
{
    Stb stb;
    // Three PCs in the same set (128 sets, pc>>4 selects).
    uint64_t base = 0x400000;
    uint64_t stride = 128 * 16; // same set index
    stb.update(base, 1, {});
    stb.update(base + stride, 2, {});
    stb.lookup(base); // make base MRU
    stb.update(base + 2 * stride, 3, {});
    EXPECT_TRUE(stb.lookup(base));
    EXPECT_FALSE(stb.lookup(base + stride)); // LRU victim
    EXPECT_TRUE(stb.lookup(base + 2 * stride));
}

TEST(Stb, InvalidateAllClears)
{
    Stb stb;
    stb.update(0x400100, 1, {});
    stb.invalidateAll();
    EXPECT_FALSE(stb.lookup(0x400100));
}

TEST(TempBuffer, StageAndTake)
{
    TemporaryBuffer temp;
    temp.stage({5, 2, VatToken{CuckooWay::H1, 7}, keyOf(1)});
    EXPECT_EQ(temp.size(), 1u);
    auto staged = temp.take(5);
    ASSERT_TRUE(staged);
    EXPECT_EQ(staged->argc, 2u);
    EXPECT_EQ(temp.size(), 0u);
    EXPECT_FALSE(temp.take(5));
}

TEST(TempBuffer, TakeMatchesSid)
{
    TemporaryBuffer temp;
    temp.stage({5, 2, {}, keyOf(1)});
    temp.stage({6, 2, {}, keyOf(2)});
    EXPECT_FALSE(temp.take(7));
    auto staged = temp.take(6);
    ASSERT_TRUE(staged);
    EXPECT_EQ(staged->sid, 6);
    EXPECT_EQ(temp.size(), 1u);
}

TEST(TempBuffer, BoundedAtEightEntries)
{
    TemporaryBuffer temp;
    for (uint16_t i = 0; i < 12; ++i)
        temp.stage({i, 1, {}, keyOf(i)});
    EXPECT_EQ(temp.size(), 8u);
    // Oldest four were dropped.
    EXPECT_FALSE(temp.take(0));
    EXPECT_FALSE(temp.take(3));
    EXPECT_TRUE(temp.take(4));
}

TEST(TempBuffer, ClearDiscardsEverything)
{
    TemporaryBuffer temp;
    temp.stage({1, 1, {}, keyOf(1)});
    temp.stage({2, 1, {}, keyOf(2)});
    temp.clear();
    EXPECT_EQ(temp.size(), 0u);
    EXPECT_FALSE(temp.take(1));
}

} // namespace
} // namespace draco::core
