/**
 * @file
 * Tests for the software implementation of Draco.
 */

#include <gtest/gtest.h>

#include "core/software.hh"
#include "seccomp/profile_gen.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/random.hh"
#include "workload/generator.hh"

namespace draco::core {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    req.pc = 0x400400;
    return req;
}

seccomp::Profile
readProfile()
{
    seccomp::Profile p("p");
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});
    p.allow(os::sc::getpid);
    return p;
}

TEST(DracoSw, IdOnlyPathAllowsImmediately)
{
    DracoSoftwareChecker draco(readProfile());
    auto out = draco.check(request(os::sc::getpid));
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.path, SwPath::SptAllowAll);
    EXPECT_EQ(out.vatProbes, 0u);
    EXPECT_EQ(out.filterInsns, 0u);
}

TEST(DracoSw, FirstArgCheckRunsFilterThenCaches)
{
    DracoSoftwareChecker draco(readProfile());
    auto first = draco.check(request(os::sc::read, {3, 0x1000, 64}));
    EXPECT_TRUE(first.allowed);
    EXPECT_EQ(first.path, SwPath::FilterAllowed);
    EXPECT_GT(first.filterInsns, 0u);
    EXPECT_TRUE(first.vatInserted);

    auto second = draco.check(request(os::sc::read, {3, 0x2000, 64}));
    EXPECT_TRUE(second.allowed);
    EXPECT_EQ(second.path, SwPath::VatHit);
    EXPECT_EQ(second.filterInsns, 0u);
    EXPECT_FALSE(second.vatInserted);
    EXPECT_EQ(second.vatProbes, 2u);
    EXPECT_EQ(second.hashedBytes, 16u); // fd + count, 8B each
}

TEST(DracoSw, DisallowedArgsDenied)
{
    DracoSoftwareChecker draco(readProfile());
    auto out = draco.check(request(os::sc::read, {4, 0, 64}));
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.path, SwPath::FilterDenied);
    EXPECT_FALSE(out.vatInserted);
    // Denied sets are never cached: the deny repeats.
    auto again = draco.check(request(os::sc::read, {4, 0, 64}));
    EXPECT_EQ(again.path, SwPath::FilterDenied);
}

TEST(DracoSw, DisallowedSyscallDenied)
{
    DracoSoftwareChecker draco(readProfile());
    auto out = draco.check(request(os::sc::write, {1, 0, 8}));
    EXPECT_FALSE(out.allowed);
    EXPECT_GT(out.filterInsns, 0u);
}

TEST(DracoSw, StatsAccumulate)
{
    DracoSoftwareChecker draco(readProfile());
    draco.check(request(os::sc::getpid));
    draco.check(request(os::sc::read, {3, 0, 64}));
    draco.check(request(os::sc::read, {3, 0, 64}));
    draco.check(request(os::sc::write));
    const auto &s = draco.stats();
    EXPECT_EQ(s.checks, 4u);
    EXPECT_EQ(s.sptAllowAll, 1u);
    EXPECT_EQ(s.vatHits, 1u);
    EXPECT_EQ(s.filterRuns, 2u);
    EXPECT_EQ(s.denials, 1u);
    EXPECT_EQ(s.vatInsertions, 1u);
}

TEST(DracoSw, TwoFilterCopiesDoubleInsns)
{
    DracoSoftwareChecker one(readProfile(), 1);
    DracoSoftwareChecker two(readProfile(), 2);
    auto o1 = one.check(request(os::sc::read, {3, 0, 64}));
    auto o2 = two.check(request(os::sc::read, {3, 0, 64}));
    EXPECT_EQ(o2.filterInsns, 2 * o1.filterInsns);
    EXPECT_TRUE(o2.allowed);
}

TEST(DracoSw, CacheHitAvoidsRepeatFilterCost)
{
    DracoSoftwareChecker draco(readProfile());
    draco.check(request(os::sc::read, {3, 0, 64}));
    uint64_t insnsAfterFirst = draco.stats().filterInsns;
    for (int i = 0; i < 100; ++i)
        draco.check(request(os::sc::read, {3, 0, 64}));
    EXPECT_EQ(draco.stats().filterInsns, insnsAfterFirst);
}

TEST(DracoSw, PointerVariationStaysCached)
{
    DracoSoftwareChecker draco(readProfile());
    draco.check(request(os::sc::read, {3, 0x1111, 64}));
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        auto out =
            draco.check(request(os::sc::read, {3, rng.next(), 64}));
        EXPECT_EQ(out.path, SwPath::VatHit);
    }
}

TEST(DracoSw, DockerDefaultMostlyIdOnly)
{
    DracoSoftwareChecker draco(seccomp::dockerDefaultProfile());
    auto out = draco.check(request(os::sc::read, {3, 0, 64}));
    EXPECT_EQ(out.path, SwPath::SptAllowAll);
    out = draco.check(request(os::sc::personality, {0xffffffff}));
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.path, SwPath::FilterAllowed); // first time
    out = draco.check(request(os::sc::personality, {0xffffffff}));
    EXPECT_EQ(out.path, SwPath::VatHit);
}

/**
 * The paper's core correctness claim (§V): caching is sound because
 * filters are stateless. Draco's decision must equal the profile's on
 * arbitrary request streams.
 */
class SwEquivalenceTest : public testing::TestWithParam<const char *>
{
};

TEST_P(SwEquivalenceTest, MatchesProfileOnWorkloadTraces)
{
    const auto *app = workload::workloadByName(GetParam());
    ASSERT_NE(app, nullptr);

    // A deliberately partial profile so both allow and deny paths are
    // exercised: record only half the trace, then check all of it.
    workload::TraceGenerator profGen(*app, 99);
    seccomp::ProfileRecorder recorder;
    for (int i = 0; i < 2000; ++i)
        recorder.record(profGen.next().req);
    seccomp::Profile profile = recorder.makeComplete(app->name);

    DracoSoftwareChecker draco(profile);
    workload::TraceGenerator gen(*app, 1234);
    for (int i = 0; i < 8000; ++i) {
        os::SyscallRequest req = gen.next().req;
        EXPECT_EQ(draco.check(req).allowed, profile.allows(req))
            << "sid " << req.sid;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SwEquivalenceTest,
                         testing::Values("httpd", "elasticsearch",
                                         "redis", "unixbench-syscall",
                                         "mq-ipc"));

TEST(DracoSw, RandomFuzzEquivalence)
{
    seccomp::Profile profile = seccomp::gvisorProfile();
    DracoSoftwareChecker draco(profile);
    Rng rng(555);
    for (int i = 0; i < 20000; ++i) {
        os::SyscallRequest req;
        req.sid = static_cast<uint16_t>(rng.nextBelow(440));
        for (auto &arg : req.args)
            arg = rng.chance(0.7) ? rng.nextBelow(32) : rng.next();
        EXPECT_EQ(draco.check(req).allowed, profile.allows(req))
            << "sid " << req.sid << " iter " << i;
    }
}

} // namespace
} // namespace draco::core
