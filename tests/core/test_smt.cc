/**
 * @file
 * Tests for SMT partitioning of the Draco hardware (§VII-B, §IX).
 */

#include <gtest/gtest.h>

#include "core/smt.hh"
#include "seccomp/profiles_builtin.hh"

namespace draco::core {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {},
        uint64_t pc = 0x400800)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    req.pc = pc;
    return req;
}

seccomp::Profile
readProfile()
{
    seccomp::Profile p("p");
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});
    p.allow(os::sc::getpid);
    return p;
}

TEST(Smt, PartitionGeometryScalesDown)
{
    EngineGeometry two = EngineGeometry::smtPartition(2);
    EXPECT_EQ(two.sptEntries, HardwareSpt::kEntries / 2);
    EXPECT_EQ(two.stbEntries, Stb::kEntries / 2);
    EXPECT_EQ(two.stbWays, 1u);
    for (unsigned i = 0; i < Slb::kMaxArgc; ++i) {
        EXPECT_EQ(two.slb[i].ways, 2u);
        EXPECT_EQ(two.slb[i].sets(),
                  EngineGeometry{}.slb[i].sets());
    }
}

TEST(Smt, SinglePartitionIsFullGeometry)
{
    EngineGeometry one = EngineGeometry::smtPartition(1);
    EXPECT_EQ(one.sptEntries, HardwareSpt::kEntries);
    EXPECT_EQ(one.stbEntries, Stb::kEntries);
    EXPECT_EQ(one.stbWays, Stb::kWays);
}

TEST(Smt, FourContextsStillHaveCapacity)
{
    EngineGeometry four = EngineGeometry::smtPartition(4);
    EXPECT_GE(four.sptEntries, 64u);
    EXPECT_GE(four.stbEntries, 32u);
    for (const auto &sub : four.slb)
        EXPECT_GE(sub.ways, 1u);
}

TEST(Smt, ContextsAreIsolated)
{
    // A context must never hit on another context's cached state even
    // when both run the *same* process (the §IX side-channel rule is
    // enforced structurally: partitions are disjoint).
    seccomp::Profile profile = readProfile();
    HwProcessContext proc(profile);
    SmtDracoEngine smt(2);
    smt.switchTo(0, &proc);
    smt.switchTo(1, &proc);

    auto req = request(os::sc::read, {3, 0, 64});
    auto first = smt.onSyscall(0, req);
    EXPECT_EQ(first.flow, HwFlow::F6); // cold on context 0

    // Context 1's partition is still cold: its STB/SLB never saw the
    // call. The VAT (per-process software state) is warm, so this is
    // flow 6 without a filter run.
    auto other = smt.onSyscall(1, req);
    EXPECT_EQ(other.flow, HwFlow::F6);
    EXPECT_FALSE(other.filterRun);

    // Each context independently warms to fast flows.
    EXPECT_TRUE(smt.onSyscall(0, req).fast());
    EXPECT_TRUE(smt.onSyscall(1, req).fast());
}

TEST(Smt, PerContextStatsIndependent)
{
    seccomp::Profile profile = readProfile();
    HwProcessContext procA(profile), procB(profile);
    SmtDracoEngine smt(2);
    smt.switchTo(0, &procA);
    smt.switchTo(1, &procB);

    for (int i = 0; i < 10; ++i)
        smt.onSyscall(0, request(os::sc::read, {3, 0, 64}));
    smt.onSyscall(1, request(os::sc::getpid));

    EXPECT_EQ(smt.context(0).stats().syscalls, 10u);
    EXPECT_EQ(smt.context(1).stats().syscalls, 1u);
}

TEST(Smt, SwitchOnOneContextLeavesOthersIntact)
{
    seccomp::Profile pa = readProfile();
    seccomp::Profile pb = seccomp::dockerDefaultProfile();
    HwProcessContext ca(pa), cb(pb), cc(pa);
    SmtDracoEngine smt(2);
    smt.switchTo(0, &ca);
    smt.switchTo(1, &cb);

    auto req = request(os::sc::read, {3, 0, 64});
    smt.onSyscall(0, req);
    EXPECT_TRUE(smt.onSyscall(0, req).fast());

    // Context 1 switches processes; context 0's state must survive.
    smt.switchTo(1, &cc);
    EXPECT_TRUE(smt.onSyscall(0, req).fast());
}

TEST(Smt, EquivalenceHoldsPerContext)
{
    seccomp::Profile profile = seccomp::firecrackerProfile();
    HwProcessContext proc(profile);
    SmtDracoEngine smt(4);
    for (unsigned ctx = 0; ctx < 4; ++ctx)
        smt.switchTo(ctx, &proc);

    for (uint16_t sid = 0; sid < 340; sid += 3) {
        if (!os::syscallById(sid))
            continue;
        auto req = request(sid, {1, 2, 3});
        bool truth = profile.allows(req);
        for (unsigned ctx = 0; ctx < 4; ++ctx)
            EXPECT_EQ(smt.onSyscall(ctx, req).allowed, truth)
                << "sid " << sid << " ctx " << ctx;
    }
}

TEST(SmtDeathTest, ZeroContextsIsFatal)
{
    EXPECT_EXIT(SmtDracoEngine smt(0), testing::ExitedWithCode(1), "");
}

TEST(Smt, OutOfRangeContextPanics)
{
    SmtDracoEngine smt(2);
    EXPECT_DEATH(smt.context(2), "");
}

} // namespace
} // namespace draco::core
