/**
 * @file
 * Tests for CheckSpec derivation and ArgKey byte selection.
 */

#include <gtest/gtest.h>

#include "core/checkspec.hh"

namespace draco::core {
namespace {

TEST(CheckSpec, AllowAllHasEmptyBitmask)
{
    seccomp::Profile p("p");
    p.allow(os::sc::read);
    auto specs = deriveCheckSpecs(p);
    ASSERT_TRUE(specs.count(os::sc::read));
    EXPECT_EQ(specs[os::sc::read].bitmask, 0u);
    EXPECT_FALSE(specs[os::sc::read].checksArguments());
}

TEST(CheckSpec, TupleRuleUsesFullBitmask)
{
    seccomp::Profile p("p");
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});
    auto specs = deriveCheckSpecs(p);
    const auto *desc = os::syscallById(os::sc::read);
    EXPECT_EQ(specs[os::sc::read].bitmask, desc->argumentBitmask());
    EXPECT_EQ(specs[os::sc::read].estimatedSets, 1u);
    EXPECT_EQ(specs[os::sc::read].argCount(), 2u); // fd + count
}

TEST(CheckSpec, ZeroCheckedArgTupleRuleBecomesIdOnly)
{
    seccomp::Profile p("p");
    p.allowTuple(os::sc::getpid, {});
    auto specs = deriveCheckSpecs(p);
    EXPECT_EQ(specs[os::sc::getpid].bitmask, 0u);
}

TEST(CheckSpec, PerArgValuesRestrictsBitmaskToConstrainedArgs)
{
    seccomp::Profile p("p");
    p.allowArgValues(os::sc::socket, 0, {1, 2});
    auto specs = deriveCheckSpecs(p);
    // Constrained args select all eight register bytes.
    EXPECT_EQ(specs[os::sc::socket].bitmask, 0xffULL);
    EXPECT_EQ(specs[os::sc::socket].argCount(), 1u);
    EXPECT_EQ(specs[os::sc::socket].estimatedSets, 2u);
}

TEST(CheckSpec, PerArgCrossProductEstimatesSets)
{
    seccomp::Profile p("p");
    p.allowArgValues(os::sc::socket, 0, {1, 2, 3});
    p.allowArgValues(os::sc::socket, 1, {1, 2});
    auto specs = deriveCheckSpecs(p);
    EXPECT_EQ(specs[os::sc::socket].estimatedSets, 6u);
    EXPECT_EQ(specs[os::sc::socket].argCount(), 2u);
}

TEST(CheckSpec, DisallowedSyscallAbsent)
{
    seccomp::Profile p("p");
    p.allow(os::sc::read);
    auto specs = deriveCheckSpecs(p);
    EXPECT_FALSE(specs.count(os::sc::write));
}

TEST(ArgKey, SelectsExactlyMaskedBytes)
{
    // Bitmask selecting arg0 bytes 0..3 and arg2 bytes 0..7.
    uint64_t mask = 0xfULL | (0xffULL << 16);
    seccomp::ArgVector args{};
    args[0] = 0x11223344;
    args[1] = 0xdeadbeef; // not selected
    args[2] = 0x8877665544332211ULL;
    ArgKey key(mask, args);
    EXPECT_EQ(key.size(), 12u);
    // Little-endian byte order, arg-major.
    EXPECT_EQ(key.data()[0], 0x44);
    EXPECT_EQ(key.data()[3], 0x11);
    EXPECT_EQ(key.data()[4], 0x11);
    EXPECT_EQ(key.data()[11], 0x88);
}

TEST(ArgKey, UnselectedBytesDoNotAffectEquality)
{
    uint64_t mask = 0xfULL; // arg0 low 4 bytes only
    seccomp::ArgVector a{}, b{};
    a[0] = 0x00000000AABBCCDDULL;
    b[0] = 0x12345678AABBCCDDULL; // differs only above the mask
    b[1] = 999;
    b[5] = ~0ULL;
    EXPECT_EQ(ArgKey(mask, a), ArgKey(mask, b));
}

TEST(ArgKey, SelectedByteDifferenceBreaksEquality)
{
    uint64_t mask = 0xfULL;
    seccomp::ArgVector a{}, b{};
    a[0] = 0x01;
    b[0] = 0x02;
    EXPECT_FALSE(ArgKey(mask, a) == ArgKey(mask, b));
}

TEST(ArgKey, EmptyMaskGivesEmptyKey)
{
    seccomp::ArgVector args{};
    args[0] = 42;
    ArgKey key(0, args);
    EXPECT_EQ(key.size(), 0u);
    EXPECT_EQ(key, ArgKey());
}

TEST(ArgKey, FullMaskUsesAllFortyEightBytes)
{
    uint64_t mask = (1ULL << 48) - 1;
    seccomp::ArgVector args{};
    for (int i = 0; i < 6; ++i)
        args[i] = 0x0101010101010101ULL * (i + 1);
    ArgKey key(mask, args);
    EXPECT_EQ(key.size(), 48u);
    EXPECT_EQ(key.data()[0], 0x01);
    EXPECT_EQ(key.data()[47], 0x06);
}

TEST(ArgKey, MatchesSyscallBitmaskSemantics)
{
    // Using read's real bitmask: fd (4B) + count (8B), buf skipped.
    const auto *desc = os::syscallById(os::sc::read);
    uint64_t mask = desc->argumentBitmask();
    seccomp::ArgVector a{}, b{};
    a = {3, 0x7f0000001000ULL, 4096, 0, 0, 0};
    b = {3, 0x7f0000992000ULL, 4096, 0, 0, 0};
    EXPECT_EQ(ArgKey(mask, a), ArgKey(mask, b));
    b[2] = 4097;
    EXPECT_FALSE(ArgKey(mask, a) == ArgKey(mask, b));
}

} // namespace
} // namespace draco::core
