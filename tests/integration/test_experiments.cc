/**
 * @file
 * End-to-end shape checks: small versions of the paper's headline
 * results must hold on every build (the bench binaries then produce
 * the full-size figures).
 */

#include <gtest/gtest.h>

#include "seccomp/profiles_builtin.hh"
#include "sim/machine.hh"
#include "support/stats.hh"

namespace draco {
namespace {

using sim::Mechanism;

sim::RunResult
runOne(const char *name, Mechanism mech, unsigned copies,
       bool useComplete, size_t calls = 25000)
{
    const auto *app = workload::workloadByName(name);
    EXPECT_NE(app, nullptr);
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 7, 60000);
    sim::RunOptions options;
    options.mechanism = mech;
    options.filterCopies = copies;
    options.steadyCalls = calls;
    options.seed = 7;
    sim::ExperimentRunner runner;
    return runner.run(*app,
                      useComplete ? profiles.complete : profiles.noargs,
                      options);
}

TEST(Experiments, Fig2OrderingHoldsPerWorkload)
{
    // noargs <= complete <= complete-2x (each adds checking work).
    for (const char *name : {"nginx", "pipe-ipc"}) {
        double noargs =
            runOne(name, Mechanism::Seccomp, 1, false).normalized();
        double complete =
            runOne(name, Mechanism::Seccomp, 1, true).normalized();
        double complete2x =
            runOne(name, Mechanism::Seccomp, 2, true).normalized();
        EXPECT_LT(1.0, noargs) << name;
        EXPECT_LT(noargs, complete) << name;
        EXPECT_LT(complete, complete2x) << name;
    }
}

TEST(Experiments, MicroOverheadExceedsMacro)
{
    double macro =
        runOne("nginx", Mechanism::Seccomp, 1, true).normalized();
    double micro =
        runOne("unixbench-syscall", Mechanism::Seccomp, 1, true)
            .normalized();
    EXPECT_GT(micro, macro);
}

TEST(Experiments, Fig11DracoSwBeatsSeccompOnComplete)
{
    for (const char *name : {"mq-ipc", "httpd"}) {
        double seccomp =
            runOne(name, Mechanism::Seccomp, 1, true).normalized();
        double dracoSw =
            runOne(name, Mechanism::DracoSW, 1, true).normalized();
        EXPECT_LT(dracoSw, seccomp) << name;
        EXPECT_GT(dracoSw, 1.0) << name;
    }
}

TEST(Experiments, Fig12DracoHwWithinTwoPercent)
{
    for (const char *name : {"nginx", "pipe-ipc", "grep"}) {
        double hw =
            runOne(name, Mechanism::DracoHW, 1, true).normalized();
        EXPECT_LT(hw, 1.02) << name;
    }
}

TEST(Experiments, Fig12DracoHw2xStillWithinTwoPercent)
{
    double hw =
        runOne("pipe-ipc", Mechanism::DracoHW, 2, true).normalized();
    EXPECT_LT(hw, 1.02);
}

TEST(Experiments, Fig13HitRatesHighForRegularWorkloads)
{
    auto r = runOne("pipe-ipc", Mechanism::DracoHW, 1, true);
    EXPECT_GT(r.stbHitRate(), 0.93);
    EXPECT_GT(r.slbAccessHitRate(), 0.88);
    EXPECT_GT(r.slbPreloadHitRate(), 0.90);
}

TEST(Experiments, Fig13IrregularWorkloadsHitLess)
{
    auto regular = runOne("pipe-ipc", Mechanism::DracoHW, 1, true);
    auto irregular =
        runOne("elasticsearch", Mechanism::DracoHW, 1, true);
    EXPECT_LT(irregular.slbAccessHitRate(),
              regular.slbAccessHitRate());
    EXPECT_LT(irregular.stbHitRate(), regular.stbHitRate());
}

TEST(Experiments, VatFootprintKilobytes)
{
    // §XI-C: geometric mean VAT size ≈ 6.98 KB per process; individual
    // apps must land in single-digit-to-tens-of-KB territory.
    RunningStat footprints;
    for (const char *name : {"nginx", "grep", "pipe-ipc"}) {
        auto r = runOne(name, Mechanism::DracoSW, 1, true, 5000);
        EXPECT_GT(r.vatFootprintBytes, 512u) << name;
        EXPECT_LT(r.vatFootprintBytes, 200u * 1024) << name;
        footprints.add(static_cast<double>(r.vatFootprintBytes));
    }
    EXPECT_GT(footprints.geomean(), 1024.0);
}

TEST(Experiments, DockerDefaultCheaperThanComplete)
{
    const auto *app = workload::workloadByName("nginx");
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 7, 60000);
    sim::RunOptions options;
    options.mechanism = Mechanism::Seccomp;
    options.steadyCalls = 25000;
    options.seed = 7;
    sim::ExperimentRunner runner;
    double docker =
        runner.run(*app, seccomp::dockerDefaultProfile(), options)
            .normalized();
    double complete =
        runner.run(*app, profiles.complete, options).normalized();
    EXPECT_LT(docker, complete);
}

TEST(Experiments, BinaryTreeReducesSeccompCost)
{
    const auto *app = workload::workloadByName("unixbench-syscall");
    sim::RunOptions linear;
    linear.mechanism = Mechanism::Seccomp;
    linear.shape = seccomp::DispatchShape::LinearChain;
    linear.steadyCalls = 25000;
    linear.seed = 7;
    sim::RunOptions tree = linear;
    tree.shape = seccomp::DispatchShape::BinaryTree;
    sim::ExperimentRunner runner;
    seccomp::Profile docker = seccomp::dockerDefaultProfile();
    double linearOv =
        runner.run(*app, docker, linear).normalized() - 1.0;
    double treeOv = runner.run(*app, docker, tree).normalized() - 1.0;
    EXPECT_LT(treeOv, linearOv);
    EXPECT_GT(treeOv, 0.0); // §XII: it does not eliminate the overhead
}

TEST(Experiments, PreloadingImprovesOrMatchesHw)
{
    const auto *app = workload::workloadByName("elasticsearch");
    sim::AppProfiles profiles = sim::makeAppProfiles(*app, 7, 60000);
    sim::RunOptions with;
    with.mechanism = Mechanism::DracoHW;
    with.steadyCalls = 25000;
    with.seed = 7;
    sim::RunOptions without = with;
    without.hwPreload = false;
    sim::ExperimentRunner runner;
    auto a = runner.run(*app, profiles.complete, with);
    auto b = runner.run(*app, profiles.complete, without);
    EXPECT_LE(a.totalNs, b.totalNs * 1.001);
}

} // namespace
} // namespace draco
