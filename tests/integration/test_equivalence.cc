/**
 * @file
 * Cross-stack equivalence: for any profile and any request stream, four
 * deciders must agree — Profile::evaluate (ground truth), the compiled
 * BPF filter, software Draco, and hardware Draco. This is invariant 1
 * of DESIGN.md and the paper's correctness argument (§V: profiles are
 * stateless, so cached validations are sound).
 */

#include <gtest/gtest.h>

#include "core/hw_engine.hh"
#include "core/software.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile_gen.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/random.hh"
#include "workload/generator.hh"

namespace draco {
namespace {

struct EquivCase {
    const char *profileKind; // builtin name or "app-complete"
    const char *workload;
};

class EquivalenceTest : public testing::TestWithParam<EquivCase>
{
  protected:
    seccomp::Profile
    makeProfile() const
    {
        std::string kind = GetParam().profileKind;
        if (kind == "docker")
            return seccomp::dockerDefaultProfile();
        if (kind == "gvisor")
            return seccomp::gvisorProfile();
        if (kind == "firecracker")
            return seccomp::firecrackerProfile();
        // App-specific complete profile from a *short* recording so the
        // measured stream contains both hits and denials.
        const auto *app = workload::workloadByName(GetParam().workload);
        EXPECT_NE(app, nullptr);
        workload::TraceGenerator gen(*app, 5);
        seccomp::ProfileRecorder rec;
        for (int i = 0; i < 1500; ++i)
            rec.record(gen.next().req);
        return rec.makeComplete("app-complete");
    }
};

TEST_P(EquivalenceTest, FourWayAgreementOnWorkloadStream)
{
    const auto *app = workload::workloadByName(GetParam().workload);
    ASSERT_NE(app, nullptr);

    seccomp::Profile profile = makeProfile();
    seccomp::BpfProgram linear =
        buildFilter(profile, seccomp::DispatchShape::Linear);
    seccomp::BpfProgram tree =
        buildFilter(profile, seccomp::DispatchShape::BinaryTree);
    core::DracoSoftwareChecker sw(profile);
    core::HwProcessContext hwProc(profile);
    core::DracoHardwareEngine hw;
    hw.switchTo(&hwProc);

    workload::TraceGenerator gen(*app, 777);
    for (int i = 0; i < 5000; ++i) {
        os::SyscallRequest req = gen.next().req;
        bool truth = profile.allows(req);

        auto linearResult = linear.run(req.toSeccompData());
        EXPECT_EQ(os::actionAllows(static_cast<os::SeccompAction>(
                      linearResult.action)),
                  truth)
            << "linear filter, sid " << req.sid;

        auto treeResult = tree.run(req.toSeccompData());
        EXPECT_EQ(os::actionAllows(static_cast<os::SeccompAction>(
                      treeResult.action)),
                  truth)
            << "tree filter, sid " << req.sid;

        EXPECT_EQ(sw.check(req).allowed, truth)
            << "software draco, sid " << req.sid;
        EXPECT_EQ(hw.onSyscall(req).allowed, truth)
            << "hardware draco, sid " << req.sid;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EquivalenceTest,
    testing::Values(EquivCase{"docker", "httpd"},
                    EquivCase{"docker", "unixbench-syscall"},
                    EquivCase{"gvisor", "nginx"},
                    EquivCase{"gvisor", "pipe-ipc"},
                    EquivCase{"firecracker", "redis"},
                    EquivCase{"app-complete", "httpd"},
                    EquivCase{"app-complete", "elasticsearch"},
                    EquivCase{"app-complete", "mysql"},
                    EquivCase{"app-complete", "sysbench-fio"},
                    EquivCase{"app-complete", "mq-ipc"}),
    [](const testing::TestParamInfo<EquivCase> &info) {
        std::string name = std::string(info.param.profileKind) + "_" +
            info.param.workload;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Equivalence, FuzzedRequestsAgainstGvisor)
{
    seccomp::Profile profile = seccomp::gvisorProfile();
    seccomp::BpfProgram filter = buildFilter(profile);
    core::DracoSoftwareChecker sw(profile);
    core::HwProcessContext hwProc(profile);
    core::DracoHardwareEngine hw;
    hw.switchTo(&hwProc);

    Rng rng(31337);
    for (int i = 0; i < 15000; ++i) {
        os::SyscallRequest req;
        req.sid = static_cast<uint16_t>(rng.nextBelow(440));
        req.pc = 0x400000 + rng.nextBelow(1 << 20) * 4;
        for (auto &arg : req.args)
            arg = rng.chance(0.6) ? rng.nextBelow(40) : rng.next();

        bool truth = profile.allows(req);
        auto r = filter.run(req.toSeccompData());
        ASSERT_EQ(
            os::actionAllows(static_cast<os::SeccompAction>(r.action)),
            truth)
            << "filter, sid " << req.sid;
        ASSERT_EQ(sw.check(req).allowed, truth)
            << "sw draco, sid " << req.sid;
        ASSERT_EQ(hw.onSyscall(req).allowed, truth)
            << "hw draco, sid " << req.sid;
    }
}

TEST(Equivalence, HardwareAgreesUnderContextSwitchChurn)
{
    // Interleave two processes with different profiles on one core:
    // decisions must stay correct across invalidations/restores.
    seccomp::Profile pa = seccomp::gvisorProfile();
    seccomp::Profile pb = seccomp::firecrackerProfile();
    core::HwProcessContext ca(pa), cb(pb);
    core::DracoHardwareEngine engine;

    const auto *appA = workload::workloadByName("nginx");
    const auto *appB = workload::workloadByName("redis");
    workload::TraceGenerator genA(*appA, 1), genB(*appB, 2);

    Rng rng(9);
    for (int slice = 0; slice < 60; ++slice) {
        bool useA = slice % 2 == 0;
        engine.switchTo(useA ? &ca : &cb, rng.chance(0.5));
        auto &gen = useA ? genA : genB;
        const auto &profile = useA ? pa : pb;
        for (int i = 0; i < 100; ++i) {
            os::SyscallRequest req = gen.next().req;
            ASSERT_EQ(engine.onSyscall(req).allowed, profile.allows(req))
                << "slice " << slice << " sid " << req.sid;
        }
    }
}

} // namespace
} // namespace draco
