/**
 * @file
 * ResidentLru tests: recency order, idempotent touch, erase, and the
 * eviction-loop pattern the shard workers drive (pop coldest until
 * under cap).
 */

#include <gtest/gtest.h>

#include <vector>

#include "lifecycle/resident_lru.hh"

namespace draco::lifecycle {
namespace {

TEST(ResidentLru, TouchOrdersByRecency)
{
    ResidentLru lru;
    EXPECT_TRUE(lru.empty());
    EXPECT_EQ(lru.coldest(), 0u);

    lru.touch(1);
    lru.touch(2);
    lru.touch(3);
    EXPECT_EQ(lru.size(), 3u);
    EXPECT_EQ(lru.coldest(), 1u);

    // Re-touching moves to the hot end without growing.
    lru.touch(1);
    EXPECT_EQ(lru.size(), 3u);
    EXPECT_EQ(lru.coldest(), 2u);
}

TEST(ResidentLru, EraseAndContains)
{
    ResidentLru lru;
    lru.touch(7);
    lru.touch(8);
    EXPECT_TRUE(lru.contains(7));
    EXPECT_TRUE(lru.erase(7));
    EXPECT_FALSE(lru.contains(7));
    EXPECT_FALSE(lru.erase(7));
    EXPECT_EQ(lru.coldest(), 8u);
    EXPECT_TRUE(lru.erase(8));
    EXPECT_TRUE(lru.empty());
}

TEST(ResidentLru, EvictionLoopDrainsColdestFirst)
{
    ResidentLru lru;
    for (uint32_t id = 1; id <= 10; ++id)
        lru.touch(id);
    lru.touch(2); // 2 is now hottest; 1 is coldest.

    std::vector<uint32_t> evicted;
    const size_t cap = 3;
    while (lru.size() > cap) {
        uint32_t victim = lru.coldest();
        evicted.push_back(victim);
        ASSERT_TRUE(lru.erase(victim));
    }
    EXPECT_EQ(evicted,
              (std::vector<uint32_t>{1, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(lru.size(), cap);
    EXPECT_EQ(lru.coldest(), 9u);
    EXPECT_TRUE(lru.contains(2));
}

} // namespace
} // namespace draco::lifecycle
