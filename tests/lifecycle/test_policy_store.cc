/**
 * @file
 * PolicyStore tests: content-addressed interning dedups semantically
 * identical profiles regardless of name, and distinguishes real
 * semantic differences (rules, deny value, dispatch shape).
 */

#include <gtest/gtest.h>

#include "lifecycle/policy_store.hh"
#include "os/syscalls.hh"
#include "seccomp/profile.hh"

namespace draco::lifecycle {
namespace {

seccomp::Profile
profileNamed(const std::string &name)
{
    seccomp::Profile profile(name);
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    return profile;
}

TEST(PolicyStore, NameDoesNotAffectContentKey)
{
    EXPECT_EQ(profileContentKey(profileNamed("tenant-000001"),
                                seccomp::DispatchShape::Linear),
              profileContentKey(profileNamed("tenant-999999"),
                                seccomp::DispatchShape::Linear));
}

TEST(PolicyStore, SemanticsDoAffectContentKey)
{
    seccomp::Profile base = profileNamed("p");
    uint64_t baseKey =
        profileContentKey(base, seccomp::DispatchShape::Linear);

    seccomp::Profile extra = profileNamed("p");
    extra.allow(os::sc::close);
    EXPECT_NE(profileContentKey(extra, seccomp::DispatchShape::Linear),
              baseKey);

    EXPECT_NE(profileContentKey(base, seccomp::DispatchShape::BinaryTree),
              baseKey);
}

TEST(PolicyStore, InternDedupsIdenticalContent)
{
    PolicyStore store;
    auto a = store.intern(profileNamed("tenant-000001"));
    auto b = store.intern(profileNamed("tenant-999999"));
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.compiles(), 1u);
    EXPECT_EQ(a->programKey, b->programKey);
}

TEST(PolicyStore, InternSeparatesDistinctContent)
{
    PolicyStore store;
    auto a = store.intern(profileNamed("p"));
    seccomp::Profile other = profileNamed("p");
    other.allow(os::sc::close);
    auto b = store.intern(other);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.compiles(), 2u);
}

TEST(PolicyStore, ExportMetrics)
{
    PolicyStore store;
    store.intern(profileNamed("a"));
    store.intern(profileNamed("b"));
    MetricRegistry registry;
    store.exportMetrics(registry, "dedup");
    EXPECT_EQ(registry.counterValue("dedup.policies"), 1u);
    EXPECT_EQ(registry.counterValue("dedup.hits"), 1u);
    EXPECT_EQ(registry.counterValue("dedup.compiles"), 1u);
}

} // namespace
} // namespace draco::lifecycle
