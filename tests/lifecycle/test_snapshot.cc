/**
 * @file
 * `.dtss` codec tests: bit-exact restore (the checker continues as if
 * never snapshotted), total decoding of corrupt input (truncation, CRC
 * flips, bad magic, version skew), restore-contract mismatches, and
 * the inspect/compact paths lifecycletool builds on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/software.hh"
#include "lifecycle/snapshot.hh"
#include "os/syscalls.hh"
#include "seccomp/profile.hh"

namespace draco::lifecycle {
namespace {

seccomp::Profile
testProfile()
{
    seccomp::Profile profile("dtss-test");
    profile.allow(os::sc::read);
    profile.allowTuple(os::sc::write, {1, 0, 0, 0, 0, 0});
    profile.allowTuple(os::sc::write, {2, 0, 0, 0, 0, 0});
    profile.allowTuple(os::sc::ioctl, {3, 0x5401, 0, 0, 0, 0});
    return profile;
}

os::SyscallRequest
request(uint16_t sid, uint64_t arg0 = 0, uint64_t arg1 = 0)
{
    os::SyscallRequest req;
    req.sid = sid;
    req.pc = 0x1000;
    req.args[0] = arg0;
    req.args[1] = arg1;
    return req;
}

/** Traffic that fills VAT tables (and re-hits them). */
std::vector<os::SyscallRequest>
warmup(size_t n)
{
    std::vector<os::SyscallRequest> reqs;
    for (size_t i = 0; i < n; ++i) {
        reqs.push_back(request(os::sc::read));
        reqs.push_back(request(os::sc::write, 1 + i % 2));
        reqs.push_back(request(os::sc::ioctl, 3, 0x5401));
        reqs.push_back(request(os::sc::write, 7)); // denied
    }
    return reqs;
}

/** A warmed-up checker plus its snapshot bytes. */
struct Snapshotted {
    std::shared_ptr<const core::CompiledPolicy> policy;
    std::unique_ptr<core::DracoSoftwareChecker> checker;
    std::vector<uint8_t> bytes;
};

Snapshotted
makeSnapshot(unsigned filterCopies = 1)
{
    Snapshotted s;
    s.policy = core::CompiledPolicy::compile(testProfile());
    s.checker = std::make_unique<core::DracoSoftwareChecker>(
        s.policy, filterCopies);
    for (const os::SyscallRequest &req : warmup(16))
        s.checker->check(req);
    s.bytes = encodeSnapshot("tenant-a", *s.checker, filterCopies);
    return s;
}

TEST(Snapshot, RestoreContinuesBitExactly)
{
    Snapshotted s = makeSnapshot();

    core::DracoSoftwareChecker restored(s.policy, 1);
    std::string error;
    ASSERT_TRUE(restoreSnapshot(s.bytes, "tenant-a",
                                s.policy->programKey, 1, restored,
                                &error))
        << error;

    // Stats picked up where they left off.
    EXPECT_EQ(restored.stats().checks, s.checker->stats().checks);
    EXPECT_EQ(restored.stats().vatHits, s.checker->stats().vatHits);
    EXPECT_EQ(restored.stats().vatInsertions,
              s.checker->stats().vatInsertions);
    EXPECT_EQ(restored.vat().evictions(), s.checker->vat().evictions());

    // Continuation traffic takes identical paths on both checkers —
    // including VAT hits, which prove the cached sets survived.
    for (const os::SyscallRequest &req : warmup(8)) {
        core::SwCheckOutcome a = s.checker->check(req);
        core::SwCheckOutcome b = restored.check(req);
        EXPECT_EQ(a.allowed, b.allowed);
        EXPECT_EQ(static_cast<int>(a.path), static_cast<int>(b.path));
    }
    EXPECT_EQ(restored.stats().checks, s.checker->stats().checks);
    EXPECT_EQ(restored.stats().vatHits, s.checker->stats().vatHits);
}

TEST(Snapshot, EncodeIsDeterministic)
{
    Snapshotted s = makeSnapshot();
    EXPECT_EQ(s.bytes, encodeSnapshot("tenant-a", *s.checker, 1));
}

TEST(Snapshot, TruncationIsRejectedAtEveryLength)
{
    Snapshotted s = makeSnapshot();
    std::string error;
    std::vector<RawBlock> blocks;
    // Every proper prefix must fail: either mid-header, mid-block, or
    // (on a block boundary) at the missing End terminator.
    for (size_t len = 0; len < s.bytes.size(); ++len) {
        std::vector<uint8_t> cut(s.bytes.begin(),
                                 s.bytes.begin() +
                                     static_cast<ptrdiff_t>(len));
        EXPECT_FALSE(parseSnapshotBlocks(cut, blocks, &error))
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(Snapshot, EveryFlippedBitIsCaught)
{
    Snapshotted s = makeSnapshot();
    std::string error;
    // Walk a stride of bit positions over the whole file (every bit
    // would be slow); each flip must fail parse or restore.
    for (size_t bit = 0; bit < s.bytes.size() * 8; bit += 7) {
        std::vector<uint8_t> mutated = s.bytes;
        mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        core::DracoSoftwareChecker restored(s.policy, 1);
        EXPECT_FALSE(restoreSnapshot(mutated, "tenant-a",
                                     s.policy->programKey, 1, restored,
                                     &error))
            << "flipped bit " << bit << " survived restore";
    }
}

TEST(Snapshot, BadMagicIsRejected)
{
    Snapshotted s = makeSnapshot();
    s.bytes[0] = 'x';
    std::vector<RawBlock> blocks;
    std::string error;
    EXPECT_FALSE(parseSnapshotBlocks(s.bytes, blocks, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Snapshot, VersionSkewIsRejected)
{
    Snapshotted s = makeSnapshot();
    s.bytes[8] = static_cast<uint8_t>(kSnapshotVersion + 1);
    std::vector<RawBlock> blocks;
    std::string error;
    EXPECT_FALSE(parseSnapshotBlocks(s.bytes, blocks, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Snapshot, TrailingGarbageIsRejected)
{
    Snapshotted s = makeSnapshot();
    s.bytes.push_back(0);
    std::vector<RawBlock> blocks;
    std::string error;
    EXPECT_FALSE(parseSnapshotBlocks(s.bytes, blocks, &error));
}

TEST(Snapshot, RestoreContractMismatchesFail)
{
    Snapshotted s = makeSnapshot();
    std::string error;
    {
        core::DracoSoftwareChecker restored(s.policy, 1);
        EXPECT_FALSE(restoreSnapshot(s.bytes, "tenant-b",
                                     s.policy->programKey, 1, restored,
                                     &error));
    }
    {
        core::DracoSoftwareChecker restored(s.policy, 1);
        EXPECT_FALSE(restoreSnapshot(s.bytes, "tenant-a",
                                     s.policy->programKey ^ 1, 1,
                                     restored, &error));
    }
    {
        core::DracoSoftwareChecker restored(s.policy, 2);
        EXPECT_FALSE(restoreSnapshot(s.bytes, "tenant-a",
                                     s.policy->programKey, 2, restored,
                                     &error));
    }
    {
        // A checker compiled from a different profile has different
        // tables; even with a forged key the table shapes must trip.
        seccomp::Profile other("other");
        other.allow(os::sc::read);
        auto otherPolicy = core::CompiledPolicy::compile(other);
        core::DracoSoftwareChecker restored(otherPolicy, 1);
        EXPECT_FALSE(restoreSnapshot(s.bytes, "tenant-a",
                                     s.policy->programKey, 1, restored,
                                     &error));
    }
}

TEST(Snapshot, InspectReportsTheTenant)
{
    Snapshotted s = makeSnapshot();
    SnapshotInfo info;
    std::string error;
    ASSERT_TRUE(inspectSnapshot(s.bytes, info, &error)) << error;
    EXPECT_EQ(info.tenant, "tenant-a");
    EXPECT_EQ(info.policyKey, s.policy->programKey);
    EXPECT_EQ(info.version, kSnapshotVersion);
    EXPECT_EQ(info.filterCopies, 1u);
    EXPECT_EQ(info.stats.checks, s.checker->stats().checks);
    EXPECT_EQ(info.bytes, s.bytes.size());
    // write and ioctl check arguments; read is ID-only (no table).
    EXPECT_EQ(info.tables.size(), 2u);
    uint64_t sets = 0;
    for (const SnapshotTableInfo &table : info.tables)
        sets += table.sets;
    EXPECT_EQ(sets, s.checker->stats().vatInsertions -
                        s.checker->vat().evictions());
}

TEST(Snapshot, PeekPolicyKeyReadsTheMetaBlock)
{
    Snapshotted s = makeSnapshot();
    uint64_t key = 0;
    std::string error;
    ASSERT_TRUE(peekSnapshotPolicyKey(s.bytes, key, &error)) << error;
    EXPECT_EQ(key, s.policy->programKey);
}

TEST(Snapshot, PeekPolicyKeyRejectsCorruptHeaders)
{
    Snapshotted s = makeSnapshot();
    uint64_t key = 0;
    std::string error;
    {
        std::vector<uint8_t> bad = s.bytes;
        bad[0] = 'x'; // magic
        EXPECT_FALSE(peekSnapshotPolicyKey(bad, key, &error));
    }
    {
        std::vector<uint8_t> bad = s.bytes;
        bad[8] = static_cast<uint8_t>(kSnapshotVersion + 1);
        EXPECT_FALSE(peekSnapshotPolicyKey(bad, key, &error));
    }
    {
        // A CRC flip inside the Meta block must be caught even though
        // the peek never parses the later (larger) table blocks.
        std::vector<uint8_t> bad = s.bytes;
        bad[16] ^= 0x01;
        EXPECT_FALSE(peekSnapshotPolicyKey(bad, key, &error));
    }
    // Truncations anywhere inside the Meta block fail; the peek never
    // needs bytes past it, so only prefixes up to the block matter.
    for (size_t len = 0; len < 32; ++len) {
        std::vector<uint8_t> cut(s.bytes.begin(),
                                 s.bytes.begin() +
                                     static_cast<ptrdiff_t>(len));
        EXPECT_FALSE(peekSnapshotPolicyKey(cut, key, &error))
            << "prefix of " << len << " bytes peeked";
    }
}

TEST(Snapshot, CompactRoundTripIsIdentity)
{
    Snapshotted s = makeSnapshot();
    std::vector<RawBlock> blocks;
    std::string error;
    ASSERT_TRUE(parseSnapshotBlocks(s.bytes, blocks, &error)) << error;
    EXPECT_EQ(serializeSnapshotBlocks(blocks), s.bytes);
}

} // namespace
} // namespace draco::lifecycle
