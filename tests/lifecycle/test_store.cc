/**
 * @file
 * SnapshotStore backend tests: the memory and directory backends obey
 * the same put/get/remove/keys/totalBytes contract, and the directory
 * backend adopts pre-existing snapshot files, sanitizes hostile keys,
 * and survives removal of its directory (failed put, not a crash).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lifecycle/store.hh"

namespace draco::lifecycle {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

/** Fresh temp directory, removed on destruction. */
struct TempDir {
    fs::path path;
    TempDir()
    {
        path = fs::temp_directory_path() /
               ("draco-store-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter()++));
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static int &counter()
    {
        static int n = 0;
        return n;
    }
};

/** Contract shared by every backend. */
void
exerciseContract(SnapshotStore &store)
{
    EXPECT_TRUE(store.keys().empty());
    EXPECT_EQ(store.totalBytes(), 0u);

    ASSERT_TRUE(store.put("tenant-b", bytesOf("bbbb")));
    ASSERT_TRUE(store.put("tenant-a", bytesOf("aa")));
    EXPECT_EQ(store.totalBytes(), 6u);
    // keys() is backend-flavoured (raw keys vs snapshot filenames)
    // but always sorted and one-per-entry.
    EXPECT_EQ(store.keys().size(), 2u);

    // Replacement adjusts the byte total instead of accumulating.
    ASSERT_TRUE(store.put("tenant-a", bytesOf("aaaaaaaa")));
    EXPECT_EQ(store.totalBytes(), 12u);

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.get("tenant-a", got));
    EXPECT_EQ(got, bytesOf("aaaaaaaa"));
    EXPECT_FALSE(store.get("tenant-c", got));

    EXPECT_TRUE(store.remove("tenant-a"));
    EXPECT_FALSE(store.remove("tenant-a"));
    EXPECT_EQ(store.totalBytes(), 4u);
    EXPECT_EQ(store.keys().size(), 1u);
}

TEST(MemoryStore, Contract)
{
    MemorySnapshotStore store;
    exerciseContract(store);
}

TEST(MemoryStore, KeysAreRawAndSorted)
{
    MemorySnapshotStore store;
    ASSERT_TRUE(store.put("b", bytesOf("1")));
    ASSERT_TRUE(store.put("a", bytesOf("2")));
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(DirStore, Contract)
{
    TempDir dir;
    DirSnapshotStore store(dir.path.string());
    ASSERT_TRUE(store.ok());
    exerciseContract(store);
}

TEST(DirStore, CreatesMissingDirectory)
{
    TempDir dir;
    DirSnapshotStore store((dir.path / "a" / "b").string());
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE(fs::is_directory(dir.path / "a" / "b"));
}

TEST(DirStore, AdoptsPreexistingFiles)
{
    TempDir dir;
    {
        DirSnapshotStore first(dir.path.string());
        ASSERT_TRUE(first.ok());
        ASSERT_TRUE(first.put("tenant-a", bytesOf("hello")));
    }
    // A second store over the same directory sees the snapshot.
    DirSnapshotStore second(dir.path.string());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.keys().size(), 1u);
    EXPECT_EQ(second.totalBytes(), 5u);
    std::vector<uint8_t> got;
    ASSERT_TRUE(second.get("tenant-a", got));
    EXPECT_EQ(got, bytesOf("hello"));
}

TEST(DirStore, HostileKeysAreSanitizedAndDistinct)
{
    TempDir dir;
    DirSnapshotStore store(dir.path.string());
    ASSERT_TRUE(store.ok());

    // Path metacharacters are neutralized: the file lands inside the
    // store directory, not at ../escape.
    ASSERT_TRUE(store.put("../escape", bytesOf("x")));
    fs::path where(store.pathFor("../escape"));
    EXPECT_EQ(where.parent_path(), dir.path);
    EXPECT_TRUE(fs::exists(where));
    EXPECT_FALSE(fs::exists(dir.path.parent_path() / "escape"));

    // Keys that sanitize to the same safe name stay distinct through
    // the content-hash suffix.
    ASSERT_TRUE(store.put("a/b", bytesOf("slash")));
    ASSERT_TRUE(store.put("a_b", bytesOf("under")));
    EXPECT_NE(store.pathFor("a/b"), store.pathFor("a_b"));
    std::vector<uint8_t> got;
    ASSERT_TRUE(store.get("a/b", got));
    EXPECT_EQ(got, bytesOf("slash"));
    ASSERT_TRUE(store.get("a_b", got));
    EXPECT_EQ(got, bytesOf("under"));
}

TEST(DirStore, FailedPutReportsFalse)
{
    TempDir dir;
    DirSnapshotStore store(dir.path.string());
    ASSERT_TRUE(store.ok());
    fs::remove_all(dir.path);
    EXPECT_FALSE(store.put("tenant-a", bytesOf("x")));
}

TEST(SnapshotFile, RoundTripAndFailure)
{
    TempDir dir;
    fs::create_directories(dir.path);
    std::string path = (dir.path / "x.dtss").string();
    ASSERT_TRUE(writeSnapshotFile(path, bytesOf("payload")));
    std::vector<uint8_t> got;
    ASSERT_TRUE(readSnapshotFile(path, got));
    EXPECT_EQ(got, bytesOf("payload"));
    EXPECT_FALSE(
        readSnapshotFile((dir.path / "missing.dtss").string(), got));
    EXPECT_FALSE(writeSnapshotFile(
        (dir.path / "no-such-dir" / "x.dtss").string(), bytesOf("p")));
}

} // namespace
} // namespace draco::lifecycle
