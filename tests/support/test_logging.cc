#include <gtest/gtest.h>

#include <thread>

#include "support/logging.hh"

namespace draco {
namespace {

TEST(Logging, ParseLogLevelAcceptsAllSpellings)
{
    LogLevel level;
    ASSERT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    ASSERT_TRUE(parseLogLevel("INFO", level));
    EXPECT_EQ(level, LogLevel::Info);
    ASSERT_TRUE(parseLogLevel("Warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    ASSERT_TRUE(parseLogLevel("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    ASSERT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);
}

TEST(Logging, ParseLogLevelRejectsGarbage)
{
    LogLevel level = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_FALSE(parseLogLevel("", level));
    EXPECT_FALSE(parseLogLevel(nullptr, level));
    EXPECT_EQ(level, LogLevel::Info); // Untouched on failure.
}

TEST(Logging, SetLogLevelRoundTrips)
{
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(saved);
}

TEST(Logging, ScopedContextSetsAndRestores)
{
    EXPECT_EQ(logContext(), "");
    {
        ScopedLogContext outer("core00");
        EXPECT_EQ(logContext(), "core00");
        {
            ScopedLogContext inner("core01");
            EXPECT_EQ(logContext(), "core01");
        }
        EXPECT_EQ(logContext(), "core00");
    }
    EXPECT_EQ(logContext(), "");
}

TEST(Logging, ContextIsPerThread)
{
    ScopedLogContext ctx("main-thread");
    std::string seen = "unset";
    std::thread worker([&seen] { seen = logContext(); });
    worker.join();
    EXPECT_EQ(seen, ""); // The worker never inherits our context.
    EXPECT_EQ(logContext(), "main-thread");
}

} // namespace
} // namespace draco
