#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/logging.hh"

namespace draco {
namespace {

TEST(Logging, ParseLogLevelAcceptsAllSpellings)
{
    LogLevel level;
    ASSERT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    ASSERT_TRUE(parseLogLevel("INFO", level));
    EXPECT_EQ(level, LogLevel::Info);
    ASSERT_TRUE(parseLogLevel("Warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    ASSERT_TRUE(parseLogLevel("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    ASSERT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);
}

TEST(Logging, ParseLogLevelRejectsGarbage)
{
    LogLevel level = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_FALSE(parseLogLevel("", level));
    EXPECT_FALSE(parseLogLevel(nullptr, level));
    EXPECT_EQ(level, LogLevel::Info); // Untouched on failure.
}

TEST(Logging, SetLogLevelRoundTrips)
{
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(saved);
}

TEST(Logging, ScopedContextSetsAndRestores)
{
    EXPECT_EQ(logContext(), "");
    {
        ScopedLogContext outer("core00");
        EXPECT_EQ(logContext(), "core00");
        {
            ScopedLogContext inner("core01");
            EXPECT_EQ(logContext(), "core01");
        }
        EXPECT_EQ(logContext(), "core00");
    }
    EXPECT_EQ(logContext(), "");
}

TEST(LogWarnEvery, SuppressesWithinWindow)
{
    // A long window: the first call emits, the rest of the burst is
    // swallowed (the overload-warning pattern in serve).
    EXPECT_TRUE(logWarnEvery("test.burst", 60000, "burst warning"));
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(logWarnEvery("test.burst", 60000,
                                  "burst warning %d", i));
}

TEST(LogWarnEvery, KeysAreIndependent)
{
    EXPECT_TRUE(logWarnEvery("test.key_a", 60000, "a"));
    EXPECT_FALSE(logWarnEvery("test.key_a", 60000, "a"));
    EXPECT_TRUE(logWarnEvery("test.key_b", 60000, "b"));
}

TEST(LogWarnEvery, ZeroIntervalNeverSuppresses)
{
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(logWarnEvery("test.always", 0, "every time"));
}

TEST(LogWarnEvery, ReemitsAfterTheWindowPasses)
{
    EXPECT_TRUE(logWarnEvery("test.window", 1, "first"));
    EXPECT_FALSE(logWarnEvery("test.window", 1, "suppressed"));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Re-emission also reports how many were swallowed meanwhile.
    EXPECT_TRUE(logWarnEvery("test.window", 1, "second"));
}

TEST(LogWarnEvery, SilentWhenWarnLevelDisabled)
{
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_FALSE(logWarnEvery("test.quiet", 0, "never printed"));
    setLogLevel(saved);
}

TEST(Logging, ContextIsPerThread)
{
    ScopedLogContext ctx("main-thread");
    std::string seen = "unset";
    std::thread worker([&seen] { seen = logContext(); });
    worker.join();
    EXPECT_EQ(seen, ""); // The worker never inherits our context.
    EXPECT_EQ(logContext(), "main-thread");
}

} // namespace
} // namespace draco
