/**
 * @file
 * Unit tests for TextTable rendering.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "support/table.hh"

namespace draco {
namespace {

std::string
render(const TextTable &table, bool csv)
{
    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    if (csv)
        table.printCsv(mem);
    else
        table.print(mem);
    std::fclose(mem);
    std::string out(buf, len);
    free(buf);
    return out;
}

TEST(TextTable, TitleAndHeaderAppear)
{
    TextTable t("My Title");
    t.setHeader({"col_a", "col_b"});
    t.addRow({"1", "2"});
    std::string out = render(t, false);
    EXPECT_NE(out.find("My Title"), std::string::npos);
    EXPECT_NE(out.find("col_a"), std::string::npos);
    EXPECT_NE(out.find("col_b"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t("t");
    t.setHeader({"name", "v"});
    t.addRow({"longer-name", "1"});
    t.addRow({"x", "2"});
    std::string out = render(t, false);
    // Both value columns should start at the same offset.
    size_t line1 = out.find("longer-name");
    size_t v1 = out.find('1', line1);
    size_t line2 = out.find("x", v1);
    size_t v2 = out.find('2', line2);
    size_t col1 = v1 - out.rfind('\n', line1) - 1;
    size_t col2 = v2 - out.rfind('\n', line2) - 1;
    EXPECT_EQ(col1, col2);
}

TEST(TextTable, CsvOutput)
{
    TextTable t("t");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(render(t, true), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
}

TEST(TextTable, RowCount)
{
    TextTable t("t");
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"a"});
    t.addRow({"b"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeathTest, MismatchedRowWidthIsFatal)
{
    TextTable t("t");
    t.setHeader({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace draco
