/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hh"

namespace draco {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, MinMaxTracking)
{
    RunningStat s;
    s.add(3.0);
    s.add(-1.0);
    s.add(10.0);
    EXPECT_EQ(s.min(), -1.0);
    EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStat, Geomean)
{
    RunningStat s;
    s.add(1.0);
    s.add(4.0);
    s.add(16.0);
    EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(RunningStat, GeomeanUndefinedWithNonPositive)
{
    RunningStat s;
    s.add(2.0);
    s.add(0.0);
    EXPECT_EQ(s.geomean(), 0.0);
}

TEST(Histogram, BucketsAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);  // bucket 0
    h.add(1.9);  // bucket 0
    h.add(2.0);  // bucket 1
    h.add(9.99); // bucket 4
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0);
    h.add(55.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(QuantileSketch, EmptyIsZero)
{
    QuantileSketch q;
    EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST(QuantileSketch, MedianAndExtremes)
{
    QuantileSketch q;
    for (int i = 1; i <= 101; ++i)
        q.add(i);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 51.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
}

TEST(QuantileSketch, InterpolatesBetweenSamples)
{
    QuantileSketch q;
    q.add(0.0);
    q.add(10.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
}

TEST(QuantileSketch, AddAfterQueryStillSorted)
{
    QuantileSketch q;
    q.add(5.0);
    q.add(1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
    q.add(0.5);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.5);
}

TEST(ReuseDistance, FirstAccessHasNoDistance)
{
    ReuseDistanceTracker t;
    t.access(1);
    EXPECT_EQ(t.meanDistance(1), 0.0);
}

TEST(ReuseDistance, BackToBackIsZero)
{
    ReuseDistanceTracker t;
    t.access(1);
    t.access(1);
    EXPECT_DOUBLE_EQ(t.meanDistance(1), 0.0);
}

TEST(ReuseDistance, CountsInterveningAccesses)
{
    ReuseDistanceTracker t;
    t.access(1);
    t.access(2);
    t.access(3);
    t.access(1); // two other accesses in between
    EXPECT_DOUBLE_EQ(t.meanDistance(1), 2.0);
}

TEST(ReuseDistance, MeanOverMultipleReuses)
{
    ReuseDistanceTracker t;
    t.access(7);
    t.access(1);
    t.access(7); // distance 1
    t.access(7); // distance 0
    EXPECT_DOUBLE_EQ(t.meanDistance(7), 0.5);
}

TEST(ReuseDistance, OverallMean)
{
    ReuseDistanceTracker t;
    t.access(1);
    t.access(2);
    t.access(1); // distance 1
    t.access(2); // distance 1
    EXPECT_DOUBLE_EQ(t.overallMeanDistance(), 1.0);
    EXPECT_EQ(t.accesses(), 4u);
}

TEST(FrequencyCounter, CountsAndTotals)
{
    FrequencyCounter f;
    f.add(10);
    f.add(10);
    f.add(20);
    EXPECT_EQ(f.count(10), 2u);
    EXPECT_EQ(f.count(20), 1u);
    EXPECT_EQ(f.count(99), 0u);
    EXPECT_EQ(f.total(), 3u);
    EXPECT_EQ(f.distinct(), 2u);
}

TEST(FrequencyCounter, SortedByCountDescThenKey)
{
    FrequencyCounter f;
    f.add(5);
    f.add(1);
    f.add(1);
    f.add(9);
    auto sorted = f.sortedByCount();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].first, 1u);
    EXPECT_EQ(sorted[1].first, 5u); // ties broken by ascending key
    EXPECT_EQ(sorted[2].first, 9u);
}

TEST(RunningStatMerge, MatchesSequentialFeed)
{
    // Parallel Welford combination must agree with feeding the whole
    // series into one accumulator.
    RunningStat whole, left, right;
    for (int i = 0; i < 100; ++i) {
        double v = std::sin(i) * 10.0 + i * 0.25;
        whole.add(v);
        (i < 37 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_NEAR(left.geomean(), whole.geomean(), 1e-9);
}

TEST(RunningStatMerge, EmptySidesAreNoOps)
{
    RunningStat s, empty;
    s.add(2.0);
    s.add(4.0);
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);

    RunningStat target;
    target.merge(s);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 3.0);
    EXPECT_DOUBLE_EQ(target.min(), 2.0);
    EXPECT_DOUBLE_EQ(target.max(), 4.0);
}

TEST(HistogramMerge, AddsCountsPerBucket)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
    a.add(1.0);
    a.add(-1.0); // under
    b.add(1.5);
    b.add(99.0); // over
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    Histogram whole(0.0, 10.0, 5);
    whole.add(1.0);
    whole.add(-1.0);
    whole.add(1.5);
    whole.add(99.0);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(a.bucketCount(i), whole.bucketCount(i)) << i;
}

TEST(QuantileSketchMerge, CombinesSamples)
{
    QuantileSketch a, b;
    for (int i = 1; i <= 50; ++i)
        a.add(i);
    for (int i = 51; i <= 100; ++i)
        b.add(i);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_NEAR(a.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(a.quantile(0.99), 99.0, 2.0);
}

TEST(QuantileSketchMerge, EmptyAndSingleSampleEdges)
{
    QuantileSketch target, empty, one;
    one.add(42.0);

    target.merge(empty); // empty ⊕ empty stays empty
    EXPECT_EQ(target.count(), 0u);
    EXPECT_DOUBLE_EQ(target.quantile(0.5), 0.0);

    target.merge(one); // empty ⊕ single: every quantile is the sample
    EXPECT_EQ(target.count(), 1u);
    EXPECT_DOUBLE_EQ(target.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(target.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(target.quantile(1.0), 42.0);

    one.merge(empty); // nonempty ⊕ empty is a no-op
    EXPECT_EQ(one.count(), 1u);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
}

TEST(QuantileSketchMerge, MergeAfterQuantileResorts)
{
    // quantile() sorts lazily; a merge after a read must invalidate
    // the sorted view, not interleave unsorted samples into it.
    QuantileSketch a, b;
    for (int i = 50; i >= 1; --i)
        a.add(i);
    EXPECT_NEAR(a.quantile(0.5), 25.5, 1.0);
    for (int i = 100; i >= 51; --i)
        b.add(i);
    a.merge(b);
    EXPECT_NEAR(a.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(a.quantile(1.0), 100.0, 0.01);
}

TEST(HistogramMerge, EmptyAndNonEmpty)
{
    Histogram empty(0.0, 10.0, 5), full(0.0, 10.0, 5);
    full.add(1.0);
    full.add(11.0); // over
    full.merge(empty); // nonempty ⊕ empty is a no-op
    EXPECT_EQ(full.total(), 2u);
    EXPECT_EQ(full.overflow(), 1u);

    Histogram target(0.0, 10.0, 5);
    target.merge(full); // empty ⊕ nonempty copies all counts
    EXPECT_EQ(target.total(), 2u);
    EXPECT_EQ(target.bucketCount(0), 1u);
    EXPECT_EQ(target.overflow(), 1u);
}

TEST(HistogramMergeDeathTest, GeometryMismatchIsFatal)
{
    // Parity with MetricRegistry's histogram geometry panic: merging
    // differently-shaped histograms would silently mis-bucket, so it
    // must die instead.
    Histogram a(0.0, 10.0, 5);
    Histogram range(0.0, 20.0, 5);
    Histogram buckets(0.0, 10.0, 10);
    a.add(1.0);
    EXPECT_EXIT(a.merge(range), ::testing::ExitedWithCode(1),
                "incompatible geometry");
    EXPECT_EXIT(a.merge(buckets), ::testing::ExitedWithCode(1),
                "incompatible geometry");
}

} // namespace
} // namespace draco
