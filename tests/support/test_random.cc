/**
 * @file
 * Unit tests for the RNG and samplers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/random.hh"

namespace draco {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsWellMixed)
{
    Rng rng(0);
    std::set<uint64_t> values;
    for (int i = 0; i < 100; ++i)
        values.insert(rng.next());
    EXPECT_EQ(values.size(), 100u);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly)
{
    Rng rng(11);
    std::map<uint64_t, int> counts;
    const int draws = 60000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBelow(6)];
    ASSERT_EQ(counts.size(), 6u);
    for (const auto &[v, c] : counts) {
        EXPECT_GT(c, draws / 6 * 0.9);
        EXPECT_LT(c, draws / 6 * 1.1);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(17);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        sawLo |= v == 5;
        sawHi |= v == 8;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(23);
    int hits = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(SplitSeed, DeterministicAndStreamSensitive)
{
    EXPECT_EQ(splitSeed(42, 0), splitSeed(42, 0));
    EXPECT_NE(splitSeed(42, 0), splitSeed(42, 1));
    EXPECT_NE(splitSeed(42, 0), splitSeed(43, 0));
}

TEST(SplitSeed, NoAdditiveCollisions)
{
    // The bug splitSeed replaces: with `seed + i * k` derivation,
    // (seed, i) and (seed + k, i - 1) collide exactly. The SplitMix64
    // finalizer keeps nearby (seed, stream) pairs distinct.
    std::set<uint64_t> seeds;
    const int range = 64;
    for (int base = 0; base < range; ++base)
        for (int stream = 0; stream < range; ++stream)
            seeds.insert(splitSeed(base, stream));
    EXPECT_EQ(seeds.size(), static_cast<size_t>(range) * range);
}

TEST(SplitSeed, DerivedStreamsAreIndependent)
{
    Rng a(splitSeed(7, 0)), b(splitSeed(7, 1));
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(SplitSeed, LabelOverloadMatchesDocsAndDiffers)
{
    EXPECT_EQ(splitSeed(7, "rob"), splitSeed(7, "rob"));
    EXPECT_NE(splitSeed(7, "rob"), splitSeed(7, "cache"));
    EXPECT_NE(splitSeed(7, "rob"), splitSeed(8, "rob"));
    EXPECT_NE(splitSeed(7, ""), splitSeed(7, "rob"));
}

TEST(SplitSeed, ChainsIntoDistinctStreams)
{
    // Per-cell aux seeds chain two splits; the four (kind, mechanism)
    // combinations below must all land on different streams.
    std::set<uint64_t> seeds;
    for (uint64_t kind = 0; kind < 2; ++kind)
        for (uint64_t mech = 0; mech < 2; ++mech)
            seeds.insert(splitSeed(splitSeed(42, kind), mech));
    EXPECT_EQ(seeds.size(), 4u);
}

TEST(AliasSampler, SingleCategory)
{
    AliasSampler sampler({1.0});
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightNeverSampled)
{
    AliasSampler sampler({1.0, 0.0, 1.0});
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(AliasSampler, MatchesWeights)
{
    AliasSampler sampler({1.0, 2.0, 7.0});
    Rng rng(5);
    std::array<int, 3> counts{};
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.2, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.7, 0.02);
}

TEST(AliasSampler, UnnormalizedWeightsOk)
{
    AliasSampler a({0.25, 0.75});
    AliasSampler b({25.0, 75.0});
    Rng ra(7), rb(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.sample(ra), b.sample(rb));
}

TEST(ZipfSampler, SkewZeroIsUniform)
{
    ZipfSampler sampler(4, 0.0);
    Rng rng(9);
    std::array<int, 4> counts{};
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[sampler.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c / static_cast<double>(draws), 0.25, 0.02);
}

TEST(ZipfSampler, HigherSkewConcentratesOnRankZero)
{
    Rng r1(11), r2(11);
    ZipfSampler flat(50, 0.5), steep(50, 2.0);
    int flat0 = 0, steep0 = 0;
    for (int i = 0; i < 20000; ++i) {
        flat0 += flat.sample(r1) == 0;
        steep0 += steep.sample(r2) == 0;
    }
    EXPECT_GT(steep0, flat0 * 2);
}

TEST(ZipfSampler, RanksWithinBounds)
{
    ZipfSampler sampler(13, 1.0);
    Rng rng(15);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(sampler.sample(rng), 13u);
}

} // namespace
} // namespace draco
