/**
 * @file
 * Unit tests for the unified MetricRegistry: handle semantics, name
 * hierarchy rules, and the dependency-free JSON serialization.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/metrics.hh"

namespace draco {
namespace {

TEST(MetricRegistry, CounterHandleStartsAtZeroAndIsLive)
{
    MetricRegistry reg;
    uint64_t &c = reg.counter("vat.lookups");
    EXPECT_EQ(c, 0u);
    ++c;
    c += 2;
    EXPECT_EQ(reg.counterValue("vat.lookups"), 3u);
    // Same name returns the same storage.
    EXPECT_EQ(&reg.counter("vat.lookups"), &c);
}

TEST(MetricRegistry, GaugeAndTextSetters)
{
    MetricRegistry reg;
    reg.setGauge("run.normalized", 1.0625);
    reg.setGauge("run.normalized", 1.125); // overwrite
    reg.setText("run.workload", "nginx");
    EXPECT_DOUBLE_EQ(reg.gaugeValue("run.normalized"), 1.125);
    EXPECT_EQ(reg.textValue("run.workload"), "nginx");
}

TEST(MetricRegistry, SetCounterOverwrites)
{
    MetricRegistry reg;
    reg.setCounter("x", 7);
    reg.setCounter("x", 9);
    EXPECT_EQ(reg.counterValue("x"), 9u);
}

TEST(MetricRegistry, HasSizeNamesAndClear)
{
    MetricRegistry reg;
    reg.setCounter("b.two", 2);
    reg.setCounter("a.one", 1);
    reg.setGauge("c", 3.0);
    EXPECT_TRUE(reg.has("a.one"));
    EXPECT_FALSE(reg.has("a"));
    EXPECT_FALSE(reg.has("missing"));
    EXPECT_EQ(reg.size(), 3u);
    auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.one"); // sorted
    EXPECT_EQ(names[1], "b.two");
    EXPECT_EQ(names[2], "c");
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_FALSE(reg.has("a.one"));
}

TEST(MetricRegistry, RunningStatInstrument)
{
    MetricRegistry reg;
    RunningStat &s = reg.runningStat("lat");
    s.add(1.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(reg.runningStat("lat").mean(), 2.0);
}

TEST(MetricRegistry, QuantileSketchInstrument)
{
    MetricRegistry reg;
    QuantileSketch &q = reg.quantileSketch("ns");
    for (int i = 1; i <= 100; ++i)
        q.add(static_cast<double>(i));
    EXPECT_EQ(reg.quantileSketch("ns").count(), 100u);
    EXPECT_NEAR(q.quantile(0.5), 50.0, 2.0);
}

TEST(MetricRegistry, JsonNestsGroupsAndSortsKeys)
{
    MetricRegistry reg;
    reg.setCounter("hw.flows.f1", 3);
    reg.setCounter("hw.flows.f2", 1);
    reg.setCounter("hw.syscalls", 4);
    EXPECT_EQ(reg.toJson(false),
              "{\"hw\":{\"flows\":{\"f1\":3,\"f2\":1},\"syscalls\":4}}");
}

TEST(MetricRegistry, JsonScalarKinds)
{
    MetricRegistry reg;
    reg.setCounter("c", 42);
    reg.setGauge("g", 0.5);
    reg.setText("t", "nginx");
    EXPECT_EQ(reg.toJson(false), "{\"c\":42,\"g\":0.5,\"t\":\"nginx\"}");
}

TEST(MetricRegistry, JsonNonFiniteGaugeIsNull)
{
    MetricRegistry reg;
    reg.setGauge("bad", std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(reg.toJson(false), "{\"bad\":null}");
}

TEST(MetricRegistry, JsonEscapesTextStrings)
{
    MetricRegistry reg;
    reg.setText("t", "a\"b\\c");
    EXPECT_EQ(reg.toJson(false), "{\"t\":\"a\\\"b\\\\c\"}");
}

TEST(MetricRegistry, EmptyRegistrySerializesToEmptyObject)
{
    MetricRegistry reg;
    EXPECT_EQ(reg.toJson(false), "{}");
}

TEST(MetricRegistryDeath, LeafVersusGroupConflictIsFatal)
{
    // `a.b` makes `a` a group; registering leaf `a` must be rejected —
    // the JSON object cannot hold both a value and a subobject at `a`.
    MetricRegistry reg;
    reg.setCounter("a.b", 1);
    EXPECT_EXIT(reg.setCounter("a", 1),
                testing::ExitedWithCode(1), "group");
}

TEST(MetricRegistryDeath, GroupVersusLeafConflictIsFatal)
{
    MetricRegistry reg;
    reg.setCounter("a", 1);
    EXPECT_EXIT(reg.setCounter("a.b", 1),
                testing::ExitedWithCode(1), "leaf");
}

TEST(MetricRegistryDeath, KindMismatchIsFatal)
{
    MetricRegistry reg;
    reg.setCounter("x", 1);
    EXPECT_EXIT(reg.setGauge("x", 1.0),
                testing::ExitedWithCode(1), "kind");
}

TEST(MetricRegistryDeath, MissingLeafReadIsFatal)
{
    MetricRegistry reg;
    EXPECT_EXIT((void)reg.counterValue("nope"),
                testing::ExitedWithCode(1), "nope");
}

TEST(MetricRegistryMerge, CopiesNewLeavesOfEveryKind)
{
    MetricRegistry shard;
    shard.setCounter("c", 3);
    shard.setGauge("g", 0.25);
    shard.setText("t", "nginx");
    RunningStat s;
    s.add(1.0);
    s.add(3.0);
    shard.setStat("s", s);
    shard.histogram("h", 0.0, 10.0, 5).add(2.0);
    QuantileSketch q;
    q.add(7.0);
    shard.setQuantiles("q", q);

    MetricRegistry merged;
    merged.merge(shard);
    EXPECT_EQ(merged.toJson(false), shard.toJson(false));
}

TEST(MetricRegistryMerge, CountersAddAndInstrumentsCombine)
{
    MetricRegistry a, b;
    a.setCounter("c", 3);
    b.setCounter("c", 4);
    a.runningStat("s").add(1.0);
    b.runningStat("s").add(3.0);
    a.quantileSketch("q").add(1.0);
    b.quantileSketch("q").add(2.0);
    a.histogram("h", 0.0, 10.0, 5).add(1.0);
    b.histogram("h", 0.0, 10.0, 5).add(9.0);

    a.merge(b);
    EXPECT_EQ(a.counterValue("c"), 7u);
    EXPECT_EQ(a.runningStat("s").count(), 2u);
    EXPECT_DOUBLE_EQ(a.runningStat("s").mean(), 2.0);
    EXPECT_EQ(a.quantileSketch("q").count(), 2u);
    EXPECT_EQ(a.histogram("h", 0.0, 10.0, 5).total(), 2u);
}

TEST(MetricRegistry, HistogramSameGeometryReturnsSameInstrument)
{
    MetricRegistry reg;
    reg.histogram("h", 0.0, 10.0, 5).add(1.0);
    reg.histogram("h", 0.0, 10.0, 5).add(2.0);
    EXPECT_EQ(reg.histogram("h", 0.0, 10.0, 5).total(), 2u);
}

TEST(MetricRegistryDeathTest, HistogramGeometryMismatchPanics)
{
    MetricRegistry reg;
    reg.histogram("h", 0.0, 10.0, 5);
    // A silently different [lo, hi) would mis-bucket every later add.
    EXPECT_DEATH(reg.histogram("h", 0.0, 20.0, 5), "geometry mismatch");
    EXPECT_DEATH(reg.histogram("h", 1.0, 10.0, 5), "geometry mismatch");
    EXPECT_DEATH(reg.histogram("h", 0.0, 10.0, 10), "geometry mismatch");
}

TEST(MetricRegistryDeathTest, SetHistogramGeometryMismatchPanics)
{
    MetricRegistry reg;
    reg.histogram("h", 0.0, 10.0, 5).add(1.0);
    Histogram other(0.0, 20.0, 5);
    // Snapshot installs must obey the same geometry contract as the
    // accumulating accessor above.
    EXPECT_DEATH(reg.setHistogram("h", other), "geometry mismatch");
}

TEST(MetricRegistry, SetHistogramInstallsSnapshot)
{
    MetricRegistry reg;
    Histogram hist(0.0, 10.0, 5);
    hist.add(1.0);
    hist.add(2.5);
    reg.setHistogram("h", hist);
    EXPECT_EQ(reg.histogram("h", 0.0, 10.0, 5).total(), 2u);
    // Re-install with matching geometry replaces, not merges.
    reg.setHistogram("h", hist);
    EXPECT_EQ(reg.histogram("h", 0.0, 10.0, 5).total(), 2u);
}

TEST(MetricRegistry, VisitWalksEveryKindInNameOrder)
{
    MetricRegistry reg;
    reg.setCounter("m.counter", 9);
    reg.setGauge("m.gauge", 2.5);
    reg.setText("m.text", "hello");
    reg.runningStat("m.stat").add(4.0);
    reg.quantileSketch("m.sketch").add(1.0);
    reg.histogram("m.hist", 0.0, 10.0, 5).add(3.0);

    std::vector<std::string> names;
    uint64_t counter = 0;
    double gauge = 0.0;
    std::string text;
    uint64_t statCount = 0, sketchCount = 0, histTotal = 0;
    reg.visit([&](const MetricView &view) {
        names.push_back(view.name);
        switch (view.kind) {
          case MetricKind::Counter: counter = view.counter; break;
          case MetricKind::Gauge: gauge = view.gauge; break;
          case MetricKind::Text: text = *view.text; break;
          case MetricKind::Stat: statCount = view.stat->count(); break;
          case MetricKind::Sketch:
            sketchCount = view.sketch->count();
            break;
          case MetricKind::Hist: histTotal = view.hist->total(); break;
        }
    });

    const std::vector<std::string> expected = {
        "m.counter", "m.gauge", "m.hist", "m.sketch", "m.stat",
        "m.text"};
    EXPECT_EQ(names, expected);
    EXPECT_EQ(counter, 9u);
    EXPECT_DOUBLE_EQ(gauge, 2.5);
    EXPECT_EQ(text, "hello");
    EXPECT_EQ(statCount, 1u);
    EXPECT_EQ(sketchCount, 1u);
    EXPECT_EQ(histTotal, 1u);
}

TEST(MetricRegistryMerge, ShardOrderDoesNotChangeJson)
{
    // The property parallel sweeps rely on: shards with disjoint gauge
    // names and overlapping counters merge to the same JSON in any
    // order.
    auto makeShard = [](const std::string &leaf, uint64_t n) {
        MetricRegistry reg;
        reg.setGauge("runs." + leaf + ".normalized", 1.0 + n);
        reg.setCounter("total.cells", n);
        return reg;
    };
    MetricRegistry ab, ba;
    MetricRegistry a = makeShard("nginx", 1), b = makeShard("redis", 2);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.toJson(), ba.toJson());
    EXPECT_EQ(ab.counterValue("total.cells"), 3u);
}

TEST(MetricRegistryMerge, EmptySidesAreNoOps)
{
    MetricRegistry reg, empty;
    reg.setCounter("c", 5);
    reg.merge(empty);
    EXPECT_EQ(reg.counterValue("c"), 5u);
    empty.merge(reg);
    EXPECT_EQ(empty.toJson(false), reg.toJson(false));
}

TEST(MetricRegistryMergeDeath, GaugeCollisionIsFatal)
{
    MetricRegistry a, b;
    a.setGauge("g", 1.0);
    b.setGauge("g", 2.0);
    EXPECT_EXIT(a.merge(b), testing::ExitedWithCode(1), "merge");
}

TEST(MetricRegistryMergeDeath, TextCollisionIsFatal)
{
    MetricRegistry a, b;
    a.setText("t", "x");
    b.setText("t", "y");
    EXPECT_EXIT(a.merge(b), testing::ExitedWithCode(1), "merge");
}

TEST(MetricRegistryMergeDeath, KindMismatchIsFatal)
{
    MetricRegistry a, b;
    a.setCounter("x", 1);
    b.setGauge("x", 1.0);
    EXPECT_EXIT(a.merge(b), testing::ExitedWithCode(1), "kind");
}

TEST(MetricRegistry, TryWriteJsonFileReportsFailure)
{
    MetricRegistry reg;
    reg.setCounter("c", 1);
    EXPECT_FALSE(
        reg.tryWriteJsonFile("/nonexistent-dir/sub/report.json"));
}

TEST(MetricRegistry, SanitizeCollapsesAndLowercases)
{
    EXPECT_EQ(MetricRegistry::sanitize("Nginx"), "nginx");
    EXPECT_EQ(MetricRegistry::sanitize("pipe-ipc"), "pipe-ipc");
    EXPECT_EQ(MetricRegistry::sanitize("BM_Crc64/8"), "bm_crc64_8");
    EXPECT_EQ(MetricRegistry::sanitize("  spaced out  "), "spaced_out");
    EXPECT_EQ(MetricRegistry::sanitize("!!!"), "_");
    EXPECT_EQ(MetricRegistry::sanitize(""), "_");
}

TEST(MetricRegistry, JoinHandlesEmptyPrefix)
{
    EXPECT_EQ(MetricRegistry::join("", "x"), "x");
    EXPECT_EQ(MetricRegistry::join("a.b", "x"), "a.b.x");
}

} // namespace
} // namespace draco
