/**
 * @file
 * Unit tests for the sweep ThreadPool: submit futures, parallelFor
 * coverage and exception policy, parallelMap ordering, and the inline
 * (0/1-worker) fast path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "support/threadpool.hh"

namespace draco::support {
namespace {

TEST(ThreadPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPool, ZeroAndOneWorkersRunInline)
{
    for (unsigned workers : {0u, 1u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workerCount(), 0u);
        std::thread::id caller = std::this_thread::get_id();
        auto future =
            pool.submit([] { return std::this_thread::get_id(); });
        EXPECT_EQ(future.get(), caller);
    }
}

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (unsigned workers : {0u, 1u, 2u, 4u, 8u}) {
        ThreadPool pool(workers);
        const size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](size_t i) { hits[i]++; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForZeroIsNoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, [&](size_t i) {
            if (i == 17 || i == 63)
                throw std::runtime_error("fail-" + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "fail-17");
    }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    for (unsigned workers : {0u, 3u}) {
        ThreadPool pool(workers);
        auto squares =
            pool.parallelMap(64, [](size_t i) { return i * i; });
        ASSERT_EQ(squares.size(), 64u);
        for (size_t i = 0; i < squares.size(); ++i)
            EXPECT_EQ(squares[i], i * i);
    }
}

TEST(ThreadPool, ParallelForUsesMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    pool.parallelFor(256, [&](size_t) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(std::this_thread::get_id());
    });
    // All work lands on pool threads, never the caller.
    EXPECT_EQ(seen.count(std::this_thread::get_id()), 0u);
    EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, SpawnAlwaysGivesSingleWorkerARealThread)
{
    ThreadPool pool(1, ThreadPool::Spawn::Always);
    EXPECT_EQ(pool.workerCount(), 1u);
    auto future = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, ShutdownDrainsEveryQueuedTask)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([&] { done++; }));
    pool.shutdown();
    // shutdown() returns only after the queue drained and the workers
    // joined: every accepted task ran, none was dropped.
    EXPECT_EQ(done.load(), 500);
    EXPECT_TRUE(pool.isShutdown());
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, ShutdownRejectsLaterSubmits)
{
    ThreadPool pool(2);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
    EXPECT_THROW(pool.parallelFor(4, [](size_t) {}),
                 std::runtime_error);
}

TEST(ThreadPool, ShutdownRejectsInlineSubmitsToo)
{
    ThreadPool pool(0);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&] { done++; });
    pool.shutdown();
    pool.shutdown();
    EXPECT_EQ(done.load(), 32);
    EXPECT_TRUE(pool.isShutdown());
}

TEST(ThreadPool, ManyTasksDrainBeforeDestruction)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(3);
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 200; ++i)
            futures.push_back(pool.submit([&] { done++; }));
        for (auto &f : futures)
            f.get();
    }
    EXPECT_EQ(done.load(), 200);
}

} // namespace
} // namespace draco::support
