/**
 * @file
 * Unit tests for CliFlags: strict and lenient argv parsing, both value
 * spellings, error reporting, pass-through extras, and help rendering.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/cliflags.hh"

namespace draco::support {
namespace {

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : _args(std::move(args))
    {
        _ptrs.push_back(const_cast<char *>("prog"));
        for (std::string &arg : _args)
            _ptrs.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(_ptrs.size()); }
    char **argv() { return _ptrs.data(); }

  private:
    std::vector<std::string> _args;
    std::vector<char *> _ptrs;
};

CliFlags
makeFlags()
{
    CliFlags flags("testprog", "a test program");
    flags.addString("socket", "path", "socket path");
    flags.addUint("shards", "n", "shard count", 4);
    flags.addFlag("verbose", "say more");
    return flags;
}

TEST(CliFlags, ParsesBothValueSpellings)
{
    CliFlags flags = makeFlags();
    Argv args({"--socket", "/tmp/a.sock", "--shards=8", "--verbose"});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.str("socket"), "/tmp/a.sock");
    EXPECT_EQ(flags.uintValue("shards"), 8u);
    EXPECT_TRUE(flags.flag("verbose"));
    EXPECT_TRUE(flags.given("socket"));
    EXPECT_TRUE(flags.given("shards"));
}

TEST(CliFlags, DefaultsApplyWhenNotGiven)
{
    CliFlags flags = makeFlags();
    Argv args({});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.str("socket"), "");
    EXPECT_EQ(flags.uintValue("shards"), 4u);
    EXPECT_FALSE(flags.flag("verbose"));
    EXPECT_FALSE(flags.given("shards"));
}

TEST(CliFlags, StrictRejectsUnknownFlag)
{
    CliFlags flags = makeFlags();
    Argv args({"--bogus", "1"});
    EXPECT_FALSE(flags.parse(args.argc(), args.argv()));
    EXPECT_NE(flags.error().find("--bogus"), std::string::npos);
}

TEST(CliFlags, StrictRejectsMissingValue)
{
    CliFlags flags = makeFlags();
    Argv args({"--socket"});
    EXPECT_FALSE(flags.parse(args.argc(), args.argv()));
    EXPECT_NE(flags.error().find("requires a value"),
              std::string::npos);
}

TEST(CliFlags, StrictRejectsMalformedUint)
{
    for (const char *bad : {"0", "-3", "abc", "12x", ""}) {
        CliFlags flags = makeFlags();
        Argv args({"--shards", bad});
        EXPECT_FALSE(flags.parse(args.argc(), args.argv())) << bad;
        EXPECT_FALSE(flags.error().empty()) << bad;
    }
}

TEST(CliFlags, StrictRejectsValueOnBooleanFlag)
{
    CliFlags flags = makeFlags();
    Argv args({"--verbose=yes"});
    EXPECT_FALSE(flags.parse(args.argc(), args.argv()));
    EXPECT_NE(flags.error().find("takes no value"), std::string::npos);
}

TEST(CliFlags, StrictCollectsPositionals)
{
    CliFlags flags = makeFlags();
    Argv args({"input.dtrc", "--shards", "2", "other"});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.extras(),
              (std::vector<std::string>{"input.dtrc", "other"}));
}

TEST(CliFlags, LenientPassesUnknownTokensThrough)
{
    CliFlags flags = makeFlags();
    Argv args({"--shards", "2", "--custom-flag", "value", "--other=x"});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv(), true));
    EXPECT_EQ(flags.uintValue("shards"), 2u);
    // Unknown flags and their (unclaimed) values pass through untouched
    // so the binary's own parser can layer on top.
    EXPECT_EQ(flags.extras(),
              (std::vector<std::string>{"--custom-flag", "value",
                                        "--other=x"}));
}

TEST(CliFlags, LenientKeepsDefaultOnMalformedValue)
{
    CliFlags flags = makeFlags();
    Argv args({"--shards", "nope"});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv(), true));
    EXPECT_EQ(flags.uintValue("shards"), 4u);
    EXPECT_FALSE(flags.given("shards"));
}

TEST(CliFlags, HelpStopsParsing)
{
    for (const char *spelling : {"--help", "-h"}) {
        CliFlags flags = makeFlags();
        Argv args({spelling, "--bogus"});
        EXPECT_TRUE(flags.parse(args.argc(), args.argv())) << spelling;
        EXPECT_TRUE(flags.helpRequested()) << spelling;
    }
}

TEST(CliFlags, HelpTextListsEveryFlag)
{
    CliFlags flags = makeFlags();
    std::string help = flags.helpText();
    EXPECT_NE(help.find("testprog"), std::string::npos);
    EXPECT_NE(help.find("a test program"), std::string::npos);
    for (const char *name :
         {"--socket <path>", "--shards <n>", "--verbose", "--help"})
        EXPECT_NE(help.find(name), std::string::npos) << name;
}

TEST(CliFlags, AddCommonRegistersTheSharedFlags)
{
    CliFlags flags("bench");
    flags.addCommon();
    Argv args({"--json=out.json", "--threads", "3",
               "--trace-out=trace.json", "--sample-every", "1000"});
    ASSERT_TRUE(flags.parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.str("json"), "out.json");
    EXPECT_EQ(flags.uintValue("threads"), 3u);
    EXPECT_EQ(flags.str("trace-out"), "trace.json");
    EXPECT_EQ(flags.uintValue("sample-every"), 1000u);
}

} // namespace
} // namespace draco::support
