/**
 * @file
 * Epoch subsystem tests: EpochSlot publication semantics (seed, bump,
 * pinned epochs surviving retirement, lock-free id mirror) and the
 * EpochManager's interning + counter/metric surface.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/software.hh"
#include "os/syscalls.hh"
#include "policy/epoch.hh"
#include "seccomp/profile.hh"
#include "support/metrics.hh"

namespace draco::policy {
namespace {

seccomp::Profile
profileA()
{
    seccomp::Profile profile("epoch-a");
    profile.allow(os::sc::read);
    return profile;
}

seccomp::Profile
profileB()
{
    seccomp::Profile profile("epoch-b");
    profile.allow(os::sc::read);
    profile.allow(os::sc::write);
    return profile;
}

TEST(EpochSlot, InstallSeedsEpochOne)
{
    EpochSlot slot;
    EXPECT_EQ(slot.epoch(), 0u);
    EXPECT_EQ(slot.swaps(), 0u);

    auto policy = core::CompiledPolicy::compile(profileA());
    auto epoch = slot.install(policy);
    ASSERT_NE(epoch, nullptr);
    EXPECT_EQ(epoch->epoch, 1u);
    EXPECT_EQ(epoch->policy, policy);
    EXPECT_EQ(slot.epoch(), 1u);
    EXPECT_EQ(slot.swaps(), 0u);
    EXPECT_EQ(slot.pin(), epoch);
}

TEST(EpochSlot, PublishBumpsAndRetiredEpochsSurvive)
{
    EpochSlot slot;
    auto a = core::CompiledPolicy::compile(profileA());
    auto b = core::CompiledPolicy::compile(profileB());
    slot.install(a);

    // A reader pins epoch 1, then the swap lands: the pinned epoch
    // (and its policy) must stay fully valid — the RCU grace period.
    auto pinned = slot.pin();
    auto second = slot.publish(b);
    EXPECT_EQ(second->epoch, 2u);
    EXPECT_EQ(second->policy, b);
    EXPECT_EQ(slot.epoch(), 2u);
    EXPECT_EQ(slot.swaps(), 1u);

    EXPECT_EQ(pinned->epoch, 1u);
    EXPECT_EQ(pinned->policy, a);

    // Swapping back to a's compile mints a NEW epoch — ids are never
    // reused even when the policy bytes are.
    auto third = slot.publish(a);
    EXPECT_EQ(third->epoch, 3u);
    EXPECT_EQ(third->policy, a);
    EXPECT_EQ(slot.swaps(), 2u);
}

TEST(EpochSlot, PinIsConsistentUnderConcurrentPublish)
{
    EpochSlot slot;
    auto a = core::CompiledPolicy::compile(profileA());
    auto b = core::CompiledPolicy::compile(profileB());
    slot.install(a);

    std::thread publisher([&] {
        for (int i = 0; i < 500; ++i)
            slot.publish(i % 2 ? a : b);
    });
    uint64_t last = 0;
    for (int i = 0; i < 2000; ++i) {
        auto epoch = slot.pin();
        ASSERT_NE(epoch, nullptr);
        // Ids move monotonically and every pinned pair is coherent:
        // the policy is the one published under that id.
        ASSERT_GE(epoch->epoch, last);
        ASSERT_TRUE(epoch->policy == a || epoch->policy == b);
        last = epoch->epoch;
    }
    publisher.join();
    EXPECT_EQ(slot.epoch(), 501u);
}

TEST(EpochManager, InternDedupsByContent)
{
    EpochManager manager;
    auto first = manager.intern(profileA());
    auto again = manager.intern(profileA());
    EXPECT_EQ(first, again);
    EXPECT_EQ(manager.store().size(), 1u);
    auto other = manager.intern(profileB());
    EXPECT_NE(first, other);
    EXPECT_EQ(manager.store().size(), 2u);
}

TEST(EpochManager, CountersAndMetrics)
{
    EpochManager manager;
    manager.countSwap(2);
    manager.countSwap(5);
    manager.countSwap(3); // lower epoch may finish later; max sticks
    manager.countSwapFailure();
    manager.countStaleSnapshotDiscard();
    manager.countStaleSnapshotDiscard();

    EXPECT_EQ(manager.swaps(), 3u);
    EXPECT_EQ(manager.swapFailures(), 1u);
    EXPECT_EQ(manager.staleSnapshotDiscards(), 2u);
    EXPECT_EQ(manager.maxEpoch(), 5u);

    MetricRegistry registry;
    manager.exportMetrics(registry, "policy");
    EXPECT_EQ(registry.counterValue("policy.swaps"), 3u);
    EXPECT_EQ(registry.counterValue("policy.swap_failures"), 1u);
    EXPECT_EQ(registry.counterValue("policy.stale_snapshot_discards"),
              2u);
    EXPECT_EQ(registry.counterValue("policy.max_epoch"), 5u);
}

} // namespace
} // namespace draco::policy
