/**
 * @file
 * Tests for filter compilation: the compiled BPF program must agree
 * with Profile::evaluate on every input, for both dispatch shapes.
 */

#include <gtest/gtest.h>

#include "os/syscalls.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/random.hh"

namespace draco::seccomp {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    req.pc = 0x400123;
    return req;
}

bool
filterAllows(const BpfProgram &program, const os::SyscallRequest &req)
{
    auto result = program.run(req.toSeccompData());
    return os::actionAllows(static_cast<os::SeccompAction>(result.action));
}

TEST(FilterBuilder, EmptyProfileDeniesEverything)
{
    Profile p("empty");
    BpfProgram program = buildFilter(p);
    for (uint16_t sid : {0, 1, 39, 231})
        EXPECT_FALSE(filterAllows(program, request(sid)));
}

TEST(FilterBuilder, WrongArchitectureKilled)
{
    Profile p("p");
    p.allow(os::sc::getpid);
    BpfProgram program = buildFilter(p);
    os::SeccompData d = request(os::sc::getpid).toSeccompData();
    d.arch = 0x40000003; // i386
    auto result = program.run(d);
    EXPECT_EQ(result.action,
              static_cast<uint32_t>(os::SeccompAction::KillProcess));
}

TEST(FilterBuilder, AllowAllRule)
{
    Profile p("p");
    p.allow(os::sc::read);
    BpfProgram program = buildFilter(p);
    EXPECT_TRUE(filterAllows(program, request(os::sc::read, {9, 0, 9})));
    EXPECT_FALSE(filterAllows(program, request(os::sc::write)));
}

TEST(FilterBuilder, TupleRuleExactMatch)
{
    Profile p("p");
    // read(fd=3, buf=*, count=4096): checked args are fd and count.
    p.allowTuple(os::sc::read, {3, 0xdead, 4096, 0, 0, 0});
    BpfProgram program = buildFilter(p);

    EXPECT_TRUE(
        filterAllows(program, request(os::sc::read, {3, 0xbeef, 4096})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::read, {4, 0xdead, 4096})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::read, {3, 0xdead, 4097})));
}

TEST(FilterBuilder, TupleRuleChecksHighWord)
{
    Profile p("p");
    // read count is 8 bytes: high word must participate.
    p.allowTuple(os::sc::read, {3, 0, 0x100000001ULL, 0, 0, 0});
    BpfProgram program = buildFilter(p);
    EXPECT_TRUE(filterAllows(
        program, request(os::sc::read, {3, 0, 0x100000001ULL})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::read, {3, 0, 0x1})));
    EXPECT_FALSE(filterAllows(
        program, request(os::sc::read, {3, 0, 0x200000001ULL})));
}

TEST(FilterBuilder, MultipleTuples)
{
    Profile p("p");
    p.allowTuple(os::sc::close, {3, 0, 0, 0, 0, 0});
    p.allowTuple(os::sc::close, {7, 0, 0, 0, 0, 0});
    BpfProgram program = buildFilter(p);
    EXPECT_TRUE(filterAllows(program, request(os::sc::close, {3})));
    EXPECT_TRUE(filterAllows(program, request(os::sc::close, {7})));
    EXPECT_FALSE(filterAllows(program, request(os::sc::close, {5})));
}

TEST(FilterBuilder, PerArgValuesRule)
{
    Profile p("p");
    p.allowArgValues(os::sc::personality, 0,
                     {0x0, 0x20008, 0xffffffff});
    BpfProgram program = buildFilter(p);
    EXPECT_TRUE(
        filterAllows(program, request(os::sc::personality, {0x20008})));
    EXPECT_TRUE(filterAllows(program,
                             request(os::sc::personality, {0xffffffff})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::personality, {0x20009})));
}

TEST(FilterBuilder, PerArgValuesMultipleArgs)
{
    Profile p("p");
    p.allowArgValues(os::sc::socket, 0, {1, 2});
    p.allowArgValues(os::sc::socket, 1, {1});
    BpfProgram program = buildFilter(p);
    EXPECT_TRUE(filterAllows(program, request(os::sc::socket, {1, 1, 0})));
    EXPECT_TRUE(filterAllows(program, request(os::sc::socket, {2, 1, 6})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::socket, {1, 2, 0})));
    EXPECT_FALSE(
        filterAllows(program, request(os::sc::socket, {3, 1, 0})));
}

TEST(FilterBuilder, DenyActionPropagated)
{
    Profile p("p");
    p.setDenyAction(os::SeccompAction::Errno);
    p.allow(os::sc::getpid);
    BpfProgram program = buildFilter(p);
    auto result = program.run(request(os::sc::write).toSeccompData());
    EXPECT_EQ(result.action,
              static_cast<uint32_t>(os::SeccompAction::Errno));
}

TEST(FilterBuilder, DenyDataPropagated)
{
    Profile p("p");
    p.setDenyAction(os::SeccompAction::Errno);
    p.setDenyData(13); // EACCES
    p.allow(os::sc::getpid);
    BpfProgram program = buildFilter(p);
    auto result = program.run(request(os::sc::write).toSeccompData());
    EXPECT_EQ(os::actionOf(result.action), os::SeccompAction::Errno);
    EXPECT_EQ(os::retDataOf(result.action), 13);
}

TEST(FilterBuilder, PointerArgumentsIgnored)
{
    Profile p("p");
    p.allowTuple(os::sc::read, {3, 0x1111, 64, 0, 0, 0});
    BpfProgram program = buildFilter(p);
    // Vary the buffer pointer (arg 1): decision must not change.
    for (uint64_t ptr : {0ULL, 0x7fffdeadULL, ~0ULL})
        EXPECT_TRUE(
            filterAllows(program, request(os::sc::read, {3, ptr, 64})));
}

class DispatchShapeTest : public testing::TestWithParam<DispatchShape>
{
};

TEST_P(DispatchShapeTest, AgreesWithProfileEvaluateOnRandomInputs)
{
    Profile p = dockerDefaultProfile();
    BpfProgram program = buildFilter(p, GetParam());
    std::string err;
    ASSERT_TRUE(program.validate(&err)) << err;

    Rng rng(2024);
    for (int i = 0; i < 3000; ++i) {
        os::SyscallRequest req;
        req.sid = static_cast<uint16_t>(rng.nextBelow(440));
        for (auto &arg : req.args)
            arg = rng.chance(0.5) ? rng.nextBelow(16)
                                  : rng.next();
        EXPECT_EQ(filterAllows(program, req), p.allows(req))
            << "sid=" << req.sid;
    }
}

TEST_P(DispatchShapeTest, AgreesOnEveryDefinedSidWithZeroArgs)
{
    Profile p = gvisorProfile();
    BpfProgram program = buildFilter(p, GetParam());
    for (const auto &desc : os::syscallTable()) {
        os::SyscallRequest req = request(desc.id);
        EXPECT_EQ(filterAllows(program, req), p.allows(req)) << desc.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DispatchShapeTest,
                         testing::Values(DispatchShape::Linear,
                                         DispatchShape::LinearChain,
                                         DispatchShape::BinaryTree));

TEST(FilterBuilder, BinaryTreeExecutesFewerDispatchInsns)
{
    // The §XII libseccomp optimization: the tree shortens the syscall-ID
    // scan for IDs that sit deep in the linear chain.
    Profile p = dockerDefaultProfile();
    BpfProgram linear = buildFilter(p, DispatchShape::LinearChain);
    BpfProgram tree = buildFilter(p, DispatchShape::BinaryTree);

    os::SyscallRequest req = request(334); // rseq: late in the chain
    ASSERT_TRUE(p.allows(req));
    auto rl = linear.run(req.toSeccompData());
    auto rt = tree.run(req.toSeccompData());
    EXPECT_TRUE(os::actionAllows(static_cast<os::SeccompAction>(rl.action)));
    EXPECT_TRUE(os::actionAllows(static_cast<os::SeccompAction>(rt.action)));
    EXPECT_LT(rt.insnsExecuted, rl.insnsExecuted / 4);
}

TEST(FilterBuilder, LinearCostGrowsWithChainPosition)
{
    Profile p("p");
    for (uint16_t sid = 0; sid <= 100; ++sid)
        if (os::syscallById(sid))
            p.allow(sid);
    BpfProgram program = buildFilter(p, DispatchShape::LinearChain);
    auto early = program.run(request(0).toSeccompData());
    auto late = program.run(request(100).toSeccompData());
    EXPECT_GT(late.insnsExecuted, early.insnsExecuted + 50);
}

TEST(FilterBuilder, ProgramsValidate)
{
    for (auto shape : {DispatchShape::Linear, DispatchShape::LinearChain,
                       DispatchShape::BinaryTree}) {
        for (const Profile &p :
             {dockerDefaultProfile(), gvisorProfile(),
              firecrackerProfile()}) {
            BpfProgram program = buildFilter(p, shape);
            std::string err;
            EXPECT_TRUE(program.validate(&err))
                << p.name() << ": " << err;
            EXPECT_LE(program.size(), kBpfMaxInsns);
        }
    }
}

} // namespace
} // namespace draco::seccomp
