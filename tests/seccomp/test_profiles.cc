/**
 * @file
 * Tests for the Profile model and the built-in real-world profiles.
 */

#include <gtest/gtest.h>

#include "seccomp/profiles_builtin.hh"

namespace draco::seccomp {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    return req;
}

TEST(Profile, DenyByDefault)
{
    Profile p("p");
    EXPECT_FALSE(p.allows(request(os::sc::read)));
    EXPECT_EQ(p.evaluate(request(os::sc::read)),
              os::SeccompAction::KillProcess);
}

TEST(Profile, AllowAllIgnoresArgs)
{
    Profile p("p");
    p.allow(os::sc::read);
    EXPECT_TRUE(p.allows(request(os::sc::read, {1, 2, 3})));
    EXPECT_TRUE(p.allows(request(os::sc::read, {999, 0, ~0ULL})));
}

TEST(Profile, TupleComparesOnlyCheckedArgs)
{
    Profile p("p");
    p.allowTuple(os::sc::read, {3, 0xAAAA, 64, 0, 0, 0});
    // Pointer arg (buf) differs: still allowed.
    EXPECT_TRUE(p.allows(request(os::sc::read, {3, 0xBBBB, 64})));
    // Checked args compare as full 64-bit values (seccomp_data view):
    // stray high bits make a different value.
    EXPECT_FALSE(
        p.allows(request(os::sc::read, {0xFF00000003ULL, 0, 64})));
    // Checked value differs: denied.
    EXPECT_FALSE(p.allows(request(os::sc::read, {4, 0xAAAA, 64})));
}

TEST(Profile, TupleDeduplication)
{
    Profile p("p");
    p.allowTuple(os::sc::close, {5, 0, 0, 0, 0, 0});
    p.allowTuple(os::sc::close, {5, 0, 0, 0, 0, 0});
    EXPECT_EQ(p.rule(os::sc::close)->tuples.size(), 1u);
}

TEST(Profile, PerArgValuesAllMustMatch)
{
    Profile p("p");
    p.allowArgValues(os::sc::socket, 0, {1, 2});
    p.allowArgValues(os::sc::socket, 1, {1});
    EXPECT_TRUE(p.allows(request(os::sc::socket, {1, 1})));
    EXPECT_FALSE(p.allows(request(os::sc::socket, {1, 3})));
}

TEST(Profile, PerArgValuesDeduplicated)
{
    Profile p("p");
    p.allowArgValues(os::sc::socket, 0, {1, 1, 2});
    p.allowArgValues(os::sc::socket, 0, {2, 3});
    const auto &values = p.rule(os::sc::socket)->perArg.at(0);
    EXPECT_EQ(values.size(), 3u);
}

TEST(Profile, StatsCountValues)
{
    Profile p("p");
    p.allow(os::sc::getpid);
    p.allowTuple(os::sc::close, {3, 0, 0, 0, 0, 0});
    p.allowTuple(os::sc::close, {4, 0, 0, 0, 0, 0});
    p.allowArgValues(os::sc::personality, 0, {1, 2, 3});
    ProfileStats s = p.stats();
    EXPECT_EQ(s.syscallsAllowed, 3u);
    EXPECT_EQ(s.argsChecked, 1u + 1u); // close fd + personality arg0
    EXPECT_EQ(s.valuesAllowed, 2u + 3u);
}

TEST(Profile, RuntimeRequiredFlag)
{
    Profile p("p");
    p.allow(os::sc::execve, true);
    p.allow(os::sc::read, false);
    EXPECT_EQ(p.stats().runtimeRequired, 1u);
}

TEST(InsecureProfile, AllowsEverything)
{
    Profile p = insecureProfile();
    for (uint16_t sid : {0, 1, 101, 435})
        EXPECT_TRUE(p.allows(request(sid)));
}

TEST(DockerDefault, MatchesPaperCharacterization)
{
    Profile p = dockerDefaultProfile();
    ProfileStats s = p.stats();
    // §II-C: docker-default checks 3 argument positions with 7 unique
    // values (5 personality domains + 2 clone flag sets). Our syscall
    // table enumerates 347 native syscalls (the paper counts 403 across
    // ABIs), so the allowed count lands near 300.
    EXPECT_EQ(s.argsChecked, 2u);
    EXPECT_EQ(s.valuesAllowed, 7u);
    EXPECT_GT(s.syscallsAllowed, 270u);
    EXPECT_LT(s.syscallsAllowed, 310u);
}

TEST(DockerDefault, DeniesTheDangerousSet)
{
    Profile p = dockerDefaultProfile();
    for (const char *name : {"ptrace", "mount", "reboot", "init_module",
                             "kexec_load", "bpf", "userfaultfd"}) {
        const auto *desc = os::syscallByName(name);
        ASSERT_NE(desc, nullptr) << name;
        EXPECT_FALSE(p.allows(request(desc->id))) << name;
    }
}

TEST(DockerDefault, AllowsTheCommonPath)
{
    Profile p = dockerDefaultProfile();
    for (const char *name :
         {"read", "write", "close", "openat", "futex", "epoll_wait",
          "accept4", "mmap", "execve"}) {
        const auto *desc = os::syscallByName(name);
        ASSERT_NE(desc, nullptr) << name;
        EXPECT_TRUE(p.allows(request(desc->id))) << name;
    }
}

TEST(DockerDefault, PersonalityValueChecks)
{
    Profile p = dockerDefaultProfile();
    EXPECT_TRUE(p.allows(request(os::sc::personality, {0x0})));
    EXPECT_TRUE(p.allows(request(os::sc::personality, {0xffffffff})));
    EXPECT_FALSE(p.allows(request(os::sc::personality, {0x1})));
}

TEST(DockerDefault, CloneFlagChecks)
{
    Profile p = dockerDefaultProfile();
    EXPECT_TRUE(p.allows(request(os::sc::clone, {0x01200011})));
    EXPECT_FALSE(p.allows(request(os::sc::clone, {0xdead})));
}

TEST(DockerDefault, UsesErrnoDenyAction)
{
    Profile p = dockerDefaultProfile();
    EXPECT_EQ(p.evaluate(request(os::syscallByName("mount")->id)),
              os::SeccompAction::Errno);
    // Moby returns EPERM: the deny value carries it as RET_DATA.
    EXPECT_EQ(p.denyData(), 1);
    EXPECT_EQ(os::retDataOf(p.denyValue()), 1);
    EXPECT_EQ(os::actionOf(p.denyValue()), os::SeccompAction::Errno);
}

TEST(Gvisor, MatchesPaperCounts)
{
    // §II-C: "a whitelist of 74 system calls and 130 argument checks".
    Profile p = gvisorProfile();
    ProfileStats s = p.stats();
    EXPECT_EQ(s.syscallsAllowed, 74u);
    EXPECT_EQ(s.valuesAllowed, 130u);
}

TEST(Firecracker, MatchesPaperCounts)
{
    // §II-C: "37 system calls and 8 argument checks".
    Profile p = firecrackerProfile();
    ProfileStats s = p.stats();
    EXPECT_EQ(s.syscallsAllowed, 37u);
    EXPECT_EQ(s.valuesAllowed, 8u);
}

TEST(Gvisor, RestrictedIoctl)
{
    Profile p = gvisorProfile();
    const uint16_t ioctl = os::sc::ioctl;
    EXPECT_TRUE(p.allows(request(ioctl, {4, 0x5401})));
    EXPECT_FALSE(p.allows(request(ioctl, {4, 0x9999})));
}

TEST(BuiltinProfiles, DeniedNamesAllResolve)
{
    for (const auto &name : dockerDeniedNames())
        EXPECT_NE(os::syscallByName(name), nullptr) << name;
}

} // namespace
} // namespace draco::seccomp
