/**
 * @file
 * Robustness fuzzing of the BPF validator and interpreter: random
 * instruction streams must never crash the validator, and anything the
 * validator accepts must execute to completion within a bounded number
 * of steps (the forward-jump rule guarantees termination).
 */

#include <gtest/gtest.h>

#include "seccomp/bpf.hh"
#include "support/random.hh"

namespace draco::seccomp {
namespace {

BpfInsn
randomInsn(Rng &rng)
{
    BpfInsn insn;
    insn.code = static_cast<uint16_t>(rng.nextBelow(1 << 9));
    insn.jt = static_cast<uint8_t>(rng.nextBelow(256));
    insn.jf = static_cast<uint8_t>(rng.nextBelow(256));
    // Mix small offsets (often valid) with arbitrary 32-bit values.
    insn.k = rng.chance(0.5)
        ? static_cast<uint32_t>(rng.nextBelow(64))
        : static_cast<uint32_t>(rng.next());
    return insn;
}

TEST(BpfFuzz, ValidatorNeverCrashesAndAcceptedProgramsTerminate)
{
    Rng rng(0xf022);
    os::SeccompData data{};
    data.arch = os::kAuditArchX86_64;

    int accepted = 0;
    for (int trial = 0; trial < 20000; ++trial) {
        size_t len = 1 + rng.nextBelow(24);
        std::vector<BpfInsn> insns;
        for (size_t i = 0; i < len; ++i)
            insns.push_back(randomInsn(rng));
        // Give half the programs a trailing RET so some pass.
        if (rng.chance(0.5))
            insns.back() = stmt(op::RET | op::K,
                                static_cast<uint32_t>(rng.next()));

        BpfProgram program(std::move(insns));
        std::string error;
        if (!program.validate(&error)) {
            EXPECT_FALSE(error.empty());
            continue;
        }
        ++accepted;
        data.nr = static_cast<uint32_t>(rng.nextBelow(440));
        for (auto &arg : data.args)
            arg = rng.next();
        BpfResult result = program.run(data);
        // Forward-only jumps: every instruction executes at most once.
        EXPECT_LE(result.insnsExecuted, program.size());
    }
    // The generator must actually exercise the accept path.
    EXPECT_GT(accepted, 100);
}

TEST(BpfFuzz, MutatedRealFilterEitherRejectsOrTerminates)
{
    // Start from a real filter and flip random fields: classic
    // bit-flipping fuzz of the verifier.
    std::vector<BpfInsn> base = {
        stmt(op::LD | op::W | op::ABS, os::sd_off::arch),
        jump(op::JMP | op::JEQ | op::K, os::kAuditArchX86_64, 1, 0),
        stmt(op::RET | op::K, 0),
        stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
        jump(op::JMP | op::JEQ | op::K, 39, 0, 1),
        stmt(op::RET | op::K,
             static_cast<uint32_t>(os::SeccompAction::Allow)),
        stmt(op::RET | op::K, 0),
    };
    Rng rng(0xbeef);
    os::SeccompData data{};
    data.arch = os::kAuditArchX86_64;
    data.nr = 39;

    for (int trial = 0; trial < 20000; ++trial) {
        std::vector<BpfInsn> mutated = base;
        BpfInsn &victim = mutated[rng.nextBelow(mutated.size())];
        switch (rng.nextBelow(4)) {
          case 0: victim.code ^= 1u << rng.nextBelow(16); break;
          case 1: victim.jt ^= 1u << rng.nextBelow(8); break;
          case 2: victim.jf ^= 1u << rng.nextBelow(8); break;
          default: victim.k ^= 1u << rng.nextBelow(32); break;
        }
        BpfProgram program(std::move(mutated));
        if (!program.validate())
            continue;
        BpfResult result = program.run(data);
        EXPECT_LE(result.insnsExecuted, program.size());
    }
}

} // namespace
} // namespace draco::seccomp
