/**
 * @file
 * Tests for trace-driven profile generation (the §X-B toolkit).
 */

#include <gtest/gtest.h>

#include "seccomp/profile_gen.hh"

namespace draco::seccomp {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    return req;
}

TEST(ProfileRecorder, RecordsDistinctSyscalls)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::read, {3, 0, 64}));
    rec.record(request(os::sc::read, {3, 0, 64}));
    rec.record(request(os::sc::write, {1, 0, 8}));
    EXPECT_EQ(rec.distinctSyscalls(), 2u);
    EXPECT_EQ(rec.distinctTuples(os::sc::read), 1u);
}

TEST(ProfileRecorder, DistinctTuplesKeyedOnCheckedArgs)
{
    ProfileRecorder rec;
    // Same checked args (fd, count), different buffer pointers.
    rec.record(request(os::sc::read, {3, 0x1000, 64}));
    rec.record(request(os::sc::read, {3, 0x2000, 64}));
    EXPECT_EQ(rec.distinctTuples(os::sc::read), 1u);
    // Different count: a second tuple.
    rec.record(request(os::sc::read, {3, 0x1000, 128}));
    EXPECT_EQ(rec.distinctTuples(os::sc::read), 2u);
}

TEST(ProfileRecorder, NoArgsProfileAllowsAnyArgs)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::read, {3, 0, 64}));
    Profile p = rec.makeNoArgs("t");
    EXPECT_TRUE(p.allows(request(os::sc::read, {77, 0, 1})));
    EXPECT_FALSE(p.allows(request(os::sc::ioctl)));
}

TEST(ProfileRecorder, CompleteProfileWhitelistsExactTuples)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::read, {3, 0, 64}));
    Profile p = rec.makeComplete("t");
    EXPECT_TRUE(p.allows(request(os::sc::read, {3, 0xbeef, 64})));
    EXPECT_FALSE(p.allows(request(os::sc::read, {3, 0, 65})));
    EXPECT_FALSE(p.allows(request(os::sc::read, {4, 0, 64})));
}

TEST(ProfileRecorder, CompleteProfileAllowsEverythingRecorded)
{
    // Round-trip invariant: every recorded request must pass the
    // complete profile generated from the recording.
    ProfileRecorder rec;
    std::vector<os::SyscallRequest> reqs = {
        request(os::sc::read, {3, 0, 64}),
        request(os::sc::read, {5, 0, 4096}),
        request(os::sc::getpid),
        request(os::sc::ioctl, {1, 0x5401, 0}),
        request(os::sc::futex, {0x7000, 0, 1, 0, 0, 0}),
    };
    for (const auto &r : reqs)
        rec.record(r);
    Profile p = rec.makeComplete("t");
    for (const auto &r : reqs)
        EXPECT_TRUE(p.allows(r)) << r.sid;
}

TEST(ProfileRecorder, ZeroCheckedArgSyscallBecomesIdOnly)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::getpid));
    Profile p = rec.makeComplete("t");
    ASSERT_NE(p.rule(os::sc::getpid), nullptr);
    EXPECT_EQ(p.rule(os::sc::getpid)->kind, RuleKind::AllowAll);
}

TEST(ProfileRecorder, RuntimeSyscallsAlwaysIncluded)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::read, {3, 0, 64}));
    Profile p = rec.makeComplete("t");
    for (uint16_t sid : containerRuntimeSyscalls())
        EXPECT_NE(p.rule(sid), nullptr) << sid;
}

TEST(ProfileRecorder, RuntimeFlagMarksRuntimeSet)
{
    ProfileRecorder rec;
    rec.record(request(os::sc::read, {3, 0, 64}));    // runtime set
    rec.record(request(os::sc::ioctl, {1, 0x5401})); // app-specific
    Profile p = rec.makeComplete("t");
    EXPECT_TRUE(p.rule(os::sc::read)->runtimeRequired);
    EXPECT_FALSE(p.rule(os::sc::ioctl)->runtimeRequired);
}

TEST(ProfileRecorder, UnknownSyscallIgnored)
{
    ProfileRecorder rec;
    rec.record(request(400)); // not a defined x86-64 syscall
    EXPECT_EQ(rec.distinctSyscalls(), 0u);
}

TEST(ContainerRuntimeSyscalls, ContainsLoaderEssentials)
{
    const auto &runtime = containerRuntimeSyscalls();
    EXPECT_TRUE(runtime.count(os::sc::execve));
    EXPECT_TRUE(runtime.count(os::sc::brk));
    EXPECT_TRUE(runtime.count(os::sc::openat));
    EXPECT_TRUE(runtime.count(os::sc::futex));
    EXPECT_GT(runtime.size(), 15u);
}

} // namespace
} // namespace draco::seccomp
