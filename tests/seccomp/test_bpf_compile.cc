/**
 * @file
 * Tests for the pre-decoded BPF fast path: BpfProgram::compile()
 * validity rules and exact equivalence (action and executed-instruction
 * count) between the decoded dispatcher and the reference interpreter
 * on hand-built programs, builtin profiles, and generated app profiles.
 */

#include <gtest/gtest.h>

#include "seccomp/bpf.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile_gen.hh"
#include "seccomp/profiles_builtin.hh"
#include "sim/machine.hh"
#include "support/random.hh"
#include "workload/appmodel.hh"
#include "workload/generator.hh"

namespace draco::seccomp {
namespace {

os::SeccompData
data(uint32_t nr = 0)
{
    os::SeccompData d{};
    d.nr = nr;
    d.arch = os::kAuditArchX86_64;
    return d;
}

/** Expect identical action and instruction count on both paths. */
void
expectEquivalent(const BpfProgram &program, const os::SeccompData &d)
{
    ASSERT_TRUE(program.compiled());
    BpfResult fast = program.run(d);
    BpfResult ref = program.runInterpreted(d);
    EXPECT_EQ(fast.action, ref.action);
    EXPECT_EQ(fast.insnsExecuted, ref.insnsExecuted);
}

os::SeccompData
randomData(Rng &rng)
{
    os::SeccompData d{};
    d.nr = static_cast<uint32_t>(rng.nextBelow(512));
    d.arch = rng.chance(0.9) ? os::kAuditArchX86_64
                             : static_cast<uint32_t>(rng.next());
    d.instruction_pointer = rng.next();
    for (auto &arg : d.args)
        arg = rng.chance(0.5) ? rng.nextBelow(1024) : rng.next();
    return d;
}

TEST(BpfCompile, ValidProgramCompiles)
{
    BpfProgram p({stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
                  jump(op::JMP | op::JEQ | op::K, 1, 0, 1),
                  stmt(op::RET | op::K, 0x7fff0000),
                  stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p.compiled());
    std::string err;
    EXPECT_TRUE(p.compile(&err)) << err;
    EXPECT_TRUE(p.compiled());
}

TEST(BpfCompile, InvalidProgramRejectedWithError)
{
    BpfProgram p({stmt(op::LD | op::IMM, 1)}); // no RET
    std::string err;
    EXPECT_FALSE(p.compile(&err));
    EXPECT_FALSE(p.compiled());
    EXPECT_FALSE(err.empty());
}

TEST(BpfCompile, UncompiledRunFallsBackToInterpreter)
{
    BpfProgram p({stmt(op::RET | op::K, 42)});
    ASSERT_FALSE(p.compiled());
    EXPECT_EQ(p.run(data()).action, 42u);
    EXPECT_TRUE(p.validate());
    EXPECT_FALSE(p.compiled()); // validate() alone must not decode
}

TEST(BpfCompile, EquivalentOnHandBuiltKitchenSink)
{
    // One program touching loads, scratch memory, X, ALU including
    // runtime division by X, and both branch polarities.
    BpfProgram p({
        stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
        stmt(op::ST, 2),
        stmt(op::LDX | op::IMM, 3),
        stmt(op::ALU | op::DIV | op::X, 0),
        stmt(op::MISC | op::TAX, 0),
        stmt(op::LD | op::MEM, 2),
        stmt(op::ALU | op::ADD | op::X, 0),
        jump(op::JMP | op::JGT | op::K, 100, 1, 0),
        stmt(op::RET | op::A, 0),
        stmt(op::ALU | op::XOR | op::K, 0xff),
        stmt(op::RET | op::A, 0),
    });
    ASSERT_TRUE(p.compile());
    for (uint32_t nr = 0; nr < 400; nr += 7)
        expectEquivalent(p, data(nr));
}

TEST(BpfCompile, EquivalentOnOverShiftLowering)
{
    // Constant shifts >= 32 lower to `and #0`; semantics must match the
    // interpreter's acc = 0 for every shift amount.
    for (uint16_t shiftOp : {op::LSH, op::RSH}) {
        for (uint32_t k : {0u, 1u, 31u, 32u, 33u, 64u, 1000u}) {
            BpfProgram p({stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
                          stmt(op::ALU | shiftOp | op::K, k),
                          stmt(op::RET | op::A, 0)});
            ASSERT_TRUE(p.compile());
            expectEquivalent(p, data(0xdeadbeef & 0x1ff));
            expectEquivalent(p, data(1));
        }
    }
}

TEST(BpfCompile, EquivalentOnDockerDefaultProfile)
{
    Profile docker = dockerDefaultProfile();
    for (DispatchShape shape :
         {DispatchShape::Linear, DispatchShape::LinearChain,
          DispatchShape::BinaryTree}) {
        BpfProgram p = buildFilter(docker, shape);
        ASSERT_TRUE(p.compiled()); // assembler output is pre-compiled
        Rng rng(splitSeed(7, "bpf-compile-docker"));
        for (int i = 0; i < 2000; ++i)
            expectEquivalent(p, randomData(rng));
    }
}

TEST(BpfCompile, EquivalentOnGeneratedAppProfiles)
{
    // Argument-checking chains from generated syscall-complete
    // profiles, driven by the workload's own trace plus random fuzz.
    for (const char *name : {"nginx", "pipe-ipc"}) {
        const auto *app = workload::workloadByName(name);
        ASSERT_NE(app, nullptr);
        uint64_t seed = splitSeed(7, std::string_view(name));
        sim::AppProfiles profiles =
            sim::makeAppProfiles(*app, seed, 20000);
        FilterChain chain = buildFilterChain(profiles.complete);
        ASSERT_GT(chain.filterCount(), 0u);

        workload::TraceGenerator gen(*app, seed);
        Rng rng(splitSeed(seed, "fuzz"));
        for (int i = 0; i < 3000; ++i) {
            os::SeccompData d = i % 4 == 0
                ? randomData(rng)
                : gen.next().req.toSeccompData();
            for (const BpfProgram &p : chain.programs())
                expectEquivalent(p, d);
        }
    }
}

} // namespace
} // namespace draco::seccomp
