/**
 * @file
 * Unit tests for the classic-BPF machine: interpreter semantics and the
 * seccomp-style validator.
 */

#include <gtest/gtest.h>

#include "seccomp/bpf.hh"

namespace draco::seccomp {
namespace {

os::SeccompData
data(uint32_t nr = 0)
{
    os::SeccompData d{};
    d.nr = nr;
    d.arch = os::kAuditArchX86_64;
    return d;
}

BpfResult
runProgram(std::vector<BpfInsn> insns, const os::SeccompData &d)
{
    BpfProgram p(std::move(insns));
    std::string err;
    EXPECT_TRUE(p.validate(&err)) << err;
    return p.run(d);
}

TEST(Bpf, RetConstant)
{
    auto r = runProgram({stmt(op::RET | op::K, 0x7fff0000)}, data());
    EXPECT_EQ(r.action, 0x7fff0000u);
    EXPECT_EQ(r.insnsExecuted, 1u);
}

TEST(Bpf, RetAccumulator)
{
    auto r = runProgram({stmt(op::LD | op::IMM, 1234),
                         stmt(op::RET | op::A, 0)},
                        data());
    EXPECT_EQ(r.action, 1234u);
    EXPECT_EQ(r.insnsExecuted, 2u);
}

TEST(Bpf, LoadAbsReadsSeccompData)
{
    os::SeccompData d = data(77);
    d.args[2] = 0x1122334455667788ULL;
    // Low word of arg2.
    auto r = runProgram({stmt(op::LD | op::W | op::ABS, os::sd_off::argLo(2)),
                         stmt(op::RET | op::A, 0)},
                        d);
    EXPECT_EQ(r.action, 0x55667788u);
    // High word of arg2.
    r = runProgram({stmt(op::LD | op::W | op::ABS, os::sd_off::argHi(2)),
                    stmt(op::RET | op::A, 0)},
                   d);
    EXPECT_EQ(r.action, 0x11223344u);
}

TEST(Bpf, LoadNr)
{
    auto r = runProgram({stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
                         stmt(op::RET | op::A, 0)},
                        data(321));
    EXPECT_EQ(r.action, 321u);
}

TEST(Bpf, JeqTakenAndNotTaken)
{
    // if (nr == 5) ret 1 else ret 2
    std::vector<BpfInsn> prog = {
        stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
        jump(op::JMP | op::JEQ | op::K, 5, 0, 1),
        stmt(op::RET | op::K, 1),
        stmt(op::RET | op::K, 2),
    };
    EXPECT_EQ(runProgram(prog, data(5)).action, 1u);
    EXPECT_EQ(runProgram(prog, data(6)).action, 2u);
}

TEST(Bpf, JgtJgeJset)
{
    auto mkProg = [](uint16_t cond, uint32_t k) {
        return std::vector<BpfInsn>{
            stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
            jump(op::JMP | cond | op::K, k, 0, 1),
            stmt(op::RET | op::K, 1),
            stmt(op::RET | op::K, 0),
        };
    };
    EXPECT_EQ(runProgram(mkProg(op::JGT, 10), data(11)).action, 1u);
    EXPECT_EQ(runProgram(mkProg(op::JGT, 10), data(10)).action, 0u);
    EXPECT_EQ(runProgram(mkProg(op::JGE, 10), data(10)).action, 1u);
    EXPECT_EQ(runProgram(mkProg(op::JGE, 10), data(9)).action, 0u);
    EXPECT_EQ(runProgram(mkProg(op::JSET, 0x4), data(6)).action, 1u);
    EXPECT_EQ(runProgram(mkProg(op::JSET, 0x4), data(3)).action, 0u);
}

TEST(Bpf, JaSkips)
{
    auto r = runProgram({stmt(op::JMP | op::JA, 1),
                         stmt(op::RET | op::K, 111),
                         stmt(op::RET | op::K, 222)},
                        data());
    EXPECT_EQ(r.action, 222u);
    EXPECT_EQ(r.insnsExecuted, 2u);
}

TEST(Bpf, AluOps)
{
    auto alu = [&](uint16_t aluOp, uint32_t a, uint32_t k) {
        return runProgram({stmt(op::LD | op::IMM, a),
                           stmt(op::ALU | aluOp | op::K, k),
                           stmt(op::RET | op::A, 0)},
                          data())
            .action;
    };
    EXPECT_EQ(alu(op::ADD, 7, 3), 10u);
    EXPECT_EQ(alu(op::SUB, 7, 3), 4u);
    EXPECT_EQ(alu(op::MUL, 7, 3), 21u);
    EXPECT_EQ(alu(op::DIV, 7, 3), 2u);
    EXPECT_EQ(alu(op::MOD, 7, 3), 1u);
    EXPECT_EQ(alu(op::OR, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(alu(op::AND, 0xf0, 0x3c), 0x30u);
    EXPECT_EQ(alu(op::XOR, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(alu(op::LSH, 1, 4), 16u);
    EXPECT_EQ(alu(op::RSH, 16, 4), 1u);
}

TEST(Bpf, AluNeg)
{
    auto r = runProgram({stmt(op::LD | op::IMM, 5),
                         stmt(op::ALU | op::NEG, 0),
                         stmt(op::RET | op::A, 0)},
                        data());
    EXPECT_EQ(r.action, static_cast<uint32_t>(-5));
}

TEST(Bpf, ScratchMemoryStLd)
{
    auto r = runProgram({stmt(op::LD | op::IMM, 77),
                         stmt(op::ST, 3),
                         stmt(op::LD | op::IMM, 0),
                         stmt(op::LD | op::MEM, 3),
                         stmt(op::RET | op::A, 0)},
                        data());
    EXPECT_EQ(r.action, 77u);
}

TEST(Bpf, IndexRegisterTaxTxaStx)
{
    auto r = runProgram({stmt(op::LD | op::IMM, 9),
                         stmt(op::MISC | op::TAX, 0),
                         stmt(op::LD | op::IMM, 0),
                         stmt(op::ALU | op::ADD | op::X, 0),
                         stmt(op::RET | op::A, 0)},
                        data());
    EXPECT_EQ(r.action, 9u);

    r = runProgram({stmt(op::LDX | op::IMM, 4),
                    stmt(op::STX, 0),
                    stmt(op::LD | op::MEM, 0),
                    stmt(op::RET | op::A, 0)},
                   data());
    EXPECT_EQ(r.action, 4u);

    r = runProgram({stmt(op::LDX | op::IMM, 6),
                    stmt(op::MISC | op::TXA, 0),
                    stmt(op::RET | op::A, 0)},
                   data());
    EXPECT_EQ(r.action, 6u);
}

TEST(Bpf, DivByZeroRegisterYieldsZero)
{
    // Division by X where X == 0 returns 0 (matches kernel cBPF).
    auto r = runProgram({stmt(op::LD | op::IMM, 42),
                         stmt(op::LDX | op::IMM, 0),
                         stmt(op::ALU | op::DIV | op::X, 0),
                         stmt(op::RET | op::A, 0)},
                        data());
    EXPECT_EQ(r.action, 0u);
}

TEST(BpfValidate, EmptyProgramRejected)
{
    BpfProgram p;
    std::string err;
    EXPECT_FALSE(p.validate(&err));
}

TEST(BpfValidate, MissingRetRejected)
{
    BpfProgram p({stmt(op::LD | op::IMM, 1)});
    std::string err;
    EXPECT_FALSE(p.validate(&err));
    EXPECT_NE(err.find("RET"), std::string::npos);
}

TEST(BpfValidate, OutOfBoundsLoadRejected)
{
    BpfProgram p({stmt(op::LD | op::W | op::ABS, 64),
                  stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p.validate());
    BpfProgram p2({stmt(op::LD | op::W | op::ABS, 61),
                   stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p2.validate()); // unaligned and straddling the end
}

TEST(BpfValidate, JumpPastEndRejected)
{
    BpfProgram p({jump(op::JMP | op::JEQ | op::K, 1, 5, 0),
                  stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p.validate());
}

TEST(BpfValidate, ScratchIndexRejected)
{
    BpfProgram p({stmt(op::ST, 16), stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p.validate());
}

TEST(BpfValidate, ConstantDivZeroRejected)
{
    BpfProgram p({stmt(op::ALU | op::DIV | op::K, 0),
                  stmt(op::RET | op::K, 0)});
    EXPECT_FALSE(p.validate());
}

TEST(BpfValidate, TooLongRejected)
{
    std::vector<BpfInsn> insns(kBpfMaxInsns + 1,
                               stmt(op::LD | op::IMM, 0));
    insns.back() = stmt(op::RET | op::K, 0);
    BpfProgram p(std::move(insns));
    EXPECT_FALSE(p.validate());
}

TEST(BpfValidate, GoodProgramAccepted)
{
    BpfProgram p({stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
                  jump(op::JMP | op::JEQ | op::K, 1, 0, 1),
                  stmt(op::RET | op::K, 0x7fff0000),
                  stmt(op::RET | op::K, 0)});
    std::string err;
    EXPECT_TRUE(p.validate(&err)) << err;
}

TEST(Bpf, Disassemble)
{
    BpfProgram p({stmt(op::LD | op::W | op::ABS, 0),
                  stmt(op::RET | op::K, 7)});
    std::string text = p.disassemble();
    EXPECT_NE(text.find("ld"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Bpf, InsnCountingOnBranches)
{
    // Count only instructions on the executed path.
    std::vector<BpfInsn> prog = {
        stmt(op::LD | op::W | op::ABS, os::sd_off::nr),
        jump(op::JMP | op::JEQ | op::K, 1, 2, 0), // taken: skip 2
        stmt(op::LD | op::IMM, 0),
        stmt(op::LD | op::IMM, 0),
        stmt(op::RET | op::K, 9),
    };
    EXPECT_EQ(runProgram(prog, data(1)).insnsExecuted, 3u);
    EXPECT_EQ(runProgram(prog, data(0)).insnsExecuted, 5u);
}

} // namespace
} // namespace draco::seccomp
