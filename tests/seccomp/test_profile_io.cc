/**
 * @file
 * Tests for profile serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "seccomp/profile_io.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/random.hh"

namespace draco::seccomp {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    return req;
}

Profile
roundTrip(const Profile &p)
{
    std::stringstream buf;
    writeProfile(p, buf);
    std::string error;
    auto parsed = readProfile(buf, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return parsed ? *parsed : Profile("failed");
}

TEST(ProfileIo, RoundTripSimpleProfile)
{
    Profile p("demo");
    p.setDenyAction(os::SeccompAction::Errno);
    p.allow(os::sc::getpid);
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0}, true);
    p.allowArgValues(os::sc::personality, 0, {0x0, 0xffffffff});

    Profile back = roundTrip(p);
    EXPECT_EQ(back.name(), "demo");
    EXPECT_EQ(back.denyAction(), os::SeccompAction::Errno);
    ASSERT_NE(back.rule(os::sc::getpid), nullptr);
    ASSERT_NE(back.rule(os::sc::read), nullptr);
    EXPECT_TRUE(back.rule(os::sc::read)->runtimeRequired);
    EXPECT_FALSE(back.rule(os::sc::getpid)->runtimeRequired);
    EXPECT_EQ(back.rule(os::sc::read)->tuples.size(), 1u);
    EXPECT_EQ(back.rule(os::sc::personality)->perArg.at(0).size(), 2u);
}

TEST(ProfileIo, RoundTripPreservesSemantics)
{
    // The loaded profile must decide identically on random requests.
    Profile p = gvisorProfile();
    Profile back = roundTrip(p);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        os::SyscallRequest req;
        req.sid = static_cast<uint16_t>(rng.nextBelow(440));
        for (auto &arg : req.args)
            arg = rng.chance(0.6) ? rng.nextBelow(64) : rng.next();
        EXPECT_EQ(back.allows(req), p.allows(req)) << "sid " << req.sid;
    }
}

TEST(ProfileIo, RoundTripDockerDefault)
{
    Profile p = dockerDefaultProfile();
    Profile back = roundTrip(p);
    auto a = p.stats(), b = back.stats();
    EXPECT_EQ(a.syscallsAllowed, b.syscallsAllowed);
    EXPECT_EQ(a.argsChecked, b.argsChecked);
    EXPECT_EQ(a.valuesAllowed, b.valuesAllowed);
    EXPECT_EQ(back.denyAction(), os::SeccompAction::Errno);
}

TEST(ProfileIo, HeaderRequired)
{
    std::stringstream buf("allow getpid\n");
    std::string error;
    auto p = readProfile(buf, &error);
    EXPECT_FALSE(p.has_value());
    EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(ProfileIo, UnknownSyscallRejected)
{
    std::stringstream buf;
    buf << kProfileMagic << "\nallow flumoxify\n";
    std::string error;
    EXPECT_FALSE(readProfile(buf, &error).has_value());
    EXPECT_NE(error.find("unknown syscall"), std::string::npos);
}

TEST(ProfileIo, UnknownKeywordRejected)
{
    std::stringstream buf;
    buf << kProfileMagic << "\nfrobnicate getpid\n";
    std::string error;
    EXPECT_FALSE(readProfile(buf, &error).has_value());
    EXPECT_NE(error.find("unknown keyword"), std::string::npos);
}

TEST(ProfileIo, BadDenyActionRejected)
{
    std::stringstream buf;
    buf << kProfileMagic << "\ndeny explode\n";
    std::string error;
    EXPECT_FALSE(readProfile(buf, &error).has_value());
    EXPECT_NE(error.find("deny action"), std::string::npos);
}

TEST(ProfileIo, ArgvaluesNeedsValues)
{
    std::stringstream buf;
    buf << kProfileMagic << "\nargvalues personality 0\n";
    std::string error;
    EXPECT_FALSE(readProfile(buf, &error).has_value());
}

TEST(ProfileIo, LoadedProfileDecides)
{
    std::stringstream buf;
    buf << kProfileMagic << "\n"
        << "name handwritten\n"
        << "deny kill-process\n"
        << "allow getpid\n"
        << "tuple read 3 0 40 0 0 0\n";
    auto p = readProfile(buf, nullptr);
    ASSERT_TRUE(p);
    EXPECT_TRUE(p->allows(request(os::sc::getpid)));
    EXPECT_TRUE(p->allows(request(os::sc::read, {3, 0, 0x40})));
    EXPECT_FALSE(p->allows(request(os::sc::read, {3, 0, 0x41})));
    EXPECT_FALSE(p->allows(request(os::sc::write)));
}

TEST(ProfileIo, FileRoundTrip)
{
    Profile p = firecrackerProfile();
    std::string path = testing::TempDir() + "draco_profile_test.txt";
    writeProfileFile(p, path);
    Profile back = readProfileFile(path);
    EXPECT_EQ(back.stats().syscallsAllowed, p.stats().syscallsAllowed);
    std::remove(path.c_str());
}

} // namespace
} // namespace draco::seccomp
