/**
 * @file
 * Tests for FilterChain: multi-program compilation of oversized
 * profiles and the kernel's most-restrictive-action combination rule.
 */

#include <gtest/gtest.h>

#include "seccomp/filter_builder.hh"
#include "seccomp/profile_gen.hh"
#include "support/random.hh"
#include "workload/generator.hh"

namespace draco::seccomp {
namespace {

os::SyscallRequest
request(uint16_t sid, std::array<uint64_t, 6> args = {})
{
    os::SyscallRequest req;
    req.sid = sid;
    req.args = args;
    return req;
}

/** A profile too large for one BPF program: 60 syscalls x 30 tuples. */
Profile
hugeProfile()
{
    Profile p("huge");
    unsigned added = 0;
    for (const auto &desc : os::syscallTable()) {
        if (desc.checkedArgCount() == 0)
            continue;
        for (uint64_t i = 0; i < 30; ++i) {
            ArgVector args{};
            for (unsigned a = 0; a < desc.nargs; ++a)
                if (!desc.argIsPointer(a))
                    args[a] = 3 + i * 11 + a;
            p.allowTuple(desc.id, args);
        }
        if (++added == 60)
            break;
    }
    p.allow(os::sc::getpid);
    return p;
}

TEST(FilterChain, SmallProfileIsOneProgram)
{
    Profile p("small");
    p.allow(os::sc::getpid);
    p.allowTuple(os::sc::read, {3, 0, 64, 0, 0, 0});
    FilterChain chain = buildFilterChain(p);
    EXPECT_EQ(chain.filterCount(), 1u);
}

TEST(FilterChain, HugeProfileSplits)
{
    FilterChain chain = buildFilterChain(hugeProfile());
    EXPECT_GT(chain.filterCount(), 1u);
    for (const auto &program : chain.programs()) {
        std::string err;
        EXPECT_TRUE(program.validate(&err)) << err;
        EXPECT_LE(program.size(), kBpfMaxInsns);
    }
}

TEST(FilterChain, ChainAgreesWithProfile)
{
    Profile p = hugeProfile();
    FilterChain chain = buildFilterChain(p);
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        os::SyscallRequest req;
        req.sid = static_cast<uint16_t>(rng.nextBelow(120));
        // Mix values that collide with whitelisted tuples and ones
        // that do not.
        for (auto &arg : req.args)
            arg = 3 + rng.nextBelow(40);
        auto result = chain.run(req.toSeccompData());
        EXPECT_EQ(os::actionAllows(
                      static_cast<os::SeccompAction>(result.action)),
                  p.allows(req))
            << "sid " << req.sid;
    }
}

TEST(FilterChain, InsnsSumAcrossChain)
{
    FilterChain chain = buildFilterChain(hugeProfile());
    auto r = chain.run(request(os::sc::getpid).toSeccompData());
    // Every program in the chain executes at least its prologue.
    EXPECT_GE(r.insnsExecuted, chain.filterCount() * 4);
    EXPECT_GT(chain.totalInsns(), kBpfMaxInsns);
}

TEST(FilterChain, ElasticsearchCompleteProfileCompiles)
{
    // The real trigger for chains: the biggest generated app profile.
    const auto *app = workload::workloadByName("elasticsearch");
    ASSERT_NE(app, nullptr);
    workload::TraceGenerator gen(*app, 7);
    ProfileRecorder rec;
    for (int i = 0; i < 150000; ++i)
        rec.record(gen.next().req);
    Profile profile = rec.makeComplete("es");
    FilterChain chain = buildFilterChain(profile);
    EXPECT_GE(chain.filterCount(), 1u);
    for (const auto &program : chain.programs())
        EXPECT_TRUE(program.validate());

    // Spot-check agreement on the trace itself.
    workload::TraceGenerator replay(*app, 7);
    for (int i = 0; i < 3000; ++i) {
        os::SyscallRequest req = replay.next().req;
        auto result = chain.run(req.toSeccompData());
        EXPECT_EQ(os::actionAllows(
                      static_cast<os::SeccompAction>(result.action)),
                  profile.allows(req));
    }
}

TEST(FilterChain, EmptyChainPanics)
{
    FilterChain chain;
    EXPECT_DEATH(chain.run(os::SeccompData{}), "");
}

TEST(MostRestrictive, KernelPrecedenceOrder)
{
    auto v = [](os::SeccompAction a) { return static_cast<uint32_t>(a); };
    using A = os::SeccompAction;
    // KILL_PROCESS beats everything.
    EXPECT_EQ(mostRestrictiveAction(v(A::KillProcess), v(A::Allow)),
              v(A::KillProcess));
    EXPECT_EQ(mostRestrictiveAction(v(A::Allow), v(A::KillProcess)),
              v(A::KillProcess));
    // KILL_THREAD beats TRAP/ERRNO/ALLOW despite being numerically 0.
    EXPECT_EQ(mostRestrictiveAction(v(A::KillThread), v(A::Errno)),
              v(A::KillThread));
    EXPECT_EQ(mostRestrictiveAction(v(A::Trap), v(A::Errno)), v(A::Trap));
    EXPECT_EQ(mostRestrictiveAction(v(A::Errno), v(A::Trace)),
              v(A::Errno));
    EXPECT_EQ(mostRestrictiveAction(v(A::Log), v(A::Allow)), v(A::Log));
    EXPECT_EQ(mostRestrictiveAction(v(A::Allow), v(A::Allow)),
              v(A::Allow));
}

TEST(FilterChain, MixedActionsTakeStrictest)
{
    // Two hand-built programs: one allows everything, one errnos
    // everything. The chain must errno.
    std::vector<BpfInsn> allowAll = {
        stmt(op::RET | op::K,
             static_cast<uint32_t>(os::SeccompAction::Allow))};
    std::vector<BpfInsn> errnoAll = {
        stmt(op::RET | op::K,
             static_cast<uint32_t>(os::SeccompAction::Errno))};
    std::vector<BpfProgram> programs;
    programs.emplace_back(allowAll);
    programs.emplace_back(errnoAll);
    FilterChain chain(std::move(programs));
    auto r = chain.run(request(0).toSeccompData());
    EXPECT_EQ(r.action, static_cast<uint32_t>(os::SeccompAction::Errno));
    EXPECT_EQ(r.insnsExecuted, 2u);
}

TEST(FilterChainDeathTest, UnsplittableRuleIsFatal)
{
    // 900 tuples on one syscall cannot be expressed within
    // BPF_MAXINSNS, and conjunction semantics forbid splitting them.
    Profile p("unsplittable");
    for (uint64_t i = 0; i < 900; ++i)
        p.allowTuple(os::sc::read, {3 + i, 0, 64, 0, 0, 0});
    EXPECT_EXIT(buildFilterChain(p), testing::ExitedWithCode(1),
                "beyond what one filter can hold");
}

} // namespace
} // namespace draco::seccomp
