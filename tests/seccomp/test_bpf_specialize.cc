/**
 * @file
 * Tests for the shape-specialized BPF executors (DESIGN.md §12): the
 * recognizer's chain/tree/general classification, the dense-table and
 * range-search tiers, and three-way differential equivalence — action
 * AND dynamic instruction count — between runInterpreted(),
 * runDecoded(), and run() on builtin profiles, hand-built boundary
 * cases, and randomly generated valid programs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "seccomp/bpf.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profiles_builtin.hh"
#include "support/metrics.hh"
#include "support/random.hh"

namespace draco::seccomp {
namespace {

constexpr uint32_t kAllow = static_cast<uint32_t>(os::SeccompAction::Allow);

os::SeccompData
data(uint32_t nr, uint32_t arch = os::kAuditArchX86_64)
{
    os::SeccompData d{};
    d.nr = nr;
    d.arch = arch;
    return d;
}

os::SeccompData
randomData(Rng &rng)
{
    os::SeccompData d{};
    d.nr = rng.chance(0.9) ? static_cast<uint32_t>(rng.nextBelow(512))
                           : static_cast<uint32_t>(rng.next());
    d.arch = rng.chance(0.85) ? os::kAuditArchX86_64
                              : static_cast<uint32_t>(rng.next());
    d.instruction_pointer = rng.next();
    for (auto &arg : d.args)
        arg = rng.chance(0.5) ? rng.nextBelow(64) : rng.next();
    return d;
}

/** All three tiers must agree on action and instruction count. */
void
expectThreeWay(const BpfProgram &program, const os::SeccompData &d)
{
    ASSERT_TRUE(program.compiled());
    BpfResult oracle = program.runInterpreted(d);
    BpfResult decoded = program.runDecoded(d);
    BpfResult fast = program.run(d);
    EXPECT_EQ(decoded.action, oracle.action);
    EXPECT_EQ(decoded.insnsExecuted, oracle.insnsExecuted);
    EXPECT_EQ(fast.action, oracle.action);
    EXPECT_EQ(fast.insnsExecuted, oracle.insnsExecuted);
}

/** Standard arch-guard prefix every builder filter carries. */
void
pushGuard(std::vector<BpfInsn> &insns)
{
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::arch));
    insns.push_back(jump(op::JMP | op::JEQ | op::K, os::kAuditArchX86_64,
                         1, 0));
    insns.push_back(stmt(op::RET | op::K, 0x80000000u));
}

TEST(BpfSpecialize, BuiltinProfilesEngageSpecializedExecutors)
{
    // The LinearChain lowering of docker-default is the Figure-1
    // shape: pure JEQ chain -> dense table. BinaryTree and the
    // coalesced Linear lowering use JGE/JGT -> range search.
    Profile docker = dockerDefaultProfile();

    BpfProgram chain = buildFilter(docker, DispatchShape::LinearChain);
    EXPECT_EQ(chain.shape(), BpfShape::Chain);
    EXPECT_EQ(chain.executor(), BpfExecutor::DenseTable);

    BpfProgram tree = buildFilter(docker, DispatchShape::BinaryTree);
    EXPECT_EQ(tree.shape(), BpfShape::Tree);
    EXPECT_EQ(tree.executor(), BpfExecutor::RangeSearch);

    BpfProgram linear = buildFilter(docker, DispatchShape::Linear);
    EXPECT_EQ(linear.shape(), BpfShape::Tree);
    EXPECT_EQ(linear.executor(), BpfExecutor::RangeSearch);
}

TEST(BpfSpecialize, ThreeWayAgreementOnBuiltinProfiles)
{
    const Profile profiles[] = {dockerDefaultProfile(), gvisorProfile(),
                                firecrackerProfile()};
    for (const Profile &profile : profiles) {
        for (DispatchShape shape :
             {DispatchShape::Linear, DispatchShape::LinearChain,
              DispatchShape::BinaryTree}) {
            BpfProgram p = buildFilter(profile, shape);
            ASSERT_TRUE(p.compiled());
            Rng rng(splitSeed(7, "specialize-" + profile.name()));
            for (int i = 0; i < 2000; ++i)
                expectThreeWay(p, randomData(rng));
            // Explicit interesting corners: 0, just past the table,
            // and the extremes of the nr domain.
            for (uint32_t nr : {0u, 1u, 511u, 512u, 4095u, 4096u,
                                100000u, UINT32_MAX}) {
                expectThreeWay(p, data(nr));
                expectThreeWay(p, data(nr, /*arch=*/0x12345678u));
            }
        }
    }
}

TEST(BpfSpecialize, ChainWithArgTestResumesIntoDecodedCore)
{
    // A JEQ chain where one rule has an argument-check body: the
    // matching nr's table slot must resume the decoded core at the
    // body (the arg load), not precompute a wrong verdict.
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    // Rule 1: plain allow of nr 10.
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 10, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    // Rule 2: nr 20 allowed only when arg0 (low word) == 7.
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 20, 0, 4));
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::argLo(0)));
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 7, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    // Rule 3: plain allow of nr 30.
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 30, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    insns.push_back(stmt(op::RET | op::K, 0x00050001u)); // errno deny

    BpfProgram p(insns);
    ASSERT_TRUE(p.compile());
    EXPECT_EQ(p.shape(), BpfShape::Chain);
    EXPECT_EQ(p.executor(), BpfExecutor::DenseTable);

    for (uint32_t nr : {0u, 9u, 10u, 11u, 19u, 20u, 21u, 29u, 30u, 31u,
                        1000u, UINT32_MAX}) {
        for (uint64_t arg0 : {0ull, 7ull, 8ull, 0x700000000ull}) {
            os::SeccompData d = data(nr);
            d.args[0] = arg0;
            expectThreeWay(p, d);
        }
    }
    // The arg-dependent rule really is arg-dependent through run().
    os::SeccompData good = data(20);
    good.args[0] = 7;
    os::SeccompData bad = data(20);
    bad.args[0] = 8;
    EXPECT_EQ(p.run(good).action, kAllow);
    EXPECT_EQ(p.run(bad).action, 0x00050001u);
}

TEST(BpfSpecialize, DegenerateSingleNodeTree)
{
    // One JGE is the smallest possible tree: two ranges.
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    insns.push_back(jump(op::JMP | op::JGE | op::K, 100, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    insns.push_back(stmt(op::RET | op::K, 0));

    BpfProgram p(insns);
    ASSERT_TRUE(p.compile());
    EXPECT_EQ(p.shape(), BpfShape::Tree);
    EXPECT_EQ(p.executor(), BpfExecutor::RangeSearch);
    for (uint32_t nr : {0u, 1u, 99u, 100u, 101u, 4096u, UINT32_MAX})
        expectThreeWay(p, data(nr));
}

TEST(BpfSpecialize, ChainOfOneJeqIsStillAChain)
{
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 42, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    insns.push_back(stmt(op::RET | op::K, 0));

    BpfProgram p(insns);
    ASSERT_TRUE(p.compile());
    EXPECT_EQ(p.shape(), BpfShape::Chain);
    EXPECT_EQ(p.executor(), BpfExecutor::DenseTable);
    for (uint32_t nr : {0u, 41u, 42u, 43u, UINT32_MAX})
        expectThreeWay(p, data(nr));
}

TEST(BpfSpecialize, JsetAndXComparisonsStayGeneral)
{
    std::vector<BpfInsn> jset;
    pushGuard(jset);
    jset.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    jset.push_back(jump(op::JMP | op::JSET | op::K, 0x8, 0, 1));
    jset.push_back(stmt(op::RET | op::K, kAllow));
    jset.push_back(stmt(op::RET | op::K, 0));
    BpfProgram p1(jset);
    ASSERT_TRUE(p1.compile());
    EXPECT_EQ(p1.shape(), BpfShape::General);
    EXPECT_EQ(p1.executor(), BpfExecutor::Decoded);

    std::vector<BpfInsn> jx;
    pushGuard(jx);
    jx.push_back(stmt(op::LDX | op::IMM, 42));
    jx.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    jx.push_back(jump(op::JMP | op::JEQ | op::X, 0, 0, 1));
    jx.push_back(stmt(op::RET | op::K, kAllow));
    jx.push_back(stmt(op::RET | op::K, 0));
    BpfProgram p2(jx);
    ASSERT_TRUE(p2.compile());
    EXPECT_EQ(p2.shape(), BpfShape::General);
    EXPECT_EQ(p2.executor(), BpfExecutor::Decoded);

    Rng rng(splitSeed(7, "specialize-general"));
    for (int i = 0; i < 500; ++i) {
        os::SeccompData d = randomData(rng);
        expectThreeWay(p1, d);
        expectThreeWay(p2, d);
    }
}

TEST(BpfSpecialize, RetAOfNrCannotBeTabledButStaysCorrect)
{
    // RET A where A depends on nr: no finite table covers the default
    // interval, so the specializer must decline rather than precompute
    // a wrong verdict for large nr.
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    insns.push_back(stmt(op::RET | op::A, 0));

    BpfProgram p(insns);
    ASSERT_TRUE(p.compile());
    EXPECT_EQ(p.executor(), BpfExecutor::Decoded);
    for (uint32_t nr : {0u, 1u, 4097u, UINT32_MAX})
        expectThreeWay(p, data(nr));
}

TEST(BpfSpecialize, ArchMismatchTakesTheGuardPath)
{
    BpfProgram p = buildFilter(dockerDefaultProfile(),
                               DispatchShape::LinearChain);
    ASSERT_EQ(p.executor(), BpfExecutor::DenseTable);
    for (uint32_t arch : {0u, 1u, 0x40000003u, UINT32_MAX}) {
        os::SeccompData d = data(3, arch);
        expectThreeWay(p, d);
        EXPECT_EQ(p.run(d).action, p.runInterpreted(d).action);
    }
}

TEST(BpfSpecialize, LdxAbsIsRejectedByTheValidator)
{
    // Regression: LDX|ABS is not a classic-BPF form; it used to alias
    // onto a scratch-memory load with k up to 60 — past mem[16].
    BpfProgram p({stmt(op::LDX | op::W | op::ABS, 16),
                  stmt(op::RET | op::K, 0)});
    std::string err;
    EXPECT_FALSE(p.validate(&err));
    EXPECT_NE(err.find("LDX"), std::string::npos) << err;
}

/** Random VALID instruction: jump offsets stay in range by design. */
BpfInsn
randomValidInsn(Rng &rng, size_t remaining)
{
    // remaining = instructions after this one; the last slot is always
    // a RET appended by the caller.
    switch (rng.nextBelow(8)) {
      case 0: { // LD
        switch (rng.nextBelow(4)) {
          case 0:
            return stmt(op::LD | op::W | op::ABS,
                        4 * static_cast<uint32_t>(rng.nextBelow(16)));
          case 1:
            return stmt(op::LD | op::IMM,
                        static_cast<uint32_t>(rng.next()));
          case 2: return stmt(op::LD | op::LEN, 0);
          default:
            return stmt(op::LD | op::MEM,
                        static_cast<uint32_t>(rng.nextBelow(16)));
        }
      }
      case 1: { // LDX
        switch (rng.nextBelow(3)) {
          case 0:
            return stmt(op::LDX | op::IMM,
                        static_cast<uint32_t>(rng.nextBelow(64)));
          case 1: return stmt(op::LDX | op::LEN, 0);
          default:
            return stmt(op::LDX | op::MEM,
                        static_cast<uint32_t>(rng.nextBelow(16)));
        }
      }
      case 2:
        return stmt((rng.chance(0.5) ? op::ST : op::STX),
                    static_cast<uint32_t>(rng.nextBelow(16)));
      case 3: { // ALU
        static constexpr uint16_t kOps[] = {
            op::ADD, op::SUB, op::MUL, op::DIV, op::OR, op::AND,
            op::LSH, op::RSH, op::NEG, op::MOD, op::XOR};
        uint16_t aluOp = kOps[rng.nextBelow(std::size(kOps))];
        uint16_t src = rng.chance(0.5) ? op::K : op::X;
        uint32_t k = static_cast<uint32_t>(rng.nextBelow(64));
        if (src == op::K && (aluOp == op::DIV || aluOp == op::MOD))
            k = 1 + k; // constant divide-by-zero is rejected
        if (rng.chance(0.2))
            k = static_cast<uint32_t>(rng.next() | 1);
        return stmt(op::ALU | aluOp | src, k);
      }
      case 4:
      case 5: { // JMP (biased: jumps are the interesting part)
        if (remaining == 0)
            return stmt(op::RET | op::K,
                        static_cast<uint32_t>(rng.next()));
        uint32_t span = static_cast<uint32_t>(std::min<size_t>(
            remaining, 255));
        if (rng.chance(0.15))
            return stmt(op::JMP | op::JA, rng.nextBelow(span));
        static constexpr uint16_t kJops[] = {op::JEQ, op::JGT, op::JGE,
                                             op::JSET};
        uint16_t jop = kJops[rng.nextBelow(std::size(kJops))];
        uint16_t src = rng.chance(0.75) ? op::K : op::X;
        uint32_t k = rng.chance(0.5)
            ? static_cast<uint32_t>(rng.nextBelow(512))
            : static_cast<uint32_t>(rng.next());
        return jump(op::JMP | jop | src, k,
                    static_cast<uint8_t>(rng.nextBelow(span)),
                    static_cast<uint8_t>(rng.nextBelow(span)));
      }
      case 6:
        return stmt(op::MISC | (rng.chance(0.5) ? op::TAX : op::TXA), 0);
      default:
        return rng.chance(0.5)
            ? stmt(op::RET | op::K, static_cast<uint32_t>(rng.next()))
            : stmt(op::RET | op::A, 0);
    }
}

TEST(BpfSpecialize, RandomValidProgramsThreeWayAgreement)
{
    Rng rng(splitSeed(7, "specialize-random-valid"));
    for (int trial = 0; trial < 3000; ++trial) {
        size_t len = 2 + rng.nextBelow(40);
        std::vector<BpfInsn> insns;
        for (size_t i = 0; i + 1 < len; ++i)
            insns.push_back(randomValidInsn(rng, len - i - 2));
        insns.push_back(rng.chance(0.5)
                            ? stmt(op::RET | op::K,
                                   static_cast<uint32_t>(rng.next()))
                            : stmt(op::RET | op::A, 0));
        BpfProgram p(std::move(insns));
        std::string err;
        ASSERT_TRUE(p.compile(&err)) << err;
        for (int i = 0; i < 20; ++i)
            expectThreeWay(p, randomData(rng));
    }
}

/** Random docker-style chain: JEQ dispatch plus arg-check bodies. */
BpfProgram
randomChainProgram(Rng &rng)
{
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    size_t rules = 1 + rng.nextBelow(24);
    for (size_t r = 0; r < rules; ++r) {
        uint32_t sid = static_cast<uint32_t>(rng.nextBelow(512));
        if (rng.chance(0.3)) {
            // Arg-check body: ld arg; jeq val -> allow; else reload nr
            // and fall through to the next rule.
            uint32_t arg = static_cast<uint32_t>(rng.nextBelow(6));
            uint32_t val = static_cast<uint32_t>(rng.nextBelow(64));
            insns.push_back(jump(op::JMP | op::JEQ | op::K, sid, 0, 4));
            insns.push_back(
                stmt(op::LD | op::W | op::ABS, os::sd_off::argLo(arg)));
            insns.push_back(jump(op::JMP | op::JEQ | op::K, val, 0, 1));
            insns.push_back(stmt(op::RET | op::K, kAllow));
            insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
        } else {
            insns.push_back(jump(op::JMP | op::JEQ | op::K, sid, 0, 1));
            insns.push_back(stmt(op::RET | op::K, kAllow));
        }
    }
    insns.push_back(stmt(op::RET | op::K, 0x00050001u));
    BpfProgram p(std::move(insns));
    EXPECT_TRUE(p.compile());
    return p;
}

TEST(BpfSpecialize, RandomChainsUseDenseTableAndAgree)
{
    Rng rng(splitSeed(7, "specialize-random-chain"));
    int dense = 0;
    for (int trial = 0; trial < 200; ++trial) {
        BpfProgram p = randomChainProgram(rng);
        ASSERT_EQ(p.shape(), BpfShape::Chain);
        dense += p.executor() == BpfExecutor::DenseTable;
        for (int i = 0; i < 200; ++i)
            expectThreeWay(p, randomData(rng));
    }
    // Every generated chain has in-cap constants, so all must lower.
    EXPECT_EQ(dense, 200);
}

TEST(BpfSpecialize, CompileMetricsExportScoreboard)
{
    MetricRegistry registry;
    exportBpfCompileMetrics(registry, "bpf");
    for (const char *name :
         {"bpf.shape.chain", "bpf.shape.tree", "bpf.shape.general",
          "bpf.exec.dense", "bpf.exec.ranges", "bpf.exec.decoded"}) {
        EXPECT_TRUE(registry.has(name)) << name;
    }
    uint64_t chains = registry.counterValue("bpf.shape.chain");

    // Compiling one more chain bumps the process-wide counters.
    std::vector<BpfInsn> insns;
    pushGuard(insns);
    insns.push_back(stmt(op::LD | op::W | op::ABS, os::sd_off::nr));
    insns.push_back(jump(op::JMP | op::JEQ | op::K, 1, 0, 1));
    insns.push_back(stmt(op::RET | op::K, kAllow));
    insns.push_back(stmt(op::RET | op::K, 0));
    BpfProgram p(insns);
    ASSERT_TRUE(p.compile());

    MetricRegistry after;
    exportBpfCompileMetrics(after, "bpf");
    EXPECT_EQ(after.counterValue("bpf.shape.chain"), chains + 1);
}

} // namespace
} // namespace draco::seccomp
