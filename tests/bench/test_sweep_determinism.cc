/**
 * @file
 * The parallel-sweep determinism contract: a sweep's merged
 * MetricRegistry (and therefore its BENCH_*.json artifact) must be
 * byte-identical at any --threads value.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common.hh"

namespace draco::bench {
namespace {

// benchCalls() caches its env lookup on first use, so pin the call
// count before any test (or static) can touch it, and make sure no
// artifact file gets written from this process.
const bool envReady = [] {
    setenv("DRACO_BENCH_CALLS", "400", 1);
    unsetenv("DRACO_BENCH_JSON");
    return true;
}();

/**
 * Run a small (workload × profile) sweep at @p threads workers and
 * return the merged registry's JSON.
 */
std::string
sweepJson(unsigned threads)
{
    EXPECT_TRUE(envReady);
    // Route the thread count through the real argv parser.
    char prog[] = "test_sweep";
    std::string threadArg = "--threads=" + std::to_string(threads);
    std::vector<char *> argv = {prog, threadArg.data()};
    BenchReport report("sweep_determinism",
                       static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(report.enabled());
    EXPECT_EQ(benchThreads(), threads);

    // Profiles are deterministic, so one cache may serve every sweep.
    static ProfileCache cache;
    const char *names[] = {"nginx", "pipe-ipc"};
    const ProfileKind kinds[] = {ProfileKind::DockerDefault,
                                 ProfileKind::Complete};
    const sim::Mechanism mechs[] = {sim::Mechanism::Seccomp,
                                    sim::Mechanism::DracoSW,
                                    sim::Mechanism::DracoHW};

    parallelCells(
        std::size(names) * std::size(kinds) * std::size(mechs),
        [&](size_t idx, MetricRegistry &shard) {
            const char *name = names[idx / 6];
            ProfileKind kind = kinds[idx / 3 % 2];
            sim::Mechanism mech = mechs[idx % 3];
            const auto *app = workload::workloadByName(name);
            sim::RunResult r =
                runExperiment(*app, kind, mech, cache);
            recordCell(shard,
                       MetricRegistry::sanitize(name) + "." +
                           MetricRegistry::sanitize(
                               profileKindName(kind)) +
                           "." +
                           MetricRegistry::sanitize(
                               sim::mechanismName(mech)),
                       r);
        },
        &report);

    return report.registry().toJson();
}

TEST(SweepDeterminism, JsonByteIdenticalAcrossThreadCounts)
{
    std::string serial = sweepJson(1);
    std::string parallel4 = sweepJson(4);
    EXPECT_EQ(serial, parallel4);

    // And stable across repeated parallel executions.
    EXPECT_EQ(parallel4, sweepJson(4));
}

TEST(SweepDeterminism, RegistryIsPopulated)
{
    std::string json = sweepJson(2);
    // Spot-check that the sweep actually recorded run blocks.
    EXPECT_NE(json.find("\"nginx\""), std::string::npos);
    EXPECT_NE(json.find("\"normalized\""), std::string::npos);
    EXPECT_NE(json.find("\"draco-hw\""), std::string::npos);
}

TEST(SweepDeterminism, WorkloadSeedIsPerWorkload)
{
    const auto *nginx = workload::workloadByName("nginx");
    const auto *pipe = workload::workloadByName("pipe-ipc");
    EXPECT_EQ(workloadSeed(*nginx), workloadSeed(*nginx));
    EXPECT_NE(workloadSeed(*nginx), workloadSeed(*pipe));
}

} // namespace
} // namespace draco::bench
