#include <gtest/gtest.h>

#include "obs/tracer.hh"

namespace draco::obs {
namespace {

TEST(Tracer, DisabledTracerRecordsNothingAndAllocatesNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.capacityBytes(), 0u);
    EXPECT_EQ(tracer.events().capacity(), 0u);

    tracer.setNow(100);
    tracer.record(EventKind::StbHit, 3, 0x1000);
    tracer.beginSyscall(3, 0x1000);
    tracer.setNow(200);
    tracer.endSyscall(FlowCode::F1);
    tracer.maybeSample();

    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.events().capacity(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.sampleCycles().empty());
    EXPECT_TRUE(tracer.series().empty());
}

TEST(Tracer, RecordStampsClockAndIdentity)
{
    TracerConfig config;
    config.capacity = 16;
    Tracer tracer(config, "t0");
    EXPECT_TRUE(tracer.enabled());
    EXPECT_EQ(tracer.track(), "t0");
    EXPECT_EQ(tracer.capacityBytes(), 16 * sizeof(Event));

    tracer.setNow(1234);
    tracer.setPid(7);
    tracer.record(EventKind::VatInsert, 42, 0xabcd, 2, 99);

    ASSERT_EQ(tracer.events().size(), 1u);
    const Event &e = tracer.events()[0];
    EXPECT_EQ(e.cycle, 1234u);
    EXPECT_EQ(e.pc, 0xabcdu);
    EXPECT_EQ(e.value, 99u);
    EXPECT_EQ(e.dur, 0u);
    EXPECT_EQ(e.pid, 7u);
    EXPECT_EQ(e.sid, 42);
    EXPECT_EQ(e.kind, EventKind::VatInsert);
    EXPECT_EQ(e.arg, 2);
}

TEST(Tracer, SetNowNsUsesTwoGigahertzClock)
{
    TracerConfig config;
    Tracer tracer(config, "t0");
    tracer.setNowNs(10.0); // 10 ns at 2 GHz = 20 cycles.
    EXPECT_EQ(tracer.now(), 20u);
    tracer.setNowNs(10.3);
    EXPECT_EQ(tracer.now(), 21u); // Rounded, not truncated.
}

TEST(Tracer, FullRingDropsAndCounts)
{
    TracerConfig config;
    config.capacity = 4;
    Tracer tracer(config, "t0");
    for (int i = 0; i < 10; ++i)
        tracer.record(EventKind::StbHit);

    EXPECT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // The ring never grows past its one up-front allocation.
    EXPECT_LE(tracer.events().capacity(), 4u);
}

TEST(Tracer, SyscallSpanMeasuresDuration)
{
    TracerConfig config;
    Tracer tracer(config, "t0");

    tracer.setNow(1000);
    tracer.beginSyscall(17, 0x4000);
    tracer.setNow(1150);
    tracer.record(EventKind::SlbAccessHit, 17, 0x4000);
    tracer.endSyscall(FlowCode::F3);

    ASSERT_EQ(tracer.events().size(), 2u);
    const Event &span = tracer.events()[1];
    EXPECT_EQ(span.kind, EventKind::Syscall);
    EXPECT_EQ(span.cycle, 1000u);
    EXPECT_EQ(span.dur, 150u);
    EXPECT_EQ(span.sid, 17);
    EXPECT_EQ(span.pc, 0x4000u);
    EXPECT_EQ(span.arg, static_cast<uint8_t>(FlowCode::F3));
}

TEST(Tracer, EndWithoutBeginIsIgnored)
{
    TracerConfig config;
    Tracer tracer(config, "t0");
    tracer.endSyscall(FlowCode::F1);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, SamplerTakesOneSamplePerIntervalCrossing)
{
    TracerConfig config;
    config.sampleEveryCycles = 100;
    Tracer tracer(config, "t0");
    double value = 0.0;
    tracer.addChannel("v", [&value] { return value; });

    tracer.setNow(50);
    tracer.maybeSample(); // Before the first interval: nothing.
    EXPECT_TRUE(tracer.sampleCycles().empty());

    value = 1.0;
    tracer.setNow(130);
    tracer.maybeSample(); // Crossed 100.
    value = 2.0;
    tracer.setNow(140);
    tracer.maybeSample(); // Same interval: nothing.
    value = 3.0;
    tracer.setNow(520);
    tracer.maybeSample(); // Jumped over 200..500: one sample, not four.

    ASSERT_EQ(tracer.sampleCycles().size(), 2u);
    EXPECT_EQ(tracer.sampleCycles()[0], 130u);
    EXPECT_EQ(tracer.sampleCycles()[1], 520u);
    ASSERT_EQ(tracer.series().size(), 1u);
    ASSERT_EQ(tracer.series()[0].values.size(), 2u);
    EXPECT_EQ(tracer.series()[0].values[0], 1.0);
    EXPECT_EQ(tracer.series()[0].values[1], 3.0);
}

TEST(Tracer, LateChannelBackfillsZeros)
{
    TracerConfig config;
    config.sampleEveryCycles = 10;
    Tracer tracer(config, "t0");
    tracer.addChannel("early", [] { return 1.0; });
    tracer.setNow(10);
    tracer.maybeSample();

    tracer.addChannel("late", [] { return 2.0; });
    tracer.setNow(20);
    tracer.maybeSample();

    ASSERT_EQ(tracer.series().size(), 2u);
    ASSERT_EQ(tracer.series()[1].values.size(), 2u);
    EXPECT_EQ(tracer.series()[1].name, "late");
    EXPECT_EQ(tracer.series()[1].values[0], 0.0); // Backfilled.
    EXPECT_EQ(tracer.series()[1].values[1], 2.0);
}

TEST(Tracer, SamplerOnlyConfigAllocatesNoEventRing)
{
    TracerConfig config;
    config.recordEvents = false;
    config.sampleEveryCycles = 10;
    Tracer tracer(config, "t0");
    EXPECT_EQ(tracer.capacityBytes(), 0u);

    tracer.record(EventKind::StbHit);
    tracer.beginSyscall(1, 2);
    tracer.setNow(15);
    tracer.endSyscall(FlowCode::F1);
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.dropped(), 0u);

    tracer.addChannel("v", [] { return 4.0; });
    tracer.maybeSample();
    EXPECT_EQ(tracer.sampleCycles().size(), 1u);
}

TEST(TraceSession, DisabledSessionHandsOutNullTracers)
{
    TraceSession session;
    EXPECT_FALSE(session.enabled());
    EXPECT_EQ(session.tracer("a"), nullptr);
    EXPECT_TRUE(session.tracks().empty());
    EXPECT_TRUE(session.writeOutput()); // No-op, not a failure.
}

TEST(TraceSession, TracksAreUniqueAndNameSorted)
{
    SessionConfig config;
    config.outPath = "unused.devt";
    TraceSession session(config);

    Tracer *b = session.tracer("b");
    Tracer *a = session.tracer("a");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(session.tracer("a"), a); // Same track, same tracer.

    auto tracks = session.tracks();
    ASSERT_EQ(tracks.size(), 2u);
    EXPECT_EQ(tracks[0]->track(), "a");
    EXPECT_EQ(tracks[1]->track(), "b");
}

TEST(TraceSession, TotalsAndMetricsAggregateAcrossTracks)
{
    SessionConfig config;
    config.outPath = "unused.devt";
    config.tracer.capacity = 2;
    config.tracer.sampleEveryCycles = 10;
    TraceSession session(config);

    Tracer *a = session.tracer("a");
    a->record(EventKind::StbHit);
    a->record(EventKind::StbMiss);
    a->record(EventKind::StbHit); // Dropped: capacity 2.
    a->addChannel("v", [] { return 1.0; });
    a->setNow(10);
    a->maybeSample();
    session.tracer("b")->record(EventKind::VatInsert);

    EXPECT_EQ(session.totalEvents(), 3u);
    EXPECT_EQ(session.totalDropped(), 1u);
    EXPECT_EQ(session.totalSamples(), 1u);

    MetricRegistry registry;
    session.exportMetrics(registry, "obs");
    EXPECT_EQ(registry.counter("obs.tracks"), 2u);
    EXPECT_EQ(registry.counter("obs.events"), 3u);
    EXPECT_EQ(registry.counter("obs.dropped"), 1u);
    EXPECT_EQ(registry.counter("obs.samples"), 1u);
}

TEST(TraceSessionDeathTest, ReconfigureIsFatal)
{
    SessionConfig config;
    config.outPath = "unused.devt";
    TraceSession session(config);
    EXPECT_EXIT(session.configure(config), testing::ExitedWithCode(1),
                "already configured");
}

TEST(TraceSessionDeathTest, EmptyPathIsFatal)
{
    TraceSession session;
    EXPECT_EXIT(session.configure(SessionConfig{}),
                testing::ExitedWithCode(1), "empty output path");
}

} // namespace
} // namespace draco::obs
