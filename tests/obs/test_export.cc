#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hh"
#include "obs/tracer.hh"

namespace draco::obs {
namespace {

/** Temp path helper; files are removed by the fixture teardown. */
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

/** A small two-track session with events, spans, and samples. */
void
populate(TraceSession &session)
{
    Tracer *a = session.tracer("core00");
    a->setPid(11);
    a->setNow(100);
    a->beginSyscall(3, 0x4000);
    a->record(EventKind::StbHit, 3, 0x4000);
    a->record(EventKind::SlbPreloadMiss, 3, 0x4000);
    a->setNow(260);
    a->endSyscall(FlowCode::F4);
    a->addChannel("hit_rate", [] { return 0.75; });
    a->setNow(1000);
    a->maybeSample();
    a->setNow(1100);
    a->beginSyscall(3, 0x4000);
    a->setNow(1105);
    a->endSyscall(FlowCode::F1);

    Tracer *b = session.tracer("core01");
    b->setNow(50);
    b->record(EventKind::VatInsert, 9, 0, 1, 12345678901ull);
    b->record(EventKind::CacheFill, 0, 0, 2, 0xdeadbeef);
}

SessionConfig
sessionConfig()
{
    SessionConfig config;
    config.outPath = "unused.devt";
    config.tracer.sampleEveryCycles = 500;
    return config;
}

TEST(Devt, RoundTripPreservesEverything)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::string path = tempPath("roundtrip.devt");
    ASSERT_TRUE(writeDevt(session.tracks(), path));

    LoadedTrace loaded;
    std::string error;
    ASSERT_TRUE(loadDevt(path, loaded, error)) << error;
    ASSERT_EQ(loaded.tracks.size(), 2u);

    const TrackStore &a = loaded.tracks[0];
    EXPECT_EQ(a.name, "core00");
    const auto &orig = session.tracks()[0]->events();
    ASSERT_EQ(a.events.size(), orig.size());
    for (size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(a.events[i].cycle, orig[i].cycle) << i;
        EXPECT_EQ(a.events[i].pc, orig[i].pc) << i;
        EXPECT_EQ(a.events[i].value, orig[i].value) << i;
        EXPECT_EQ(a.events[i].dur, orig[i].dur) << i;
        EXPECT_EQ(a.events[i].pid, orig[i].pid) << i;
        EXPECT_EQ(a.events[i].sid, orig[i].sid) << i;
        EXPECT_EQ(a.events[i].kind, orig[i].kind) << i;
        EXPECT_EQ(a.events[i].arg, orig[i].arg) << i;
    }
    ASSERT_EQ(a.series.size(), 1u);
    EXPECT_EQ(a.series[0].name, "hit_rate");
    ASSERT_EQ(a.sampleCycles.size(), 1u);
    EXPECT_EQ(a.sampleCycles[0], 1000u);
    EXPECT_EQ(a.series[0].values[0], 0.75); // Bit-exact, not approx.

    const TrackStore &b = loaded.tracks[1];
    EXPECT_EQ(b.name, "core01");
    ASSERT_EQ(b.events.size(), 2u);
    EXPECT_EQ(b.events[0].value, 12345678901ull);
    EXPECT_EQ(b.events[1].value, 0xdeadbeefu);

    std::remove(path.c_str());
}

TEST(Devt, ReencodeIsByteIdentical)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::ostringstream first;
    writeDevt(
        std::vector<TrackView>{viewOf(*session.tracks()[0]),
                               viewOf(*session.tracks()[1])},
        first);

    std::string path = tempPath("reencode.devt");
    ASSERT_TRUE(writeDevt(session.tracks(), path));
    LoadedTrace loaded;
    std::string error;
    ASSERT_TRUE(loadDevt(path, loaded, error)) << error;
    std::ostringstream second;
    writeDevt(loaded.views(), second);

    EXPECT_EQ(first.str(), second.str());
    std::remove(path.c_str());
}

TEST(Devt, CorruptionFailsTheCrc)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::ostringstream buffer;
    writeDevt(
        std::vector<TrackView>{viewOf(*session.tracks()[0]),
                               viewOf(*session.tracks()[1])},
        buffer);
    std::string bytes = buffer.str();
    bytes[bytes.size() / 2] ^= 0x40; // Flip one payload bit.

    std::string path = tempPath("corrupt.devt");
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    LoadedTrace loaded;
    std::string error;
    EXPECT_FALSE(loadDevt(path, loaded, error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(Devt, TruncationIsDetected)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::string path = tempPath("full.devt");
    ASSERT_TRUE(writeDevt(session.tracks(), path));

    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::string truncPath = tempPath("trunc.devt");
    {
        std::ofstream out(truncPath, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }

    LoadedTrace loaded;
    std::string error;
    EXPECT_FALSE(loadDevt(truncPath, loaded, error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
    std::remove(truncPath.c_str());
}

TEST(Devt, BadMagicIsRejected)
{
    std::string path = tempPath("nottrace.devt");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a trace";
    }
    LoadedTrace loaded;
    std::string error;
    EXPECT_FALSE(loadDevt(path, loaded, error));
    EXPECT_NE(error.find("magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(PerfettoJson, EmitsSpansInstantsArrowsAndCounters)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::ostringstream out;
    writePerfettoJson(
        std::vector<TrackView>{viewOf(*session.tracks()[0]),
                               viewOf(*session.tracks()[1])},
        out);
    std::string json = out.str();

    // Structure: the trace-event envelope with per-track names.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("core00"), std::string::npos);
    EXPECT_NE(json.find("core01"), std::string::npos);

    // The F4 span, its sub-events, the preload arrow, the counter.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"f4\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"f1\""), std::string::npos);
    EXPECT_NE(json.find("stb_hit"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("core00.hit_rate"), std::string::npos);

    // Balanced braces and brackets — cheap well-formedness check.
    long braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{';
        braces -= c == '}';
        brackets += c == '[';
        brackets -= c == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(PerfettoJson, WriteIsDeterministic)
{
    TraceSession session(sessionConfig());
    populate(session);
    std::ostringstream first, second;
    std::vector<TrackView> views{viewOf(*session.tracks()[0]),
                                 viewOf(*session.tracks()[1])};
    writePerfettoJson(views, first);
    writePerfettoJson(views, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Export, EmptySessionStillWritesValidFiles)
{
    std::string path = tempPath("empty.devt");
    ASSERT_TRUE(writeDevt(std::vector<TrackView>{}, path));
    LoadedTrace loaded;
    std::string error;
    EXPECT_TRUE(loadDevt(path, loaded, error)) << error;
    EXPECT_TRUE(loaded.tracks.empty());
    std::remove(path.c_str());

    std::ostringstream out;
    writePerfettoJson(std::vector<TrackView>{}, out);
    EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

} // namespace
} // namespace draco::obs
