/**
 * @file
 * ServeObs unit tests: stage arithmetic, bounded-sketch decimation,
 * multi-slot merge on scrape, the slow-request ring's threshold and
 * capacity contracts, and the Prometheus exposition renderers
 * (label escaping included — a tenant name with a quote in it must
 * not corrupt the scrape body).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/serveobs.hh"
#include "support/metrics.hh"

namespace draco::obs {
namespace {

/** A record with a clean stage ladder: 10us per stage, 50us total. */
StageRecord
ladder(uint64_t baseNs = 1000, uint32_t shard = 0)
{
    StageRecord rec;
    rec.admitNs = baseNs;
    rec.parseNs = baseNs + 10000;
    rec.enqueueNs = baseNs + 20000;
    rec.drainStartNs = baseNs + 30000;
    rec.checkDoneNs = baseNs + 40000;
    rec.flushedNs = baseNs + 50000;
    rec.batchId = 7;
    rec.tenant = 3;
    rec.shard = shard;
    rec.batchSize = 32;
    rec.allowed = 30;
    rec.denied = 2;
    return rec;
}

TEST(StageRecord, StageLatenciesFromStamps)
{
    StageRecord rec = ladder();
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Parse), 10.0);
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Submit), 10.0);
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Queue), 10.0);
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Check), 10.0);
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Reply), 10.0);
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Total), 50.0);
}

TEST(StageRecord, MissingLaterStampsYieldZeroNotNegative)
{
    // A shed batch never reaches the flush stamp: later stamps stay 0
    // (or equal to earlier ones), and no stage may go negative.
    StageRecord rec;
    rec.admitNs = 5000;
    rec.parseNs = 6000;
    for (size_t st = 0; st < kStageCount; ++st)
        EXPECT_GE(rec.stageUs(static_cast<Stage>(st)), 0.0)
            << stageName(static_cast<Stage>(st));
    EXPECT_DOUBLE_EQ(rec.stageUs(Stage::Parse), 1.0);
}

TEST(BoundedSketch, ExactBelowCap)
{
    BoundedSketch sketch(64);
    for (int i = 0; i < 64; ++i)
        sketch.add(i);
    EXPECT_EQ(sketch.seen(), 64u);
    EXPECT_EQ(sketch.retained(), 64u);
    EXPECT_EQ(sketch.stride(), 1u);

    QuantileSketch out;
    sketch.mergeInto(out);
    EXPECT_EQ(out.count(), 64u);
}

TEST(BoundedSketch, DecimatesAtCapAndStaysBounded)
{
    BoundedSketch sketch(64);
    for (int i = 0; i < 100000; ++i)
        sketch.add(i);
    EXPECT_EQ(sketch.seen(), 100000u);
    EXPECT_LE(sketch.retained(), 64u);
    EXPECT_GT(sketch.stride(), 1u);

    // The retained subsample still spans the stream: its quantiles
    // approximate the uniform input.
    QuantileSketch out;
    sketch.mergeInto(out);
    EXPECT_GT(out.count(), 0u);
    EXPECT_NEAR(out.quantile(0.5), 50000.0, 15000.0);
}

TEST(ServeObs, MergesAcrossLoopSlotsOnScrape)
{
    ServeObsOptions options;
    options.loops = 3;
    options.shards = 2;
    ServeObs obs(options);

    // 4 records per loop slot, alternating shards.
    for (size_t loop = 0; loop < 3; ++loop)
        for (int i = 0; i < 4; ++i)
            obs.commit(loop, ladder(1000 + 100 * i, i % 2));
    obs.recordDropped(1, 5);

    EXPECT_EQ(obs.committed(), 12u);
    EXPECT_EQ(obs.dropped(), 5u);

    MetricRegistry registry;
    obs.exportMetrics(registry);
    EXPECT_EQ(registry.counterValue("serve.obs.records"), 12u);
    EXPECT_EQ(registry.counterValue("serve.obs.dropped"), 5u);
    // All 12 totals (50us each) land in the merged all-shard sketch,
    // 6 in each per-shard one.
    EXPECT_EQ(
        registry.quantileSketch("serve.obs.stages.all.total_us").count(),
        12u);
    EXPECT_EQ(
        registry.quantileSketch("serve.obs.stages.s0.total_us").count(),
        6u);
    EXPECT_EQ(
        registry.quantileSketch("serve.obs.stages.s1.total_us").count(),
        6u);
    EXPECT_DOUBLE_EQ(
        registry.quantileSketch("serve.obs.stages.all.total_us")
            .quantile(0.5),
        50.0);
}

TEST(ServeObs, OutOfRangeLoopAndShardClampSafely)
{
    ServeObsOptions options;
    options.loops = 1;
    options.shards = 1;
    ServeObs obs(options);
    StageRecord rec = ladder(1000, /*shard=*/9);
    obs.commit(7, rec); // both indices out of range
    EXPECT_EQ(obs.committed(), 1u);
}

TEST(ServeObs, SlowRingThresholdAndCapacity)
{
    ServeObsOptions options;
    options.slowUs = 40; // the 50us ladder qualifies
    options.slowCapacity = 4;
    ServeObs obs(options);

    // Fast record: below threshold, not captured.
    StageRecord fast = ladder();
    fast.flushedNs = fast.admitNs + 20000;
    obs.commit(0, fast);
    EXPECT_EQ(obs.slowTotal(), 0u);

    for (int i = 0; i < 10; ++i) {
        StageRecord rec = ladder();
        rec.batchId = 100 + i;
        obs.commit(0, rec);
    }
    EXPECT_EQ(obs.slowTotal(), 10u);

    // Ring keeps the newest 4, oldest first, with monotonic seqs.
    std::vector<SlowRecord> ring = obs.slowRecords();
    ASSERT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.front().rec.batchId, 106u);
    EXPECT_EQ(ring.back().rec.batchId, 109u);
    EXPECT_LT(ring.front().seq, ring.back().seq);

    std::string json = obs.slowzJson();
    EXPECT_NE(json.find("\"total_slow\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"batch_id\": 109"), std::string::npos);
    EXPECT_NE(json.find("\"total_us\": 50"), std::string::npos);
}

TEST(ServeObs, ZeroThresholdNeverCaptures)
{
    ServeObs obs(ServeObsOptions{});
    obs.commit(0, ladder());
    EXPECT_EQ(obs.slowTotal(), 0u);
    EXPECT_TRUE(obs.slowRecords().empty());
}

TEST(ServeObs, RenderPrometheusCarriesStageAndShardLabels)
{
    ServeObsOptions options;
    options.shards = 2;
    ServeObs obs(options);
    obs.commit(0, ladder(1000, 0));
    obs.commit(0, ladder(2000, 1));

    MetricRegistry extra;
    extra.setCounter("serve.live.checks", 64);
    std::string body = obs.renderPrometheus(extra);

    EXPECT_NE(body.find("# TYPE draco_serve_stage_latency_us summary"),
              std::string::npos);
    EXPECT_NE(body.find("draco_serve_stage_latency_us{shard=\"0\","
                        "stage=\"check\",quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(body.find("draco_serve_stage_latency_us{shard=\"1\","
                        "stage=\"total\",quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(body.find("draco_serve_stage_latency_us_hist"),
              std::string::npos);
    EXPECT_NE(body.find("draco_serve_obs_records_total 2"),
              std::string::npos);
    // The extra registry rides along, renamed.
    EXPECT_NE(body.find("draco_serve_live_checks 64"),
              std::string::npos);
}

TEST(Prometheus, LabelEscaping)
{
    EXPECT_EQ(promEscapeLabel("plain"), "plain");
    EXPECT_EQ(promEscapeLabel("back\\slash"), "back\\\\slash");
    EXPECT_EQ(promEscapeLabel("quo\"te"), "quo\\\"te");
    EXPECT_EQ(promEscapeLabel("new\nline"), "new\\nline");
    EXPECT_EQ(promEscapeLabel("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prometheus, MetricNameMapping)
{
    EXPECT_EQ(promMetricName("serve.live.checks"),
              "draco_serve_live_checks");
    EXPECT_EQ(promMetricName("weird-name+x"), "draco_weird_name_x");
}

TEST(Prometheus, RenderRegistryCoversEveryMetricKind)
{
    MetricRegistry registry;
    registry.setCounter("a.count", 3);
    registry.setGauge("a.gauge", 1.5);
    registry.setText("a.label", "va\"lue");
    RunningStat stat;
    stat.add(1.0);
    stat.add(3.0);
    registry.setStat("a.stat", stat);
    QuantileSketch sketch;
    for (int i = 1; i <= 100; ++i)
        sketch.add(i);
    registry.setQuantiles("a.sketch", sketch);
    Histogram hist(0.0, 10.0, 10);
    hist.add(1.0);
    hist.add(9.5);
    registry.setHistogram("a.hist", hist);

    std::string out;
    ServeObs::renderRegistry(registry, out);
    EXPECT_NE(out.find("draco_a_count 3"), std::string::npos);
    EXPECT_NE(out.find("draco_a_gauge 1.5"), std::string::npos);
    EXPECT_NE(out.find("draco_a_label_info{value=\"va\\\"lue\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("draco_a_stat_count 2"), std::string::npos);
    EXPECT_NE(out.find("draco_a_stat_mean 2"), std::string::npos);
    EXPECT_NE(out.find("draco_a_sketch{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(out.find("draco_a_hist_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(out.find("draco_a_hist_count 2"), std::string::npos);
}

TEST(Prometheus, HttpResponseShape)
{
    std::string reply = httpResponse(200, "text/plain", "hello\n");
    EXPECT_EQ(reply.find("HTTP/1.0 200"), 0u);
    EXPECT_NE(reply.find("Content-Length: 6\r\n"), std::string::npos);
    EXPECT_NE(reply.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(reply.find("\r\n\r\nhello\n"), std::string::npos);
}

} // namespace
} // namespace draco::obs
