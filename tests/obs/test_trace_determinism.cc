/**
 * @file
 * The tracing determinism contract: a traced run never perturbs the
 * simulation, and the exported bytes are independent of how many
 * worker threads recorded the trace.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hh"
#include "obs/tracer.hh"
#include "sim/machine.hh"
#include "sim/multicore.hh"
#include "support/threadpool.hh"
#include "workload/appmodel.hh"

namespace draco {
namespace {

struct Cell {
    const char *workload;
    sim::Mechanism mechanism;
};

const std::vector<Cell> kCells = {
    {"redis", sim::Mechanism::DracoHW},
    {"redis", sim::Mechanism::DracoSW},
    {"nginx", sim::Mechanism::DracoHW},
    {"pipe-ipc", sim::Mechanism::Seccomp},
};

/** Run one sweep cell, recording onto its own named track. */
sim::RunResult
runCell(const Cell &cell, obs::TraceSession *session)
{
    const auto *app = workload::workloadByName(cell.workload);
    sim::RunOptions options;
    options.mechanism = cell.mechanism;
    options.steadyCalls = 2000;
    options.warmupCalls = 500;
    options.seed = splitSeed(7, app->name);
    if (session) {
        options.tracer = session->tracer(
            std::string(sim::mechanismName(cell.mechanism)) + "/" +
            app->name);
    }
    sim::AppProfiles profiles =
        sim::makeAppProfiles(*app, options.seed, 5000);
    sim::ExperimentRunner runner;
    return runner.run(*app, profiles.complete, options);
}

/** Run the whole sweep on @p workers threads; return exported bytes. */
void
sweep(unsigned workers, std::string &devt, std::string &json)
{
    obs::SessionConfig config;
    config.outPath = "unused.devt";
    config.tracer.sampleEveryCycles = 20000;
    obs::TraceSession session(config);

    support::ThreadPool pool(workers);
    pool.parallelFor(kCells.size(),
                     [&](size_t i) { runCell(kCells[i], &session); });

    std::vector<obs::TrackView> views;
    for (const obs::Tracer *t : session.tracks())
        views.push_back(obs::viewOf(*t));
    std::ostringstream devtOut, jsonOut;
    obs::writeDevt(views, devtOut);
    obs::writePerfettoJson(views, jsonOut);
    devt = devtOut.str();
    json = jsonOut.str();
}

TEST(TraceDeterminism, ExportedBytesAreThreadCountInvariant)
{
    std::string devt1, json1, devt8, json8;
    sweep(1, devt1, json1);
    sweep(8, devt8, json8);

    EXPECT_FALSE(devt1.empty());
    EXPECT_FALSE(json1.empty());
    EXPECT_EQ(devt1, devt8);
    EXPECT_EQ(json1, json8);
}

TEST(TraceDeterminism, TracedRunMatchesUntracedBitForBit)
{
    for (const Cell &cell : kCells) {
        obs::SessionConfig config;
        config.outPath = "unused.devt";
        config.tracer.sampleEveryCycles = 10000;
        obs::TraceSession session(config);

        sim::RunResult untraced = runCell(cell, nullptr);
        sim::RunResult traced = runCell(cell, &session);
        EXPECT_GT(session.totalEvents(), 0u);

        EXPECT_EQ(traced.totalNs, untraced.totalNs) << cell.workload;
        EXPECT_EQ(traced.insecureNs, untraced.insecureNs);
        EXPECT_EQ(traced.checkNs, untraced.checkNs);
        EXPECT_EQ(traced.syscalls, untraced.syscalls);
        EXPECT_EQ(traced.vatFootprintBytes, untraced.vatFootprintBytes);
        EXPECT_EQ(traced.filterInsnsTotal, untraced.filterInsnsTotal);
    }
}

TEST(TraceDeterminism, MulticoreTracksOnePerCore)
{
    std::vector<sim::CoreAssignment> cores;
    for (const char *name : {"redis", "nginx"})
        cores.push_back(sim::CoreAssignment{
            workload::workloadByName(name), sim::Mechanism::DracoHW, 1});

    obs::SessionConfig sc;
    sc.outPath = "unused.devt";
    obs::TraceSession session(sc);

    sim::MulticoreOptions options;
    options.callsPerCore = 1000;
    options.warmupCallsPerCore = 200;
    options.session = &session;
    options.trackPrefix = "run/";
    sim::MulticoreSimulator sim;
    auto untracedOptions = options;
    untracedOptions.session = nullptr;

    auto traced = sim.run(cores, options);
    auto untraced = sim.run(cores, untracedOptions);

    auto tracks = session.tracks();
    ASSERT_EQ(tracks.size(), 2u);
    EXPECT_EQ(tracks[0]->track(), "run/core00");
    EXPECT_EQ(tracks[1]->track(), "run/core01");
    EXPECT_GT(tracks[0]->events().size(), 0u);
    EXPECT_GT(tracks[1]->events().size(), 0u);

    ASSERT_EQ(traced.size(), untraced.size());
    for (size_t i = 0; i < traced.size(); ++i) {
        EXPECT_EQ(traced[i].totalNs, untraced[i].totalNs) << i;
        EXPECT_EQ(traced[i].insecureNs, untraced[i].insecureNs) << i;
    }
}

} // namespace
} // namespace draco
