/**
 * @file
 * Tests for the shared-L3 multicore simulation.
 */

#include <gtest/gtest.h>

#include "sim/multicore.hh"

namespace draco::sim {
namespace {

CoreAssignment
core(const char *name, Mechanism mech = Mechanism::DracoHW)
{
    return CoreAssignment{workload::workloadByName(name), mech, 1};
}

MulticoreOptions
fastOptions()
{
    MulticoreOptions options;
    options.callsPerCore = 8000;
    options.warmupCallsPerCore = 4000;
    options.seed = 7;
    return options;
}

TEST(Multicore, SingleCoreMatchesShape)
{
    MulticoreSimulator sim;
    auto results = sim.run({core("pipe-ipc")}, fastOptions());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].workload, "pipe-ipc");
    EXPECT_GE(results[0].normalized(), 1.0);
    EXPECT_LT(results[0].normalized(), 1.08);
}

TEST(Multicore, ResultsInInputOrder)
{
    MulticoreSimulator sim;
    auto results =
        sim.run({core("nginx"), core("redis"), core("grep")},
                fastOptions());
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].workload, "nginx");
    EXPECT_EQ(results[1].workload, "redis");
    EXPECT_EQ(results[2].workload, "grep");
}

TEST(Multicore, NeighboursNeverHelp)
{
    // Co-running with an L3-hungry neighbour can only hurt (or leave
    // unchanged) a core's normalized time.
    MulticoreSimulator sim;
    auto solo = sim.run({core("nginx")}, fastOptions());
    auto paired =
        sim.run({core("nginx"), core("hpcc")}, fastOptions());
    // hpcc touches ~1 MB per gap: real L3 pressure.
    EXPECT_GE(paired[0].normalized(), solo[0].normalized() - 1e-9);
}

TEST(Multicore, MixedMechanismsRun)
{
    MulticoreSimulator sim;
    auto results = sim.run({core("pipe-ipc", Mechanism::Seccomp),
                            core("pipe-ipc", Mechanism::DracoSW),
                            core("pipe-ipc", Mechanism::DracoHW),
                            core("pipe-ipc", Mechanism::Insecure)},
                           fastOptions());
    ASSERT_EQ(results.size(), 4u);
    double seccomp = results[0].normalized();
    double dracoSw = results[1].normalized();
    double dracoHw = results[2].normalized();
    double insecure = results[3].normalized();
    EXPECT_DOUBLE_EQ(insecure, 1.0);
    EXPECT_GT(seccomp, dracoSw);
    EXPECT_GT(dracoSw, dracoHw);
}

TEST(Multicore, Deterministic)
{
    MulticoreSimulator sim;
    auto a = sim.run({core("redis"), core("mysql")}, fastOptions());
    auto b = sim.run({core("redis"), core("mysql")}, fastOptions());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].totalNs, b[i].totalNs);
}

TEST(Multicore, HwStatsPopulated)
{
    MulticoreSimulator sim;
    auto results = sim.run({core("nginx")}, fastOptions());
    EXPECT_GT(results[0].hw.syscalls, 0u);
    EXPECT_GT(results[0].slb.accesses, 0u);
}

TEST(MulticoreDeathTest, EmptyCoreListIsFatal)
{
    MulticoreSimulator sim;
    EXPECT_EXIT(sim.run({}, fastOptions()), testing::ExitedWithCode(1),
                "");
}

TEST(Cache, ExternalL3PressureEvictsThroughInclusion)
{
    CacheHierarchy cache(3);
    cache.access(0x9000);
    EXPECT_EQ(cache.access(0x9000).first, MemLevel::L1);
    cache.externalL3Pressure(1ULL << 30); // certain eviction
    EXPECT_EQ(cache.access(0x9000).first, MemLevel::Dram);
}

TEST(Cache, SmallExternalPressureMostlyHarmless)
{
    CacheHierarchy cache(5);
    int survived = 0;
    for (int trial = 0; trial < 50; ++trial) {
        cache.flush();
        cache.access(0xA000);
        cache.externalL3Pressure(4096);
        survived += cache.access(0xA000).first <= MemLevel::L3;
    }
    EXPECT_GT(survived, 45);
}

} // namespace
} // namespace draco::sim
