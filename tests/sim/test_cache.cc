/**
 * @file
 * Tests for the cache hierarchy timing model.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace draco::sim {
namespace {

TEST(Cache, ColdAccessGoesToDram)
{
    CacheHierarchy cache(1);
    auto [level, ns] = cache.access(0x1000);
    EXPECT_EQ(level, MemLevel::Dram);
    EXPECT_DOUBLE_EQ(ns, cache.latencyNs(MemLevel::Dram));
}

TEST(Cache, SecondAccessHitsL1)
{
    CacheHierarchy cache(1);
    cache.access(0x1000);
    auto [level, ns] = cache.access(0x1000);
    EXPECT_EQ(level, MemLevel::L1);
    EXPECT_DOUBLE_EQ(ns, cache.latencyNs(MemLevel::L1));
}

TEST(Cache, SameLineSharesResidency)
{
    CacheHierarchy cache(1);
    cache.access(0x1000);
    EXPECT_EQ(cache.access(0x1030).first, MemLevel::L1); // same 64B line
    EXPECT_EQ(cache.access(0x1040).first, MemLevel::Dram); // next line
}

TEST(Cache, LatenciesMonotone)
{
    CacheHierarchy cache(1);
    EXPECT_LT(cache.latencyNs(MemLevel::L1), cache.latencyNs(MemLevel::L2));
    EXPECT_LT(cache.latencyNs(MemLevel::L2), cache.latencyNs(MemLevel::L3));
    EXPECT_LT(cache.latencyNs(MemLevel::L3),
              cache.latencyNs(MemLevel::Dram));
}

TEST(Cache, TableIIConfig)
{
    const auto &levels = CacheHierarchy::levelConfigs();
    EXPECT_EQ(levels[0].capacityBytes, 32u * 1024);
    EXPECT_EQ(levels[1].capacityBytes, 256u * 1024);
    EXPECT_EQ(levels[2].capacityBytes, 8u * 1024 * 1024);
}

TEST(Cache, SmallPressureKeepsL3MostlyIntact)
{
    CacheHierarchy cache(7);
    cache.access(0x1000);
    // 4 KB of traffic cannot plausibly evict an 8 MB L3 line.
    int survived = 0;
    for (int trial = 0; trial < 50; ++trial) {
        cache.appPressure(4096);
        auto [level, ns] = cache.access(0x1000);
        survived += level <= MemLevel::L3;
    }
    EXPECT_GT(survived, 45);
}

TEST(Cache, HeavyPressureEvictsEverything)
{
    CacheHierarchy cache(7);
    cache.access(0x1000);
    cache.appPressure(1ULL << 30); // 1 GB stream
    EXPECT_EQ(cache.access(0x1000).first, MemLevel::Dram);
}

TEST(Cache, MediumPressureEvictsL1BeforeL3)
{
    CacheHierarchy cache(11);
    int l1Evicted = 0, l3Evicted = 0;
    for (int trial = 0; trial < 200; ++trial) {
        cache.flush();
        cache.access(0x5000);
        cache.appPressure(64 * 1024); // 2× L1, 1/4 L2, tiny vs L3
        auto [level, ns] = cache.access(0x5000);
        l1Evicted += level > MemLevel::L1;
        l3Evicted += level > MemLevel::L3;
    }
    EXPECT_GT(l1Evicted, 120); // survival exp(-2) ~ 13%
    EXPECT_LT(l3Evicted, 10);  // survival exp(-1/128) ~ 99%
}

TEST(Cache, FlushDropsAll)
{
    CacheHierarchy cache(1);
    cache.access(0x2000);
    cache.flush();
    EXPECT_EQ(cache.access(0x2000).first, MemLevel::Dram);
}

TEST(Cache, StatsCount)
{
    CacheHierarchy cache(1);
    cache.access(0x1000);
    cache.access(0x1000);
    cache.access(0x2000);
    const auto &stats = cache.stats();
    EXPECT_EQ(stats.accesses, 3u);
    EXPECT_EQ(stats.hits[static_cast<size_t>(MemLevel::Dram)], 2u);
    EXPECT_EQ(stats.hits[static_cast<size_t>(MemLevel::L1)], 1u);
}

TEST(Cache, ZeroPressureIsNoop)
{
    CacheHierarchy cache(1);
    cache.access(0x3000);
    cache.appPressure(0);
    EXPECT_EQ(cache.access(0x3000).first, MemLevel::L1);
}

} // namespace
} // namespace draco::sim
