/**
 * @file
 * Tests for the multi-process context-switch simulator.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.hh"

namespace draco::sim {
namespace {

std::vector<const workload::AppModel *>
twoApps()
{
    return {workload::workloadByName("pipe-ipc"),
            workload::workloadByName("fifo-ipc")};
}

TEST(Scheduler, RunsAndCountsSwitches)
{
    MultiProcessSimulator sim;
    SchedOptions options;
    options.totalCalls = 30000;
    options.quantumNs = 200000.0; // 0.2 ms
    SchedResult r = sim.run(twoApps(), options);
    EXPECT_EQ(r.syscalls, 30000u);
    EXPECT_GT(r.contextSwitches, 10u);
    EXPECT_EQ(r.hw.contextSwitches, r.contextSwitches);
    EXPECT_GE(r.normalized(), 1.0);
}

TEST(Scheduler, SingleProcessNeverSwitchesState)
{
    MultiProcessSimulator sim;
    SchedOptions options;
    options.totalCalls = 10000;
    options.quantumNs = 100000.0;
    SchedResult r = sim.run({workload::workloadByName("pipe-ipc")},
                            options);
    // Rescheduling the same process keeps all Draco state (§VII-B):
    // the engine performs no invalidating switches.
    EXPECT_EQ(r.hw.contextSwitches, 0u);
}

TEST(Scheduler, SaveRestoreReducesOverhead)
{
    MultiProcessSimulator sim;
    SchedOptions with;
    with.totalCalls = 40000;
    with.quantumNs = 50000.0; // frequent switches stress restart
    with.sptSaveRestore = true;
    SchedOptions without = with;
    without.sptSaveRestore = false;

    SchedResult a = sim.run(twoApps(), with);
    SchedResult b = sim.run(twoApps(), without);
    EXPECT_GT(a.hw.sptRestoredEntries, 0u);
    EXPECT_EQ(b.hw.sptRestoredEntries, 0u);
    EXPECT_LE(a.totalNs, b.totalNs * 1.001);
}

TEST(Scheduler, ShorterQuantumMoreSwitches)
{
    MultiProcessSimulator sim;
    SchedOptions coarse;
    coarse.totalCalls = 30000;
    coarse.quantumNs = 1.0e6;
    SchedOptions fine = coarse;
    fine.quantumNs = 1.0e5;
    SchedResult a = sim.run(twoApps(), coarse);
    SchedResult b = sim.run(twoApps(), fine);
    EXPECT_GT(b.contextSwitches, a.contextSwitches * 5);
}

TEST(Scheduler, OverheadStaysSmallAtMillisecondQuanta)
{
    // The paper's design goal: with realistic quanta, hardware Draco's
    // restart cost is negligible.
    MultiProcessSimulator sim;
    SchedOptions options;
    options.totalCalls = 40000;
    options.quantumNs = 1.0e6;
    SchedResult r = sim.run(twoApps(), options);
    EXPECT_LT(r.normalized(), 1.05);
}

} // namespace
} // namespace draco::sim
