/**
 * @file
 * Tests for the experiment runner and profile generation pipeline.
 */

#include <gtest/gtest.h>

#include "seccomp/profiles_builtin.hh"
#include "sim/machine.hh"

namespace draco::sim {
namespace {

RunOptions
opts(Mechanism mech, size_t calls = 20000)
{
    RunOptions o;
    o.mechanism = mech;
    o.steadyCalls = calls;
    o.seed = 7;
    return o;
}

const workload::AppModel &
app(const char *name)
{
    const auto *a = workload::workloadByName(name);
    EXPECT_NE(a, nullptr);
    return *a;
}

TEST(Machine, InsecureNormalizedIsOne)
{
    ExperimentRunner runner;
    auto r = runner.run(app("pipe-ipc"), seccomp::insecureProfile(),
                        opts(Mechanism::Insecure));
    EXPECT_DOUBLE_EQ(r.normalized(), 1.0);
    EXPECT_DOUBLE_EQ(r.checkNs, 0.0);
    EXPECT_GT(r.totalNs, 0.0);
}

TEST(Machine, SeccompAddsOverhead)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("pipe-ipc"), 7, 50000);
    auto r = runner.run(app("pipe-ipc"), profiles.complete,
                        opts(Mechanism::Seccomp));
    EXPECT_GT(r.normalized(), 1.05);
    EXPECT_GT(r.filterInsnsTotal, 0u);
}

TEST(Machine, DracoSwCheaperThanSeccompWithArgChecks)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("pipe-ipc"), 7, 50000);
    auto seccomp = runner.run(app("pipe-ipc"), profiles.complete,
                              opts(Mechanism::Seccomp));
    auto dracoSw = runner.run(app("pipe-ipc"), profiles.complete,
                              opts(Mechanism::DracoSW));
    EXPECT_LT(dracoSw.normalized(), seccomp.normalized());
    EXPECT_GT(dracoSw.normalized(), 1.0);
}

TEST(Machine, DracoHwNearInsecure)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("pipe-ipc"), 7, 50000);
    auto r = runner.run(app("pipe-ipc"), profiles.complete,
                        opts(Mechanism::DracoHW, 50000));
    EXPECT_LT(r.normalized(), 1.03);
    EXPECT_GE(r.normalized(), 1.0);
}

TEST(Machine, TraceIdenticalAcrossMechanisms)
{
    // insecureNs must match exactly for the same seed regardless of
    // mechanism: the trace is mechanism-independent.
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("redis"), 7, 30000);
    auto a = runner.run(app("redis"), profiles.complete,
                        opts(Mechanism::Insecure, 10000));
    auto b = runner.run(app("redis"), profiles.complete,
                        opts(Mechanism::Seccomp, 10000));
    auto c = runner.run(app("redis"), profiles.complete,
                        opts(Mechanism::DracoHW, 10000));
    EXPECT_DOUBLE_EQ(a.insecureNs, b.insecureNs);
    EXPECT_DOUBLE_EQ(a.insecureNs, c.insecureNs);
}

TEST(Machine, DeterministicAcrossRuns)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("grep"), 7, 30000);
    auto a = runner.run(app("grep"), profiles.complete,
                        opts(Mechanism::DracoSW, 10000));
    auto b = runner.run(app("grep"), profiles.complete,
                        opts(Mechanism::DracoSW, 10000));
    EXPECT_DOUBLE_EQ(a.totalNs, b.totalNs);
    EXPECT_EQ(a.sw.vatHits, b.sw.vatHits);
}

TEST(Machine, TwoXCopiesCostMoreForSeccomp)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("mq-ipc"), 7, 50000);
    auto one = runner.run(app("mq-ipc"), profiles.complete,
                          opts(Mechanism::Seccomp));
    RunOptions o2 = opts(Mechanism::Seccomp);
    o2.filterCopies = 2;
    auto two = runner.run(app("mq-ipc"), profiles.complete, o2);
    double ovOne = one.normalized() - 1.0;
    double ovTwo = two.normalized() - 1.0;
    EXPECT_NEAR(ovTwo, 2.0 * ovOne, 0.15 * ovTwo);
}

TEST(Machine, TwoXBarelyAffectsDracoSw)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("mq-ipc"), 7, 50000);
    auto one = runner.run(app("mq-ipc"), profiles.complete,
                          opts(Mechanism::DracoSW));
    RunOptions o2 = opts(Mechanism::DracoSW);
    o2.filterCopies = 2;
    auto two = runner.run(app("mq-ipc"), profiles.complete, o2);
    // Draco runs the filter only on cold misses; doubling filter cost
    // moves the needle by far less than it does for Seccomp.
    EXPECT_LT(two.normalized() - one.normalized(), 0.02);
}

TEST(Machine, OldKernelCostsIncreaseSeccompOverhead)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("pipe-ipc"), 7, 50000);
    auto newK = runner.run(app("pipe-ipc"), profiles.complete,
                           opts(Mechanism::Seccomp));
    RunOptions oldOpts = opts(Mechanism::Seccomp);
    oldOpts.costs = &os::oldKernelCosts();
    auto oldK = runner.run(app("pipe-ipc"), profiles.complete, oldOpts);
    EXPECT_GT(oldK.normalized(), newK.normalized());
}

TEST(Machine, HwRunReportsStructureStats)
{
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("nginx"), 7, 50000);
    auto r = runner.run(app("nginx"), profiles.complete,
                        opts(Mechanism::DracoHW, 30000));
    EXPECT_GT(r.stb.lookups, 0u);
    EXPECT_GT(r.slb.accesses, 0u);
    EXPECT_GT(r.stbHitRate(), 0.5);
    EXPECT_GT(r.slbAccessHitRate(), 0.5);
    EXPECT_GT(r.vatFootprintBytes, 0u);
    uint64_t flowSum = 0;
    for (uint64_t f : r.hw.flows)
        flowSum += f;
    EXPECT_EQ(flowSum, r.hw.syscalls);
}

TEST(Machine, MakeAppProfilesShapes)
{
    AppProfiles profiles = makeAppProfiles(app("httpd"), 7, 50000);
    auto noargsStats = profiles.noargs.stats();
    auto completeStats = profiles.complete.stats();
    EXPECT_EQ(noargsStats.argsChecked, 0u);
    EXPECT_GT(completeStats.argsChecked, 10u);
    EXPECT_EQ(noargsStats.syscallsAllowed,
              completeStats.syscallsAllowed);
    // Fig. 15a: app profiles are far smaller than docker-default.
    EXPECT_LT(completeStats.syscallsAllowed, 110u);
    EXPECT_GT(completeStats.syscallsAllowed, 20u);
    // ~20% runtime-required.
    double frac = static_cast<double>(completeStats.runtimeRequired) /
        completeStats.syscallsAllowed;
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.60);
}

TEST(Machine, ProfiledTraceRunsWithoutDenials)
{
    // Profile and measurement share a seed: nothing may be denied.
    ExperimentRunner runner;
    AppProfiles profiles = makeAppProfiles(app("cassandra"), 7, 80000);
    auto r = runner.run(app("cassandra"), profiles.complete,
                        opts(Mechanism::DracoSW, 40000));
    EXPECT_EQ(r.sw.denials, 0u);
}

TEST(Machine, MechanismNames)
{
    EXPECT_STREQ(mechanismName(Mechanism::Insecure), "insecure");
    EXPECT_STREQ(mechanismName(Mechanism::Seccomp), "seccomp");
    EXPECT_STREQ(mechanismName(Mechanism::DracoSW), "draco-sw");
    EXPECT_STREQ(mechanismName(Mechanism::DracoHW), "draco-hw");
}

} // namespace
} // namespace draco::sim
