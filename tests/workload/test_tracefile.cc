/**
 * @file
 * Tests for trace serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hh"
#include "workload/tracefile.hh"

namespace draco::workload {
namespace {

Trace
sampleTrace(size_t n = 50)
{
    const AppModel *app = workloadByName("nginx");
    TraceGenerator gen(*app, 3);
    return gen.generate(n);
}

TEST(TraceFile, RoundTripPreservesEverything)
{
    Trace original = sampleTrace();
    std::stringstream buf;
    writeTrace(original, buf);
    std::string error;
    Trace parsed = readTrace(buf, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[i].req.pc, original[i].req.pc) << i;
        EXPECT_EQ(parsed[i].req.sid, original[i].req.sid) << i;
        EXPECT_EQ(parsed[i].req.args, original[i].req.args) << i;
        EXPECT_EQ(parsed[i].bytesTouched, original[i].bytesTouched) << i;
        EXPECT_NEAR(parsed[i].userWorkNs, original[i].userWorkNs,
                    0.001)
            << i;
    }
}

TEST(TraceFile, HeaderRequired)
{
    std::stringstream buf("0x400 0 0 0 0 0 0 0 1.0 0\n");
    std::string error;
    Trace t = readTrace(buf, &error);
    EXPECT_TRUE(t.empty());
    EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TraceFile, CommentsAndBlanksIgnored)
{
    std::stringstream buf;
    buf << kTraceMagic << "\n# comment\n\n"
        << "0x400800 39 0 0 0 0 0 0 12.500 4096\n";
    std::string error;
    Trace t = readTrace(buf, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].req.sid, 39);
    EXPECT_DOUBLE_EQ(t[0].userWorkNs, 12.5);
    EXPECT_EQ(t[0].bytesTouched, 4096u);
}

TEST(TraceFile, MalformedLineReported)
{
    std::stringstream buf;
    buf << kTraceMagic << "\nnot an event\n";
    std::string error;
    Trace t = readTrace(buf, &error);
    EXPECT_TRUE(t.empty());
    EXPECT_NE(error.find("malformed"), std::string::npos);
}

TEST(TraceFile, SidRangeChecked)
{
    std::stringstream buf;
    buf << kTraceMagic << "\n0x400 99999 0 0 0 0 0 0 1.0 0\n";
    std::string error;
    readTrace(buf, &error);
    EXPECT_NE(error.find("sid"), std::string::npos);
}

TEST(TraceFile, RoundTripIsLossless)
{
    // %.17g serialization: doubles survive text exactly, not to 1e-3.
    Trace original = sampleTrace(200);
    original[3].userWorkNs = 0.1 + 0.2; // A classic non-representable.
    std::stringstream buf;
    writeTrace(original, buf);
    std::string error;
    Trace parsed = readTrace(buf, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(parsed[i].userWorkNs, original[i].userWorkNs) << i;
}

TEST(TraceFile, WriteReadWriteIsByteStable)
{
    Trace original = sampleTrace(200);
    std::stringstream first;
    writeTrace(original, first);
    std::string error;
    first.seekg(0);
    Trace parsed = readTrace(first, &error);
    ASSERT_TRUE(error.empty()) << error;
    std::stringstream second;
    writeTrace(parsed, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(TraceFile, TrailingGarbageRejected)
{
    std::stringstream buf;
    buf << kTraceMagic
        << "\n0x400800 39 0 0 0 0 0 0 12.5 4096 extra\n";
    std::string error;
    Trace t = readTrace(buf, &error);
    EXPECT_TRUE(t.empty());
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TraceFile, DuplicateHeaderRejected)
{
    std::stringstream buf;
    buf << kTraceMagic << "\n0x400800 39 0 0 0 0 0 0 12.5 4096\n"
        << kTraceMagic << "\n";
    std::string error;
    Trace t = readTrace(buf, &error);
    EXPECT_TRUE(t.empty());
    EXPECT_NE(error.find("header"), std::string::npos) << error;
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(TraceFile, FileRoundTrip)
{
    Trace original = sampleTrace(20);
    std::string path = testing::TempDir() + "draco_trace_test.txt";
    writeTraceFile(original, path);
    Trace parsed = readTraceFile(path);
    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed[7].req.args, original[7].req.args);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceRoundTrips)
{
    std::stringstream buf;
    writeTrace({}, buf);
    std::string error;
    Trace t = readTrace(buf, &error);
    EXPECT_TRUE(error.empty());
    EXPECT_TRUE(t.empty());
}

} // namespace
} // namespace draco::workload
