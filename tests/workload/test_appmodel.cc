/**
 * @file
 * Tests for the workload model catalogue.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/syscalls.hh"
#include "workload/appmodel.hh"

namespace draco::workload {
namespace {

TEST(AppModel, FifteenWorkloads)
{
    EXPECT_EQ(macroWorkloads().size(), 8u);
    EXPECT_EQ(microWorkloads().size(), 7u);
    EXPECT_EQ(allWorkloads().size(), 15u);
}

TEST(AppModel, PaperWorkloadNamesPresent)
{
    for (const char *name :
         {"httpd", "nginx", "elasticsearch", "mysql", "cassandra",
          "redis", "grep", "pwgen", "sysbench-fio", "hpcc",
          "unixbench-syscall", "fifo-ipc", "pipe-ipc", "domain-ipc",
          "mq-ipc"}) {
        EXPECT_NE(workloadByName(name), nullptr) << name;
    }
    EXPECT_EQ(workloadByName("not-a-workload"), nullptr);
}

TEST(AppModel, MacroMicroSplitMatchesNames)
{
    for (const auto &app : macroWorkloads())
        EXPECT_TRUE(app.isMacro) << app.name;
    for (const auto &app : microWorkloads())
        EXPECT_FALSE(app.isMacro) << app.name;
}

TEST(AppModel, AllUsagesReferenceRealSyscalls)
{
    for (const auto &app : allWorkloads())
        for (const auto &usage : app.usage)
            EXPECT_NE(os::syscallById(usage.sid), nullptr)
                << app.name << " sid " << usage.sid;
}

TEST(AppModel, SaneParameters)
{
    for (const auto &app : allWorkloads()) {
        EXPECT_GT(app.userWorkMeanNs, 0.0) << app.name;
        EXPECT_GT(app.totalWeight(), 0.0) << app.name;
        EXPECT_FALSE(app.usage.empty()) << app.name;
        for (const auto &usage : app.usage) {
            EXPECT_GT(usage.weight, 0.0) << app.name;
            EXPECT_GE(usage.argSets, 1u) << app.name;
            EXPECT_GE(usage.pcSites, 1u) << app.name;
            EXPECT_GE(usage.argZipf, 0.0) << app.name;
        }
    }
}

TEST(AppModel, NoDuplicateSyscallsWithinAnApp)
{
    for (const auto &app : allWorkloads()) {
        std::set<uint16_t> sids;
        for (const auto &usage : app.usage)
            EXPECT_TRUE(sids.insert(usage.sid).second)
                << app.name << " duplicates sid " << usage.sid;
    }
}

TEST(AppModel, MicroBenchmarksAreSyscallDense)
{
    // The macro/micro overhead split of Fig. 2 requires micro
    // benchmarks to issue syscalls far more densely than servers.
    const AppModel *unixbench = workloadByName("unixbench-syscall");
    const AppModel *grep = workloadByName("grep");
    ASSERT_TRUE(unixbench && grep);
    EXPECT_LT(unixbench->userWorkMeanNs * 10, grep->userWorkMeanNs);
}

TEST(AppModel, JvmWorkloadsAreFutexHeavy)
{
    for (const char *name : {"elasticsearch", "cassandra"}) {
        const AppModel *app = workloadByName(name);
        ASSERT_NE(app, nullptr);
        double futexWeight = 0;
        for (const auto &usage : app->usage)
            if (usage.sid == os::sc::futex)
                futexWeight = usage.weight;
        EXPECT_GT(futexWeight / app->totalWeight(), 0.2) << name;
    }
}

TEST(AppModel, TotalArgSetsAccumulates)
{
    AppModel m{"t", true, 1.0, 0.1, 0,
               {{os::sc::read, 1.0, 3, 0.5, 1},
                {os::sc::write, 1.0, 5, 0.5, 1}}};
    EXPECT_EQ(m.totalArgSets(), 8u);
}

TEST(AppModel, IpcBenchmarksUseTheirTransport)
{
    auto usesSid = [](const AppModel *app, uint16_t sid) {
        for (const auto &usage : app->usage)
            if (usage.sid == sid)
                return true;
        return false;
    };
    EXPECT_TRUE(usesSid(workloadByName("mq-ipc"),
                        os::sc::mq_timedsend));
    EXPECT_TRUE(usesSid(workloadByName("domain-ipc"), os::sc::sendto));
    EXPECT_TRUE(usesSid(workloadByName("pipe-ipc"), os::sc::read));
}

} // namespace
} // namespace draco::workload
