/**
 * @file
 * Tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "os/syscalls.hh"
#include "workload/generator.hh"

namespace draco::workload {
namespace {

const AppModel &
model(const char *name)
{
    const AppModel *app = workloadByName(name);
    EXPECT_NE(app, nullptr);
    return *app;
}

TEST(Generator, DeterministicForEqualSeeds)
{
    TraceGenerator a(model("nginx"), 7), b(model("nginx"), 7);
    for (int i = 0; i < 500; ++i) {
        TraceEvent ea = a.next(), eb = b.next();
        EXPECT_EQ(ea.req.sid, eb.req.sid);
        EXPECT_EQ(ea.req.pc, eb.req.pc);
        EXPECT_EQ(ea.req.args, eb.req.args);
        EXPECT_DOUBLE_EQ(ea.userWorkNs, eb.userWorkNs);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    TraceGenerator a(model("nginx"), 1), b(model("nginx"), 2);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a.next().req.sid == b.next().req.sid;
    EXPECT_LT(same, 150);
}

TEST(Generator, OnlyModeledSyscallsEmitted)
{
    const AppModel &app = model("redis");
    std::set<uint16_t> allowed;
    for (const auto &usage : app.usage)
        allowed.insert(usage.sid);
    TraceGenerator gen(app, 3);
    for (int i = 0; i < 2000; ++i)
        EXPECT_TRUE(allowed.count(gen.next().req.sid));
}

TEST(Generator, MixRoughlyMatchesWeights)
{
    const AppModel &app = model("pipe-ipc");
    TraceGenerator gen(app, 5);
    std::map<uint16_t, int> counts;
    const int draws = 30000;
    for (int i = 0; i < draws; ++i)
        ++counts[gen.next().req.sid];
    double total = app.totalWeight();
    for (const auto &usage : app.usage) {
        double expect = usage.weight / total;
        double got = counts[usage.sid] / static_cast<double>(draws);
        EXPECT_NEAR(got, expect, 0.02) << usage.sid;
    }
}

TEST(Generator, EachPcMapsToOneSyscall)
{
    // The STB depends on a PC naming a unique syscall (§VI-B).
    TraceGenerator gen(model("elasticsearch"), 11);
    std::map<uint64_t, uint16_t> pcToSid;
    for (int i = 0; i < 20000; ++i) {
        os::SyscallRequest req = gen.next().req;
        auto [it, inserted] = pcToSid.emplace(req.pc, req.sid);
        EXPECT_EQ(it->second, req.sid) << "pc " << std::hex << req.pc;
    }
}

TEST(Generator, DistinctTuplesPerUsage)
{
    SyscallUsage usage{os::sc::read, 1.0, 16, 0.5, 2};
    std::set<std::pair<uint64_t, uint64_t>> tuples;
    for (unsigned s = 0; s < 16; ++s) {
        os::SyscallRequest req =
            TraceGenerator::makeRequest(usage, s, 0x400000);
        tuples.insert({req.args[0], req.args[2]}); // fd, count
    }
    EXPECT_EQ(tuples.size(), 16u);
}

TEST(Generator, PointerArgsVaryBetweenCalls)
{
    const AppModel &app = model("grep");
    TraceGenerator gen(app, 13);
    std::set<uint64_t> bufPtrs;
    for (int i = 0; i < 4000; ++i) {
        os::SyscallRequest req = gen.next().req;
        if (req.sid == os::sc::read)
            bufPtrs.insert(req.args[1]);
    }
    EXPECT_GT(bufPtrs.size(), 50u);
}

TEST(Generator, CheckedArgsMaskedToWidth)
{
    // A 4-byte argument must never carry bits above bit 31.
    TraceGenerator gen(model("httpd"), 17);
    for (int i = 0; i < 5000; ++i) {
        os::SyscallRequest req = gen.next().req;
        const auto *desc = os::syscallById(req.sid);
        ASSERT_NE(desc, nullptr);
        for (unsigned a = 0; a < desc->nargs; ++a) {
            if (desc->argIsPointer(a))
                continue;
            if (desc->argBytes(a) == 4) {
                EXPECT_EQ(req.args[a] >> 32, 0u)
                    << desc->name << " arg " << a;
            }
        }
    }
}

TEST(Generator, UserWorkPositiveAndNearMean)
{
    const AppModel &app = model("mysql");
    TraceGenerator gen(app, 19);
    double sum = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        double ns = gen.next().userWorkNs;
        EXPECT_GT(ns, 0.0);
        sum += ns;
    }
    EXPECT_NEAR(sum / draws, app.userWorkMeanNs,
                app.userWorkMeanNs * 0.15);
}

TEST(Generator, PrologueStartsWithExecve)
{
    TraceGenerator gen(model("httpd"), 23);
    Trace pro = gen.prologue();
    ASSERT_FALSE(pro.empty());
    EXPECT_EQ(pro.front().req.sid, os::sc::execve);
}

TEST(Generator, PrologueCoversRuntimeSet)
{
    TraceGenerator gen(model("httpd"), 23);
    std::set<uint16_t> seen;
    for (const auto &event : gen.prologue())
        seen.insert(event.req.sid);
    for (uint16_t sid : {os::sc::execve, os::sc::brk, os::sc::openat,
                         os::sc::clone, os::sc::futex})
        EXPECT_TRUE(seen.count(sid)) << sid;
}

TEST(Generator, GenerateCombinesPrologueAndSteady)
{
    TraceGenerator gen(model("pwgen"), 29);
    Trace t = gen.generate(100);
    TraceGenerator gen2(model("pwgen"), 29);
    size_t prologueLen = gen2.prologue().size();
    EXPECT_EQ(t.size(), prologueLen + 100);
}

TEST(Generator, BytesTouchedMatchesModel)
{
    const AppModel &app = model("hpcc");
    TraceGenerator gen(app, 31);
    EXPECT_EQ(gen.next().bytesTouched, app.bytesPerGap);
}

} // namespace
} // namespace draco::workload
