/**
 * @file
 * Synthetic trace generation from an AppModel.
 *
 * A TraceGenerator deterministically (per seed) expands a workload model
 * into the stream of system calls the checking mechanisms are measured
 * on. Pointer-typed arguments are re-randomized on every call — they are
 * never checked (TOCTOU, §II-B), and varying them exercises the
 * invariant that only Argument-Bitmask-selected bytes influence any
 * decision. The startup prologue issues the loader/runtime syscalls a
 * container performs before the application proper, which is what makes
 * roughly 20% of generated profiles "runtime required" (Fig. 15a).
 */

#ifndef DRACO_WORKLOAD_GENERATOR_HH
#define DRACO_WORKLOAD_GENERATOR_HH

#include <vector>

#include "support/random.hh"
#include "workload/appmodel.hh"
#include "workload/trace.hh"

namespace draco::workload {

/**
 * Deterministic per-seed trace synthesizer for one workload.
 */
class TraceGenerator
{
  public:
    /**
     * @param model Workload description.
     * @param seed RNG seed; equal seeds give byte-identical traces.
     */
    TraceGenerator(const AppModel &model, uint64_t seed);

    /** @return The container/loader startup syscalls, in order. */
    Trace prologue();

    /** @return The next steady-state trace event. */
    TraceEvent next();

    /**
     * Convenience: prologue followed by @p steadyCalls steady events.
     */
    Trace generate(size_t steadyCalls);

    /** @return The model driving this generator. */
    const AppModel &model() const { return _model; }

    /**
     * Synthesize the concrete argument tuple @p setIdx of @p usage.
     * Exposed for tests; tuples are distinct per setIdx on checked args.
     */
    static os::SyscallRequest makeRequest(const SyscallUsage &usage,
                                          unsigned setIdx, uint64_t pc);

  private:
    struct UsageState {
        const SyscallUsage *usage;
        std::vector<uint64_t> pcs;     ///< Call sites.
        ZipfSampler argSampler;        ///< Tuple popularity.
    };

    const AppModel &_model;
    Rng _rng;
    AliasSampler _mixSampler;
    std::vector<UsageState> _states;
};

} // namespace draco::workload

#endif // DRACO_WORKLOAD_GENERATOR_HH
