#include "workload/generator.hh"

#include <cmath>

#include "os/syscalls.hh"
#include "support/logging.hh"

namespace draco::workload {

namespace {

/** Deterministic 64-bit mixer for structured value synthesis. */
uint64_t
mix(uint64_t a, uint64_t b, uint64_t c)
{
    uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
        c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
    x ^= x >> 29;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 32;
    return x;
}

/** Plausible 4-byte scalar values: flags, modes, whences, signals. */
constexpr uint64_t kFlagPool[] = {
    0x0, 0x1, 0x2, 0x3, 0x4, 0x8, 0x10, 0x22, 0x241, 0x441, 0x800,
    0x1000, 0x4000, 0x8000, 0x80000, 0x80800,
};

/** Plausible 8-byte scalar values: lengths, offsets, counts. */
constexpr uint64_t kSizePool[] = {
    0, 1, 8, 16, 64, 100, 512, 1000, 1024, 2048, 4096, 8192, 16384,
    65536, 131072, 1048576,
};

/** Base of the synthetic code region PCs are drawn from. */
constexpr uint64_t kTextBase = 0x400000;

std::vector<double>
usageWeights(const AppModel &model)
{
    std::vector<double> weights;
    weights.reserve(model.usage.size());
    for (const auto &usage : model.usage)
        weights.push_back(usage.weight);
    return weights;
}

} // namespace

os::SyscallRequest
TraceGenerator::makeRequest(const SyscallUsage &usage, unsigned setIdx,
                            uint64_t pc)
{
    const auto *desc = os::syscallById(usage.sid);
    if (!desc)
        panic("TraceGenerator: unknown syscall id %u", usage.sid);

    os::SyscallRequest req;
    req.pc = pc;
    req.sid = usage.sid;

    bool firstChecked = true;
    for (unsigned i = 0; i < desc->nargs; ++i) {
        if (desc->argIsPointer(i)) {
            // Placeholder; the caller re-randomizes pointers per call.
            req.args[i] = 0x7f0000000000ULL + i * 0x1000;
            continue;
        }
        uint64_t value;
        if (firstChecked) {
            // The first checked argument guarantees tuple distinctness
            // via a bijective mapping of setIdx; the multiplicative
            // permutation (with a per-syscall offset) keeps popular
            // tuples *unordered* with respect to their values, so a
            // value-sorted profile places them at uniformly random rule
            // positions — real fd/flag values carry no popularity order
            // either.
            value = 3 +
                ((setIdx * 40503u + (mix(usage.sid, 0xbeef, 0) & 0xffffu)) &
                 0xffffu);
            firstChecked = false;
        } else if (desc->argBytes(i) > 4) {
            uint64_t h = mix(usage.sid, i, setIdx / 4);
            value = kSizePool[h % std::size(kSizePool)];
        } else {
            uint64_t h = mix(usage.sid, i, setIdx / 8);
            value = kFlagPool[h % std::size(kFlagPool)];
        }
        unsigned bytes = desc->argBytes(i);
        uint64_t maskv = bytes >= 8 ? ~0ULL : ((1ULL << (bytes * 8)) - 1);
        req.args[i] = value & maskv;
    }
    return req;
}

TraceGenerator::TraceGenerator(const AppModel &model, uint64_t seed)
    : _model(model), _rng(seed), _mixSampler(usageWeights(model))
{
    Rng layout = _rng.fork();
    _states.reserve(model.usage.size());
    for (const auto &usage : model.usage) {
        UsageState state{
            &usage, {},
            ZipfSampler(std::max(1u, usage.argSets),
                        usage.argZipf)};
        unsigned sites = std::max(1u, usage.pcSites);
        state.pcs.reserve(sites);
        for (unsigned s = 0; s < sites; ++s) {
            // Distinct, stable call-site addresses within a synthetic
            // text segment; 16-byte spaced like real call sites.
            state.pcs.push_back(kTextBase +
                                (mix(usage.sid, s, 0xabcdef) % 0x200000) *
                                    16);
        }
        _states.push_back(std::move(state));
        (void)layout;
    }
}

Trace
TraceGenerator::prologue()
{
    // The loader + container runtime start-up sequence: every container
    // executes this regardless of the application. Tuples are fixed, so
    // every run records the same runtime-required profile entries.
    struct Step {
        const char *name;
        unsigned repeats;
        unsigned sets;
    };
    static const Step steps[] = {
        {"execve", 1, 1},    {"brk", 3, 3},
        {"arch_prctl", 1, 1}, {"access", 2, 2},
        {"openat", 8, 4},    {"fstat", 8, 4},
        {"mmap", 12, 6},     {"mprotect", 5, 3},
        {"read", 6, 3},      {"pread64", 4, 2},
        {"close", 8, 4},     {"munmap", 2, 2},
        {"set_tid_address", 1, 1}, {"set_robust_list", 1, 1},
        {"rt_sigaction", 6, 3}, {"rt_sigprocmask", 2, 2},
        {"prctl", 2, 2},     {"getrandom", 1, 1},
        {"clone", 2, 2},     {"futex", 3, 2},
        {"sched_getaffinity", 1, 1}, {"getpid", 1, 1},
        {"gettid", 1, 1},
    };

    Trace trace;
    uint64_t pcCursor = kTextBase + 0x10000000;
    for (const auto &step : steps) {
        const auto *desc = os::syscallByName(step.name);
        if (!desc)
            panic("prologue: unknown syscall '%s'", step.name);
        SyscallUsage usage{desc->id, 1.0, step.sets, 0.0, 1};
        for (unsigned r = 0; r < step.repeats; ++r) {
            TraceEvent event;
            event.userWorkNs = 500.0;
            event.bytesTouched = 4096;
            event.req =
                makeRequest(usage, r % step.sets, pcCursor);
            // Startup pointers vary like real loader addresses do.
            for (unsigned i = 0; i < desc->nargs; ++i)
                if (desc->argIsPointer(i))
                    event.req.args[i] =
                        0x7f0000000000ULL + _rng.nextBelow(1ULL << 30);
            trace.push_back(event);
        }
        pcCursor += 64;
    }
    return trace;
}

TraceEvent
TraceGenerator::next()
{
    size_t which = _mixSampler.sample(_rng);
    UsageState &state = _states[which];
    unsigned setIdx = static_cast<unsigned>(state.argSampler.sample(_rng));
    uint64_t pc = state.pcs[setIdx % state.pcs.size()];

    TraceEvent event;
    event.req = makeRequest(*state.usage, setIdx, pc);

    // Pointer arguments change on every invocation.
    const auto *desc = os::syscallById(state.usage->sid);
    for (unsigned i = 0; i < desc->nargs; ++i)
        if (desc->argIsPointer(i))
            event.req.args[i] =
                0x7f0000000000ULL + _rng.nextBelow(1ULL << 34);

    // Lognormal user-work gap with the model's mean.
    double sigma = _model.userWorkSigma;
    double mu = std::log(_model.userWorkMeanNs) - sigma * sigma / 2.0;
    // Box-Muller from two uniforms.
    double u1 = _rng.nextDouble();
    double u2 = _rng.nextDouble();
    if (u1 < 1e-12)
        u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
    event.userWorkNs = std::exp(mu + sigma * z);

    event.bytesTouched = _model.bytesPerGap;
    return event;
}

Trace
TraceGenerator::generate(size_t steadyCalls)
{
    Trace trace = prologue();
    trace.reserve(trace.size() + steadyCalls);
    for (size_t i = 0; i < steadyCalls; ++i)
        trace.push_back(next());
    return trace;
}

} // namespace draco::workload
