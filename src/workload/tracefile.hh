/**
 * @file
 * Trace serialization: a line-oriented text format for system-call
 * traces, so recorded streams (from the synthetic generators, or
 * converted from real strace output) can be saved, inspected, diffed,
 * and replayed through the checking stack.
 *
 * Format (one event per line, '#' comments, blank lines ignored):
 *
 *     # draco-trace v1
 *     <pc-hex> <sid> <arg0>..<arg5> <user-work-ns> <bytes-touched>
 *
 * All argument values are hex without prefixes except pc (0x-prefixed
 * for readability). user-work-ns is emitted with %.17g so a
 * write→read→write cycle is byte-stable (doubles survive exactly).
 */

#ifndef DRACO_WORKLOAD_TRACEFILE_HH
#define DRACO_WORKLOAD_TRACEFILE_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace draco::workload {

/** Magic first line of the format. */
inline constexpr const char *kTraceMagic = "# draco-trace v1";

/** Serialize @p trace to @p out. */
void writeTrace(const Trace &trace, std::ostream &out);

/** Serialize @p trace to @p path; fatal() on I/O failure. */
void writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace from @p in.
 *
 * Rejects (with a line-numbered message) malformed events, trailing
 * garbage after an event's ten fields, out-of-range syscall IDs, and a
 * repeated header line.
 *
 * @param in Input stream positioned at the start of the file.
 * @param error Receives a message on parse failure (may be null).
 * @param sizeHint Expected event count; reserves capacity up front
 *        (0 = unknown).
 * @return The parsed trace, or an empty trace when parsing failed and
 *         @p error was set.
 */
Trace readTrace(std::istream &in, std::string *error = nullptr,
                size_t sizeHint = 0);

/** Parse a trace from @p path; fatal() on I/O or parse failure. */
Trace readTraceFile(const std::string &path);

} // namespace draco::workload

#endif // DRACO_WORKLOAD_TRACEFILE_HH
