/**
 * @file
 * AppModel::fitFromTrace — derive generator parameters from a real
 * trace, the inverse of TraceGenerator. The fit is streaming: one pass,
 * memory proportional to the number of *distinct* (syscall, tuple) and
 * (syscall, pc) pairs, never to the trace length.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "os/syscalls.hh"
#include "workload/appmodel.hh"

namespace draco::workload {

namespace {

/** Per-syscall accumulation state for one fit pass. */
struct SidFit {
    uint64_t count = 0;
    std::map<std::array<uint64_t, os::kMaxSyscallArgs>, uint64_t> tuples;
    std::set<uint64_t> pcs;
};

/**
 * Zipf skew estimate: least-squares slope of log(freq) over log(rank)
 * for the popularity-sorted tuple counts; the generator's ZipfSampler
 * produces frequencies ∝ rank^-s, so -slope recovers s.
 */
double
estimateZipf(const SidFit &fit)
{
    if (fit.tuples.size() < 2)
        return 0.0;
    std::vector<uint64_t> counts;
    counts.reserve(fit.tuples.size());
    for (const auto &[tuple, count] : fit.tuples)
        counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());

    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    double n = static_cast<double>(counts.size());
    for (size_t rank = 0; rank < counts.size(); ++rank) {
        double x = std::log(static_cast<double>(rank + 1));
        double y = std::log(static_cast<double>(counts[rank]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    double denom = n * sxx - sx * sx;
    if (denom <= 0.0)
        return 0.0;
    double slope = (n * sxy - sx * sy) / denom;
    return std::clamp(-slope, 0.0, 4.0);
}

} // namespace

AppModel
AppModel::fitFromTrace(const std::string &name, EventStream &events,
                       bool isMacro)
{
    std::map<uint16_t, SidFit> perSid;
    uint64_t n = 0;
    double workSum = 0.0, logSum = 0.0, logSqSum = 0.0;
    uint64_t logged = 0;
    double bytesSum = 0.0;

    TraceEvent event;
    while (events.next(event)) {
        ++n;
        workSum += event.userWorkNs;
        if (event.userWorkNs > 0.0) {
            double l = std::log(event.userWorkNs);
            logSum += l;
            logSqSum += l * l;
            ++logged;
        }
        bytesSum += static_cast<double>(event.bytesTouched);

        SidFit &fit = perSid[event.req.sid];
        ++fit.count;
        fit.pcs.insert(event.req.pc);

        // The checked-argument tuple: pointer arguments never
        // participate in checking (TOCTOU), so zero them out — two
        // calls differing only in pointers share a tuple, exactly as
        // the VAT sees them. Unknown syscalls keep all arguments.
        std::array<uint64_t, os::kMaxSyscallArgs> tuple = event.req.args;
        if (const auto *desc = os::syscallById(event.req.sid)) {
            for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i)
                if (desc->argIsPointer(i))
                    tuple[i] = 0;
        }
        ++fit.tuples[tuple];
    }

    AppModel model;
    model.name = name;
    model.isMacro = isMacro;
    if (n == 0) {
        model.userWorkMeanNs = 0.0;
        model.userWorkSigma = 0.0;
        model.bytesPerGap = 0;
        return model;
    }

    model.userWorkMeanNs = workSum / static_cast<double>(n);
    double sigma = 0.0;
    if (logged > 1) {
        double mean = logSum / static_cast<double>(logged);
        double var =
            logSqSum / static_cast<double>(logged) - mean * mean;
        sigma = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    model.userWorkSigma = sigma;
    model.bytesPerGap =
        static_cast<uint64_t>(bytesSum / static_cast<double>(n) + 0.5);

    model.usage.reserve(perSid.size());
    for (const auto &[sid, fit] : perSid) {
        SyscallUsage usage;
        usage.sid = sid;
        usage.weight =
            100.0 * static_cast<double>(fit.count) /
            static_cast<double>(n);
        usage.argSets = static_cast<unsigned>(fit.tuples.size());
        usage.argZipf = estimateZipf(fit);
        usage.pcSites = static_cast<unsigned>(fit.pcs.size());
        model.usage.push_back(usage);
    }
    // Most frequent first, ties by id: stable, readable models.
    std::sort(model.usage.begin(), model.usage.end(),
              [](const SyscallUsage &a, const SyscallUsage &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.sid < b.sid;
              });
    return model;
}

AppModel
AppModel::fitFromTrace(const std::string &name, const Trace &trace,
                       bool isMacro)
{
    TraceStream stream(trace);
    return fitFromTrace(name, stream, isMacro);
}

} // namespace draco::workload
