#include "workload/tracefile.hh"

#include <fstream>
#include <sstream>

#include "os/syscalls.hh"
#include "support/logging.hh"

namespace draco::workload {

void
writeTrace(const Trace &trace, std::ostream &out)
{
    out << kTraceMagic << '\n';
    out << "# pc sid arg0..arg5 user-work-ns bytes-touched\n";
    char line[256];
    for (const auto &event : trace) {
        const auto &req = event.req;
        // %.17g keeps the double exact, so write->read->write is
        // byte-stable.
        std::snprintf(
            line, sizeof(line),
            "0x%llx %u %llx %llx %llx %llx %llx %llx %.17g %llu\n",
            static_cast<unsigned long long>(req.pc), req.sid,
            static_cast<unsigned long long>(req.args[0]),
            static_cast<unsigned long long>(req.args[1]),
            static_cast<unsigned long long>(req.args[2]),
            static_cast<unsigned long long>(req.args[3]),
            static_cast<unsigned long long>(req.args[4]),
            static_cast<unsigned long long>(req.args[5]),
            event.userWorkNs,
            static_cast<unsigned long long>(event.bytesTouched));
        out << line;
    }
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("writeTraceFile: cannot open '%s'", path.c_str());
    writeTrace(trace, out);
    if (!out)
        fatal("writeTraceFile: write to '%s' failed", path.c_str());
}

Trace
readTrace(std::istream &in, std::string *error, size_t sizeHint)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        else
            fatal("readTrace: %s", msg.c_str());
        return Trace{};
    };

    std::string line;
    if (!std::getline(in, line) || line != kTraceMagic)
        return fail("missing '# draco-trace v1' header");

    Trace trace;
    trace.reserve(sizeHint);
    size_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line == kTraceMagic)
            return fail("duplicate header at line " +
                        std::to_string(lineNo));
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceEvent event;
        unsigned sid = 0;
        unsigned long long pc = 0, bytes = 0;
        std::array<unsigned long long, os::kMaxSyscallArgs> args{};
        fields >> std::hex >> pc >> std::dec >> sid >> std::hex;
        for (auto &arg : args)
            fields >> arg;
        fields >> std::dec >> event.userWorkNs >> bytes;
        if (!fields)
            return fail("malformed event at line " +
                        std::to_string(lineNo));
        // Exactly ten fields per event: anything left beyond
        // whitespace is a corrupt or truncated-and-glued line.
        fields >> std::ws;
        if (fields.peek() != std::istringstream::traits_type::eof())
            return fail("trailing garbage at line " +
                        std::to_string(lineNo));
        if (sid > 0xffff)
            return fail("sid out of range at line " +
                        std::to_string(lineNo));
        event.req.pc = pc;
        event.req.sid = static_cast<uint16_t>(sid);
        for (unsigned i = 0; i < os::kMaxSyscallArgs; ++i)
            event.req.args[i] = args[i];
        event.bytesTouched = bytes;
        trace.push_back(event);
    }
    if (error)
        error->clear();
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::ate);
    if (!in)
        fatal("readTraceFile: cannot open '%s'", path.c_str());
    // Reserve from the byte size: steady-state event lines run ~50-80
    // bytes, so bytes/48 slightly over-reserves instead of growing.
    auto bytes = static_cast<size_t>(in.tellg());
    in.seekg(0);
    return readTrace(in, nullptr, bytes / 48);
}

} // namespace draco::workload
