/**
 * @file
 * System-call trace representation.
 *
 * A workload is consumed as a stream of TraceEvents: the user-space
 * compute time since the previous syscall, followed by one system call
 * request. The checking mechanisms only ever see the request; the
 * timing model prices the gap plus the kernel path.
 */

#ifndef DRACO_WORKLOAD_TRACE_HH
#define DRACO_WORKLOAD_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "os/seccomp_abi.hh"

namespace draco::workload {

/** One trace step: compute gap, then a system call. */
struct TraceEvent {
    double userWorkNs = 0.0;   ///< User compute before the syscall.
    uint64_t bytesTouched = 0; ///< App data footprint touched in the gap.
    os::SyscallRequest req;    ///< The system call itself.
};

/** A fully materialized trace. */
using Trace = std::vector<TraceEvent>;

/**
 * Pull-based event source.
 *
 * Everything that can supply a syscall stream — an in-memory Trace, the
 * synthetic TraceGenerator, a streaming `.dtrc` reader — implements this
 * one-method interface, so the simulator replays any of them through the
 * same code path and million-event corpora never have to materialize.
 */
class EventStream
{
  public:
    virtual ~EventStream() = default;

    /**
     * Fetch the next event.
     *
     * @param out Receives the event when one is available.
     * @return true when @p out was filled; false at end of stream.
     */
    virtual bool next(TraceEvent &out) = 0;
};

/** EventStream view over an in-memory Trace (not owned). */
class TraceStream final : public EventStream
{
  public:
    explicit TraceStream(const Trace &trace) : _trace(&trace) {}

    bool
    next(TraceEvent &out) override
    {
        if (_pos >= _trace->size())
            return false;
        out = (*_trace)[_pos++];
        return true;
    }

    /** Rewind to the first event. */
    void reset() { _pos = 0; }

  private:
    const Trace *_trace;
    size_t _pos = 0;
};

/** EventStream that owns its backing Trace (for loaded files). */
class OwningTraceStream final : public EventStream
{
  public:
    explicit OwningTraceStream(Trace trace) : _trace(std::move(trace)) {}

    bool
    next(TraceEvent &out) override
    {
        if (_pos >= _trace.size())
            return false;
        out = _trace[_pos++];
        return true;
    }

    /** Rewind to the first event. */
    void reset() { _pos = 0; }

    /** @return The backing trace. */
    const Trace &trace() const { return _trace; }

  private:
    Trace _trace;
    size_t _pos = 0;
};

} // namespace draco::workload

#endif // DRACO_WORKLOAD_TRACE_HH
