/**
 * @file
 * System-call trace representation.
 *
 * A workload is consumed as a stream of TraceEvents: the user-space
 * compute time since the previous syscall, followed by one system call
 * request. The checking mechanisms only ever see the request; the
 * timing model prices the gap plus the kernel path.
 */

#ifndef DRACO_WORKLOAD_TRACE_HH
#define DRACO_WORKLOAD_TRACE_HH

#include <cstdint>
#include <vector>

#include "os/seccomp_abi.hh"

namespace draco::workload {

/** One trace step: compute gap, then a system call. */
struct TraceEvent {
    double userWorkNs = 0.0;   ///< User compute before the syscall.
    uint64_t bytesTouched = 0; ///< App data footprint touched in the gap.
    os::SyscallRequest req;    ///< The system call itself.
};

/** A fully materialized trace. */
using Trace = std::vector<TraceEvent>;

} // namespace draco::workload

#endif // DRACO_WORKLOAD_TRACE_HH
