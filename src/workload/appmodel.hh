/**
 * @file
 * Statistical models of the paper's fifteen workloads (§X-A).
 *
 * The authors run real applications in Docker containers; we cannot, so
 * each workload is modeled by the properties that determine checking
 * overhead and Draco behaviour:
 *   - its system-call *mix* (which IDs, with what relative frequency —
 *     calibrated against Fig. 3's top-20 distribution),
 *   - how many distinct argument tuples each syscall uses and how
 *     skewed their popularity is (argument locality, Fig. 3's per-bar
 *     breakdown),
 *   - how many static call sites issue each syscall (drives STB
 *     behaviour, Fig. 13),
 *   - the mean user-space compute between syscalls (syscall density —
 *     the lever between macro ≈1.14× and micro ≈1.25× overheads), and
 *   - the data footprint touched between syscalls (cache pressure on
 *     the VAT, which prices hardware Draco's slow flows).
 */

#ifndef DRACO_WORKLOAD_APPMODEL_HH
#define DRACO_WORKLOAD_APPMODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace draco::workload {

/** How one system call is used by an application. */
struct SyscallUsage {
    uint16_t sid;        ///< System call ID.
    double weight;       ///< Relative dynamic frequency.
    unsigned argSets;    ///< Distinct checked-argument tuples (≥1).
    double argZipf;      ///< Zipf skew of tuple popularity (0=uniform).
    unsigned pcSites;    ///< Distinct static call sites (≥1).
};

/** A workload's statistical description. */
struct AppModel {
    std::string name;          ///< Workload name as used in the figures.
    bool isMacro;              ///< Macro (latency) vs micro benchmark.
    double userWorkMeanNs;     ///< Mean compute gap between syscalls.
    double userWorkSigma;      ///< Lognormal sigma of the gap.
    uint64_t bytesPerGap;      ///< App data touched per gap (cache churn).
    std::vector<SyscallUsage> usage; ///< The syscall mix.

    /** @return Sum of usage weights. */
    double totalWeight() const;

    /** @return Total distinct (sid, tuple) combinations. */
    unsigned totalArgSets() const;

    /**
     * Fit a generator model to a real trace.
     *
     * Derives, per syscall: dynamic weight, distinct checked-argument
     * tuples, a Zipf skew estimate (log-log regression of tuple
     * popularity), and distinct call sites; plus the trace-wide
     * lognormal gap parameters and mean gap footprint. The result
     * drives TraceGenerator, so a statistical twin of an ingested
     * workload can be synthesized at any length.
     *
     * @param name Name for the fitted model.
     * @param events Trace to fit; consumed to exhaustion.
     * @param isMacro Macro/micro label (not inferable from a trace).
     * @return The fitted model; usage is empty when the stream was.
     */
    static AppModel fitFromTrace(const std::string &name,
                                 EventStream &events,
                                 bool isMacro = true);

    /** Convenience overload over a materialized trace. */
    static AppModel fitFromTrace(const std::string &name,
                                 const Trace &trace,
                                 bool isMacro = true);
};

/** @return The eight macro benchmarks, in figure order. */
const std::vector<AppModel> &macroWorkloads();

/** @return The seven micro benchmarks, in figure order. */
const std::vector<AppModel> &microWorkloads();

/** @return All fifteen workloads: macro then micro. */
const std::vector<AppModel> &allWorkloads();

/** @return The model named @p name, or nullptr. */
const AppModel *workloadByName(const std::string &name);

} // namespace draco::workload

#endif // DRACO_WORKLOAD_APPMODEL_HH
