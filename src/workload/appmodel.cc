#include "workload/appmodel.hh"

#include <functional>
#include <set>

#include "os/syscalls.hh"
#include "support/logging.hh"

namespace draco::workload {

namespace {

uint16_t
idOf(const char *name)
{
    const auto *desc = os::syscallByName(name);
    if (!desc)
        panic("appmodel references unknown syscall '%s'", name);
    return desc->id;
}

/** Shorthand for one mix entry. */
SyscallUsage
u(const char *name, double weight, unsigned arg_sets = 2,
  double arg_zipf = 1.0, unsigned pc_sites = 1)
{
    return SyscallUsage{idOf(name), weight, arg_sets, arg_zipf, pc_sites};
}

/**
 * Rarely-used syscalls real applications nevertheless touch (startup,
 * logging, maintenance paths). Every name is allowed by docker-default,
 * so workloads remain runnable under every profile the paper evaluates.
 */
const char *kTailPool[] = {
    "alarm", "chdir", "chmod", "dup2", "eventfd2", "fadvise64",
    "fallocate", "fchmod", "flock", "ftruncate", "getcwd", "getdents64",
    "getegid", "geteuid", "getgid", "getgroups", "getpeername",
    "getpgrp", "getpriority", "getresgid", "getresuid", "getrlimit",
    "getrusage", "getsockname", "gettimeofday", "getuid",
    "inotify_add_watch", "inotify_init1", "kill", "link", "listen",
    "lstat", "mkdir", "mlock", "msync", "nanosleep", "newfstatat",
    "pause", "pipe", "pipe2", "prlimit64", "pselect6", "readlink",
    "readv", "rename", "rmdir", "rt_sigpending", "rt_sigsuspend",
    "sched_getparam", "sched_getscheduler", "sched_setaffinity",
    "select", "semget", "semop", "sendmmsg", "setitimer", "setpgid",
    "setpriority", "setrlimit", "setsid", "shutdown", "sigaltstack",
    "socketpair", "splice", "statfs", "symlink", "sync", "sysinfo",
    "tgkill", "timer_create", "timerfd_create", "timerfd_settime",
    "truncate", "umask", "uname", "unlink", "unlinkat", "utimensat",
    "wait4", "epoll_create1", "dup3", "clock_gettime", "memfd_create",
    "getrandom", "mremap", "mincore",
};

/**
 * Append @p count rare-tail syscalls to @p app, sharing @p total_weight
 * between them. The selection is deterministic per app name so traces
 * and profiles are stable across runs.
 */
void
appendTail(AppModel &app, unsigned count, double total_weight)
{
    std::set<uint16_t> used;
    for (const auto &usage : app.usage)
        used.insert(usage.sid);

    size_t poolSize = std::size(kTailPool);
    size_t offset = std::hash<std::string>{}(app.name) % poolSize;
    double each = total_weight / count;
    unsigned added = 0;
    for (size_t step = 0; step < poolSize && added < count; ++step) {
        const char *name = kTailPool[(offset + step * 7) % poolSize];
        uint16_t sid = idOf(name);
        if (!used.insert(sid).second)
            continue;
        app.usage.push_back(SyscallUsage{sid, each, 1, 0.0, 1});
        ++added;
    }
}

std::vector<AppModel>
buildMacro()
{
    std::vector<AppModel> apps;

    // Apache HTTPD driven by ab with 30 concurrent requests. Dense
    // network/file syscall traffic; moderate per-request compute.
    apps.push_back(AppModel{
        "httpd", true, 260.0, 0.6, 4096,
        {
            u("read", 16, 100, 1.9, 4), u("close", 10, 40, 1.9, 3),
            u("writev", 10, 64, 1.9, 2), u("accept4", 8, 2, 0.5, 1),
            u("poll", 6, 8, 1.7, 2), u("fcntl", 6, 8, 1.7, 2),
            u("sendfile", 6, 48, 1.9, 1), u("times", 5, 1, 0.0, 1),
            u("write", 4, 48, 1.9, 3), u("stat", 4, 1, 0.0, 2),
            u("open", 4, 1, 0.0, 2), u("fstat", 3, 16, 1.7, 2),
            u("shutdown", 3, 2, 0.5, 1), u("setsockopt", 3, 3, 0.5, 1),
            u("openat", 2, 1, 0.0, 1), u("futex", 2, 6, 0.8, 2),
            u("mmap", 1, 4, 0.6, 1), u("munmap", 1, 3, 0.6, 1),
            u("getsockopt", 1, 2, 0.5, 1),
        }});

    // NGINX driven by ab; event-driven epoll loop.
    apps.push_back(AppModel{
        "nginx", true, 300.0, 0.6, 4096,
        {
            u("epoll_wait", 12, 3, 0.6, 1), u("writev", 12, 48, 2.2, 2),
            u("recvfrom", 10, 40, 2.2, 2), u("epoll_ctl", 9, 12, 2.2, 2),
            u("close", 9, 28, 2.2, 2), u("accept4", 6, 2, 0.5, 1),
            u("read", 6, 40, 2.2, 3), u("write", 6, 32, 2.2, 2),
            u("sendfile", 5, 32, 2.2, 1), u("setsockopt", 4, 3, 0.5, 1),
            u("open", 4, 1, 0.0, 1), u("fstat", 4, 12, 2.2, 1),
            u("stat", 3, 1, 0.0, 1), u("sendto", 3, 5, 0.8, 1),
            u("futex", 1, 4, 0.8, 1), u("getpid", 1, 1, 0.0, 1),
        }});

    // Elasticsearch under YCSB. JVM: futex-dominated, very many
    // distinct argument tuples and call sites (low STB/SLB locality —
    // the paper's Fig. 13 outlier together with redis).
    apps.push_back(AppModel{
        "elasticsearch", true, 900.0, 0.8, 32768,
        {
            u("futex", 30, 72, 1.4, 90), u("read", 14, 60, 1.4, 70),
            u("epoll_wait", 10, 8, 1.4, 30), u("write", 8, 48, 1.4, 60),
            u("recvfrom", 6, 32, 1.4, 30), u("epoll_ctl", 5, 12, 1.4, 25),
            u("sendto", 4, 32, 1.4, 25), u("mmap", 4, 24, 1.4, 20),
            u("stat", 3, 1, 0.0, 10), u("openat", 3, 1, 0.0, 10),
            u("close", 3, 32, 1.4, 20), u("fstat", 2, 16, 1.4, 10),
            u("lseek", 2, 24, 1.4, 10), u("mprotect", 2, 12, 1.4, 8),
            u("madvise", 2, 10, 1.4, 6), u("gettid", 1, 1, 0.0, 4),
            u("sched_yield", 1, 1, 0.0, 4),
        }});

    // MySQL under SysBench OLTP with 10 clients.
    apps.push_back(AppModel{
        "mysql", true, 520.0, 0.7, 16384,
        {
            u("futex", 18, 64, 2.0, 25), u("read", 14, 64, 2.0, 10),
            u("write", 10, 56, 2.0, 8), u("poll", 8, 8, 2.0, 3),
            u("pread64", 8, 72, 2.0, 4), u("pwrite64", 6, 64, 2.0, 4),
            u("fsync", 6, 6, 2.0, 2), u("times", 6, 1, 0.0, 1),
            u("recvfrom", 5, 32, 2.0, 2), u("sendto", 5, 32, 2.0, 2),
            u("close", 3, 16, 2.0, 2), u("openat", 3, 1, 0.0, 2),
            u("lseek", 3, 28, 2.0, 2), u("madvise", 2, 6, 2.0, 1),
        }});

    // Cassandra under YCSB with 30 clients (JVM).
    apps.push_back(AppModel{
        "cassandra", true, 800.0, 0.8, 32768,
        {
            u("futex", 28, 56, 2.2, 40), u("read", 12, 56, 2.2, 25),
            u("write", 8, 32, 2.2, 20), u("epoll_wait", 8, 6, 2.2, 10),
            u("recvfrom", 6, 24, 2.2, 10), u("sendto", 5, 24, 2.2, 10),
            u("mmap", 3, 24, 2.2, 8), u("close", 3, 16, 2.2, 6),
            u("stat", 2, 1, 0.0, 4), u("fstat", 2, 10, 0.6, 4),
            u("openat", 2, 1, 0.0, 4), u("times", 2, 1, 0.0, 2),
            u("lseek", 2, 10, 0.6, 4), u("madvise", 2, 6, 0.6, 2),
            u("dup", 1, 4, 0.5, 2),
        }});

    // Redis under redis-benchmark with 30 concurrent requests. Tight
    // event loop; many connections give read/write wide fd fan-out.
    apps.push_back(AppModel{
        "redis", true, 230.0, 0.5, 8192,
        {
            u("read", 18, 150, 1.9, 40), u("write", 16, 150, 1.9, 40),
            u("epoll_wait", 14, 4, 0.5, 10), u("epoll_ctl", 6, 64, 1.7, 30),
            u("close", 5, 30, 1.7, 10), u("open", 4, 1, 0.0, 6),
            u("accept4", 3, 2, 0.5, 4), u("fstat", 3, 12, 1.7, 6),
            u("getpid", 2, 1, 0.0, 2), u("times", 2, 1, 0.0, 2),
        }});

    // OpenFaaS-style grep function: search a pattern over the Linux
    // source tree. File-scan dominated, compute-light per call but much
    // more user work than servers per syscall.
    apps.push_back(AppModel{
        "grep", true, 1900.0, 0.5, 65536,
        {
            u("read", 30, 24, 2.0, 2), u("openat", 15, 1, 0.0, 1),
            u("close", 14, 4, 0.6, 1), u("fstat", 12, 4, 0.6, 1),
            u("getdents", 6, 3, 0.6, 1), u("write", 6, 3, 0.6, 1),
            u("mmap", 4, 4, 0.6, 1), u("munmap", 4, 3, 0.6, 1),
            u("lseek", 3, 4, 0.6, 1),
        }});

    // OpenFaaS-style pwgen function: generate 10K secure passwords.
    apps.push_back(AppModel{
        "pwgen", true, 2600.0, 0.5, 16384,
        {
            u("read", 25, 8, 2.0, 1), u("write", 20, 3, 0.7, 1),
            u("openat", 8, 1, 0.0, 1), u("close", 8, 2, 0.5, 1),
            u("fstat", 5, 2, 0.5, 1), u("getrandom", 4, 2, 0.5, 1),
            u("mmap", 2, 3, 0.6, 1),
        }});

    // Fig. 15a: application profiles span 50-100 syscalls; servers touch
    // a long tail of rare calls beyond their hot loop.
    for (auto &app : apps)
        appendTail(app, 45, 2.5);

    return apps;
}

std::vector<AppModel>
buildMicro()
{
    std::vector<AppModel> apps;

    // SysBench fileio: random read/write over 128 files.
    apps.push_back(AppModel{
        "sysbench-fio", false, 150.0, 0.5, 16384,
        {
            u("pread64", 25, 44, 2.5, 2), u("pwrite64", 20, 44, 2.5, 2),
            u("fsync", 12, 6, 2.2, 1), u("lseek", 10, 16, 2.2, 2),
            u("read", 8, 12, 2.2, 1), u("write", 8, 12, 2.2, 1),
            u("open", 3, 1, 0.0, 1), u("close", 3, 6, 0.5, 1),
            u("fstat", 3, 6, 0.5, 1), u("times", 2, 1, 0.0, 1),
        }});

    // HPCC GUPS: compute/memory bound, almost no syscalls.
    apps.push_back(AppModel{
        "hpcc", false, 60000.0, 0.4, 1048576,
        {
            u("mmap", 2, 4, 0.6, 1), u("brk", 2, 3, 0.6, 1),
            u("write", 1, 2, 0.5, 1), u("read", 1, 2, 0.5, 1),
        }});

    // UnixBench syscall in mix mode: the classic dup/close/getpid/
    // getuid/umask loop — nearly zero user work per call.
    apps.push_back(AppModel{
        "unixbench-syscall", false, 25.0, 0.2, 256,
        {
            u("dup", 20, 24, 2.5, 1), u("close", 20, 24, 2.5, 1),
            u("getpid", 20, 1, 0.0, 1), u("getuid", 20, 1, 0.0, 1),
            u("umask", 20, 4, 2.5, 1),
        }});

    // IPC Bench, 1000-byte packets over each transport.
    apps.push_back(AppModel{
        "fifo-ipc", false, 40.0, 0.3, 2048,
        {
            u("read", 46, 32, 2.5, 1), u("write", 46, 32, 2.5, 1),
            u("poll", 6, 4, 2.5, 1), u("getpid", 2, 1, 0.0, 1),
        }});
    apps.push_back(AppModel{
        "pipe-ipc", false, 35.0, 0.3, 2048,
        {
            u("read", 48, 32, 2.5, 1), u("write", 48, 32, 2.5, 1),
            u("getpid", 4, 1, 0.0, 1),
        }});
    apps.push_back(AppModel{
        "domain-ipc", false, 50.0, 0.3, 2048,
        {
            u("sendto", 46, 20, 2.5, 1), u("recvfrom", 46, 20, 2.5, 1),
            u("getpid", 4, 1, 0.0, 1), u("poll", 4, 4, 2.5, 1),
        }});
    apps.push_back(AppModel{
        "mq-ipc", false, 55.0, 0.3, 2048,
        {
            u("mq_timedsend", 46, 20, 2.5, 1),
            u("mq_timedreceive", 46, 20, 2.5, 1),
            u("getpid", 4, 1, 0.0, 1), u("times", 4, 1, 0.0, 1),
        }});

    for (auto &app : apps)
        appendTail(app, 18, 1.0);

    return apps;
}

} // namespace

double
AppModel::totalWeight() const
{
    double total = 0.0;
    for (const auto &entry : usage)
        total += entry.weight;
    return total;
}

unsigned
AppModel::totalArgSets() const
{
    unsigned total = 0;
    for (const auto &entry : usage)
        total += entry.argSets;
    return total;
}

const std::vector<AppModel> &
macroWorkloads()
{
    static const std::vector<AppModel> apps = buildMacro();
    return apps;
}

const std::vector<AppModel> &
microWorkloads()
{
    static const std::vector<AppModel> apps = buildMicro();
    return apps;
}

const std::vector<AppModel> &
allWorkloads()
{
    static const std::vector<AppModel> apps = [] {
        std::vector<AppModel> all = macroWorkloads();
        const auto &micro = microWorkloads();
        all.insert(all.end(), micro.begin(), micro.end());
        return all;
    }();
    return apps;
}

const AppModel *
workloadByName(const std::string &name)
{
    for (const auto &app : allWorkloads())
        if (app.name == name)
            return &app;
    return nullptr;
}

} // namespace draco::workload
