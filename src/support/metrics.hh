/**
 * @file
 * Unified metric registry.
 *
 * Every stats-bearing structure in the reproduction (cuckoo tables, the
 * VAT, the hardware SLB/STB/SPT, the software checker, the cache model,
 * the experiment runners) exports its counters into a MetricRegistry
 * under hierarchical `group.metric` names, and every bench binary
 * serializes one registry to a `BENCH_<name>.json` artifact. This is
 * the substrate the perf trajectory is judged against: a counter that
 * only ever prints into a stdout table can drift or lie, a counter that
 * lands in machine-readable output gets diffed across PRs.
 *
 * Naming scheme (documented in DESIGN.md §7):
 *  - names are dot-separated paths of [a-z0-9_-] segments,
 *    e.g. `vat.lookups`, `hw.flows.f1`, `cache.l1.hits`;
 *  - a name is either a leaf (one value) or a group (interior node);
 *    using the same name as both is a fatal error;
 *  - serialization nests groups as JSON objects, so `hw.flows.f1 = 3`
 *    becomes {"hw":{"flows":{"f1":3}}}.
 *
 * The registry holds plain counters (uint64), gauges (double), text
 * attributes, and live RunningStat / Histogram / QuantileSketch
 * instruments. JSON serialization is dependency-free.
 */

#ifndef DRACO_SUPPORT_METRICS_HH
#define DRACO_SUPPORT_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "support/stats.hh"

namespace draco {

/** Kind of a registry leaf, for introspection via visit(). */
enum class MetricKind {
    Counter,
    Gauge,
    Text,
    Stat,
    Hist,
    Sketch,
};

/**
 * Read-only view of one registry leaf passed to visit(). Only the
 * member matching @p kind is meaningful; instrument pointers stay
 * valid for the duration of the callback only.
 */
struct MetricView {
    const std::string &name;
    MetricKind kind;
    uint64_t counter;
    double gauge;
    const std::string *text;
    const RunningStat *stat;
    const Histogram *hist;
    const QuantileSketch *sketch;
};

/**
 * Named, hierarchical collection of metrics with JSON export.
 */
class MetricRegistry
{
  public:
    /**
     * @return A live counter handle for @p name, created at zero on
     *         first use. Increment through the reference.
     */
    uint64_t &counter(const std::string &name);

    /** @return A live gauge handle for @p name (created at 0.0). */
    double &gauge(const std::string &name);

    /** @return A live RunningStat instrument registered as @p name. */
    RunningStat &runningStat(const std::string &name);

    /**
     * @return A live Histogram instrument registered as @p name. The
     *         geometry arguments apply on first creation; a later
     *         lookup passing a different lo/hi/buckets is a bug in the
     *         caller and panics with both geometries named.
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         size_t buckets);

    /** @return A live QuantileSketch instrument registered as @p name. */
    QuantileSketch &quantileSketch(const std::string &name);

    /** Set (or overwrite) the counter @p name to @p value. */
    void setCounter(const std::string &name, uint64_t value);

    /** Set (or overwrite) the gauge @p name to @p value. */
    void setGauge(const std::string &name, double value);

    /** Set (or overwrite) the text attribute @p name. */
    void setText(const std::string &name, const std::string &value);

    /** Copy a finished RunningStat snapshot into the registry. */
    void setStat(const std::string &name, const RunningStat &stat);

    /** Copy a finished QuantileSketch snapshot into the registry. */
    void setQuantiles(const std::string &name,
                      const QuantileSketch &sketch);

    /**
     * Copy a finished Histogram snapshot into the registry. Panics on
     * a geometry mismatch with an existing histogram of the same name,
     * mirroring histogram().
     */
    void setHistogram(const std::string &name, const Histogram &hist);

    /** @return true when a leaf named @p name exists (any kind). */
    bool has(const std::string &name) const;

    /** @return Value of counter @p name; fatal if absent/not a counter. */
    uint64_t counterValue(const std::string &name) const;

    /** @return Value of gauge @p name; fatal if absent/not a gauge. */
    double gaugeValue(const std::string &name) const;

    /** @return Value of text attribute @p name; fatal if absent. */
    const std::string &textValue(const std::string &name) const;

    /** @return Number of registered leaves. */
    size_t size() const { return _metrics.size(); }

    /** @return All leaf names in sorted order. */
    std::vector<std::string> names() const;

    /**
     * Invoke @p fn once per leaf in sorted name order. This is the
     * escape hatch for alternate serializers (Prometheus exposition)
     * that need the kind and value of every leaf without knowing names
     * up front.
     */
    void visit(const std::function<void(const MetricView &)> &fn) const;

    /** Remove every metric. */
    void clear();

    /**
     * Fold every leaf of @p other into this registry.
     *
     * Parallel sweeps run each cell against a private registry shard
     * and merge the shards back in cell-index order; because leaves
     * live in a sorted map, the merged registry (and its JSON) is
     * identical for any shard count and any execution interleaving.
     *
     * New names are copied. For names present in both registries the
     * kinds must match, and:
     *  - counters add;
     *  - RunningStat / Histogram / QuantileSketch instruments merge
     *    (histogram geometries must agree);
     *  - gauge and text collisions are fatal — point values carry no
     *    combination rule, so shards must give them distinct names.
     */
    void merge(const MetricRegistry &other);

    /**
     * @param pretty Indent nested objects when true.
     * @return The whole registry as a JSON object string.
     */
    std::string toJson(bool pretty = true) const;

    /** Serialize to @p path; fatal when the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

    /**
     * Serialize to @p path without dying on I/O errors.
     *
     * @return true when the file was fully written.
     */
    bool tryWriteJsonFile(const std::string &path) const;

    /**
     * Make an arbitrary label usable as one metric path segment:
     * lowercase, any run of characters outside [a-z0-9_-] collapses to
     * a single '_', leading/trailing '_' trimmed.
     *
     * @return The sanitized segment ("_" when nothing survives).
     */
    static std::string sanitize(const std::string &label);

    /** @return "prefix.name", or just @p name when @p prefix is empty. */
    static std::string join(const std::string &prefix,
                            const std::string &name);

  private:
    struct Metric {
        enum class Kind {
            Counter,
            Gauge,
            Text,
            Stat,
            Hist,
            Sketch,
        } kind = Kind::Counter;

        uint64_t counter = 0;
        double gauge = 0.0;
        std::string text;
        RunningStat stat;
        std::unique_ptr<Histogram> hist;
        QuantileSketch sketch;
    };

    Metric &get(const std::string &name, Metric::Kind kind);
    const Metric &getExisting(const std::string &name,
                              Metric::Kind kind) const;
    void registerName(const std::string &name);

    /** Leaves keyed by full dotted name (sorted => stable JSON). */
    std::map<std::string, Metric> _metrics;

    /** Every interior group prefix seen so far (conflict detection). */
    std::set<std::string> _groups;
};

} // namespace draco

#endif // DRACO_SUPPORT_METRICS_HH
