#include "support/cliflags.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace draco::support {

CliFlags::CliFlags(std::string program, std::string synopsis)
    : _program(std::move(program)), _synopsis(std::move(synopsis))
{
}

void
CliFlags::addFlag(const std::string &name, const std::string &help)
{
    Spec spec;
    spec.kind = Kind::Flag;
    spec.help = help;
    if (!_specs.emplace(name, std::move(spec)).second)
        panic("CliFlags: duplicate flag --%s", name.c_str());
    _order.push_back(name);
}

void
CliFlags::addString(const std::string &name, const std::string &valueName,
                    const std::string &help, std::string def)
{
    Spec spec;
    spec.kind = Kind::String;
    spec.valueName = valueName;
    spec.help = help;
    spec.strValue = std::move(def);
    if (!_specs.emplace(name, std::move(spec)).second)
        panic("CliFlags: duplicate flag --%s", name.c_str());
    _order.push_back(name);
}

void
CliFlags::addUint(const std::string &name, const std::string &valueName,
                  const std::string &help, uint64_t def)
{
    Spec spec;
    spec.kind = Kind::Uint;
    spec.valueName = valueName;
    spec.help = help;
    spec.uintVal = def;
    if (!_specs.emplace(name, std::move(spec)).second)
        panic("CliFlags: duplicate flag --%s", name.c_str());
    _order.push_back(name);
}

void
CliFlags::addCommon()
{
    addString("json", "path",
              "write the metric registry as JSON to <path> "
              "(env DRACO_BENCH_JSON=<dir> is the fallback)");
    addUint("threads", "n",
            "worker threads for parallel work "
            "(env DRACO_BENCH_THREADS; default: hardware concurrency)");
    addString("trace-out", "path",
              "record an event trace and export it to <path> "
              "(.json: Perfetto, otherwise .devt; env DRACO_TRACE_OUT)");
    addUint("sample-every", "cycles",
            "telemetry sampling interval in cycles "
            "(requires --trace-out; env DRACO_TRACE_SAMPLE_EVERY)");
}

bool
CliFlags::fail(const std::string &message)
{
    if (_error.empty())
        _error = message;
    return false;
}

bool
CliFlags::applyValue(const std::string &name, Spec &spec,
                     const std::string &value, bool lenient)
{
    if (spec.kind == Kind::Uint) {
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        bool ok = end && *end == '\0' && !value.empty() && errno == 0 &&
                  value[0] != '-' && v > 0;
        if (!ok) {
            if (lenient) {
                warn("ignoring invalid --%s '%s'", name.c_str(),
                     value.c_str());
                return true;
            }
            return fail("invalid value for --" + name + ": '" + value +
                        "'");
        }
        spec.uintVal = v;
    } else {
        spec.strValue = value;
    }
    spec.given = true;
    return true;
}

bool
CliFlags::parse(int argc, char **argv, bool lenient)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            _helpRequested = true;
            return true;
        }
        if (arg.rfind("--", 0) != 0 || arg == "--") {
            _extras.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool hasValue = false;
        if (size_t eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            hasValue = true;
        }

        auto it = _specs.find(name);
        if (it == _specs.end()) {
            if (lenient) {
                _extras.push_back(arg);
                continue;
            }
            return fail("unknown flag --" + name);
        }
        Spec &spec = it->second;

        if (spec.kind == Kind::Flag) {
            if (hasValue)
                return fail("--" + name + " takes no value");
            spec.boolValue = true;
            spec.given = true;
            continue;
        }
        if (!hasValue) {
            if (i + 1 >= argc)
                return fail("--" + name + " requires a value");
            value = argv[++i];
        }
        if (!applyValue(name, spec, value, lenient))
            return false;
    }
    return true;
}

std::string
CliFlags::helpText() const
{
    std::ostringstream out;
    out << "usage: " << _program << " [options]";
    if (!_synopsis.empty())
        out << "\n\n" << _synopsis;
    out << "\n\noptions:\n";

    // Two-column layout: `--name <value>` left, help right, wrapped by
    // the caller's terminal (help strings are kept short).
    size_t width = 0;
    std::vector<std::pair<std::string, const Spec *>> rows;
    for (const std::string &name : _order) {
        const Spec &spec = _specs.at(name);
        std::string left = "--" + name;
        if (spec.kind != Kind::Flag)
            left += " <" + spec.valueName + ">";
        width = std::max(width, left.size());
        rows.emplace_back(std::move(left), &spec);
    }
    rows.emplace_back("--help", nullptr);
    width = std::max(width, std::string("--help").size());

    for (const auto &[left, spec] : rows) {
        out << "  " << left << std::string(width - left.size() + 2, ' ');
        out << (spec ? spec->help : "show this help") << "\n";
    }
    return out.str();
}

const CliFlags::Spec &
CliFlags::lookup(const std::string &name, Kind kind) const
{
    auto it = _specs.find(name);
    if (it == _specs.end())
        panic("CliFlags: unregistered flag --%s", name.c_str());
    if (it->second.kind != kind)
        panic("CliFlags: --%s accessed as the wrong kind",
              name.c_str());
    return it->second;
}

bool
CliFlags::given(const std::string &name) const
{
    auto it = _specs.find(name);
    if (it == _specs.end())
        panic("CliFlags: unregistered flag --%s", name.c_str());
    return it->second.given;
}

bool
CliFlags::flag(const std::string &name) const
{
    return lookup(name, Kind::Flag).boolValue;
}

const std::string &
CliFlags::str(const std::string &name) const
{
    return lookup(name, Kind::String).strValue;
}

uint64_t
CliFlags::uintValue(const std::string &name) const
{
    return lookup(name, Kind::Uint).uintVal;
}

} // namespace draco::support
