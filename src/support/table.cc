#include "support/table.hh"

#include <algorithm>
#include <cstdarg>

#include "support/logging.hh"

namespace draco {

TextTable::TextTable(std::string title)
    : _title(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!_header.empty() && row.size() != _header.size())
        fatal("TextTable '%s': row width %zu != header width %zu",
              _title.c_str(), row.size(), _header.size());
    _rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

void
TextTable::print(std::FILE *out) const
{
    size_t cols = _header.size();
    for (const auto &r : _rows)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!_header.empty())
        widen(_header);
    for (const auto &r : _rows)
        widen(r);

    std::fprintf(out, "== %s ==\n", _title.c_str());
    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            std::fprintf(out, "%-*s%s", static_cast<int>(width[i]),
                         row[i].c_str(), i + 1 == row.size() ? "" : "  ");
        std::fputc('\n', out);
    };
    if (!_header.empty()) {
        printRow(_header);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        for (size_t i = 0; i + 2 < total; ++i)
            std::fputc('-', out);
        std::fputc('\n', out);
    }
    for (const auto &r : _rows)
        printRow(r);
    std::fputc('\n', out);
}

void
TextTable::printCsv(std::FILE *out) const
{
    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            std::fprintf(out, "%s%s", row[i].c_str(),
                         i + 1 == row.size() ? "" : ",");
        std::fputc('\n', out);
    };
    if (!_header.empty())
        printRow(_header);
    for (const auto &r : _rows)
        printRow(r);
}

} // namespace draco
