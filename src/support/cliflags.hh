/**
 * @file
 * Shared command-line flag parsing.
 *
 * Every binary in the repo historically hand-rolled the same
 * `--threads/--json/--trace-out/--sample-every` argv scan (copy-pasted
 * across two dozen bench mains); CliFlags centralizes it so all
 * binaries accept the same spellings (`--name value` and `--name=value`
 * both work), reject or tolerate unknown flags consistently, and print
 * a uniform `--help`. The bench harness parses leniently (unknown
 * tokens pass through untouched for the binary's own parsing); the
 * serve tools parse strictly and exit with usage on anything
 * unrecognized.
 */

#ifndef DRACO_SUPPORT_CLIFLAGS_HH
#define DRACO_SUPPORT_CLIFLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace draco::support {

/**
 * Declarative flag table plus the parsed results.
 */
class CliFlags
{
  public:
    /**
     * @param program Binary name shown in the help header.
     * @param synopsis One-line description shown under the usage line.
     */
    explicit CliFlags(std::string program, std::string synopsis = "");

    /** Register a boolean flag (present/absent, takes no value). */
    void addFlag(const std::string &name, const std::string &help);

    /** Register a string-valued flag. */
    void addString(const std::string &name, const std::string &valueName,
                   const std::string &help, std::string def = "");

    /** Register an unsigned-integer flag (value must be > 0). */
    void addUint(const std::string &name, const std::string &valueName,
                 const std::string &help, uint64_t def = 0);

    /**
     * Register the flags every bench/tool binary shares, with uniform
     * help text: `--json <path>`, `--threads <n>`, `--trace-out <path>`,
     * `--sample-every <cycles>`.
     */
    void addCommon();

    /**
     * Parse @p argv.
     *
     * Strict mode (default): an unknown `--flag`, a missing value, or a
     * malformed number is an error — parse() returns false and error()
     * describes it; bare (non-flag) tokens become positionals().
     *
     * Lenient mode: unknown tokens (flag-shaped or not) pass through to
     * extras() untouched and malformed values of *known* flags warn and
     * keep the default — the BenchReport contract, where binaries layer
     * their own parsing on the same argv.
     *
     * `--help`/`-h` stops parsing and sets helpRequested() in both
     * modes.
     *
     * @return true when parsing consumed argv without error.
     */
    bool parse(int argc, char **argv, bool lenient = false);

    /** @return true when `--help`/`-h` was seen. */
    bool helpRequested() const { return _helpRequested; }

    /** @return Description of the first parse error ("" when none). */
    const std::string &error() const { return _error; }

    /** @return The rendered help text. */
    std::string helpText() const;

    /** @return true when @p name was set on the command line. */
    bool given(const std::string &name) const;

    /** @return Boolean flag value; fatal when @p name is not a flag. */
    bool flag(const std::string &name) const;

    /** @return String value; fatal when @p name is not a string flag. */
    const std::string &str(const std::string &name) const;

    /** @return Integer value; fatal when @p name is not a uint flag. */
    uint64_t uintValue(const std::string &name) const;

    /**
     * @return Tokens not consumed by registered flags: positionals in
     *         strict mode; positionals plus unknown flags (in argv
     *         order) in lenient mode.
     */
    const std::vector<std::string> &extras() const { return _extras; }

  private:
    enum class Kind { Flag, String, Uint };

    struct Spec {
        Kind kind = Kind::Flag;
        std::string valueName;
        std::string help;
        std::string strValue;
        uint64_t uintVal = 0;
        bool boolValue = false;
        bool given = false;
    };

    const Spec &lookup(const std::string &name, Kind kind) const;
    bool applyValue(const std::string &name, Spec &spec,
                    const std::string &value, bool lenient);
    bool fail(const std::string &message);

    std::string _program;
    std::string _synopsis;
    std::map<std::string, Spec> _specs;
    std::vector<std::string> _order; ///< Registration order for help.
    std::vector<std::string> _extras;
    std::string _error;
    bool _helpRequested = false;
};

} // namespace draco::support

#endif // DRACO_SUPPORT_CLIFLAGS_HH
