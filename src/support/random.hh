/**
 * @file
 * Deterministic pseudo-random number generation and sampling helpers.
 *
 * All stochastic behaviour in the library (workload synthesis, cache
 * warm-up noise, cuckoo eviction choices) flows through Rng so that every
 * experiment is reproducible from a single seed.
 */

#ifndef DRACO_SUPPORT_RANDOM_HH
#define DRACO_SUPPORT_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace draco {

/**
 * SplitMix64 stream splitter: derive the @p stream-th child seed of
 * @p seed.
 *
 * Returns output number @p stream of a SplitMix64 generator seeded with
 * @p seed, in O(1). Children of one seed are the outputs of a single
 * high-quality PRNG stream, so they are statistically independent and
 * collision-free across @p stream values — unlike additive arithmetic
 * (`seed + i * k`, `seed ^ tag`), whose children from nearby parent
 * seeds collide (e.g. `(s, i=131)` and `(s+131, i=0)` under `+ 131*i`).
 *
 * Derivations chain: `splitSeed(splitSeed(s, a), b)` names the stream
 * (a, b) of s.
 */
uint64_t splitSeed(uint64_t seed, uint64_t stream);

/**
 * Stream splitter keyed by a label: hashes @p label (FNV-1a) into the
 * stream index, so heterogeneous components ("rob", a workload name)
 * can name child streams without a manual numbering scheme.
 */
uint64_t splitSeed(uint64_t seed, std::string_view label);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Small, fast, and high quality; state is seeded via splitmix64 so any
 * 64-bit seed (including 0) produces a well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return The next raw 64-bit random value. */
    uint64_t next();

    /** @return A uniform value in [0, bound). bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** @return A uniform double in [0, 1). */
    double nextDouble();

    /** @return A uniform value in [lo, hi] inclusive. */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /** @return true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Fork an independent child generator.
     *
     * The child stream is decorrelated from the parent's future output,
     * letting subsystems draw randomness without perturbing each other.
     */
    Rng fork();

  private:
    uint64_t _state[4];
};

/**
 * Sample from a fixed discrete distribution in O(1) via the alias method.
 */
class AliasSampler
{
  public:
    /**
     * Build the alias tables.
     *
     * @param weights Non-negative weights; need not be normalized. At
     *                least one weight must be positive.
     */
    explicit AliasSampler(const std::vector<double> &weights);

    /** Draw an index distributed according to the weights. */
    size_t sample(Rng &rng) const;

    /** @return Number of categories. */
    size_t size() const { return _prob.size(); }

  private:
    std::vector<double> _prob;
    std::vector<uint32_t> _alias;
};

/**
 * Zipf(s) sampler over ranks 1..n (returned 0-based), using the alias
 * method so sampling is O(1) regardless of n.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (> 0).
     * @param s Skew exponent; 0 degenerates to uniform.
     */
    ZipfSampler(size_t n, double s);

    /** Draw a 0-based rank (0 is the most popular). */
    size_t sample(Rng &rng) const { return _alias.sample(rng); }

    /** @return Number of items. */
    size_t size() const { return _alias.size(); }

  private:
    static std::vector<double> makeWeights(size_t n, double s);

    AliasSampler _alias;
};

} // namespace draco

#endif // DRACO_SUPPORT_RANDOM_HH
