/**
 * @file
 * Statistics primitives used by the workload characterization and the
 * benchmark harnesses: running summaries, histograms, reuse-distance
 * tracking, and quantile extraction.
 */

#ifndef DRACO_SUPPORT_STATS_HH
#define DRACO_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace draco {

/**
 * Streaming summary of a scalar series: count, mean, min, max, variance
 * (Welford), and geometric mean support for strictly-positive series.
 */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** @return Number of samples added. */
    uint64_t count() const { return _n; }

    /** @return Arithmetic mean (0 when empty). */
    double mean() const { return _n ? _mean : 0.0; }

    /** @return Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** @return Standard deviation. */
    double stddev() const;

    /** @return Minimum sample (0 when empty). */
    double min() const { return _n ? _min : 0.0; }

    /** @return Maximum sample (0 when empty). */
    double max() const { return _n ? _max : 0.0; }

    /** @return Sum of all samples. */
    double sum() const { return _sum; }

    /**
     * @return Geometric mean; only meaningful if every sample was > 0.
     */
    double geomean() const;

    /**
     * Fold @p other into this summary, as if every sample added to
     * @p other had been added here (parallel Welford combination).
     */
    void merge(const RunningStat &other);

  private:
    uint64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _sum = 0.0;
    double _logSum = 0.0;
    bool _allPositive = true;
};

/**
 * Fixed-bucket histogram over [lo, hi) with out-of-range counters.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the tracked range.
     * @param hi Exclusive upper bound; must be > lo.
     * @param buckets Number of equal-width buckets (> 0).
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** @return Count in bucket i. */
    uint64_t bucketCount(size_t i) const { return _counts.at(i); }

    /** @return Inclusive lower edge of bucket i. */
    double bucketLo(size_t i) const;

    /** @return Inclusive lower bound of the tracked range. */
    double lo() const { return _lo; }

    /** @return Exclusive upper bound of the tracked range. */
    double hi() const { return _hi; }

    /** @return Number of buckets. */
    size_t buckets() const { return _counts.size(); }

    /** @return Samples below the range. */
    uint64_t underflow() const { return _under; }

    /** @return Samples at or above the range. */
    uint64_t overflow() const { return _over; }

    /** @return Total samples recorded, including out-of-range. */
    uint64_t total() const { return _total; }

    /**
     * Add @p other's counts into this histogram; fatal unless both
     * share the same range and bucket count.
     */
    void merge(const Histogram &other);

  private:
    double _lo;
    double _hi;
    std::vector<uint64_t> _counts;
    uint64_t _under = 0;
    uint64_t _over = 0;
    uint64_t _total = 0;
};

/**
 * Exact quantiles over a retained sample vector.
 *
 * Retains all samples; intended for the bench harnesses where series are
 * at most a few million entries.
 */
class QuantileSketch
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        _xs.push_back(x);
        _sorted = false;
    }

    /**
     * @param q Quantile in [0,1].
     * @return The q-quantile by linear interpolation; 0 when empty.
     */
    double quantile(double q) const;

    /** @return Number of samples. */
    size_t count() const { return _xs.size(); }

    /** Append all of @p other's samples. */
    void merge(const QuantileSketch &other);

  private:
    mutable std::vector<double> _xs;
    mutable bool _sorted = false;
};

/**
 * Average reuse distance per key.
 *
 * The reuse distance of an access is the number of *other* accesses since
 * the previous access with the same key — the metric annotated atop the
 * bars of Figure 3 of the paper.
 */
class ReuseDistanceTracker
{
  public:
    /** Record an access to @p key at the next logical timestamp. */
    void access(uint64_t key);

    /** @return Mean reuse distance of @p key (0 if never reused). */
    double meanDistance(uint64_t key) const;

    /** @return Mean reuse distance across all reuses of all keys. */
    double overallMeanDistance() const;

    /** @return Total accesses recorded. */
    uint64_t accesses() const { return _clock; }

  private:
    struct PerKey {
        uint64_t lastTime = 0;
        uint64_t reuses = 0;
        double distanceSum = 0.0;
        bool seen = false;
    };

    std::unordered_map<uint64_t, PerKey> _keys;
    uint64_t _clock = 0;
};

/**
 * Frequency counter keyed by an integer id, with sorted extraction.
 */
class FrequencyCounter
{
  public:
    /** Count one occurrence of @p key. */
    void add(uint64_t key) { ++_counts[key]; ++_total; }

    /** @return Occurrences of @p key. */
    uint64_t count(uint64_t key) const;

    /** @return Total occurrences across keys. */
    uint64_t total() const { return _total; }

    /** @return Number of distinct keys. */
    size_t distinct() const { return _counts.size(); }

    /** @return (key, count) pairs sorted by descending count. */
    std::vector<std::pair<uint64_t, uint64_t>> sortedByCount() const;

  private:
    std::map<uint64_t, uint64_t> _counts;
    uint64_t _total = 0;
};

} // namespace draco

#endif // DRACO_SUPPORT_STATS_HH
