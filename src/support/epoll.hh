/**
 * @file
 * Thin RAII wrappers over the Linux readiness primitives the serving
 * frontend builds on: an epoll set, an eventfd wakeup, and the fd
 * bookkeeping helpers (non-blocking mode, RLIMIT_NOFILE raising) that
 * every event-driven component needs. The wrappers add nothing beyond
 * ownership and EINTR handling — callers keep full control of event
 * masks and dispatch.
 */

#ifndef DRACO_SUPPORT_EPOLL_HH
#define DRACO_SUPPORT_EPOLL_HH

#include <cstdint>
#include <vector>

#include <sys/epoll.h>

namespace draco::support {

/** Put @p fd in non-blocking mode. @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Raise the process soft RLIMIT_NOFILE to at least @p atLeast
 * (clamped to the hard limit).
 *
 * @return The resulting soft limit (which may still be below
 *         @p atLeast when the hard limit is lower).
 */
uint64_t raiseFdLimit(uint64_t atLeast);

/**
 * Owning wrapper around an eventfd used as a cross-thread wakeup: any
 * thread may signal(), the owning event loop registers fd() for
 * EPOLLIN and drain()s on wakeup. Signals coalesce (the counter is
 * drained whole), so N signals cost at most N syscalls and one wakeup.
 */
class EventFd
{
  public:
    /** Creates the eventfd (non-blocking). Aborts on failure. */
    EventFd();
    ~EventFd();

    EventFd(const EventFd &) = delete;
    EventFd &operator=(const EventFd &) = delete;

    int fd() const { return _fd; }

    /** Wake the owner; safe from any thread and from signal context. */
    void signal();

    /** Consume all pending signals (owner side). */
    void drain();

  private:
    int _fd = -1;
};

/**
 * Owning wrapper around an epoll instance.
 *
 * Registration carries a caller-owned cookie pointer returned in
 * `epoll_event::data.ptr`; the set never interprets it. All methods
 * are owner-thread-only except where epoll itself is thread-safe
 * (EPOLL_CTL_* from other threads is not used here).
 */
class Epoll
{
  public:
    /** Creates the epoll instance. Aborts on failure. */
    Epoll();
    ~Epoll();

    Epoll(const Epoll &) = delete;
    Epoll &operator=(const Epoll &) = delete;

    /** Register @p fd for @p events with @p cookie. @return false on error. */
    bool add(int fd, uint32_t events, void *cookie);

    /** Change @p fd's event mask / cookie. @return false on error. */
    bool mod(int fd, uint32_t events, void *cookie);

    /** Deregister @p fd. @return false on error. */
    bool del(int fd);

    /**
     * Wait for events, retrying EINTR.
     *
     * @param events Filled with ready events (resized to the result).
     * @param timeoutMs -1 blocks indefinitely.
     * @return Number of ready events (0 on timeout).
     */
    int wait(std::vector<epoll_event> &events, int timeoutMs);

  private:
    int _fd = -1;
};

} // namespace draco::support

#endif // DRACO_SUPPORT_EPOLL_HH
