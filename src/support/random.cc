#include "support/random.hh"

#include <cmath>

#include "support/logging.hh"

namespace draco {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
splitSeed(uint64_t seed, uint64_t stream)
{
    // SplitMix64's i-th output from state `seed` is
    // mix(seed + (i + 1) * gamma); jump straight to it.
    uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
splitSeed(uint64_t seed, std::string_view label)
{
    uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a 64-bit
    for (char c : label) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return splitSeed(seed, hash);
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : _state)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
{
    const size_t n = weights.size();
    if (n == 0)
        fatal("AliasSampler: empty weight vector");

    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w))
            fatal("AliasSampler: weights must be finite and non-negative");
        total += w;
    }
    if (total <= 0.0)
        fatal("AliasSampler: at least one weight must be positive");

    _prob.assign(n, 0.0);
    _alias.assign(n, 0);

    // Standard Vose alias construction.
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    for (size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * n / total;
        (scaled[i] < 1.0 ? small : large).push_back(
            static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        uint32_t s = small.back();
        small.pop_back();
        uint32_t l = large.back();
        large.pop_back();
        _prob[s] = scaled[s];
        _alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (uint32_t i : large)
        _prob[i] = 1.0;
    for (uint32_t i : small)
        _prob[i] = 1.0;
}

size_t
AliasSampler::sample(Rng &rng) const
{
    size_t i = rng.nextBelow(_prob.size());
    return rng.nextDouble() < _prob[i] ? i : _alias[i];
}

std::vector<double>
ZipfSampler::makeWeights(size_t n, double s)
{
    if (n == 0)
        fatal("ZipfSampler: n must be > 0");
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i)
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    return w;
}

ZipfSampler::ZipfSampler(size_t n, double s)
    : _alias(makeWeights(n, s))
{
}

} // namespace draco
