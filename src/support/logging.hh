/**
 * @file
 * Status and error reporting utilities.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly with an error code;
 * panic() is for internal invariant violations and aborts. inform() and
 * warn() report status without stopping the program.
 */

#ifndef DRACO_SUPPORT_LOGGING_HH
#define DRACO_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace draco {

/** Severity levels for log messages. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global minimum level below which messages are suppressed.
 *
 * @param level New minimum level.
 */
void setLogLevel(LogLevel level);

/** @return The current minimum log level. */
LogLevel logLevel();

/** Emit an informational message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a warning message (printf-style). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (printf-style), suppressed unless Debug level. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error and exit(1).
 *
 * Use for bad configuration or invalid arguments — situations that are the
 * caller's fault rather than a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 *
 * Use for conditions that should never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace draco

#endif // DRACO_SUPPORT_LOGGING_HH
