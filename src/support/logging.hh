/**
 * @file
 * Status and error reporting utilities.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly with an error code;
 * panic() is for internal invariant violations and aborts. inform() and
 * warn() report status without stopping the program.
 */

#ifndef DRACO_SUPPORT_LOGGING_HH
#define DRACO_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace draco {

/** Severity levels for log messages. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global minimum level below which messages are suppressed.
 *
 * The startup default honors the `DRACO_LOG_LEVEL` environment variable
 * ("debug", "info", "warn", "error" — case-insensitive; unknown values
 * are ignored with a warning) and falls back to Info.
 *
 * @param level New minimum level.
 */
void setLogLevel(LogLevel level);

/** @return The current minimum log level. */
LogLevel logLevel();

/**
 * Parse a `DRACO_LOG_LEVEL`-style spelling of a level.
 *
 * @param text Level name, case-insensitive; null is rejected (so the
 *        result of getenv() can be passed straight through).
 * @param out Receives the level on success.
 * @return false when @p text names no level.
 */
bool parseLogLevel(const char *text, LogLevel &out);

/**
 * Set this thread's log context — a short tag naming what the thread is
 * simulating right now (a trace track, a sweep cell). While non-empty
 * it is prefixed to Debug and Warn messages as `[context]`, so messages
 * from parallel cells are attributable.
 *
 * @param context New context ("" clears it).
 */
void setLogContext(std::string context);

/** @return This thread's current log context ("" when unset). */
const std::string &logContext();

/** RAII guard: sets the thread's log context, restores it on exit. */
class ScopedLogContext
{
  public:
    explicit ScopedLogContext(std::string context)
        : _saved(logContext())
    {
        setLogContext(std::move(context));
    }

    ~ScopedLogContext() { setLogContext(std::move(_saved)); }

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;

  private:
    std::string _saved;
};

/** Emit an informational message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a warning message (printf-style). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (printf-style), suppressed unless Debug level. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Emit a warning at most once per @p intervalMs for a given @p key.
 *
 * Hot paths that can warn per-request (queue overflow, output
 * backpressure) use this so an overloaded server logs a heartbeat
 * instead of flooding stderr. Calls inside the suppression window are
 * counted; the next emitted message appends "(N similar suppressed)".
 * An interval of 0 never suppresses.
 *
 * @param key Suppression bucket; unrelated warn sites must use
 *        distinct keys.
 * @param intervalMs Minimum milliseconds between emissions per key.
 * @return true when the message was emitted, false when suppressed
 *         (including when the Warn level itself is disabled).
 */
bool logWarnEvery(const std::string &key, uint64_t intervalMs,
                  const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Report an unrecoverable user-caused error and exit(1).
 *
 * Use for bad configuration or invalid arguments — situations that are the
 * caller's fault rather than a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 *
 * Use for conditions that should never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace draco

#endif // DRACO_SUPPORT_LOGGING_HH
