/**
 * @file
 * Plain-text and CSV table rendering for the benchmark harnesses.
 *
 * Every figure/table reproduction prints its series through TextTable so
 * output formats stay uniform across the bench binaries.
 */

#ifndef DRACO_SUPPORT_TABLE_HH
#define DRACO_SUPPORT_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace draco {

/**
 * A simple column-aligned text table with an optional CSV dump.
 */
class TextTable
{
  public:
    /** @param title Heading printed above the table. */
    explicit TextTable(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header width if one was set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p decimals decimal places. */
    static std::string num(double v, int decimals = 3);

    /** Render to @p out (defaults to stdout). */
    void print(std::FILE *out = stdout) const;

    /** Render as CSV to @p out. */
    void printCsv(std::FILE *out) const;

    /** @return Number of data rows. */
    size_t rows() const { return _rows.size(); }

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace draco

#endif // DRACO_SUPPORT_TABLE_HH
