#include "support/metrics.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/logging.hh"

namespace draco {

namespace {

bool
validSegmentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
        c == '_' || c == '-';
}

void
validateName(const std::string &name)
{
    if (name.empty())
        fatal("MetricRegistry: empty metric name");
    size_t segLen = 0;
    for (char c : name) {
        if (c == '.') {
            if (segLen == 0)
                fatal("MetricRegistry: empty segment in '%s'",
                      name.c_str());
            segLen = 0;
        } else if (validSegmentChar(c)) {
            ++segLen;
        } else {
            fatal("MetricRegistry: invalid character '%c' in metric "
                  "name '%s' (want [a-z0-9_-] segments)",
                  c, name.c_str());
        }
    }
    if (segLen == 0)
        fatal("MetricRegistry: name '%s' ends with '.'", name.c_str());
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
}

void
appendJsonCounter(std::string &out, uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace

void
MetricRegistry::registerName(const std::string &name)
{
    validateName(name);
    if (_groups.count(name))
        fatal("MetricRegistry: '%s' is already a metric group",
              name.c_str());
    for (size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        std::string prefix = name.substr(0, dot);
        if (_metrics.count(prefix))
            fatal("MetricRegistry: group prefix '%s' of '%s' is "
                  "already a leaf metric",
                  prefix.c_str(), name.c_str());
        _groups.insert(std::move(prefix));
    }
}

MetricRegistry::Metric &
MetricRegistry::get(const std::string &name, Metric::Kind kind)
{
    auto it = _metrics.find(name);
    if (it == _metrics.end()) {
        registerName(name);
        it = _metrics.emplace(name, Metric{}).first;
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        fatal("MetricRegistry: metric '%s' re-registered with a "
              "different kind",
              name.c_str());
    }
    return it->second;
}

const MetricRegistry::Metric &
MetricRegistry::getExisting(const std::string &name,
                            Metric::Kind kind) const
{
    auto it = _metrics.find(name);
    if (it == _metrics.end())
        fatal("MetricRegistry: no metric named '%s'", name.c_str());
    if (it->second.kind != kind)
        fatal("MetricRegistry: metric '%s' has a different kind",
              name.c_str());
    return it->second;
}

uint64_t &
MetricRegistry::counter(const std::string &name)
{
    return get(name, Metric::Kind::Counter).counter;
}

double &
MetricRegistry::gauge(const std::string &name)
{
    return get(name, Metric::Kind::Gauge).gauge;
}

RunningStat &
MetricRegistry::runningStat(const std::string &name)
{
    return get(name, Metric::Kind::Stat).stat;
}

Histogram &
MetricRegistry::histogram(const std::string &name, double lo, double hi,
                          size_t buckets)
{
    Metric &m = get(name, Metric::Kind::Hist);
    if (!m.hist) {
        m.hist = std::make_unique<Histogram>(lo, hi, buckets);
    } else if (m.hist->lo() != lo || m.hist->hi() != hi ||
               m.hist->buckets() != buckets) {
        panic("metric '%s': histogram geometry mismatch: created as "
              "[%g, %g) x %zu, requested [%g, %g) x %zu",
              name.c_str(), m.hist->lo(), m.hist->hi(),
              m.hist->buckets(), lo, hi, buckets);
    }
    return *m.hist;
}

QuantileSketch &
MetricRegistry::quantileSketch(const std::string &name)
{
    return get(name, Metric::Kind::Sketch).sketch;
}

void
MetricRegistry::setCounter(const std::string &name, uint64_t value)
{
    counter(name) = value;
}

void
MetricRegistry::setGauge(const std::string &name, double value)
{
    gauge(name) = value;
}

void
MetricRegistry::setText(const std::string &name, const std::string &value)
{
    get(name, Metric::Kind::Text).text = value;
}

void
MetricRegistry::setStat(const std::string &name, const RunningStat &stat)
{
    get(name, Metric::Kind::Stat).stat = stat;
}

void
MetricRegistry::setQuantiles(const std::string &name,
                             const QuantileSketch &sketch)
{
    get(name, Metric::Kind::Sketch).sketch = sketch;
}

void
MetricRegistry::setHistogram(const std::string &name,
                             const Histogram &hist)
{
    Metric &m = get(name, Metric::Kind::Hist);
    if (m.hist && (m.hist->lo() != hist.lo() ||
                   m.hist->hi() != hist.hi() ||
                   m.hist->buckets() != hist.buckets())) {
        panic("metric '%s': histogram geometry mismatch: created as "
              "[%g, %g) x %zu, assigned [%g, %g) x %zu",
              name.c_str(), m.hist->lo(), m.hist->hi(),
              m.hist->buckets(), hist.lo(), hist.hi(), hist.buckets());
    }
    m.hist = std::make_unique<Histogram>(hist);
}

void
MetricRegistry::visit(
    const std::function<void(const MetricView &)> &fn) const
{
    for (const auto &entry : _metrics) {
        const Metric &m = entry.second;
        MetricKind kind = MetricKind::Counter;
        switch (m.kind) {
          case Metric::Kind::Counter: kind = MetricKind::Counter; break;
          case Metric::Kind::Gauge: kind = MetricKind::Gauge; break;
          case Metric::Kind::Text: kind = MetricKind::Text; break;
          case Metric::Kind::Stat: kind = MetricKind::Stat; break;
          case Metric::Kind::Hist: kind = MetricKind::Hist; break;
          case Metric::Kind::Sketch: kind = MetricKind::Sketch; break;
        }
        MetricView view{entry.first, kind,     m.counter,
                        m.gauge,     &m.text,  &m.stat,
                        m.hist.get(), &m.sketch};
        fn(view);
    }
}

bool
MetricRegistry::has(const std::string &name) const
{
    return _metrics.count(name) > 0;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    return getExisting(name, Metric::Kind::Counter).counter;
}

double
MetricRegistry::gaugeValue(const std::string &name) const
{
    return getExisting(name, Metric::Kind::Gauge).gauge;
}

const std::string &
MetricRegistry::textValue(const std::string &name) const
{
    return getExisting(name, Metric::Kind::Text).text;
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_metrics.size());
    for (const auto &[name, metric] : _metrics)
        out.push_back(name);
    return out;
}

void
MetricRegistry::clear()
{
    _metrics.clear();
    _groups.clear();
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &[name, theirs] : other._metrics) {
        auto it = _metrics.find(name);
        if (it == _metrics.end()) {
            registerName(name);
            Metric copy;
            copy.kind = theirs.kind;
            copy.counter = theirs.counter;
            copy.gauge = theirs.gauge;
            copy.text = theirs.text;
            copy.stat = theirs.stat;
            if (theirs.hist)
                copy.hist = std::make_unique<Histogram>(*theirs.hist);
            copy.sketch = theirs.sketch;
            _metrics.emplace(name, std::move(copy));
            continue;
        }
        Metric &ours = it->second;
        if (ours.kind != theirs.kind)
            fatal("MetricRegistry::merge: metric '%s' has a different "
                  "kind in the merged registry",
                  name.c_str());
        switch (ours.kind) {
          case Metric::Kind::Counter:
            ours.counter += theirs.counter;
            break;
          case Metric::Kind::Stat:
            ours.stat.merge(theirs.stat);
            break;
          case Metric::Kind::Hist:
            ours.hist->merge(*theirs.hist);
            break;
          case Metric::Kind::Sketch:
            ours.sketch.merge(theirs.sketch);
            break;
          case Metric::Kind::Gauge:
          case Metric::Kind::Text:
            fatal("MetricRegistry::merge: %s '%s' exists in both "
                  "registries; point values cannot merge — use "
                  "distinct names per shard",
                  ours.kind == Metric::Kind::Gauge ? "gauge" : "text",
                  name.c_str());
        }
    }
}

std::string
MetricRegistry::toJson(bool pretty) const
{
    // Leaves are sorted by full dotted name, which keeps every group's
    // members contiguous; serialize by recursing over name ranges.
    std::vector<const std::map<std::string, Metric>::value_type *> items;
    items.reserve(_metrics.size());
    for (const auto &kv : _metrics)
        items.push_back(&kv);

    std::string out;
    const std::string nl = pretty ? "\n" : "";

    auto indentOf = [&](size_t depth) {
        return pretty ? std::string(2 * depth, ' ') : std::string();
    };

    auto appendValue = [&](std::string &dst, const Metric &m,
                           size_t depth) {
        auto field = [&](std::string &d, const char *key, bool first) {
            if (!first)
                d += ',';
            d += nl + indentOf(depth + 1);
            d += '"';
            d += key;
            d += pretty ? "\": " : "\":";
        };
        switch (m.kind) {
          case Metric::Kind::Counter:
            appendJsonCounter(dst, m.counter);
            break;
          case Metric::Kind::Gauge:
            appendJsonDouble(dst, m.gauge);
            break;
          case Metric::Kind::Text:
            appendJsonString(dst, m.text);
            break;
          case Metric::Kind::Stat:
            dst += '{';
            field(dst, "count", true);
            appendJsonCounter(dst, m.stat.count());
            field(dst, "mean", false);
            appendJsonDouble(dst, m.stat.mean());
            field(dst, "stddev", false);
            appendJsonDouble(dst, m.stat.stddev());
            field(dst, "min", false);
            appendJsonDouble(dst, m.stat.min());
            field(dst, "max", false);
            appendJsonDouble(dst, m.stat.max());
            field(dst, "sum", false);
            appendJsonDouble(dst, m.stat.sum());
            dst += nl + indentOf(depth) + "}";
            break;
          case Metric::Kind::Hist: {
            dst += '{';
            field(dst, "lo", true);
            appendJsonDouble(dst, m.hist->bucketLo(0));
            field(dst, "buckets", false);
            dst += '[';
            for (size_t i = 0; i < m.hist->buckets(); ++i) {
                if (i)
                    dst += ',';
                appendJsonCounter(dst, m.hist->bucketCount(i));
            }
            dst += ']';
            field(dst, "underflow", false);
            appendJsonCounter(dst, m.hist->underflow());
            field(dst, "overflow", false);
            appendJsonCounter(dst, m.hist->overflow());
            field(dst, "total", false);
            appendJsonCounter(dst, m.hist->total());
            dst += nl + indentOf(depth) + "}";
            break;
          }
          case Metric::Kind::Sketch: {
            dst += '{';
            field(dst, "count", true);
            appendJsonCounter(dst, m.sketch.count());
            static const std::pair<const char *, double> qs[] = {
                {"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95},
                {"p99", 0.99}, {"max", 1.00},
            };
            for (const auto &[label, q] : qs) {
                field(dst, label, false);
                appendJsonDouble(dst, m.sketch.quantile(q));
            }
            dst += nl + indentOf(depth) + "}";
            break;
          }
        }
    };

    // Emit the half-open item range [lo, hi), whose names all share the
    // group prefix of length prefixLen, as one JSON object.
    auto emitGroup = [&](auto &&self, size_t lo, size_t hi,
                         size_t prefixLen, size_t depth) -> void {
        out += '{';
        bool first = true;
        size_t i = lo;
        while (i < hi) {
            const std::string &name = items[i]->first;
            size_t dot = name.find('.', prefixLen);
            if (!first)
                out += ',';
            first = false;
            out += nl + indentOf(depth + 1);
            if (dot == std::string::npos) {
                appendJsonString(out, name.substr(prefixLen));
                out += pretty ? ": " : ":";
                appendValue(out, items[i]->second, depth + 1);
                ++i;
            } else {
                // All names beginning with this "segment." are
                // contiguous; find the extent and recurse.
                std::string groupPrefix = name.substr(0, dot + 1);
                size_t j = i + 1;
                while (j < hi &&
                       items[j]->first.compare(0, groupPrefix.size(),
                                               groupPrefix) == 0)
                    ++j;
                appendJsonString(out, name.substr(prefixLen,
                                                  dot - prefixLen));
                out += pretty ? ": " : ":";
                self(self, i, j, dot + 1, depth + 1);
                i = j;
            }
        }
        out += nl + indentOf(depth) + "}";
    };

    emitGroup(emitGroup, 0, items.size(), 0, 0);
    out += nl;
    return out;
}

void
MetricRegistry::writeJsonFile(const std::string &path) const
{
    if (!tryWriteJsonFile(path))
        fatal("MetricRegistry: cannot write '%s'", path.c_str());
}

bool
MetricRegistry::tryWriteJsonFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << toJson();
    file.flush();
    return file.good();
}

std::string
MetricRegistry::sanitize(const std::string &label)
{
    std::string out;
    bool pendingSep = false;
    for (char raw : label) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(raw)));
        if (validSegmentChar(c)) {
            if (pendingSep && !out.empty())
                out += '_';
            pendingSep = false;
            out += c;
        } else {
            pendingSep = true;
        }
    }
    return out.empty() ? "_" : out;
}

std::string
MetricRegistry::join(const std::string &prefix, const std::string &name)
{
    return prefix.empty() ? name : prefix + "." + name;
}

} // namespace draco
