/**
 * @file
 * Shared little-endian binary encoding primitives.
 *
 * The `.dtrc` trace format, the `.devt` event-trace format, and the
 * dracod wire protocol all encode the same way: fixed-width
 * little-endian integers for headers and indices, LEB128 varints for
 * counts and ids, zigzag-mapped signed deltas for values that cluster
 * around a running predecessor, and varint-length-prefixed byte strings
 * for names. Keeping the primitives here guarantees the formats stay
 * bit-compatible with each other's framing and that a fix to bounds
 * checking lands in every decoder at once.
 */

#ifndef DRACO_SUPPORT_BINIO_HH
#define DRACO_SUPPORT_BINIO_HH

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace draco::binio {

/** Append @p v little-endian as 4 bytes. */
inline void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Append @p v little-endian as 8 bytes. */
inline void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Append one byte. */
inline void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

/** Append @p v little-endian as 2 bytes. */
inline void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xff));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

/** Append @p v little-endian as 4 bytes. */
inline void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

/** Append @p v little-endian as 8 bytes. */
inline void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

/** Append @p v as a LEB128 unsigned varint. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Append the zigzag-mapped signed delta @p now - @p prev as a varint. */
inline void
putDelta(std::vector<uint8_t> &out, uint64_t now, uint64_t prev)
{
    auto delta = static_cast<int64_t>(now - prev);
    auto zigzag = static_cast<uint64_t>((delta << 1) ^ (delta >> 63));
    putVarint(out, zigzag);
}

/**
 * Decode one varint from @p buf at @p pos (advanced past it).
 *
 * @return false when the buffer ends mid-varint or the value would
 *         exceed 64 bits.
 */
inline bool
takeVarint(const std::vector<uint8_t> &buf, size_t &pos, uint64_t &out)
{
    out = 0;
    unsigned shift = 0;
    while (pos < buf.size() && shift < 64) {
        uint8_t byte = buf[pos++];
        out |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
    }
    return false;
}

/** Decode one byte from @p buf at @p pos (advanced past it). */
inline bool
takeU8(const std::vector<uint8_t> &buf, size_t &pos, uint8_t &out)
{
    if (pos >= buf.size())
        return false;
    out = buf[pos++];
    return true;
}

/** Decode a 2-byte little-endian integer from @p buf at @p pos. */
inline bool
takeU16(const std::vector<uint8_t> &buf, size_t &pos, uint16_t &out)
{
    if (pos + 2 > buf.size())
        return false;
    out = static_cast<uint16_t>(buf[pos] |
                                (static_cast<uint16_t>(buf[pos + 1])
                                 << 8));
    pos += 2;
    return true;
}

/** Decode a 4-byte little-endian integer from @p buf at @p pos. */
inline bool
takeU32(const std::vector<uint8_t> &buf, size_t &pos, uint32_t &out)
{
    if (pos + 4 > buf.size())
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= static_cast<uint32_t>(buf[pos + i]) << (8 * i);
    pos += 4;
    return true;
}

/** Decode an 8-byte little-endian integer from @p buf at @p pos. */
inline bool
takeU64(const std::vector<uint8_t> &buf, size_t &pos, uint64_t &out)
{
    if (pos + 8 > buf.size())
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<uint64_t>(buf[pos + i]) << (8 * i);
    pos += 8;
    return true;
}

/** Append @p s as a varint length followed by its bytes. */
inline void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

/**
 * Decode one length-prefixed string from @p buf at @p pos.
 *
 * @param maxLen Upper bound on the accepted length — decoders reading
 *        untrusted frames must bound names so a corrupt length byte
 *        cannot force a huge allocation.
 * @return false when the buffer ends short or the length exceeds
 *         @p maxLen.
 */
inline bool
takeString(const std::vector<uint8_t> &buf, size_t &pos,
           std::string &out, size_t maxLen = 4096)
{
    uint64_t len;
    if (!takeVarint(buf, pos, len))
        return false;
    if (len > maxLen || pos + len > buf.size())
        return false;
    out.assign(reinterpret_cast<const char *>(buf.data()) + pos,
               static_cast<size_t>(len));
    pos += static_cast<size_t>(len);
    return true;
}

/** Decode one zigzag delta and apply it to @p prev. */
inline bool
takeDelta(const std::vector<uint8_t> &buf, size_t &pos, uint64_t prev,
          uint64_t &out)
{
    uint64_t zigzag;
    if (!takeVarint(buf, pos, zigzag))
        return false;
    auto delta = static_cast<int64_t>((zigzag >> 1) ^
                                      (~(zigzag & 1) + 1));
    out = prev + static_cast<uint64_t>(delta);
    return true;
}

/** Read exactly @p len bytes; @return false on short read. */
inline bool
readExact(std::istream &in, void *out, size_t len)
{
    in.read(static_cast<char *>(out), static_cast<std::streamsize>(len));
    return static_cast<size_t>(in.gcount()) == len && !in.bad();
}

/** Read a 4-byte little-endian integer. */
inline bool
readU32(std::istream &in, uint32_t &out)
{
    uint8_t bytes[4];
    if (!readExact(in, bytes, sizeof(bytes)))
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    return true;
}

/** Read an 8-byte little-endian integer. */
inline bool
readU64(std::istream &in, uint64_t &out)
{
    uint8_t bytes[8];
    if (!readExact(in, bytes, sizeof(bytes)))
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<uint64_t>(bytes[i]) << (8 * i);
    return true;
}

} // namespace draco::binio

#endif // DRACO_SUPPORT_BINIO_HH
