#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace draco {

void
RunningStat::add(double x)
{
    if (_n == 0) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_n;
    _sum += x;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
    if (x > 0.0)
        _logSum += std::log(x);
    else
        _allPositive = false;
}

double
RunningStat::variance() const
{
    if (_n < 2)
        return 0.0;
    return _m2 / static_cast<double>(_n);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::geomean() const
{
    if (_n == 0 || !_allPositive)
        return 0.0;
    return std::exp(_logSum / static_cast<double>(_n));
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other._n == 0)
        return;
    if (_n == 0) {
        *this = other;
        return;
    }
    // Chan et al. pairwise combination of Welford accumulators.
    uint64_t n = _n + other._n;
    double delta = other._mean - _mean;
    _mean += delta * static_cast<double>(other._n) /
        static_cast<double>(n);
    _m2 += other._m2 +
        delta * delta * static_cast<double>(_n) *
            static_cast<double>(other._n) / static_cast<double>(n);
    _n = n;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
    _sum += other._sum;
    _logSum += other._logSum;
    _allPositive = _allPositive && other._allPositive;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : _lo(lo), _hi(hi), _counts(buckets, 0)
{
    if (!(hi > lo))
        fatal("Histogram: hi must be > lo");
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
}

void
Histogram::add(double x)
{
    ++_total;
    if (x < _lo) {
        ++_under;
        return;
    }
    if (x >= _hi) {
        ++_over;
        return;
    }
    double frac = (x - _lo) / (_hi - _lo);
    auto idx = static_cast<size_t>(frac * static_cast<double>(_counts.size()));
    if (idx >= _counts.size())
        idx = _counts.size() - 1;
    ++_counts[idx];
}

double
Histogram::bucketLo(size_t i) const
{
    return _lo + (_hi - _lo) * static_cast<double>(i) /
        static_cast<double>(_counts.size());
}

void
Histogram::merge(const Histogram &other)
{
    if (_lo != other._lo || _hi != other._hi ||
        _counts.size() != other._counts.size()) {
        fatal("Histogram::merge: incompatible geometry "
              "([%g,%g)x%zu vs [%g,%g)x%zu)",
              _lo, _hi, _counts.size(), other._lo, other._hi,
              other._counts.size());
    }
    for (size_t i = 0; i < _counts.size(); ++i)
        _counts[i] += other._counts[i];
    _under += other._under;
    _over += other._over;
    _total += other._total;
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    _xs.insert(_xs.end(), other._xs.begin(), other._xs.end());
    _sorted = false;
}

double
QuantileSketch::quantile(double q) const
{
    if (_xs.empty())
        return 0.0;
    if (!_sorted) {
        std::sort(_xs.begin(), _xs.end());
        _sorted = true;
    }
    q = std::clamp(q, 0.0, 1.0);
    double pos = q * static_cast<double>(_xs.size() - 1);
    size_t i = static_cast<size_t>(pos);
    double frac = pos - static_cast<double>(i);
    if (i + 1 >= _xs.size())
        return _xs.back();
    return _xs[i] * (1.0 - frac) + _xs[i + 1] * frac;
}

void
ReuseDistanceTracker::access(uint64_t key)
{
    ++_clock;
    PerKey &pk = _keys[key];
    if (pk.seen) {
        // Distance counts the other accesses strictly between the two.
        pk.distanceSum += static_cast<double>(_clock - pk.lastTime - 1);
        ++pk.reuses;
    }
    pk.seen = true;
    pk.lastTime = _clock;
}

double
ReuseDistanceTracker::meanDistance(uint64_t key) const
{
    auto it = _keys.find(key);
    if (it == _keys.end() || it->second.reuses == 0)
        return 0.0;
    return it->second.distanceSum / static_cast<double>(it->second.reuses);
}

double
ReuseDistanceTracker::overallMeanDistance() const
{
    double sum = 0.0;
    uint64_t reuses = 0;
    for (const auto &[key, pk] : _keys) {
        sum += pk.distanceSum;
        reuses += pk.reuses;
    }
    return reuses ? sum / static_cast<double>(reuses) : 0.0;
}

uint64_t
FrequencyCounter::count(uint64_t key) const
{
    auto it = _counts.find(key);
    return it == _counts.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>>
FrequencyCounter::sortedByCount() const
{
    std::vector<std::pair<uint64_t, uint64_t>> out(_counts.begin(),
                                                   _counts.end());
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return out;
}

} // namespace draco
