#include "support/epoll.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/eventfd.h>
#include <sys/resource.h>
#include <unistd.h>

#include "support/logging.hh"

namespace draco::support {

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

uint64_t
raiseFdLimit(uint64_t atLeast)
{
    rlimit limit;
    if (::getrlimit(RLIMIT_NOFILE, &limit) != 0)
        return 0;
    if (limit.rlim_cur >= atLeast)
        return limit.rlim_cur;
    rlim_t want = atLeast;
    if (limit.rlim_max != RLIM_INFINITY && want > limit.rlim_max)
        want = limit.rlim_max;
    rlimit raised = limit;
    raised.rlim_cur = want;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
        warn("raiseFdLimit: setrlimit(%llu): %s",
             static_cast<unsigned long long>(want),
             std::strerror(errno));
        return limit.rlim_cur;
    }
    return want;
}

// ---- EventFd ----

EventFd::EventFd()
{
    _fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (_fd < 0)
        panic("EventFd: eventfd(): %s", std::strerror(errno));
}

EventFd::~EventFd()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
EventFd::signal()
{
    uint64_t one = 1;
    // EAGAIN means the counter is saturated — the owner is already
    // guaranteed to wake, so the signal is not lost.
    ssize_t n;
    do {
        n = ::write(_fd, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
}

void
EventFd::drain()
{
    uint64_t count;
    ssize_t n;
    do {
        n = ::read(_fd, &count, sizeof(count));
    } while (n < 0 && errno == EINTR);
}

// ---- Epoll ----

Epoll::Epoll()
{
    _fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (_fd < 0)
        panic("Epoll: epoll_create1(): %s", std::strerror(errno));
}

Epoll::~Epoll()
{
    if (_fd >= 0)
        ::close(_fd);
}

bool
Epoll::add(int fd, uint32_t events, void *cookie)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = cookie;
    return ::epoll_ctl(_fd, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool
Epoll::mod(int fd, uint32_t events, void *cookie)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = cookie;
    return ::epoll_ctl(_fd, EPOLL_CTL_MOD, fd, &ev) == 0;
}

bool
Epoll::del(int fd)
{
    return ::epoll_ctl(_fd, EPOLL_CTL_DEL, fd, nullptr) == 0;
}

int
Epoll::wait(std::vector<epoll_event> &events, int timeoutMs)
{
    if (events.size() < 64)
        events.resize(64);
    int n;
    do {
        n = ::epoll_wait(_fd, events.data(),
                         static_cast<int>(events.size()), timeoutMs);
    } while (n < 0 && errno == EINTR);
    if (n < 0)
        panic("Epoll: epoll_wait(): %s", std::strerror(errno));
    return n;
}

} // namespace draco::support
