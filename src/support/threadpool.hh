/**
 * @file
 * Fixed-size worker pool for deterministic parallel sweeps.
 *
 * The bench harness fans independent experiment cells out across a
 * ThreadPool. Tasks must be self-contained — every task derives its own
 * seeds (support/random splitSeed()) and writes into its own result
 * slot or MetricRegistry shard — so results are identical at any worker
 * count and under any scheduling; the pool provides throughput only,
 * never semantics.
 */

#ifndef DRACO_SUPPORT_THREADPOOL_HH
#define DRACO_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace draco::support {

/**
 * Fixed set of worker threads consuming a FIFO task queue.
 */
class ThreadPool
{
  public:
    /** Worker-spawning policy. */
    enum class Spawn {
        /**
         * 0 and 1 workers both mean "no threads": parallelFor()/
         * parallelMap() run inline on the caller and submit() executes
         * eagerly. The right default for sweep fan-out, where one
         * worker buys nothing over the caller's own thread.
         */
        Auto,

        /**
         * Spawn exactly the requested worker count (minimum 1), even
         * for a single worker. Required for long-lived loop tasks — a
         * 1-shard CheckService still needs its shard loop on a real
         * thread, not inlined into (and blocking) the submitter.
         */
        Always,
    };

    /**
     * Spawn the workers.
     *
     * @param workers Worker thread count (see Spawn for how 0/1 are
     *        treated).
     * @param spawn Spawning policy; default Auto.
     */
    explicit ThreadPool(unsigned workers = hardwareConcurrency(),
                        Spawn spawn = Spawn::Auto);

    /** Calls shutdown(): drains outstanding tasks, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static unsigned hardwareConcurrency();

    /**
     * Drain and retire the pool: new submits are rejected from this
     * point on (submit()/parallelFor() throw std::runtime_error), every
     * task already queued still runs to completion, and the workers are
     * joined before shutdown() returns. Idempotent; the destructor calls
     * it. This is the shutdown path long-lived services use — they must
     * stop accepting work and drain without destroying the pool object
     * mid-flight.
     */
    void shutdown();

    /** @return true once shutdown() has begun rejecting submits. */
    bool isShutdown() const;

    /** @return Number of worker threads (0 when inline). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Enqueue one task.
     *
     * @return A future for the task's result; exceptions propagate
     *         through it. With no workers the task runs immediately on
     *         the caller.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn &>>
    {
        using R = std::invoke_result_t<Fn &>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> future = task->get_future();
        if (_workers.empty()) {
            throwIfShutdown();
            (*task)();
        } else {
            enqueue([task] { (*task)(); });
        }
        return future;
    }

    /**
     * Run fn(i) for every i in [0, n) and wait for completion.
     *
     * Indices are claimed dynamically, so per-index work may be
     * arbitrarily unbalanced; fn must therefore not depend on execution
     * order. If any invocation throws, the exception thrown by the
     * lowest index is rethrown after all work finishes.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Map i -> fn(i) over [0, n).
     *
     * @return The results in index order (the value type must be
     *         default-constructible).
     */
    template <typename Fn>
    auto
    parallelMap(size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, size_t>>
    {
        std::vector<std::invoke_result_t<Fn &, size_t>> results(n);
        parallelFor(n, [&](size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();
    void throwIfShutdown() const;

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _queue;
    mutable std::mutex _mutex;
    std::condition_variable _wake;
    bool _stop = false;
    bool _shutdown = false;
};

} // namespace draco::support

#endif // DRACO_SUPPORT_THREADPOOL_HH
