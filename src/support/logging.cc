#include "support/logging.hh"

#include <atomic>
#include <cctype>
#include <cstring>

namespace draco {

namespace {

/** @return The startup level: DRACO_LOG_LEVEL if set and valid, Info. */
LogLevel
startupLevel()
{
    const char *env = std::getenv("DRACO_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    LogLevel level;
    if (!parseLogLevel(env, level)) {
        std::fprintf(stderr,
                     "warn: DRACO_LOG_LEVEL='%s' is not a log level "
                     "(debug|info|warn|error), using info\n", env);
        return LogLevel::Info;
    }
    return level;
}

std::atomic<LogLevel> &
levelVar()
{
    static std::atomic<LogLevel> level{startupLevel()};
    return level;
}

thread_local std::string t_context;

void
emit(const char *tag, bool withContext, const char *fmt, va_list ap)
{
    if (withContext && !t_context.empty())
        std::fprintf(stderr, "%s: [%s] ", tag, t_context.c_str());
    else
        std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text)
        return false;
    std::string lowered;
    for (const char *p = text; *p; ++p)
        lowered.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (lowered == "debug")
        out = LogLevel::Debug;
    else if (lowered == "info")
        out = LogLevel::Info;
    else if (lowered == "warn" || lowered == "warning")
        out = LogLevel::Warn;
    else if (lowered == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelVar().load(std::memory_order_relaxed);
}

void
setLogContext(std::string context)
{
    t_context = std::move(context);
}

const std::string &
logContext()
{
    return t_context;
}

void
inform(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", false, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", true, fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", true, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", false, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", false, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace draco
