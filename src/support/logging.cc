#include "support/logging.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace draco {

namespace {

/** @return The startup level: DRACO_LOG_LEVEL if set and valid, Info. */
LogLevel
startupLevel()
{
    const char *env = std::getenv("DRACO_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    LogLevel level;
    if (!parseLogLevel(env, level)) {
        std::fprintf(stderr,
                     "warn: DRACO_LOG_LEVEL='%s' is not a log level "
                     "(debug|info|warn|error), using info\n", env);
        return LogLevel::Info;
    }
    return level;
}

std::atomic<LogLevel> &
levelVar()
{
    static std::atomic<LogLevel> level{startupLevel()};
    return level;
}

thread_local std::string t_context;

void
emit(const char *tag, bool withContext, const char *fmt, va_list ap)
{
    if (withContext && !t_context.empty())
        std::fprintf(stderr, "%s: [%s] ", tag, t_context.c_str());
    else
        std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text)
        return false;
    std::string lowered;
    for (const char *p = text; *p; ++p)
        lowered.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (lowered == "debug")
        out = LogLevel::Debug;
    else if (lowered == "info")
        out = LogLevel::Info;
    else if (lowered == "warn" || lowered == "warning")
        out = LogLevel::Warn;
    else if (lowered == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelVar().load(std::memory_order_relaxed);
}

void
setLogContext(std::string context)
{
    t_context = std::move(context);
}

const std::string &
logContext()
{
    return t_context;
}

void
inform(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", false, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", true, fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", true, fmt, ap);
    va_end(ap);
}

namespace {

struct WarnEveryEntry {
    uint64_t lastNs = 0;
    uint64_t suppressed = 0;
};

std::mutex g_warnEveryMutex;
std::unordered_map<std::string, WarnEveryEntry> g_warnEvery;

} // namespace

bool
logWarnEvery(const std::string &key, uint64_t intervalMs,
             const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return false;
    const uint64_t now = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    uint64_t suppressed = 0;
    {
        std::lock_guard<std::mutex> lock(g_warnEveryMutex);
        WarnEveryEntry &entry = g_warnEvery[key];
        if (entry.lastNs != 0 &&
            now - entry.lastNs < intervalMs * 1000000ull) {
            ++entry.suppressed;
            return false;
        }
        suppressed = entry.suppressed;
        entry.suppressed = 0;
        entry.lastNs = now;
    }
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (suppressed > 0)
        warn("%s (%llu similar suppressed)", buf,
             static_cast<unsigned long long>(suppressed));
    else
        warn("%s", buf);
    return true;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", false, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", false, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace draco
