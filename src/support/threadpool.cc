#include "support/threadpool.hh"

#include <atomic>
#include <stdexcept>

namespace draco::support {

ThreadPool::ThreadPool(unsigned workers, Spawn spawn)
{
    if (spawn == Spawn::Auto && workers <= 1)
        return;
    if (workers == 0)
        workers = 1;
    _workers.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
        _stop = true;
    }
    _wake.notify_all();
    // Joining outside the lock lets workers drain the queue; a second
    // concurrent shutdown() call would race the joins themselves, so
    // shutdown() is idempotent but must come from one thread (the
    // destructor path trivially satisfies this).
    for (std::thread &worker : _workers)
        if (worker.joinable())
            worker.join();
}

bool
ThreadPool::isShutdown() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _shutdown;
}

void
ThreadPool::throwIfShutdown() const
{
    if (isShutdown())
        throw std::runtime_error("ThreadPool: submit after shutdown()");
}

unsigned
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown)
            throw std::runtime_error(
                "ThreadPool: submit after shutdown()");
        _queue.push_back(std::move(task));
    }
    _wake.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // _stop and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    if (_workers.empty() || n == 1) {
        throwIfShutdown();
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Shared dynamic-index state; one runner task per worker claims
    // indices until the range is exhausted.
    struct Sweep {
        std::atomic<size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        size_t runnersLeft;
        size_t failIndex = SIZE_MAX;
        std::exception_ptr error;
    };
    auto sweep = std::make_shared<Sweep>();
    size_t runners = std::min<size_t>(_workers.size(), n);
    sweep->runnersLeft = runners;

    auto runner = [sweep, n, &fn] {
        for (;;) {
            size_t i = sweep->next.fetch_add(1);
            if (i >= n)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(sweep->mutex);
                if (i < sweep->failIndex) {
                    sweep->failIndex = i;
                    sweep->error = std::current_exception();
                }
            }
        }
        std::lock_guard<std::mutex> lock(sweep->mutex);
        if (--sweep->runnersLeft == 0)
            sweep->done.notify_all();
    };

    for (size_t r = 0; r < runners; ++r)
        enqueue(runner);

    std::unique_lock<std::mutex> lock(sweep->mutex);
    sweep->done.wait(lock, [&] { return sweep->runnersLeft == 0; });
    if (sweep->error)
        std::rethrow_exception(sweep->error);
}

} // namespace draco::support
