#include "policy/epoch.hh"

#include "support/logging.hh"

namespace draco::policy {

std::shared_ptr<const PolicyEpoch>
EpochSlot::install(std::shared_ptr<const core::CompiledPolicy> policy)
{
    auto ep = std::make_shared<PolicyEpoch>();
    ep->epoch = 1;
    ep->policy = std::move(policy);
    std::lock_guard<std::mutex> lock(_mutex);
    if (_current)
        panic("EpochSlot: install on an already-seeded slot "
              "(epoch %llu)",
              static_cast<unsigned long long>(_current->epoch));
    _current = ep;
    _epoch.store(1, std::memory_order_release);
    return ep;
}

std::shared_ptr<const PolicyEpoch>
EpochSlot::publish(std::shared_ptr<const core::CompiledPolicy> policy)
{
    auto ep = std::make_shared<PolicyEpoch>();
    ep->policy = std::move(policy);
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_current)
        panic("EpochSlot: publish before install");
    ep->epoch = _current->epoch + 1;
    _current = ep;
    // The id mirror is released after the slot: a reader that sees the
    // new id and then pins is guaranteed at least that epoch.
    _epoch.store(ep->epoch, std::memory_order_release);
    return ep;
}

std::shared_ptr<const PolicyEpoch>
EpochSlot::pin() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _current;
}

void
EpochManager::countSwap(uint64_t newEpoch)
{
    _swaps.fetch_add(1, std::memory_order_relaxed);
    uint64_t seen = _maxEpoch.load(std::memory_order_relaxed);
    while (seen < newEpoch &&
           !_maxEpoch.compare_exchange_weak(seen, newEpoch,
                                            std::memory_order_relaxed)) {
    }
}

void
EpochManager::exportMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    auto name = [&](const std::string &metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("swaps"), swaps());
    registry.setCounter(name("swap_failures"), swapFailures());
    registry.setCounter(name("stale_snapshot_discards"),
                        staleSnapshotDiscards());
    registry.setCounter(name("max_epoch"), maxEpoch());
}

} // namespace draco::policy
