/**
 * @file
 * Epoch-versioned tenant policies — live profile hot-swap.
 *
 * Draco ties every cached verdict in the VAT to the filter that
 * produced it, so replacing a tenant's seccomp profile must atomically
 * retire that state or the service serves stale (wrong) verdicts. This
 * subsystem makes the binding explicit: a PolicyEpoch pairs one shared
 * compiled policy (content-interned by lifecycle::PolicyStore, so
 * swapping back to a previous profile reuses the compile) with a
 * monotonically increasing per-tenant epoch id, and an EpochSlot is the
 * RCU-style publication point one tenant's epochs rotate through.
 *
 * The swap discipline mirrors read-copy-update: the requester prepares
 * the new epoch off to the side (compile + intern, no worker involved),
 * then the tenant's owning shard worker publishes it at an item
 * boundary in its FIFO — never mid-batch — and rebuilds the VAT/SPT
 * namespace cold in the same step. In-flight requests admitted before
 * the swap point therefore complete under the epoch they were admitted
 * on, requests after it under the new one, and the verdict stream is
 * exactly "old policy up to the swap point, new policy after" at any
 * shard or thread count. The retired CompiledPolicy stays alive for as
 * long as anything still references it (shared_ptr), which is the RCU
 * grace period in miniature.
 *
 * Readers on the hot path never touch the slot mutex: the current
 * epoch id is mirrored in an atomic, and the checker itself holds the
 * policy shared_ptr — so with no swap in flight the added cost per
 * checked batch is one relaxed load.
 */

#ifndef DRACO_POLICY_EPOCH_HH
#define DRACO_POLICY_EPOCH_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/software.hh"
#include "lifecycle/policy_store.hh"
#include "support/metrics.hh"

namespace draco::policy {

/**
 * One policy generation of one tenant: a shared compiled policy plus
 * the monotonically increasing epoch id it was published under.
 * Immutable once published; retired epochs stay valid while anything
 * (an in-flight batch, a pinning reader) still holds the shared_ptr.
 */
struct PolicyEpoch {
    /** 1 for the creation policy, +1 per swap. Never reused. */
    uint64_t epoch = 0;

    /** The interned compile this epoch serves verdicts from. */
    std::shared_ptr<const core::CompiledPolicy> policy;
};

/**
 * Per-tenant RCU-style publication slot (see file comment).
 *
 * install() seeds epoch 1 at tenant creation; publish() rotates in the
 * next epoch (called only on the tenant's owning shard worker, at an
 * item boundary); pin() hands any thread a consistent snapshot of the
 * current epoch; epoch() is the lock-free id mirror the hot path and
 * stats exporters read.
 */
class EpochSlot
{
  public:
    EpochSlot() = default;
    EpochSlot(const EpochSlot &) = delete;
    EpochSlot &operator=(const EpochSlot &) = delete;

    /**
     * Seed the slot with the creation policy as epoch 1.
     *
     * @return The installed epoch.
     */
    std::shared_ptr<const PolicyEpoch>
    install(std::shared_ptr<const core::CompiledPolicy> policy);

    /**
     * Publish @p policy as the next epoch (current + 1) and return it.
     * The caller is responsible for rebuilding any cached state (VAT,
     * SPT) that was keyed to the previous epoch — publication and
     * invalidation must happen at the same FIFO boundary.
     */
    std::shared_ptr<const PolicyEpoch>
    publish(std::shared_ptr<const core::CompiledPolicy> policy);

    /**
     * @return A consistent (epoch id, policy) snapshot; the caller may
     *         hold it across arbitrary work — retired epochs outlive
     *         their retirement for as long as someone pins them.
     */
    std::shared_ptr<const PolicyEpoch> pin() const;

    /** @return The current epoch id (0 before install), lock-free. */
    uint64_t epoch() const
    {
        return _epoch.load(std::memory_order_acquire);
    }

    /** @return Swaps published so far (epochs beyond the first). */
    uint64_t swaps() const
    {
        uint64_t e = epoch();
        return e > 1 ? e - 1 : 0;
    }

  private:
    mutable std::mutex _mutex;   ///< Guards _current.
    std::shared_ptr<const PolicyEpoch> _current;
    std::atomic<uint64_t> _epoch{0}; ///< Lock-free id mirror.
};

/**
 * Service-wide policy authority: owns the content-addressed
 * PolicyStore every epoch's compile is interned through, and the
 * `policy.*` counters the swap plane exports. All counters are
 * atomics, so both the quiesced and the live metric exporters may
 * read them.
 */
class EpochManager
{
  public:
    /** Compile-or-share @p profile through the interning store. */
    std::shared_ptr<const core::CompiledPolicy>
    intern(const seccomp::Profile &profile)
    {
        return _store.intern(profile);
    }

    /** @return The backing content-addressed policy store. */
    lifecycle::PolicyStore &store() { return _store; }
    const lifecycle::PolicyStore &store() const { return _store; }

    /** Count one published swap that produced epoch @p newEpoch. */
    void countSwap(uint64_t newEpoch);

    /** Count a swap rejected before publication. */
    void countSwapFailure()
    {
        _swapFailures.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Count a `.dtss` snapshot discarded at restore because it was
     * taken under a policy the tenant no longer runs.
     */
    void countStaleSnapshotDiscard()
    {
        _staleDiscards.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t swaps() const
    {
        return _swaps.load(std::memory_order_relaxed);
    }

    uint64_t swapFailures() const
    {
        return _swapFailures.load(std::memory_order_relaxed);
    }

    uint64_t staleSnapshotDiscards() const
    {
        return _staleDiscards.load(std::memory_order_relaxed);
    }

    /** @return The highest epoch id any tenant has reached. */
    uint64_t maxEpoch() const
    {
        return _maxEpoch.load(std::memory_order_relaxed);
    }

    /**
     * Export `<prefix>.{swaps,swap_failures,stale_snapshot_discards,
     * max_epoch}`. Atomics only — safe on a live service.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

  private:
    lifecycle::PolicyStore _store;
    std::atomic<uint64_t> _swaps{0};
    std::atomic<uint64_t> _swapFailures{0};
    std::atomic<uint64_t> _staleDiscards{0};
    std::atomic<uint64_t> _maxEpoch{0};
};

} // namespace draco::policy

#endif // DRACO_POLICY_EPOCH_HH
