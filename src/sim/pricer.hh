/**
 * @file
 * Per-event pricing of one checking mechanism.
 *
 * MechanismPricer owns the state one simulated core needs to check and
 * price syscalls under one mechanism — the compiled filter chain, the
 * software SPT/VAT checker, or the hardware engine with its cache
 * hierarchy — and turns one TraceEvent into the nanoseconds its check
 * costs. It is the shared kernel of every replay path: the single-core
 * ExperimentRunner (generated and streamed traces alike) and each core
 * of the multicore consolidation simulator drive the same pricing code,
 * so a trace replayed anywhere is priced identically.
 */

#ifndef DRACO_SIM_PRICER_HH
#define DRACO_SIM_PRICER_HH

#include <memory>
#include <vector>

#include "core/hw_engine.hh"
#include "core/software.hh"
#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile.hh"
#include "sim/cache.hh"
#include "sim/machine.hh"
#include "support/random.hh"
#include "workload/trace.hh"

namespace draco::sim {

/** Configuration of one pricer (the mechanism-relevant run knobs). */
struct PricerConfig {
    unsigned filterCopies = 1;
    seccomp::DispatchShape shape = seccomp::DispatchShape::Linear;
    const os::KernelCosts *costs = nullptr; ///< Required.
    bool hwPreload = true;
    std::optional<std::array<core::TableGeometry, core::Slb::kMaxArgc>>
        slbGeometry;

    /**
     * Event tracer of the core this pricer models, or nullptr. The
     * pricer attaches it to its checker/engine/cache and registers the
     * mechanism's telemetry channels (hit-rate curves, VAT occupancy).
     */
    obs::Tracer *tracer = nullptr;
};

/** What one event cost. */
struct EventPrice {
    double checkNs = 0.0;      ///< Time attributed to checking.
    uint64_t filterInsns = 0;  ///< BPF instructions executed (all copies).
    obs::FlowCode flow = obs::FlowCode::Unchecked; ///< Span classification.
};

/**
 * One core's checking mechanism, priced event by event.
 */
class MechanismPricer
{
  public:
    /**
     * @param mechanism Mechanism under test.
     * @param profile Attached seccomp profile.
     * @param config Mechanism knobs; config.costs must be set.
     * @param auxSeed Seed of the auxiliary timing randomness (ROB
     *        occupancy, cache placement); "rob" and "cache" child
     *        streams are split from it.
     */
    MechanismPricer(Mechanism mechanism, const seccomp::Profile &profile,
                    const PricerConfig &config, uint64_t auxSeed);

    /**
     * Check and price one event.
     *
     * @param event The syscall plus its compute gap.
     * @param neighbourL3Bytes Per-neighbour gap footprints applied as
     *        shared-L3 pressure before the check (multicore coupling);
     *        empty for a solo core.
     */
    EventPrice price(const workload::TraceEvent &event,
                     const std::vector<uint64_t> &neighbourL3Bytes = {});

    /** Run the periodic SPT Accessed-bit sweep (hardware runs). */
    void periodicAccessedClear();

    /** @return The software checker, or nullptr. */
    const core::DracoSoftwareChecker *swChecker() const
    {
        return _sw.get();
    }

    /** @return The hardware engine, or nullptr. */
    core::DracoHardwareEngine *hwEngine() { return _hwEngine.get(); }

    /** @return The hardware process context, or nullptr. */
    const core::HwProcessContext *hwProcess() const
    {
        return _hwProc.get();
    }

  private:
    Mechanism _mechanism;
    unsigned _filterCopies;
    const os::KernelCosts &_costs;
    std::unique_ptr<seccomp::FilterChain> _filter;
    std::unique_ptr<core::DracoSoftwareChecker> _sw;
    std::unique_ptr<core::HwProcessContext> _hwProc;
    std::unique_ptr<core::DracoHardwareEngine> _hwEngine;
    std::unique_ptr<CacheHierarchy> _cache;
    Rng _robRng;
    obs::Tracer *_tracer = nullptr;
};

} // namespace draco::sim

#endif // DRACO_SIM_PRICER_HH
