#include "sim/cache.hh"

#include <cmath>

#include "support/logging.hh"

namespace draco::sim {

namespace {

// Table II at 2 GHz: access times are cumulative from the core.
constexpr std::array<CacheLevelConfig, 3> kLevels = {{
    {"L1D", 32 * 1024, 8, 1.0},         // 2 cycles
    {"L2", 256 * 1024, 8, 5.0},         // +8 cycles
    {"L3", 8 * 1024 * 1024, 16, 21.0},  // +32 cycles
}};

} // namespace

CacheHierarchy::CacheHierarchy(uint64_t seed)
    : _rng(seed)
{
}

const std::array<CacheLevelConfig, 3> &
CacheHierarchy::levelConfigs()
{
    return kLevels;
}

double
CacheHierarchy::latencyNs(MemLevel level) const
{
    switch (level) {
      case MemLevel::L1:
        return kLevels[0].hitLatencyNs;
      case MemLevel::L2:
        return kLevels[1].hitLatencyNs;
      case MemLevel::L3:
        return kLevels[2].hitLatencyNs;
      case MemLevel::Dram:
        return kLevels[2].hitLatencyNs + kDramNs;
    }
    panic("CacheHierarchy::latencyNs: bad level");
}

std::pair<MemLevel, double>
CacheHierarchy::access(uint64_t addr)
{
    ++_stats.accesses;
    uint64_t line = addr / kLineBytes;

    MemLevel level = MemLevel::Dram;
    for (unsigned i = 0; i < 3; ++i) {
        if (_resident[i].count(line)) {
            level = static_cast<MemLevel>(i);
            break;
        }
    }
    ++_stats.hits[static_cast<size_t>(level)];
    if (_tracer && level != MemLevel::L1) {
        _tracer->record(obs::EventKind::CacheFill, 0, 0,
                        static_cast<uint8_t>(level), lineId(line));
    }

    // Install/refresh the line in every level (inclusive hierarchy).
    for (auto &set : _resident)
        set.insert(line);

    return {level, latencyNs(level)};
}

uint64_t
CacheHierarchy::lineId(uint64_t line)
{
    auto [it, inserted] = _lineIds.try_emplace(line, _lineIds.size());
    return it->second;
}

void
CacheHierarchy::appPressure(uint64_t bytes)
{
    if (bytes == 0)
        return;
    for (unsigned i = 0; i < 3; ++i) {
        double survive = std::exp(
            -static_cast<double>(bytes) /
            static_cast<double>(kLevels[i].capacityBytes));
        if (survive >= 1.0)
            continue;
        for (auto it = _resident[i].begin(); it != _resident[i].end();) {
            if (!_rng.chance(survive))
                it = _resident[i].erase(it);
            else
                ++it;
        }
    }
}

void
CacheHierarchy::externalL3Pressure(uint64_t bytes)
{
    if (bytes == 0)
        return;
    double survive = std::exp(-static_cast<double>(bytes) /
                              static_cast<double>(kLevels[2].capacityBytes));
    if (survive >= 1.0)
        return;
    for (auto it = _resident[2].begin(); it != _resident[2].end();) {
        if (!_rng.chance(survive)) {
            // Inclusive hierarchy: an L3 eviction back-invalidates the
            // private levels too.
            _resident[0].erase(*it);
            _resident[1].erase(*it);
            it = _resident[2].erase(it);
        } else {
            ++it;
        }
    }
}

void
CacheHierarchy::flush()
{
    for (auto &set : _resident)
        set.clear();
}

void
exportStats(const CacheStats &stats, MetricRegistry &registry,
            const std::string &prefix)
{
    static constexpr std::array<const char *, 4> kLevelNames = {
        "l1", "l2", "l3", "dram",
    };
    registry.setCounter(MetricRegistry::join(prefix, "accesses"),
                        stats.accesses);
    for (size_t i = 0; i < kLevelNames.size(); ++i) {
        std::string level = MetricRegistry::join(prefix, kLevelNames[i]);
        registry.setCounter(MetricRegistry::join(level, "hits"),
                            stats.hits[i]);
        registry.setGauge(MetricRegistry::join(level, "hit_fraction"),
                          stats.accesses
                              ? static_cast<double>(stats.hits[i]) /
                                  static_cast<double>(stats.accesses)
                              : 0.0);
    }
}

void
CacheHierarchy::exportMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    exportStats(_stats, registry, prefix);
}

} // namespace draco::sim
