/**
 * @file
 * Memory-hierarchy timing model (Table II).
 *
 * Hardware Draco's slow flows read the in-memory VAT; their latency
 * depends on where those lines live in the L1/L2/L3/DRAM hierarchy. The
 * model tracks the residency of the (small) set of Draco-related lines
 * exactly, and applies the *application's* much larger traffic as
 * statistical eviction pressure: a gap that streams S bytes through a
 * level of capacity C evicts each resident tracked line independently
 * with probability 1 - exp(-S/C). This reproduces the paper's
 * observation that slow-flow cost varies with whether VAT lines survive
 * in cache, without simulating billions of application accesses.
 */

#ifndef DRACO_SIM_CACHE_HH
#define DRACO_SIM_CACHE_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "obs/tracer.hh"
#include "support/metrics.hh"
#include "support/random.hh"

namespace draco::sim {

/** Configuration of one cache level. */
struct CacheLevelConfig {
    const char *name;
    uint64_t capacityBytes;
    unsigned ways;
    double hitLatencyNs; ///< Cumulative latency when the hit is here.
};

/** Where an access was satisfied. */
enum class MemLevel : uint8_t {
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Dram = 3,
};

/** Per-level hit counters. */
struct CacheStats {
    std::array<uint64_t, 4> hits{};
    uint64_t accesses = 0;
};

/**
 * Export a cache counter block under @p prefix: total accesses plus
 * per-level (`l1`/`l2`/`l3`/`dram`) hit counters and hit fractions.
 */
void exportStats(const CacheStats &stats, MetricRegistry &registry,
                 const std::string &prefix);

/**
 * Three-level hierarchy plus DRAM with statistical app pressure.
 */
class CacheHierarchy
{
  public:
    /** Cache line size in bytes. */
    static constexpr uint64_t kLineBytes = 64;

    /**
     * Construct with the paper's Table II configuration: L1 32 KB /
     * 2 cycles, L2 256 KB / 8 cycles, L3 8 MB / 32 cycles at 2 GHz, and
     * ~60 ns DRAM beyond L3.
     *
     * @param seed Seed for the eviction-pressure draws.
     */
    explicit CacheHierarchy(uint64_t seed = 1);

    /**
     * Perform one tracked read.
     *
     * @param addr Byte address.
     * @return (level that hit, latency in ns).
     */
    std::pair<MemLevel, double> access(uint64_t addr);

    /**
     * Apply application traffic between syscalls: each resident tracked
     * line survives level i with probability exp(-bytes/capacity_i).
     */
    void appPressure(uint64_t bytes);

    /**
     * Apply traffic from *other cores* sharing the L3 (the chip of
     * Table II shares its banked L3 across ten cores). Evicts tracked
     * lines from L3 only; inclusive back-invalidation then drops them
     * from the private L1/L2 as well.
     */
    void externalL3Pressure(uint64_t bytes);

    /** Drop every tracked line (e.g. after a context switch flood). */
    void flush();

    /** @return Latency of a hit at @p level. */
    double latencyNs(MemLevel level) const;

    /** @return Counters. */
    const CacheStats &stats() const { return _stats; }

    /** Export the hierarchy's counters under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Attach @p tracer (nullptr detaches): every access that misses a
     * level records a CacheFill instant whose arg is the MemLevel that
     * finally supplied the line and whose value is the line's dense
     * first-touch id. Ids, not raw addresses: VAT regions come from a
     * process-global bump allocator, so absolute addresses depend on
     * allocation interleaving across concurrent cells — the first-touch
     * id is the cell-local rename that keeps traces byte-deterministic
     * while still correlating reuse of the same line.
     */
    void setTracer(obs::Tracer *tracer) { _tracer = tracer; }

    /** @return The level configurations (for Table II reporting). */
    static const std::array<CacheLevelConfig, 3> &levelConfigs();

    /** DRAM access latency beyond the L3 lookup. */
    static constexpr double kDramNs = 60.0;

  private:
    /** @return The dense first-touch id of @p line (tracing only). */
    uint64_t lineId(uint64_t line);

    // Ordered so pressure-eviction RNG draws visit lines in a stable,
    // allocation-order-consistent sequence (determinism across runs).
    std::set<uint64_t> _resident[3]; ///< Line tags per level.
    Rng _rng;
    CacheStats _stats;
    obs::Tracer *_tracer = nullptr;
    std::map<uint64_t, uint64_t> _lineIds; ///< Populated only if traced.
};

} // namespace draco::sim

#endif // DRACO_SIM_CACHE_HH
