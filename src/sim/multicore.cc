#include "sim/multicore.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::sim {

void
CoreResult::exportMetrics(MetricRegistry &registry,
                          const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setText(name("workload"), workload);
    registry.setText(name("mechanism"), mechanism);
    registry.setGauge(name("total_ns"), totalNs);
    registry.setGauge(name("insecure_ns"), insecureNs);
    registry.setGauge(name("normalized"), normalized());
    if (hw.syscalls)
        core::exportStats(hw, registry, name("hw"));
    if (slb.accesses || slb.preloadProbes)
        core::exportStats(slb, registry, name("slb"));
}

std::vector<CoreResult>
MulticoreSimulator::run(const std::vector<CoreAssignment> &cores,
                        const MulticoreOptions &options)
{
    if (cores.empty())
        fatal("MulticoreSimulator: need at least one core");

    struct Core {
        CoreAssignment assign;
        std::unique_ptr<workload::TraceGenerator> gen;
        std::unique_ptr<core::HwProcessContext> hwProc;
        std::unique_ptr<core::DracoHardwareEngine> engine;
        std::unique_ptr<core::DracoSoftwareChecker> sw;
        std::unique_ptr<seccomp::FilterChain> filter;
        std::unique_ptr<CacheHierarchy> cache;
        seccomp::Profile profile{"unset"};
        CoreResult result;
        Rng robRng{0};
    };

    const os::KernelCosts &costs = *options.costs;

    std::vector<Core> state(cores.size());
    for (size_t i = 0; i < cores.size(); ++i) {
        Core &core = state[i];
        core.assign = cores[i];
        if (!core.assign.app)
            fatal("MulticoreSimulator: core %zu has no workload", i);
        // Per-core child stream: SplitMix64 stream i of the run seed,
        // so neighbouring cores' traces are statistically independent
        // (additive `seed + i * k` made cores of nearby run seeds
        // replay each other's streams).
        uint64_t seed = splitSeed(options.seed, i);
        AppProfiles profiles =
            makeAppProfiles(*core.assign.app, seed, 200000);
        core.profile = profiles.complete;
        core.gen = std::make_unique<workload::TraceGenerator>(
            *core.assign.app, seed);
        core.robRng = Rng(splitSeed(seed, "rob"));
        core.result.workload = core.assign.app->name;
        core.result.mechanism = mechanismName(core.assign.mechanism);

        switch (core.assign.mechanism) {
          case Mechanism::Insecure:
            break;
          case Mechanism::Seccomp:
            core.filter = std::make_unique<seccomp::FilterChain>(
                seccomp::buildFilterChain(core.profile));
            break;
          case Mechanism::DracoSW:
            core.sw = std::make_unique<core::DracoSoftwareChecker>(
                core.profile, core.assign.filterCopies);
            break;
          case Mechanism::DracoHW:
            core.hwProc = std::make_unique<core::HwProcessContext>(
                core.profile, core.assign.filterCopies);
            core.engine = std::make_unique<core::DracoHardwareEngine>();
            core.engine->switchTo(core.hwProc.get());
            core.cache = std::make_unique<CacheHierarchy>(
                splitSeed(seed, "cache"));
            break;
        }
    }

    // Lockstep: every step, each core consumes one event. Each core's
    // gap traffic hits its own whole hierarchy and everyone else's L3.
    size_t total = options.warmupCallsPerCore + options.callsPerCore;
    for (size_t step = 0; step < total; ++step) {
        bool counting = step >= options.warmupCallsPerCore;

        // Gather this step's events first so L3 coupling is symmetric.
        std::vector<workload::TraceEvent> events;
        events.reserve(state.size());
        for (Core &core : state)
            events.push_back(core.gen->next());

        for (size_t i = 0; i < state.size(); ++i) {
            Core &core = state[i];
            const auto &event = events[i];

            double baseNs = event.userWorkNs + costs.syscallBaseNs;
            if (counting) {
                core.result.insecureNs += baseNs;
                core.result.totalNs += baseNs;
            }

            double checkNs = 0.0;
            switch (core.assign.mechanism) {
              case Mechanism::Insecure:
                break;
              case Mechanism::Seccomp: {
                auto r = core.filter->run(event.req.toSeccompData());
                checkNs += core.assign.filterCopies *
                    (costs.seccompEntryNs +
                     r.insnsExecuted * costs.bpfInsnNs);
                break;
              }
              case Mechanism::DracoSW: {
                auto out = core.sw->check(event.req);
                checkNs += costs.dracoSptLookupNs;
                if (out.hashedBytes > 0) {
                    checkNs += 2 *
                        (costs.dracoHashFixedNs +
                         costs.dracoHashPerByteNs * out.hashedBytes);
                    checkNs += out.vatProbes * costs.dracoVatProbeNs;
                }
                if (out.filterInsns > 0) {
                    checkNs += core.assign.filterCopies *
                            costs.seccompEntryNs +
                        out.filterInsns * costs.bpfInsnNs;
                }
                if (out.vatInserted)
                    checkNs += costs.dracoVatInsertNs;
                break;
              }
              case Mechanism::DracoHW: {
                core.cache->appPressure(event.bytesTouched);
                // Shared L3: neighbours' gap traffic evicts our lines.
                for (size_t j = 0; j < state.size(); ++j)
                    if (j != i)
                        core.cache->externalL3Pressure(
                            events[j].bytesTouched);

                core.engine->onDispatch(event.req.pc);
                auto out = core.engine->onRobHead(event.req);
                if (!out.preloadMemAddrs.empty()) {
                    double window = static_cast<double>(
                                        core.robRng.nextRange(16, 127)) /
                        2.0 * 0.5;
                    double fetchNs = 0.0;
                    for (uint64_t addr : out.preloadMemAddrs)
                        fetchNs = std::max(
                            fetchNs, core.cache->access(addr).second);
                    checkNs += std::max(0.0, fetchNs - window);
                }
                double headNs = 0.0;
                for (uint64_t addr : out.headMemAddrs)
                    headNs = std::max(headNs,
                                      core.cache->access(addr).second);
                checkNs += headNs;
                if (out.filterRun) {
                    checkNs += core.assign.filterCopies *
                            costs.seccompEntryNs +
                        out.filterInsns * costs.bpfInsnNs;
                    if (out.vatInserted)
                        checkNs += costs.dracoVatInsertNs;
                }
                break;
              }
            }
            if (counting)
                core.result.totalNs += checkNs;
        }
    }

    std::vector<CoreResult> results;
    for (Core &core : state) {
        if (core.engine) {
            core.result.hw = core.engine->stats();
            core.result.slb = core.engine->slbStats();
        }
        results.push_back(core.result);
    }
    return results;
}

} // namespace draco::sim
