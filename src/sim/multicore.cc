#include "sim/multicore.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "sim/pricer.hh"
#include "support/logging.hh"

namespace draco::sim {

void
CoreResult::exportMetrics(MetricRegistry &registry,
                          const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setText(name("workload"), workload);
    registry.setText(name("mechanism"), mechanism);
    registry.setGauge(name("total_ns"), totalNs);
    registry.setGauge(name("insecure_ns"), insecureNs);
    registry.setGauge(name("normalized"), normalized());
    if (hw.syscalls)
        core::exportStats(hw, registry, name("hw"));
    if (slb.accesses || slb.preloadProbes)
        core::exportStats(slb, registry, name("slb"));
}

namespace {

/** One core of a lockstep consolidation run. */
struct Core {
    std::optional<MechanismPricer> pricer;
    CoreResult result;
    obs::Tracer *tracer = nullptr; ///< This core's track, or null.
    double simNs = 0.0;            ///< This core's local sim clock.
};

/** @return The tracer of lockstep core @p i ("coreNN" track), or null. */
obs::Tracer *
coreTracer(const MulticoreOptions &options, size_t i)
{
    if (!options.session)
        return nullptr;
    char track[16];
    std::snprintf(track, sizeof(track), "core%02zu", i);
    return options.session->tracer(options.trackPrefix + track);
}

/**
 * The lockstep step shared by generated and replayed consolidation
 * runs: every active core prices its event under the L3 pressure of
 * every *other* active core's gap traffic.
 *
 * @param state Per-core simulation state.
 * @param events One event per core; disengaged entries are cores whose
 *        stream is exhausted this step.
 * @param costs Kernel cost preset.
 * @param counting Inside the measurement window.
 */
void
lockstepStep(std::vector<Core> &state,
             const std::vector<std::optional<workload::TraceEvent>> &events,
             const os::KernelCosts &costs, bool counting)
{
    for (size_t i = 0; i < state.size(); ++i) {
        if (!events[i])
            continue;
        Core &core = state[i];
        const workload::TraceEvent &event = *events[i];

        double baseNs = event.userWorkNs + costs.syscallBaseNs;
        if (counting) {
            core.result.insecureNs += baseNs;
            core.result.totalNs += baseNs;
        }
        core.simNs += baseNs;
        if (core.tracer) {
            core.tracer->setNowNs(core.simNs);
            core.tracer->beginSyscall(event.req.sid, event.req.pc);
        }

        // Shared L3: neighbours' gap traffic evicts our lines.
        std::vector<uint64_t> neighbourBytes;
        neighbourBytes.reserve(state.size());
        for (size_t j = 0; j < state.size(); ++j)
            if (j != i && events[j])
                neighbourBytes.push_back(events[j]->bytesTouched);

        EventPrice price = core.pricer->price(event, neighbourBytes);
        if (counting)
            core.result.totalNs += price.checkNs;
        core.simNs += price.checkNs;
        if (core.tracer) {
            core.tracer->setNowNs(core.simNs);
            core.tracer->endSyscall(price.flow);
            core.tracer->maybeSample();
        }
    }
}

/** Collect final per-core statistics, preserving input order. */
std::vector<CoreResult>
collectResults(std::vector<Core> &state)
{
    std::vector<CoreResult> results;
    results.reserve(state.size());
    for (Core &core : state) {
        if (auto *hw = core.pricer->hwEngine()) {
            core.result.hw = hw->stats();
            core.result.slb = hw->slbStats();
        }
        results.push_back(core.result);
    }
    return results;
}

} // namespace

std::vector<CoreResult>
MulticoreSimulator::run(const std::vector<CoreAssignment> &cores,
                        const MulticoreOptions &options)
{
    if (cores.empty())
        fatal("MulticoreSimulator: need at least one core");

    const os::KernelCosts &costs = *options.costs;

    std::vector<Core> state(cores.size());
    std::vector<std::unique_ptr<workload::TraceGenerator>> gens(
        cores.size());
    std::vector<seccomp::Profile> profiles;
    profiles.reserve(cores.size());
    for (size_t i = 0; i < cores.size(); ++i) {
        Core &core = state[i];
        const CoreAssignment &assign = cores[i];
        if (!assign.app)
            fatal("MulticoreSimulator: core %zu has no workload", i);
        // Per-core child stream: SplitMix64 stream i of the run seed,
        // so neighbouring cores' traces are statistically independent
        // (additive `seed + i * k` made cores of nearby run seeds
        // replay each other's streams).
        uint64_t seed = splitSeed(options.seed, i);
        AppProfiles appProfiles =
            makeAppProfiles(*assign.app, seed, 200000);
        profiles.push_back(appProfiles.complete);
        gens[i] = std::make_unique<workload::TraceGenerator>(
            *assign.app, seed);
        core.result.workload = assign.app->name;
        core.result.mechanism = mechanismName(assign.mechanism);

        PricerConfig config;
        config.filterCopies = assign.filterCopies;
        config.costs = options.costs;
        core.tracer = coreTracer(options, i);
        config.tracer = core.tracer;
        core.pricer.emplace(assign.mechanism, profiles.back(), config,
                            seed);
    }

    // Lockstep: every step, each core consumes one event. Each core's
    // gap traffic hits its own whole hierarchy and everyone else's L3.
    size_t total = options.warmupCallsPerCore + options.callsPerCore;
    std::vector<std::optional<workload::TraceEvent>> events(state.size());
    for (size_t step = 0; step < total; ++step) {
        bool counting = step >= options.warmupCallsPerCore;
        // Gather this step's events first so L3 coupling is symmetric.
        for (size_t i = 0; i < state.size(); ++i)
            events[i] = gens[i]->next();
        lockstepStep(state, events, costs, counting);
    }

    return collectResults(state);
}

std::vector<CoreResult>
MulticoreSimulator::replay(const std::vector<TenantAssignment> &tenants,
                          const MulticoreOptions &options)
{
    if (tenants.empty())
        fatal("MulticoreSimulator: need at least one tenant");

    const os::KernelCosts &costs = *options.costs;

    std::vector<Core> state(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        Core &core = state[i];
        const TenantAssignment &tenant = tenants[i];
        if (!tenant.events)
            fatal("MulticoreSimulator: tenant %zu has no events", i);
        if (!tenant.profile)
            fatal("MulticoreSimulator: tenant %zu has no profile", i);
        core.result.workload =
            tenant.name.empty() ? "tenant-" + std::to_string(i)
                                : tenant.name;
        core.result.mechanism = mechanismName(tenant.mechanism);

        PricerConfig config;
        config.filterCopies = tenant.filterCopies;
        config.costs = options.costs;
        core.tracer = coreTracer(options, i);
        config.tracer = core.tracer;
        core.pricer.emplace(tenant.mechanism, *tenant.profile, config,
                            splitSeed(options.seed, i));
    }

    std::vector<std::optional<workload::TraceEvent>> events(state.size());
    for (size_t step = 0;; ++step) {
        bool counting = step >= options.warmupCallsPerCore;
        if (counting && options.callsPerCore > 0 &&
            step >= options.warmupCallsPerCore + options.callsPerCore)
            break;

        bool any = false;
        for (size_t i = 0; i < state.size(); ++i) {
            workload::TraceEvent event;
            if (tenants[i].events->next(event)) {
                events[i] = event;
                any = true;
            } else {
                events[i].reset();
            }
        }
        if (!any)
            break;
        lockstepStep(state, events, costs, counting);
    }

    return collectResults(state);
}

} // namespace draco::sim
