/**
 * @file
 * Multicore consolidation simulation.
 *
 * The evaluated platform is a ten-core chip with private L1/L2 and a
 * shared banked L3 (Table II). Hardware Draco's slow flows read the
 * per-process VAT through that hierarchy, so co-running workloads that
 * thrash the L3 push a neighbour's VAT lines to DRAM and make its slow
 * flows slower. MulticoreSimulator runs one hardware-Draco workload per
 * core in lockstep and applies each core's traffic as shared-L3
 * pressure on everyone else — the consolidation experiment a cloud
 * operator would run before trusting the ≤1% overhead claim at density.
 */

#ifndef DRACO_SIM_MULTICORE_HH
#define DRACO_SIM_MULTICORE_HH

#include <vector>

#include "sim/machine.hh"

namespace draco::sim {

/** One core's assignment. */
struct CoreAssignment {
    const workload::AppModel *app = nullptr;
    Mechanism mechanism = Mechanism::DracoHW;
    unsigned filterCopies = 1;
};

/**
 * One core's assignment when replaying recorded traces: a tenant is an
 * event stream (one pid of an ingested strace, one round-robin share of
 * a `.dtrc` corpus) plus the profile it runs under.
 */
struct TenantAssignment {
    workload::EventStream *events = nullptr;   ///< Not owned.
    const seccomp::Profile *profile = nullptr; ///< Not owned.
    std::string name;                          ///< Reported workload name.
    Mechanism mechanism = Mechanism::DracoHW;
    unsigned filterCopies = 1;
};

/** Multicore experiment knobs. */
struct MulticoreOptions {
    size_t callsPerCore = 100000;
    size_t warmupCallsPerCore = 10000;
    uint64_t seed = 42;
    const os::KernelCosts *costs = &os::newKernelCosts();

    /**
     * Trace session, or nullptr (off). Each core records onto its own
     * `coreNN` track with its own sim-cycle clock, so a consolidation
     * run exports one Perfetto thread per core.
     */
    obs::TraceSession *session = nullptr;

    /**
     * Prefix of the per-core track names (e.g. "cores4/"). Give each
     * run of a shared session a distinct prefix: a track has one
     * monotonic clock, so two runs must never share one.
     */
    std::string trackPrefix;
};

/** Per-core outcome. */
struct CoreResult {
    std::string workload;
    std::string mechanism;
    double totalNs = 0.0;
    double insecureNs = 0.0;
    core::HwEngineStats hw{};
    core::SlbStats slb{};

    /** @return totalNs / insecureNs for this core. */
    double normalized() const
    {
        return insecureNs > 0.0 ? totalNs / insecureNs : 1.0;
    }

    /**
     * Export this core's result under @p prefix: identity, timing, and
     * the `hw`/`slb` counter blocks.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;
};

/**
 * Lockstep multicore simulator with shared-L3 coupling.
 */
class MulticoreSimulator
{
  public:
    /**
     * Run one workload per core; every core uses its own
     * syscall-complete profile.
     *
     * @param cores Per-core assignments (size = core count).
     * @param options Experiment knobs.
     * @return One result per core, in input order.
     */
    std::vector<CoreResult> run(const std::vector<CoreAssignment> &cores,
                                const MulticoreOptions &options);

    /**
     * Replay one recorded event stream per core in lockstep with the
     * same shared-L3 coupling — the consolidation experiment driven by
     * real traces instead of synthetic generators.
     *
     * A core whose stream runs dry goes idle: it stops contributing
     * events and L3 pressure while its neighbours keep running. The
     * first warmupCallsPerCore lockstep steps are unmeasured;
     * callsPerCore then caps the measured steps (0 = until every
     * stream is exhausted).
     *
     * @param tenants Per-core stream/profile assignments.
     * @param options Experiment knobs (seed feeds only auxiliary
     *        timing randomness).
     * @return One result per core, in input order.
     */
    std::vector<CoreResult> replay(
        const std::vector<TenantAssignment> &tenants,
        const MulticoreOptions &options);
};

} // namespace draco::sim

#endif // DRACO_SIM_MULTICORE_HH
