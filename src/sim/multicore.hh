/**
 * @file
 * Multicore consolidation simulation.
 *
 * The evaluated platform is a ten-core chip with private L1/L2 and a
 * shared banked L3 (Table II). Hardware Draco's slow flows read the
 * per-process VAT through that hierarchy, so co-running workloads that
 * thrash the L3 push a neighbour's VAT lines to DRAM and make its slow
 * flows slower. MulticoreSimulator runs one hardware-Draco workload per
 * core in lockstep and applies each core's traffic as shared-L3
 * pressure on everyone else — the consolidation experiment a cloud
 * operator would run before trusting the ≤1% overhead claim at density.
 */

#ifndef DRACO_SIM_MULTICORE_HH
#define DRACO_SIM_MULTICORE_HH

#include <vector>

#include "sim/machine.hh"

namespace draco::sim {

/** One core's assignment. */
struct CoreAssignment {
    const workload::AppModel *app = nullptr;
    Mechanism mechanism = Mechanism::DracoHW;
    unsigned filterCopies = 1;
};

/** Multicore experiment knobs. */
struct MulticoreOptions {
    size_t callsPerCore = 100000;
    size_t warmupCallsPerCore = 10000;
    uint64_t seed = 42;
    const os::KernelCosts *costs = &os::newKernelCosts();
};

/** Per-core outcome. */
struct CoreResult {
    std::string workload;
    std::string mechanism;
    double totalNs = 0.0;
    double insecureNs = 0.0;
    core::HwEngineStats hw{};
    core::SlbStats slb{};

    /** @return totalNs / insecureNs for this core. */
    double normalized() const
    {
        return insecureNs > 0.0 ? totalNs / insecureNs : 1.0;
    }

    /**
     * Export this core's result under @p prefix: identity, timing, and
     * the `hw`/`slb` counter blocks.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;
};

/**
 * Lockstep multicore simulator with shared-L3 coupling.
 */
class MulticoreSimulator
{
  public:
    /**
     * Run one workload per core; every core uses its own
     * syscall-complete profile.
     *
     * @param cores Per-core assignments (size = core count).
     * @param options Experiment knobs.
     * @return One result per core, in input order.
     */
    std::vector<CoreResult> run(const std::vector<CoreAssignment> &cores,
                                const MulticoreOptions &options);
};

} // namespace draco::sim

#endif // DRACO_SIM_MULTICORE_HH
