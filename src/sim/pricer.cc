#include "sim/pricer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::sim {

namespace {

/** Core clock assumed by the ROB hiding model (Table II: 2 GHz). */
constexpr double kCycleNs = 0.5;

/** ROB capacity (Table II). */
constexpr unsigned kRobEntries = 128;

/** Average dispatch IPC assumed when estimating dispatch→head time. */
constexpr double kAvgIpc = 2.0;

/**
 * Time between a syscall's dispatch into the ROB and its arrival at the
 * head: the instructions ahead of it must retire first. Sampled
 * uniformly over ROB occupancy.
 */
double
dispatchToHeadNs(Rng &rng)
{
    uint64_t ahead = rng.nextRange(16, kRobEntries - 1);
    return static_cast<double>(ahead) / kAvgIpc * kCycleNs;
}

} // namespace

MechanismPricer::MechanismPricer(Mechanism mechanism,
                                 const seccomp::Profile &profile,
                                 const PricerConfig &config,
                                 uint64_t auxSeed)
    : _mechanism(mechanism), _filterCopies(config.filterCopies),
      _costs(*config.costs), _robRng(splitSeed(auxSeed, "rob")),
      _tracer(config.tracer)
{
    switch (mechanism) {
      case Mechanism::Insecure:
        break;
      case Mechanism::Seccomp:
        _filter = std::make_unique<seccomp::FilterChain>(
            seccomp::buildFilterChain(profile, config.shape));
        break;
      case Mechanism::DracoSW:
        _sw = std::make_unique<core::DracoSoftwareChecker>(
            profile, config.filterCopies, config.shape);
        break;
      case Mechanism::DracoHW:
        _hwProc = std::make_unique<core::HwProcessContext>(
            profile, config.filterCopies);
        _hwEngine = config.slbGeometry
            ? std::make_unique<core::DracoHardwareEngine>(
                  config.hwPreload, *config.slbGeometry)
            : std::make_unique<core::DracoHardwareEngine>(
                  config.hwPreload);
        _hwEngine->switchTo(_hwProc.get());
        _cache = std::make_unique<CacheHierarchy>(
            splitSeed(auxSeed, "cache"));
        break;
    }

    if (!_tracer)
        return;
    if (_sw) {
        _sw->setTracer(_tracer);
        auto *sw = _sw.get();
        _tracer->addChannel("vat_hit_rate", [sw] {
            const core::SwCheckStats &s = sw->stats();
            return s.checks ? static_cast<double>(s.vatHits) /
                                  static_cast<double>(s.checks)
                            : 0.0;
        });
        _tracer->addChannel("filter_insns", [sw] {
            return static_cast<double>(sw->stats().filterInsns);
        });
    }
    if (_hwEngine) {
        _hwEngine->setTracer(_tracer);
        auto *engine = _hwEngine.get();
        _tracer->addChannel("fast_fraction", [engine] {
            const core::HwEngineStats &s = engine->stats();
            uint64_t fast = 0;
            for (size_t i = 0; i < s.flows.size(); ++i) {
                core::HwSyscallResult probe;
                probe.flow = static_cast<core::HwFlow>(i);
                if (probe.fast())
                    fast += s.flows[i];
            }
            return s.syscalls ? static_cast<double>(fast) /
                                    static_cast<double>(s.syscalls)
                              : 0.0;
        });
        _tracer->addChannel("stb_hit_rate", [engine] {
            const core::StbStats &s = engine->stbStats();
            return s.lookups ? static_cast<double>(s.hits) /
                                   static_cast<double>(s.lookups)
                             : 0.0;
        });
        _tracer->addChannel("slb_preload_hit_rate", [engine] {
            const core::SlbStats &s = engine->slbStats();
            return s.preloadProbes
                ? static_cast<double>(s.preloadHits) /
                      static_cast<double>(s.preloadProbes)
                : 0.0;
        });
        _tracer->addChannel("slb_access_hit_rate", [engine] {
            const core::SlbStats &s = engine->slbStats();
            return s.accesses ? static_cast<double>(s.accessHits) /
                                    static_cast<double>(s.accesses)
                              : 0.0;
        });
        auto *proc = _hwProc.get();
        _tracer->addChannel("vat_footprint_bytes", [proc] {
            return static_cast<double>(proc->vat().footprintBytes());
        });
    }
    if (_cache)
        _cache->setTracer(_tracer);
}

EventPrice
MechanismPricer::price(const workload::TraceEvent &event,
                       const std::vector<uint64_t> &neighbourL3Bytes)
{
    EventPrice price;
    switch (_mechanism) {
      case Mechanism::Insecure:
        price.flow = obs::FlowCode::Unchecked;
        break;

      case Mechanism::Seccomp: {
        os::SeccompData data = event.req.toSeccompData();
        price.flow = obs::FlowCode::Seccomp;
        for (unsigned copy = 0; copy < _filterCopies; ++copy) {
            seccomp::BpfResult r = _filter->run(data);
            price.checkNs +=
                _costs.seccompEntryNs + r.insnsExecuted * _costs.bpfInsnNs;
            price.filterInsns += r.insnsExecuted;
            if (!os::actionAllows(
                    static_cast<os::SeccompAction>(r.action)))
                price.flow = obs::FlowCode::Denied;
        }
        break;
      }

      case Mechanism::DracoSW: {
        core::SwCheckOutcome out = _sw->check(event.req);
        switch (out.path) {
          case core::SwPath::SptAllowAll:
            price.flow = obs::FlowCode::SptAllowAll;
            break;
          case core::SwPath::VatHit:
            price.flow = obs::FlowCode::VatHit;
            break;
          case core::SwPath::FilterAllowed:
            price.flow = obs::FlowCode::FilterAllowed;
            break;
          case core::SwPath::FilterDenied:
            price.flow = obs::FlowCode::Denied;
            break;
        }
        price.checkNs +=
            core::swCheckCostNs(out, _costs, _filterCopies);
        price.filterInsns += out.filterInsns;
        break;
      }

      case Mechanism::DracoHW: {
        _cache->appPressure(event.bytesTouched);
        // Shared L3: neighbours' gap traffic evicts our lines.
        for (uint64_t bytes : neighbourL3Bytes)
            _cache->externalL3Pressure(bytes);

        _hwEngine->onDispatch(event.req.pc);
        core::HwSyscallResult out = _hwEngine->onRobHead(event.req);
        // HwFlow values 0–7 coincide with the first FlowCode values.
        price.flow = static_cast<obs::FlowCode>(out.flow);

        // Preload fetches overlap with dispatch→head time.
        if (!out.preloadMemAddrs.empty()) {
            double window = dispatchToHeadNs(_robRng);
            double fetchNs = 0.0;
            for (uint64_t addr : out.preloadMemAddrs)
                fetchNs = std::max(fetchNs, _cache->access(addr).second);
            price.checkNs += std::max(0.0, fetchNs - window);
        }

        // Head-of-ROB reads stall retirement; the two cuckoo-way
        // probes are issued in parallel (§V-B).
        double headNs = 0.0;
        for (uint64_t addr : out.headMemAddrs)
            headNs = std::max(headNs, _cache->access(addr).second);
        price.checkNs += headNs;

        if (out.filterRun) {
            price.checkNs += _filterCopies * _costs.seccompEntryNs +
                out.filterInsns * _costs.bpfInsnNs;
            price.filterInsns += out.filterInsns;
            if (out.vatInserted)
                price.checkNs += _costs.dracoVatInsertNs;
        }
        break;
      }
    }
    return price;
}

void
MechanismPricer::periodicAccessedClear()
{
    if (_hwEngine)
        _hwEngine->periodicAccessedClear();
}

} // namespace draco::sim
