#include "sim/scheduler.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::sim {

SchedResult
MultiProcessSimulator::run(
    const std::vector<const workload::AppModel *> &apps,
    const SchedOptions &options)
{
    if (apps.empty())
        fatal("MultiProcessSimulator: need at least one process");

    struct Process {
        std::unique_ptr<workload::TraceGenerator> gen;
        std::unique_ptr<core::HwProcessContext> ctx;
        workload::Trace prologue;
        size_t prologuePos = 0;
    };

    const os::KernelCosts &costs = *options.costs;
    SchedResult result;

    std::vector<Process> procs;
    for (size_t i = 0; i < apps.size(); ++i) {
        // SplitMix64 child stream per process (see sim/multicore.cc).
        uint64_t seed = splitSeed(options.seed, i);
        AppProfiles profiles = makeAppProfiles(*apps[i], seed, 200000);
        Process p;
        p.gen = std::make_unique<workload::TraceGenerator>(
            *apps[i], seed);
        p.ctx = std::make_unique<core::HwProcessContext>(
            profiles.complete, options.filterCopies);
        p.prologue = p.gen->prologue();
        procs.push_back(std::move(p));
    }

    core::DracoHardwareEngine engine;
    CacheHierarchy cache(splitSeed(options.seed, "cache"));
    Rng robRng(splitSeed(options.seed, "rob"));

    size_t current = 0;
    engine.switchTo(procs[current].ctx.get(), options.sptSaveRestore);
    double quantumUsedNs = 0.0;

    while (result.syscalls < options.totalCalls) {
        Process &proc = procs[current];
        workload::TraceEvent event;
        if (proc.prologuePos < proc.prologue.size())
            event = proc.prologue[proc.prologuePos++];
        else
            event = proc.gen->next();

        ++result.syscalls;
        double baseNs = event.userWorkNs + costs.syscallBaseNs;
        result.insecureNs += baseNs;
        result.totalNs += baseNs;

        double checkNs = 0.0;
        cache.appPressure(event.bytesTouched);
        engine.onDispatch(event.req.pc);
        core::HwSyscallResult out = engine.onRobHead(event.req);

        if (!out.preloadMemAddrs.empty()) {
            double window =
                static_cast<double>(robRng.nextRange(16, 127)) / 2.0 * 0.5;
            double fetchNs = 0.0;
            for (uint64_t addr : out.preloadMemAddrs)
                fetchNs = std::max(fetchNs, cache.access(addr).second);
            checkNs += std::max(0.0, fetchNs - window);
        }
        double headNs = 0.0;
        for (uint64_t addr : out.headMemAddrs)
            headNs = std::max(headNs, cache.access(addr).second);
        checkNs += headNs;
        if (out.filterRun) {
            checkNs += options.filterCopies * costs.seccompEntryNs +
                out.filterInsns * costs.bpfInsnNs;
            if (out.vatInserted)
                checkNs += costs.dracoVatInsertNs;
        }

        result.totalNs += checkNs;
        quantumUsedNs += baseNs + checkNs;

        if (quantumUsedNs >= options.quantumNs) {
            quantumUsedNs = 0.0;
            // Direct switch cost hits secure and insecure runs alike.
            result.totalNs += costs.ctxSwitchNs;
            result.insecureNs += costs.ctxSwitchNs;
            current = (current + 1) % procs.size();
            engine.switchTo(procs[current].ctx.get(),
                            options.sptSaveRestore);
            // The incoming process's traffic quickly repopulates the
            // caches with its own data; Draco lines rarely survive.
            cache.appPressure(1 << 22);
            ++result.contextSwitches;
        }
    }

    result.hw = engine.stats();
    result.slb = engine.slbStats();
    result.stb = engine.stbStats();
    return result;
}

} // namespace draco::sim
