#include "sim/machine.hh"

#include <algorithm>

#include "seccomp/profile_gen.hh"
#include "sim/pricer.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace draco::sim {

const char *
mechanismName(Mechanism mechanism)
{
    switch (mechanism) {
      case Mechanism::Insecure: return "insecure";
      case Mechanism::Seccomp: return "seccomp";
      case Mechanism::DracoSW: return "draco-sw";
      case Mechanism::DracoHW: return "draco-hw";
    }
    return "?";
}

double
RunResult::stbHitRate() const
{
    return stb.lookups ? static_cast<double>(stb.hits) / stb.lookups : 0.0;
}

double
RunResult::slbAccessHitRate() const
{
    return slb.accesses
        ? static_cast<double>(slb.accessHits) / slb.accesses
        : 0.0;
}

double
RunResult::slbPreloadHitRate() const
{
    return slb.preloadProbes
        ? static_cast<double>(slb.preloadHits) / slb.preloadProbes
        : 0.0;
}

void
RunResult::exportMetrics(MetricRegistry &registry,
                         const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setText(name("workload"), workload);
    registry.setText(name("mechanism"), mechanism);
    registry.setGauge(name("total_ns"), totalNs);
    registry.setGauge(name("insecure_ns"), insecureNs);
    registry.setGauge(name("check_ns"), checkNs);
    registry.setGauge(name("normalized"), normalized());
    registry.setCounter(name("syscalls"), syscalls);
    registry.setGauge(name("check_ns_per_syscall"),
                      syscalls ? checkNs / static_cast<double>(syscalls)
                               : 0.0);
    registry.setCounter(name("vat_footprint_bytes"), vatFootprintBytes);
    registry.setCounter(name("filter_insns"), filterInsnsTotal);

    // Mechanism-specific blocks: only the populated ones, so insecure
    // and seccomp runs don't emit all-zero draco counters.
    if (sw.checks)
        core::exportStats(sw, registry, name("sw"));
    if (hw.syscalls)
        core::exportStats(hw, registry, name("hw"));
    if (slb.accesses || slb.preloadProbes)
        core::exportStats(slb, registry, name("slb"));
    if (stb.lookups)
        core::exportStats(stb, registry, name("stb"));
}

namespace {

/** Interval of the SPT Accessed-bit sweep (§VII-B). */
constexpr double kAccessedSweepNs = 500000.0;

/**
 * The per-event simulation loop shared by generated and replayed runs:
 * prices base time plus the mechanism check through @p pricer, tracks
 * the measurement window, and fires the periodic Accessed-bit sweep.
 */
class RunLoop
{
  public:
    RunLoop(MechanismPricer &pricer, const os::KernelCosts &costs,
            RunResult &result, obs::Tracer *tracer = nullptr)
        : _pricer(pricer), _costs(costs), _result(result), _tracer(tracer)
    {
    }

    /** Start attributing time to the result (end of warm-up). */
    void startCounting() { _counting = true; }

    void
    process(const workload::TraceEvent &event)
    {
        if (_counting)
            ++_result.syscalls;
        double baseNs = event.userWorkNs + _costs.syscallBaseNs;
        if (_counting) {
            _result.insecureNs += baseNs;
            _result.totalNs += baseNs;
        }
        _simNs += baseNs;

        // The check span opens when the call reaches kernel entry (base
        // work done) and closes when the check resolves; structure
        // events recorded inside price() land at the span's begin cycle.
        if (_tracer) {
            _tracer->setNowNs(_simNs);
            _tracer->beginSyscall(event.req.sid, event.req.pc);
        }
        EventPrice price = _pricer.price(event);
        if (_counting) {
            _result.totalNs += price.checkNs;
            _result.checkNs += price.checkNs;
            _result.filterInsnsTotal += price.filterInsns;
        }
        _simNs += price.checkNs;
        if (_tracer) {
            _tracer->setNowNs(_simNs);
            _tracer->endSyscall(price.flow);
            _tracer->maybeSample();
        }

        if (_pricer.hwEngine() && _simNs >= _nextSweepNs) {
            _pricer.periodicAccessedClear();
            _nextSweepNs = _simNs + kAccessedSweepNs;
        }
    }

    /** Copy the mechanism's statistics into the result. */
    void
    finish()
    {
        if (const auto *sw = _pricer.swChecker()) {
            _result.sw = sw->stats();
            _result.vatFootprintBytes = sw->vat().footprintBytes();
        }
        if (auto *hw = _pricer.hwEngine()) {
            _result.hw = hw->stats();
            _result.slb = hw->slbStats();
            _result.stb = hw->stbStats();
            _result.vatFootprintBytes =
                _pricer.hwProcess()->vat().footprintBytes();
        }
    }

  private:
    MechanismPricer &_pricer;
    const os::KernelCosts &_costs;
    RunResult &_result;
    obs::Tracer *_tracer;
    double _simNs = 0.0;
    double _nextSweepNs = kAccessedSweepNs;
    bool _counting = false;
};

/** Build a pricer from the run options (auxSeed resolved from seed). */
MechanismPricer
makePricer(const seccomp::Profile &profile, const RunOptions &options)
{
    PricerConfig config;
    config.filterCopies = options.filterCopies;
    config.shape = options.shape;
    config.costs = options.costs;
    config.hwPreload = options.hwPreload;
    config.slbGeometry = options.slbGeometry;
    config.tracer = options.tracer;
    uint64_t auxSeed = options.auxSeed
        ? options.auxSeed
        : splitSeed(options.seed, "aux");
    return MechanismPricer(options.mechanism, profile, config, auxSeed);
}

} // namespace

RunResult
ExperimentRunner::run(const workload::AppModel &app,
                      const seccomp::Profile &profile,
                      const RunOptions &options)
{
    RunResult result;
    result.workload = app.name;
    result.mechanism = mechanismName(options.mechanism);

    workload::TraceGenerator gen(app, options.seed);
    MechanismPricer pricer = makePricer(profile, options);
    RunLoop loop(pricer, *options.costs, result, options.tracer);

    // Cold start: prologue plus warm-up calls, excluded from the
    // measurement window like the paper's warm-up phase.
    for (const auto &event : gen.prologue())
        loop.process(event);
    for (size_t i = 0; i < options.warmupCalls; ++i)
        loop.process(gen.next());
    loop.startCounting();
    for (size_t i = 0; i < options.steadyCalls; ++i)
        loop.process(gen.next());

    loop.finish();
    return result;
}

RunResult
ExperimentRunner::replay(workload::EventStream &events,
                         const seccomp::Profile &profile,
                         const RunOptions &options,
                         const std::string &traceName)
{
    RunResult result;
    result.workload = traceName;
    result.mechanism = mechanismName(options.mechanism);

    MechanismPricer pricer = makePricer(profile, options);
    RunLoop loop(pricer, *options.costs, result, options.tracer);

    workload::TraceEvent event;
    size_t warmed = 0;
    for (; warmed < options.warmupCalls && events.next(event); ++warmed)
        loop.process(event);
    loop.startCounting();
    size_t measured = 0;
    while ((options.steadyCalls == 0 || measured < options.steadyCalls) &&
           events.next(event)) {
        loop.process(event);
        ++measured;
    }

    loop.finish();
    return result;
}

AppProfiles
makeAppProfiles(const workload::AppModel &app, uint64_t seed,
                size_t profiling_calls)
{
    workload::TraceGenerator gen(app, seed);
    seccomp::ProfileRecorder recorder;
    for (const auto &event : gen.prologue())
        recorder.record(event.req);
    for (size_t i = 0; i < profiling_calls; ++i)
        recorder.record(gen.next().req);
    return AppProfiles{
        recorder.makeNoArgs(app.name + "-noargs"),
        recorder.makeComplete(app.name + "-complete"),
    };
}

void
printMachineConfig()
{
    TextTable table("Table II: architectural configuration");
    table.setHeader({"component", "configuration"});
    table.addRow({"Multicore chip",
                  "10 OOO cores, 128-entry ROB, 2 GHz"});
    for (const auto &level : CacheHierarchy::levelConfigs()) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%llu KB, %u way, cumulative %.0f ns hit",
                      static_cast<unsigned long long>(
                          level.capacityBytes / 1024),
                      level.ways, level.hitLatencyNs);
        table.addRow({level.name, buf});
    }
    table.addRow({"DRAM", "~60 ns beyond L3"});
    table.addRow({"STB", "256 entries, 2 way"});
    table.addRow({"SLB (1..6 args)",
                  "32/64/64/32/32/16 entries, 4 way"});
    table.addRow({"Temporary Buffer", "8 entries"});
    table.addRow({"SPT", "384 entries, direct mapped"});
    table.print();
}

} // namespace draco::sim
