#include "sim/machine.hh"

#include <algorithm>

#include "seccomp/profile_gen.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace draco::sim {

const char *
mechanismName(Mechanism mechanism)
{
    switch (mechanism) {
      case Mechanism::Insecure: return "insecure";
      case Mechanism::Seccomp: return "seccomp";
      case Mechanism::DracoSW: return "draco-sw";
      case Mechanism::DracoHW: return "draco-hw";
    }
    return "?";
}

double
RunResult::stbHitRate() const
{
    return stb.lookups ? static_cast<double>(stb.hits) / stb.lookups : 0.0;
}

double
RunResult::slbAccessHitRate() const
{
    return slb.accesses
        ? static_cast<double>(slb.accessHits) / slb.accesses
        : 0.0;
}

double
RunResult::slbPreloadHitRate() const
{
    return slb.preloadProbes
        ? static_cast<double>(slb.preloadHits) / slb.preloadProbes
        : 0.0;
}

void
RunResult::exportMetrics(MetricRegistry &registry,
                         const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setText(name("workload"), workload);
    registry.setText(name("mechanism"), mechanism);
    registry.setGauge(name("total_ns"), totalNs);
    registry.setGauge(name("insecure_ns"), insecureNs);
    registry.setGauge(name("check_ns"), checkNs);
    registry.setGauge(name("normalized"), normalized());
    registry.setCounter(name("syscalls"), syscalls);
    registry.setGauge(name("check_ns_per_syscall"),
                      syscalls ? checkNs / static_cast<double>(syscalls)
                               : 0.0);
    registry.setCounter(name("vat_footprint_bytes"), vatFootprintBytes);
    registry.setCounter(name("filter_insns"), filterInsnsTotal);

    // Mechanism-specific blocks: only the populated ones, so insecure
    // and seccomp runs don't emit all-zero draco counters.
    if (sw.checks)
        core::exportStats(sw, registry, name("sw"));
    if (hw.syscalls)
        core::exportStats(hw, registry, name("hw"));
    if (slb.accesses || slb.preloadProbes)
        core::exportStats(slb, registry, name("slb"));
    if (stb.lookups)
        core::exportStats(stb, registry, name("stb"));
}

namespace {

/** Core clock assumed by the ROB hiding model (Table II: 2 GHz). */
constexpr double kCycleNs = 0.5;

/** ROB capacity (Table II). */
constexpr unsigned kRobEntries = 128;

/** Average dispatch IPC assumed when estimating dispatch→head time. */
constexpr double kAvgIpc = 2.0;

/** Interval of the SPT Accessed-bit sweep (§VII-B). */
constexpr double kAccessedSweepNs = 500000.0;

/**
 * Time between a syscall's dispatch into the ROB and its arrival at the
 * head: the instructions ahead of it must retire first. Sampled
 * uniformly over ROB occupancy.
 */
double
dispatchToHeadNs(Rng &rng)
{
    uint64_t ahead = rng.nextRange(16, kRobEntries - 1);
    return static_cast<double>(ahead) / kAvgIpc * kCycleNs;
}

} // namespace

RunResult
ExperimentRunner::run(const workload::AppModel &app,
                      const seccomp::Profile &profile,
                      const RunOptions &options)
{
    RunResult result;
    result.workload = app.name;
    result.mechanism = mechanismName(options.mechanism);

    const os::KernelCosts &costs = *options.costs;

    workload::TraceGenerator gen(app, options.seed);

    // Mechanism state.
    std::unique_ptr<seccomp::FilterChain> filter;
    std::unique_ptr<core::DracoSoftwareChecker> sw;
    std::unique_ptr<core::HwProcessContext> hwProc;
    std::unique_ptr<core::DracoHardwareEngine> hwEngine;
    std::unique_ptr<CacheHierarchy> cache;
    uint64_t auxSeed = options.auxSeed
        ? options.auxSeed
        : splitSeed(options.seed, "aux");
    Rng robRng(splitSeed(auxSeed, "rob"));

    switch (options.mechanism) {
      case Mechanism::Insecure:
        break;
      case Mechanism::Seccomp:
        filter = std::make_unique<seccomp::FilterChain>(
            seccomp::buildFilterChain(profile, options.shape));
        break;
      case Mechanism::DracoSW:
        sw = std::make_unique<core::DracoSoftwareChecker>(
            profile, options.filterCopies, options.shape);
        break;
      case Mechanism::DracoHW:
        hwProc = std::make_unique<core::HwProcessContext>(
            profile, options.filterCopies);
        hwEngine = options.slbGeometry
            ? std::make_unique<core::DracoHardwareEngine>(
                  options.hwPreload, *options.slbGeometry)
            : std::make_unique<core::DracoHardwareEngine>(
                  options.hwPreload);
        hwEngine->switchTo(hwProc.get());
        cache = std::make_unique<CacheHierarchy>(
            splitSeed(auxSeed, "cache"));
        break;
    }

    double nextSweepNs = kAccessedSweepNs;
    double simNs = 0.0;
    bool counting = false;

    auto processEvent = [&](const workload::TraceEvent &event) {
        if (counting)
            ++result.syscalls;
        double baseNs = event.userWorkNs + costs.syscallBaseNs;
        if (counting) {
            result.insecureNs += baseNs;
            result.totalNs += baseNs;
        }
        simNs += baseNs;

        double checkNs = 0.0;
        switch (options.mechanism) {
          case Mechanism::Insecure:
            break;

          case Mechanism::Seccomp: {
            os::SeccompData data = event.req.toSeccompData();
            for (unsigned copy = 0; copy < options.filterCopies; ++copy) {
                seccomp::BpfResult r = filter->run(data);
                checkNs +=
                    costs.seccompEntryNs + r.insnsExecuted * costs.bpfInsnNs;
                result.filterInsnsTotal += r.insnsExecuted;
            }
            break;
          }

          case Mechanism::DracoSW: {
            core::SwCheckOutcome out = sw->check(event.req);
            checkNs += costs.dracoSptLookupNs;
            if (out.hashedBytes > 0) {
                checkNs += 2 *
                    (costs.dracoHashFixedNs +
                     costs.dracoHashPerByteNs * out.hashedBytes);
                checkNs += out.vatProbes * costs.dracoVatProbeNs;
            }
            if (out.filterInsns > 0) {
                // Entry overhead applies once per attached filter copy.
                checkNs += options.filterCopies * costs.seccompEntryNs +
                    out.filterInsns * costs.bpfInsnNs;
                if (counting)
                    result.filterInsnsTotal += out.filterInsns;
            }
            if (out.vatInserted)
                checkNs += costs.dracoVatInsertNs;
            break;
          }

          case Mechanism::DracoHW: {
            cache->appPressure(event.bytesTouched);
            hwEngine->onDispatch(event.req.pc);
            core::HwSyscallResult out = hwEngine->onRobHead(event.req);

            // Preload fetches overlap with dispatch→head time.
            if (!out.preloadMemAddrs.empty()) {
                double window = dispatchToHeadNs(robRng);
                double fetchNs = 0.0;
                for (uint64_t addr : out.preloadMemAddrs)
                    fetchNs =
                        std::max(fetchNs, cache->access(addr).second);
                checkNs += std::max(0.0, fetchNs - window);
            }

            // Head-of-ROB reads stall retirement; the two cuckoo-way
            // probes are issued in parallel (§V-B).
            double headNs = 0.0;
            for (uint64_t addr : out.headMemAddrs)
                headNs = std::max(headNs, cache->access(addr).second);
            checkNs += headNs;

            if (out.filterRun) {
                checkNs += options.filterCopies * costs.seccompEntryNs +
                    out.filterInsns * costs.bpfInsnNs;
                if (counting)
                    result.filterInsnsTotal += out.filterInsns;
                if (out.vatInserted)
                    checkNs += costs.dracoVatInsertNs;
            }
            break;
          }
        }

        if (counting) {
            result.totalNs += checkNs;
            result.checkNs += checkNs;
        }
        simNs += checkNs;

        if (hwEngine && simNs >= nextSweepNs) {
            hwEngine->periodicAccessedClear();
            nextSweepNs = simNs + kAccessedSweepNs;
        }
    };

    // Cold start: prologue plus warm-up calls, excluded from the
    // measurement window like the paper's warm-up phase.
    for (const auto &event : gen.prologue())
        processEvent(event);
    for (size_t i = 0; i < options.warmupCalls; ++i)
        processEvent(gen.next());
    counting = true;
    for (size_t i = 0; i < options.steadyCalls; ++i)
        processEvent(gen.next());

    if (sw) {
        result.sw = sw->stats();
        result.vatFootprintBytes = sw->vat().footprintBytes();
    }
    if (hwEngine) {
        result.hw = hwEngine->stats();
        result.slb = hwEngine->slbStats();
        result.stb = hwEngine->stbStats();
        result.vatFootprintBytes = hwProc->vat().footprintBytes();
    }
    return result;
}

AppProfiles
makeAppProfiles(const workload::AppModel &app, uint64_t seed,
                size_t profiling_calls)
{
    workload::TraceGenerator gen(app, seed);
    seccomp::ProfileRecorder recorder;
    for (const auto &event : gen.prologue())
        recorder.record(event.req);
    for (size_t i = 0; i < profiling_calls; ++i)
        recorder.record(gen.next().req);
    return AppProfiles{
        recorder.makeNoArgs(app.name + "-noargs"),
        recorder.makeComplete(app.name + "-complete"),
    };
}

void
printMachineConfig()
{
    TextTable table("Table II: architectural configuration");
    table.setHeader({"component", "configuration"});
    table.addRow({"Multicore chip",
                  "10 OOO cores, 128-entry ROB, 2 GHz"});
    for (const auto &level : CacheHierarchy::levelConfigs()) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%llu KB, %u way, cumulative %.0f ns hit",
                      static_cast<unsigned long long>(
                          level.capacityBytes / 1024),
                      level.ways, level.hitLatencyNs);
        table.addRow({level.name, buf});
    }
    table.addRow({"DRAM", "~60 ns beyond L3"});
    table.addRow({"STB", "256 entries, 2 way"});
    table.addRow({"SLB (1..6 args)",
                  "32/64/64/32/32/16 entries, 4 way"});
    table.addRow({"Temporary Buffer", "8 entries"});
    table.addRow({"SPT", "384 entries, direct mapped"});
    table.print();
}

} // namespace draco::sim
