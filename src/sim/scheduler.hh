/**
 * @file
 * Multi-process scheduling on one Draco-equipped core (§VII-B).
 *
 * Context switches are where hardware Draco pays a restart cost: the
 * SLB, STB, and SPT are invalidated whenever a different process is
 * scheduled. The paper adds two mitigations — Accessed-bit-guided SPT
 * save/restore, and keeping state when the same process is rescheduled.
 * This simulator runs N processes round-robin with a configurable
 * quantum and measures the resulting overhead, with each mitigation
 * individually controllable for the ablation bench.
 */

#ifndef DRACO_SIM_SCHEDULER_HH
#define DRACO_SIM_SCHEDULER_HH

#include <memory>
#include <vector>

#include "sim/machine.hh"

namespace draco::sim {

/** Scheduling experiment knobs. */
struct SchedOptions {
    double quantumNs = 1.0e6;     ///< Scheduling quantum (default 1 ms).
    bool sptSaveRestore = true;   ///< §VII-B Accessed-bit mitigation.
    size_t totalCalls = 400000;   ///< Total syscalls across processes.
    uint64_t seed = 42;
    unsigned filterCopies = 1;
    const os::KernelCosts *costs = &os::newKernelCosts();
};

/** Scheduling experiment outcome. */
struct SchedResult {
    double totalNs = 0.0;
    double insecureNs = 0.0;
    uint64_t contextSwitches = 0;
    uint64_t syscalls = 0;
    core::HwEngineStats hw{};
    core::SlbStats slb{};
    core::StbStats stb{};

    /** @return totalNs / insecureNs. */
    double normalized() const
    {
        return insecureNs > 0.0 ? totalNs / insecureNs : 1.0;
    }
};

/**
 * Round-robin multi-process simulation of hardware Draco.
 */
class MultiProcessSimulator
{
  public:
    /**
     * Run @p apps round-robin under their own syscall-complete profiles.
     *
     * @param apps Workloads to interleave (each becomes one process).
     * @param options Experiment knobs.
     */
    SchedResult run(const std::vector<const workload::AppModel *> &apps,
                    const SchedOptions &options);
};

} // namespace draco::sim

#endif // DRACO_SIM_SCHEDULER_HH
