/**
 * @file
 * The experiment machine: prices a workload trace under one checking
 * mechanism and reports normalized execution time plus every statistic
 * the paper's figures need.
 *
 * The four mechanisms mirror the paper's evaluation:
 *  - Insecure: no checks (the normalization baseline).
 *  - Seccomp: the compiled BPF filter runs on every syscall; its cost is
 *    entry overhead plus executed instructions × per-instruction cost
 *    (JIT'd or interpreted, per KernelCosts).
 *  - DracoSW (§V-C): software SPT/VAT checking with filter fallback.
 *  - DracoHW (§VI): the per-core engine; fast flows are free, slow flows
 *    pay VAT memory latency through the cache hierarchy, partially
 *    hidden by the ROB for preloads.
 */

#ifndef DRACO_SIM_MACHINE_HH
#define DRACO_SIM_MACHINE_HH

#include <optional>
#include <string>

#include "core/hw_engine.hh"
#include "core/software.hh"
#include "obs/tracer.hh"
#include "os/kernelcosts.hh"
#include "seccomp/profile.hh"
#include "sim/cache.hh"
#include "workload/appmodel.hh"
#include "workload/generator.hh"

namespace draco::sim {

/** The checking mechanism under test. */
enum class Mechanism {
    Insecure,
    Seccomp,
    DracoSW,
    DracoHW,
};

/** @return Display name of @p mechanism. */
const char *mechanismName(Mechanism mechanism);

/** Knobs of one experiment run. */
struct RunOptions {
    Mechanism mechanism = Mechanism::Insecure;

    /** Attached filter copies; 2 models syscall-complete-2x. */
    unsigned filterCopies = 1;

    /** Dispatch shape of compiled filters (linear vs binary tree). */
    seccomp::DispatchShape shape = seccomp::DispatchShape::Linear;

    /** Kernel-generation cost parameters. */
    const os::KernelCosts *costs = &os::newKernelCosts();

    /** Hardware Draco: enable STB-driven SLB preloading. */
    bool hwPreload = true;

    /** Hardware Draco: override the SLB geometry (sizing ablation). */
    std::optional<std::array<core::TableGeometry, core::Slb::kMaxArgc>>
        slbGeometry;

    /** Steady-state syscalls to simulate after the prologue. */
    size_t steadyCalls = 200000;

    /**
     * Warm-up syscalls executed (populating VAT/SLB/STB and caches)
     * before measurement starts — the paper warms 250M instructions
     * before its 2B-instruction measurement window (§X-C). Warm-up
     * time is excluded from totalNs and insecureNs alike.
     */
    size_t warmupCalls = 20000;

    /** Trace seed; equal seeds make runs trace-identical. */
    uint64_t seed = 42;

    /**
     * Seed of the run's auxiliary randomness (ROB occupancy sampling,
     * cache placement noise) — streams that shape timing but never the
     * trace. 0 derives it from `seed`, preserving the rule that equal
     * seeds make runs fully deterministic; sweep drivers split a
     * distinct stream per (workload, profile, mechanism) cell here
     * while keeping `seed` shared so every mechanism column still sees
     * byte-identical syscalls.
     */
    uint64_t auxSeed = 0;

    /**
     * Event tracer for this run's track, or nullptr (off). When set,
     * every checked syscall becomes a timed span classified by its
     * execution flow, the mechanism's structures record their events on
     * the same track, and the telemetry sampler (if configured on the
     * tracer) snapshots hit-rate curves as sim time passes. Tracing
     * never changes the RunResult: traced and untraced runs are
     * bit-identical.
     */
    obs::Tracer *tracer = nullptr;
};

/** Everything measured during one run. */
struct RunResult {
    std::string workload;
    std::string mechanism;

    double totalNs = 0.0;    ///< Simulated execution time.
    double insecureNs = 0.0; ///< Same trace with no checks.
    double checkNs = 0.0;    ///< Time attributed to checking.
    uint64_t syscalls = 0;

    /** @return totalNs / insecureNs, the paper's reporting metric. */
    double normalized() const
    {
        return insecureNs > 0.0 ? totalNs / insecureNs : 1.0;
    }

    // Mechanism-specific statistics (zero-initialized when unused).
    core::SwCheckStats sw{};
    core::HwEngineStats hw{};
    core::SlbStats slb{};
    core::StbStats stb{};
    size_t vatFootprintBytes = 0;
    uint64_t filterInsnsTotal = 0;

    /** @return STB hit rate in [0,1] (hardware runs). */
    double stbHitRate() const;

    /** @return SLB access hit rate in [0,1] (hardware runs). */
    double slbAccessHitRate() const;

    /** @return SLB preload hit rate in [0,1] (hardware runs). */
    double slbPreloadHitRate() const;

    /**
     * Export the whole result under @p prefix: run identity, timing
     * (total/insecure/check ns, normalized, ns-per-syscall), and the
     * mechanism-specific counter blocks as nested `sw`/`hw`/`slb`/`stb`
     * groups.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;
};

/**
 * Runs one (workload, profile, mechanism) experiment.
 */
class ExperimentRunner
{
  public:
    /**
     * Simulate @p app under @p profile with @p options.
     *
     * The trace depends only on (app, seed), so different mechanisms
     * see byte-identical syscall streams.
     */
    RunResult run(const workload::AppModel &app,
                  const seccomp::Profile &profile,
                  const RunOptions &options);

    /**
     * Replay a recorded trace under @p profile with @p options.
     *
     * Pulls from @p events — an in-memory trace, a streaming `.dtrc`
     * reader, anything implementing EventStream — with O(1) memory
     * beyond the stream itself. The first options.warmupCalls events
     * warm the structures unmeasured; measurement then runs for
     * options.steadyCalls events (0 = until the stream is exhausted).
     * The same stream contents produce the same result regardless of
     * the stream's backing store.
     *
     * @param events Event source; consumed.
     * @param profile Attached profile.
     * @param options Run knobs (seed only feeds auxiliary timing
     *        randomness; the trace itself is fixed).
     * @param traceName Reported as RunResult::workload.
     */
    RunResult replay(workload::EventStream &events,
                     const seccomp::Profile &profile,
                     const RunOptions &options,
                     const std::string &traceName = "trace");
};

/** The two profiles §X-B generates for an application. */
struct AppProfiles {
    seccomp::Profile noargs;
    seccomp::Profile complete;
};

/**
 * Record a profiling trace of @p app (the strace step) and emit its
 * syscall-noargs and syscall-complete profiles.
 *
 * @param app Workload to profile.
 * @param seed Trace seed — use the same seed as the measurement run so
 *        the profile covers exactly the calls the run will make.
 * @param profiling_calls Trace length of the profiling run.
 */
AppProfiles makeAppProfiles(const workload::AppModel &app, uint64_t seed,
                            size_t profiling_calls = 300000);

/** Print the Table II architectural configuration. */
void printMachineConfig();

} // namespace draco::sim

#endif // DRACO_SIM_MACHINE_HH
