/**
 * @file
 * The software implementation of Draco (§V-C).
 *
 * Draco-in-software hooks the kernel's syscall entry point: it indexes
 * the (software) SPT with the syscall ID, and either allows immediately
 * (Valid bit set, no argument checks), probes the VAT for the hashed
 * argument key, or falls back to executing the Seccomp filter and — on
 * success — caches the validated set in the VAT. Profiles are
 * stateless, so a past validation never needs repeating (§V).
 *
 * The checker reports *what happened* (paths, probes, hashed bytes,
 * executed filter instructions); the sim module prices those events
 * using KernelCosts.
 */

#ifndef DRACO_CORE_SOFTWARE_HH
#define DRACO_CORE_SOFTWARE_HH

#include <cstdint>
#include <map>
#include <memory>

#include "core/checkspec.hh"
#include "core/vat.hh"
#include "os/kernelcosts.hh"
#include "seccomp/filter_builder.hh"
#include "seccomp/profile.hh"

namespace draco::core {

/** Which path a software-Draco check took. */
enum class SwPath {
    SptAllowAll,   ///< SPT Valid bit, no argument checking configured.
    VatHit,        ///< Argument set found already validated.
    FilterAllowed, ///< Filter ran and allowed; VAT updated.
    FilterDenied,  ///< Filter ran and denied.
};

/** Events of one software-Draco check, for semantic + timing use. */
struct SwCheckOutcome {
    bool allowed = false;
    SwPath path = SwPath::FilterDenied;
    unsigned hashedBytes = 0;  ///< Key bytes each hash function consumed.
    unsigned vatProbes = 0;    ///< Cuckoo-way probes performed (0 or 2).
    uint64_t filterInsns = 0;  ///< BPF instructions executed (all copies).
    bool vatInserted = false;  ///< A new set was cached.
    bool vatEvicted = false;   ///< Insertion displaced a victim.
};

/** Running totals over a checker's lifetime. */
struct SwCheckStats {
    uint64_t checks = 0;
    uint64_t sptAllowAll = 0;
    uint64_t vatHits = 0;
    uint64_t filterRuns = 0;
    uint64_t denials = 0;
    uint64_t filterInsns = 0;
    uint64_t vatInsertions = 0;
};

/** Export a software-checker counter block under @p prefix. */
void exportStats(const SwCheckStats &stats, MetricRegistry &registry,
                 const std::string &prefix);

/**
 * Price one software-Draco check in nanoseconds under @p costs: the
 * SPT indexed lookup, two CRC-64 hashes plus the cuckoo-way probes when
 * arguments were hashed, and the Seccomp entry plus per-instruction
 * cost when the fallback filter ran. This is the single §V-C cost
 * model — the simulator's pricer and the serve subsystem's shard
 * accounting both use it, so a check is priced identically wherever it
 * executes.
 *
 * @param outcome What the check did.
 * @param costs Kernel cost preset.
 * @param filterCopies Attached filter count (entry cost applies per
 *        copy).
 */
double swCheckCostNs(const SwCheckOutcome &outcome,
                     const os::KernelCosts &costs,
                     unsigned filterCopies = 1);

/**
 * The immutable, shareable compile of one profile: the policy itself,
 * its compiled fallback filter chain, and the derived per-syscall
 * check specs (the SPT template). Everything here is read-only after
 * construction and FilterChain::run() is const and stateless, so one
 * CompiledPolicy may back any number of checkers across any number of
 * threads — in real fleets most tenants run the identical
 * docker-default profile (§II), and sharing the compile turns a
 * million per-tenant copies into one.
 *
 * programKey is the CRC-64 (ECMA) of the canonical program bytes —
 * the content address the lifecycle subsystem dedups and snapshots
 * against.
 */
struct CompiledPolicy {
    seccomp::Profile profile;
    seccomp::DispatchShape shape;
    seccomp::FilterChain filter;
    std::map<uint16_t, CheckSpec> specs;
    uint64_t programKey = 0;

    CompiledPolicy(const seccomp::Profile &profile_,
                   seccomp::DispatchShape shape_);

    /** Compile @p profile into a shareable policy. */
    static std::shared_ptr<const CompiledPolicy> compile(
        const seccomp::Profile &profile,
        seccomp::DispatchShape shape = seccomp::DispatchShape::Linear);
};

/**
 * CRC-64 (ECMA) over the canonical bytes of a compiled filter chain:
 * program count, then per program its instruction count and each
 * instruction as (code, jt, jf, k) little-endian. Two chains share a
 * key iff they are instruction-identical.
 */
uint64_t filterProgramKey(const seccomp::FilterChain &chain);

/**
 * Kernel-resident software Draco for one process.
 */
class DracoSoftwareChecker
{
  public:
    /**
     * @param profile Policy to enforce (copied).
     * @param filter_copies Attached filter count: 1 normally, 2 models
     *        the syscall-complete-2x configuration (§IV-A).
     * @param shape Dispatch shape of the compiled fallback filter.
     */
    explicit DracoSoftwareChecker(
        const seccomp::Profile &profile, unsigned filter_copies = 1,
        seccomp::DispatchShape shape = seccomp::DispatchShape::Linear);

    /**
     * Share a pre-compiled policy instead of compiling privately —
     * the VAT and counters stay per-checker (copy-on-write state);
     * the profile, filter, and specs are the shared immutable part.
     */
    explicit DracoSoftwareChecker(
        std::shared_ptr<const CompiledPolicy> policy,
        unsigned filter_copies = 1);

    /** Check one system call at kernel entry. */
    SwCheckOutcome check(const os::SyscallRequest &req);

    /** @return The process's VAT. */
    const Vat &vat() const { return _vat; }

    /** @return Mutable VAT — snapshot restore repopulates it in place. */
    Vat &mutableVat() { return _vat; }

    /** @return The enforced profile. */
    const seccomp::Profile &profile() const { return _policy->profile; }

    /** @return The compiled fallback filter chain. */
    const seccomp::FilterChain &filter() const { return _policy->filter; }

    /** @return The shared compiled policy backing this checker. */
    const std::shared_ptr<const CompiledPolicy> &policy() const
    {
        return _policy;
    }

    /** @return Lifetime counters. */
    const SwCheckStats &stats() const { return _stats; }

    /** Replace the lifetime counters (snapshot restore). */
    void restoreStats(const SwCheckStats &stats) { _stats = stats; }

    /** Export checker counters and the VAT's `vat` group under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Attach @p tracer (nullptr detaches): each check() records an
     * SwCheck instant carrying the path it took (arg = obs::FlowCode),
     * filter executions record FilterRun with the instruction count,
     * and the VAT reports its insertions on the same track.
     */
    void setTracer(obs::Tracer *tracer);

  private:
    std::shared_ptr<const CompiledPolicy> _policy;
    unsigned _filterCopies;
    Vat _vat;
    SwCheckStats _stats;
    obs::Tracer *_tracer = nullptr;
};

} // namespace draco::core

#endif // DRACO_CORE_SOFTWARE_HH
