#include "core/hw_engine.hh"

#include <algorithm>
#include <atomic>

#include "support/logging.hh"

namespace draco::core {

namespace {

/** Distinct software-SPT shadow region per process (cache-model only). */
uint64_t
allocateSoftSptBase()
{
    static std::atomic<uint64_t> next{0x500000000000ULL};
    return next.fetch_add(0x10000, std::memory_order_relaxed);
}

} // namespace

HwProcessContext::HwProcessContext(const seccomp::Profile &profile,
                                   unsigned filter_copies)
    : _profile(profile), _filterCopies(filter_copies),
      _filter(seccomp::buildFilterChain(profile)),
      _specs(deriveCheckSpecs(profile)),
      _softSptBase(allocateSoftSptBase())
{
    if (filter_copies == 0)
        fatal("HwProcessContext: need at least one filter copy");
    for (const auto &[sid, spec] : _specs)
        if (spec.checksArguments())
            _vat.configure(sid, spec.bitmask, spec.estimatedSets);
}

const CheckSpec *
HwProcessContext::spec(uint16_t sid) const
{
    auto it = _specs.find(sid);
    return it == _specs.end() ? nullptr : &it->second;
}

std::pair<bool, uint64_t>
HwProcessContext::runFilter(const os::SyscallRequest &req)
{
    os::SeccompData data = req.toSeccompData();
    uint64_t insns = 0;
    uint32_t action = 0;
    for (unsigned copy = 0; copy < _filterCopies; ++copy) {
        seccomp::BpfResult r = _filter.run(data);
        action = r.action;
        insns += r.insnsExecuted;
    }
    return {os::actionAllows(static_cast<os::SeccompAction>(action)),
            insns};
}

uint64_t
HwProcessContext::softSptAddress(uint16_t sid) const
{
    return _softSptBase + static_cast<uint64_t>(sid) * 16;
}

DracoHardwareEngine::DracoHardwareEngine(bool preload_enabled)
    : _preloadEnabled(preload_enabled)
{
}

DracoHardwareEngine::DracoHardwareEngine(
    bool preload_enabled,
    const std::array<TableGeometry, Slb::kMaxArgc> &slb_geometry)
    : _preloadEnabled(preload_enabled), _slb(slb_geometry)
{
}

DracoHardwareEngine::DracoHardwareEngine(bool preload_enabled,
                                         const EngineGeometry &geometry)
    : _preloadEnabled(preload_enabled), _spt(geometry.sptEntries),
      _slb(geometry.slb), _stb(geometry.stbEntries, geometry.stbWays)
{
}

EngineGeometry
EngineGeometry::smtPartition(unsigned contexts)
{
    if (contexts == 0)
        fatal("EngineGeometry::smtPartition: need at least one context");
    EngineGeometry geom;
    for (auto &sub : geom.slb) {
        unsigned ways = std::max(1u, sub.ways / contexts);
        unsigned sets = sub.sets();
        sub = TableGeometry{sets * ways, ways};
    }
    unsigned stbWays = std::max(1u, geom.stbWays / contexts);
    unsigned stbEntries = std::max(
        stbWays, geom.stbEntries / contexts / stbWays * stbWays);
    geom.stbEntries = stbEntries;
    geom.stbWays = stbWays;
    geom.sptEntries = std::max(1u, geom.sptEntries / contexts);
    return geom;
}

void
DracoHardwareEngine::setTracer(obs::Tracer *tracer)
{
    _tracer = tracer;
    if (_proc)
        _proc->vat().setTracer(tracer);
}

void
DracoHardwareEngine::switchTo(HwProcessContext *proc, bool spt_save_restore)
{
    if (proc == _proc)
        return; // Same process rescheduled: state is retained (§VII-B).

    // Scheduling the very first process onto an idle core is not a
    // context switch; the structures are already empty.
    if (_proc) {
        ++_stats.contextSwitches;
        if (_tracer)
            _tracer->record(obs::EventKind::ContextSwitch);
    }

    if (_proc && spt_save_restore) {
        _proc->savedSpt = _spt.accessedEntries();
        _stats.sptSavedEntries += _proc->savedSpt.size();
        if (_tracer) {
            _tracer->record(obs::EventKind::SptSave, 0, 0, 0,
                            _proc->savedSpt.size());
        }
    }
    if (_proc)
        _proc->vat().setTracer(nullptr);

    // Isolation: a different process must never observe cached state.
    _spt.invalidateAll();
    _slb.invalidateAll();
    _stb.invalidateAll();
    _temp.clear();
    _pending = Pending{};

    _proc = proc;
    if (_proc)
        _proc->vat().setTracer(_tracer);
    if (_proc && spt_save_restore) {
        for (const auto &entry : _proc->savedSpt)
            _spt.fill(entry.sid, entry.bitmask);
        _stats.sptRestoredEntries += _proc->savedSpt.size();
        if (_tracer) {
            _tracer->record(obs::EventKind::SptRestore, 0, 0, 0,
                            _proc->savedSpt.size());
        }
    }
}

void
DracoHardwareEngine::onDispatch(uint64_t pc)
{
    _pending = Pending{};
    _pending.valid = true;
    _pending.pc = pc;
    if (!_proc || !_preloadEnabled)
        return;

    auto prediction = _stb.lookup(pc);
    if (!prediction) {
        if (_tracer)
            _tracer->record(obs::EventKind::StbMiss, 0, pc);
        return;
    }
    _pending.stbHit = true;

    uint16_t sid = prediction->sid;
    if (_tracer)
        _tracer->record(obs::EventKind::StbHit, sid, pc);
    const CheckSpec *spec = _proc->spec(sid);
    if (!spec)
        return;

    // Hardware SPT provides the bitmask/argument count; fill from the
    // in-memory software SPT on a miss (a hidden, speculative read).
    auto sptEntry = _spt.lookup(sid);
    if (!sptEntry) {
        _pending.memAddrs.push_back(_proc->softSptAddress(sid));
        _spt.fill(sid, spec->bitmask);
        sptEntry = _spt.lookup(sid);
    }

    if (spec->bitmask == 0)
        return; // ID-only: nothing to preload.

    unsigned argc = spec->argCount();
    if (_slb.preloadProbe(argc, sid, prediction->token)) {
        _pending.preloadHit = true;
        if (_tracer)
            _tracer->record(obs::EventKind::SlbPreloadHit, sid, pc);
        return;
    }

    // SLB preload miss: fetch the predicted VAT location and stage it
    // in the Temporary Buffer — never directly into the SLB (§IX).
    if (_tracer)
        _tracer->record(obs::EventKind::SlbPreloadMiss, sid, pc);
    _pending.memAddrs.push_back(
        _proc->vat().entryAddress(sid, prediction->token));
    auto contents = _proc->vat().slotContents(sid, prediction->token);
    if (contents) {
        _temp.stage(TemporaryBuffer::Staged{sid, argc, prediction->token,
                                            *contents});
    }
}

void
DracoHardwareEngine::onSquash()
{
    ++_stats.squashes;
    if (_tracer) {
        _tracer->record(obs::EventKind::TempSquash, 0, _pending.pc, 0,
                        _temp.size());
    }
    _temp.clear();
    _pending = Pending{};
}

HwSyscallResult
DracoHardwareEngine::onRobHead(const os::SyscallRequest &req)
{
    if (!_proc)
        panic("DracoHardwareEngine: no process scheduled");

    ++_stats.syscalls;
    HwSyscallResult result;

    bool pendingMatches = _pending.valid && _pending.pc == req.pc;
    result.stbHit = pendingMatches && _pending.stbHit;
    result.preloadHit = pendingMatches && _pending.preloadHit;
    if (pendingMatches) {
        result.preloadMemAddrs = std::move(_pending.memAddrs);
    } else {
        // The Temporary Buffer holds entries staged by a *different*
        // PC's prediction (or by a dispatch that never reached the
        // head). Committing them would let stale speculative preloads
        // fill the SLB, so they are dropped like a squash (§IX).
        if (_tracer && _temp.size() != 0) {
            _tracer->record(obs::EventKind::TempStaleDrop, req.sid,
                            req.pc, 0, _temp.size());
        }
        _temp.clear();
    }
    _pending = Pending{};

    const CheckSpec *spec = _proc->spec(req.sid);
    if (!spec) {
        // SPT Valid bit clear: the OS runs the Seccomp filter, which
        // (for whitelist profiles) rejects the call.
        auto [allowed, insns] = _proc->runFilter(req);
        if (_tracer) {
            _tracer->record(obs::EventKind::FilterRun, req.sid, req.pc,
                            0, insns);
        }
        result.filterRun = true;
        result.filterInsns = insns;
        result.allowed = allowed;
        result.flow = allowed ? HwFlow::F6 : HwFlow::Denied;
        ++_stats.flows[static_cast<size_t>(result.flow)];
        return result;
    }

    auto sptEntry = _spt.lookup(req.sid);
    if (!sptEntry) {
        // Fill from the software SPT; this read stalls at the head.
        result.headMemAddrs.push_back(_proc->softSptAddress(req.sid));
        _spt.fill(req.sid, spec->bitmask);
    }

    if (spec->bitmask == 0) {
        result.allowed = true;
        result.flow = HwFlow::IdOnly;
        // Keep the STB warm so the SID predicts on the next visit.
        _stb.update(req.pc, req.sid, VatToken{});
        ++_stats.flows[static_cast<size_t>(HwFlow::IdOnly)];
        return result;
    }

    seccomp::ArgVector args;
    std::copy(req.args.begin(), req.args.end(), args.begin());
    ArgKey key(spec->bitmask, args);
    unsigned argc = spec->argCount();

    // Commit any staged preload for this syscall: the non-speculative
    // access is what moves Temporary Buffer contents into the SLB.
    if (auto staged = _temp.take(req.sid)) {
        _slb.fill(staged->argc, staged->sid, staged->token, staged->key);
        if (_tracer)
            _tracer->record(obs::EventKind::TempCommit, req.sid, req.pc);
    }

    auto accessToken = _slb.accessLookup(argc, req.sid, key);
    if (_tracer) {
        _tracer->record(accessToken ? obs::EventKind::SlbAccessHit
                                    : obs::EventKind::SlbAccessMiss,
                        req.sid, req.pc);
    }
    if (accessToken) {
        result.accessHit = true;
        result.allowed = true;
        result.flow = !result.stbHit ? HwFlow::F5
            : result.preloadHit      ? HwFlow::F1
                                     : HwFlow::F3;
        // Flows 3 and 5 (re)fill the STB with the correct SID and hash.
        _stb.update(req.pc, req.sid, *accessToken);
        ++_stats.flows[static_cast<size_t>(result.flow)];
        return result;
    }

    // SLB access miss: probe the VAT's two ways at the ROB head.
    Vat &vat = _proc->vat();
    result.headMemAddrs.push_back(vat.entryAddress(
        req.sid, VatToken{CuckooWay::H1, vatHash(CuckooWay::H1, key)}));
    result.headMemAddrs.push_back(vat.entryAddress(
        req.sid, VatToken{CuckooWay::H2, vatHash(CuckooWay::H2, key)}));

    auto vatHit = vat.lookup(req.sid, key);
    if (!vatHit) {
        // Not validated yet: the OS runs the filter (SWCheckNeeded path,
        // §VII-B) and, on success, updates the VAT.
        auto [allowed, insns] = _proc->runFilter(req);
        if (_tracer) {
            _tracer->record(obs::EventKind::FilterRun, req.sid, req.pc,
                            0, insns);
        }
        result.filterRun = true;
        result.filterInsns = insns;
        result.allowed = allowed;
        if (!allowed) {
            result.flow = HwFlow::Denied;
            ++_stats.flows[static_cast<size_t>(HwFlow::Denied)];
            return result;
        }
        vat.insert(req.sid, key);
        result.vatInserted = true;
        // Under extreme pressure the displacement chain can circle back
        // and evict the entry just inserted; the call is still allowed,
        // it just stays uncached this time.
        vatHit = vat.lookup(req.sid, key);
    } else {
        result.allowed = true;
    }

    result.flow = !result.stbHit ? HwFlow::F6
        : result.preloadHit      ? HwFlow::F2
                                 : HwFlow::F4;
    if (vatHit) {
        _slb.fill(argc, req.sid, vatHit->token, key);
        _stb.update(req.pc, req.sid, vatHit->token);
    }
    ++_stats.flows[static_cast<size_t>(result.flow)];
    return result;
}

HwSyscallResult
DracoHardwareEngine::onSyscall(const os::SyscallRequest &req)
{
    onDispatch(req.pc);
    return onRobHead(req);
}

const char *
hwFlowMetricName(HwFlow flow)
{
    switch (flow) {
      case HwFlow::IdOnly: return "id_only";
      case HwFlow::F1: return "f1";
      case HwFlow::F2: return "f2";
      case HwFlow::F3: return "f3";
      case HwFlow::F4: return "f4";
      case HwFlow::F5: return "f5";
      case HwFlow::F6: return "f6";
      case HwFlow::Denied: return "denied";
    }
    return "?";
}

void
exportStats(const HwEngineStats &stats, MetricRegistry &registry,
            const std::string &prefix)
{
    auto name = [&](const std::string &metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("syscalls"), stats.syscalls);
    registry.setCounter(name("context_switches"),
                        stats.contextSwitches);
    registry.setCounter(name("spt_saved_entries"),
                        stats.sptSavedEntries);
    registry.setCounter(name("spt_restored_entries"),
                        stats.sptRestoredEntries);
    registry.setCounter(name("squashes"), stats.squashes);

    uint64_t fast = 0;
    for (size_t i = 0; i < stats.flows.size(); ++i) {
        HwFlow flow = static_cast<HwFlow>(i);
        registry.setCounter(
            name(std::string("flows.") + hwFlowMetricName(flow)),
            stats.flows[i]);
        HwSyscallResult probe;
        probe.flow = flow;
        if (probe.fast())
            fast += stats.flows[i];
    }
    uint64_t denied =
        stats.flows[static_cast<size_t>(HwFlow::Denied)];
    registry.setCounter(name("flows.fast"), fast);
    registry.setCounter(name("flows.slow"),
                        stats.syscalls - fast - denied);
    registry.setGauge(name("flows.fast_fraction"),
                      stats.syscalls
                          ? static_cast<double>(fast) /
                              static_cast<double>(stats.syscalls)
                          : 0.0);
}

void
HwProcessContext::exportMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    _vat.exportMetrics(registry,
                       MetricRegistry::join(prefix, "vat"));
}

void
DracoHardwareEngine::exportMetrics(MetricRegistry &registry,
                                   const std::string &prefix) const
{
    exportStats(_stats, registry, prefix);
    _slb.exportMetrics(registry, MetricRegistry::join(prefix, "slb"));
    _stb.exportMetrics(registry, MetricRegistry::join(prefix, "stb"));
    _spt.exportMetrics(registry, MetricRegistry::join(prefix, "spt"));
    if (_proc)
        _proc->exportMetrics(registry, prefix);
}

} // namespace draco::core
