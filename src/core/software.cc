#include "core/software.hh"

#include <algorithm>

#include "hash/crc64.hh"
#include "support/binio.hh"
#include "support/logging.hh"

namespace draco::core {

uint64_t
filterProgramKey(const seccomp::FilterChain &chain)
{
    std::vector<uint8_t> bytes;
    binio::putVarint(bytes, chain.programs().size());
    for (const seccomp::BpfProgram &program : chain.programs()) {
        binio::putVarint(bytes, program.insns().size());
        for (const seccomp::BpfInsn &insn : program.insns()) {
            binio::putU16(bytes, insn.code);
            binio::putU8(bytes, insn.jt);
            binio::putU8(bytes, insn.jf);
            binio::putU32(bytes, insn.k);
        }
    }
    return crc64Ecma().compute(bytes.data(), bytes.size());
}

CompiledPolicy::CompiledPolicy(const seccomp::Profile &profile_,
                               seccomp::DispatchShape shape_)
    : profile(profile_), shape(shape_),
      filter(seccomp::buildFilterChain(profile_, shape_)),
      specs(deriveCheckSpecs(profile_)),
      programKey(filterProgramKey(filter))
{
}

std::shared_ptr<const CompiledPolicy>
CompiledPolicy::compile(const seccomp::Profile &profile,
                        seccomp::DispatchShape shape)
{
    return std::make_shared<const CompiledPolicy>(profile, shape);
}

DracoSoftwareChecker::DracoSoftwareChecker(const seccomp::Profile &profile,
                                           unsigned filter_copies,
                                           seccomp::DispatchShape shape)
    : DracoSoftwareChecker(CompiledPolicy::compile(profile, shape),
                           filter_copies)
{
}

DracoSoftwareChecker::DracoSoftwareChecker(
    std::shared_ptr<const CompiledPolicy> policy, unsigned filter_copies)
    : _policy(std::move(policy)), _filterCopies(filter_copies)
{
    if (!_policy)
        fatal("DracoSoftwareChecker: null compiled policy");
    if (filter_copies == 0)
        fatal("DracoSoftwareChecker: need at least one filter copy");
    // The OS sizes one VAT table per argument-checking syscall from the
    // profile's estimated set counts (§VII-A).
    for (const auto &[sid, spec] : _policy->specs)
        if (spec.checksArguments())
            _vat.configure(sid, spec.bitmask, spec.estimatedSets);
}

namespace {

/** @return The trace flow code of a software-check path. */
obs::FlowCode
swPathFlow(SwPath path)
{
    switch (path) {
      case SwPath::SptAllowAll: return obs::FlowCode::SptAllowAll;
      case SwPath::VatHit: return obs::FlowCode::VatHit;
      case SwPath::FilterAllowed: return obs::FlowCode::FilterAllowed;
      case SwPath::FilterDenied: return obs::FlowCode::Denied;
    }
    return obs::FlowCode::Denied;
}

} // namespace

void
DracoSoftwareChecker::setTracer(obs::Tracer *tracer)
{
    _tracer = tracer;
    _vat.setTracer(tracer);
}

SwCheckOutcome
DracoSoftwareChecker::check(const os::SyscallRequest &req)
{
    ++_stats.checks;
    SwCheckOutcome out;

    auto runFilter = [&] {
        os::SeccompData data = req.toSeccompData();
        seccomp::BpfResult result{};
        for (unsigned copy = 0; copy < _filterCopies; ++copy) {
            seccomp::BpfResult r = _policy->filter.run(data);
            result.action = r.action; // identical copies agree
            result.insnsExecuted += r.insnsExecuted;
        }
        ++_stats.filterRuns;
        _stats.filterInsns += result.insnsExecuted;
        out.filterInsns = result.insnsExecuted;
        if (_tracer) {
            _tracer->record(obs::EventKind::FilterRun, req.sid, req.pc,
                            0, result.insnsExecuted);
        }
        return os::actionAllows(
            static_cast<os::SeccompAction>(result.action));
    };

    auto traced = [&](SwCheckOutcome &o) -> SwCheckOutcome & {
        if (_tracer) {
            _tracer->record(obs::EventKind::SwCheck, req.sid, req.pc,
                            static_cast<uint8_t>(swPathFlow(o.path)));
        }
        return o;
    };

    auto it = _policy->specs.find(req.sid);
    if (it == _policy->specs.end()) {
        // SPT Valid bit clear: nothing cached can help; the filter
        // decides (and, for whitelist profiles, denies).
        bool allowed = runFilter();
        out.allowed = allowed;
        out.path = allowed ? SwPath::FilterAllowed : SwPath::FilterDenied;
        if (!allowed)
            ++_stats.denials;
        return traced(out);
    }

    const CheckSpec &spec = it->second;
    if (!spec.checksArguments()) {
        ++_stats.sptAllowAll;
        out.allowed = true;
        out.path = SwPath::SptAllowAll;
        return traced(out);
    }

    seccomp::ArgVector args;
    std::copy(req.args.begin(), req.args.end(), args.begin());
    ArgKey key(spec.bitmask, args);
    out.hashedBytes = key.size();
    out.vatProbes = 2;

    if (_vat.lookup(req.sid, key)) {
        ++_stats.vatHits;
        out.allowed = true;
        out.path = SwPath::VatHit;
        return traced(out);
    }

    bool allowed = runFilter();
    out.allowed = allowed;
    if (allowed) {
        out.vatInserted = true;
        out.vatEvicted = _vat.insert(req.sid, key);
        ++_stats.vatInsertions;
        out.path = SwPath::FilterAllowed;
    } else {
        ++_stats.denials;
        out.path = SwPath::FilterDenied;
    }
    return traced(out);
}

double
swCheckCostNs(const SwCheckOutcome &outcome, const os::KernelCosts &costs,
              unsigned filterCopies)
{
    double ns = costs.dracoSptLookupNs;
    if (outcome.hashedBytes > 0) {
        ns += 2 * (costs.dracoHashFixedNs +
                   costs.dracoHashPerByteNs * outcome.hashedBytes);
        ns += outcome.vatProbes * costs.dracoVatProbeNs;
    }
    if (outcome.filterInsns > 0) {
        // Entry overhead applies once per attached filter copy.
        ns += filterCopies * costs.seccompEntryNs +
              outcome.filterInsns * costs.bpfInsnNs;
    }
    if (outcome.vatInserted)
        ns += costs.dracoVatInsertNs;
    return ns;
}

void
exportStats(const SwCheckStats &stats, MetricRegistry &registry,
            const std::string &prefix)
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("checks"), stats.checks);
    registry.setCounter(name("spt_allow_all"), stats.sptAllowAll);
    registry.setCounter(name("vat_hits"), stats.vatHits);
    registry.setCounter(name("filter_runs"), stats.filterRuns);
    registry.setCounter(name("denials"), stats.denials);
    registry.setCounter(name("filter_insns"), stats.filterInsns);
    registry.setCounter(name("vat_insertions"), stats.vatInsertions);
    registry.setGauge(name("vat_hit_rate"),
                      stats.checks
                          ? static_cast<double>(stats.vatHits) /
                              static_cast<double>(stats.checks)
                          : 0.0);
}

void
DracoSoftwareChecker::exportMetrics(MetricRegistry &registry,
                                    const std::string &prefix) const
{
    exportStats(_stats, registry, prefix);
    _vat.exportMetrics(registry, MetricRegistry::join(prefix, "vat"));
}

} // namespace draco::core
