/**
 * @file
 * Derivation of Draco per-syscall check specifications from a Profile.
 *
 * The OS populates Draco's SPT from the process's Seccomp profile
 * (§VII-A): each allowed syscall gets a Valid bit, the Argument Bitmask
 * selecting which argument bytes are checked, and a VAT table sized from
 * the estimated number of argument sets. CheckSpec is that derivation:
 * it decides, per syscall, whether checking is ID-only (bitmask 0) or
 * argument-based, and enumerates the whitelisted tuples the VAT will
 * hold once validated.
 */

#ifndef DRACO_CORE_CHECKSPEC_HH
#define DRACO_CORE_CHECKSPEC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "seccomp/profile.hh"

namespace draco::core {

/** Per-syscall checking recipe derived from a profile rule. */
struct CheckSpec {
    uint16_t sid = 0;

    /**
     * Argument Bitmask: bit (arg*8 + byte) selects a checked byte. Zero
     * means the syscall is whitelisted by ID alone — an SPT Valid-bit
     * check with no VAT involvement.
     */
    uint64_t bitmask = 0;

    /** Estimated distinct argument sets (VAT sizing input). */
    size_t estimatedSets = 0;

    /** @return true when the rule requires argument checking. */
    bool checksArguments() const { return bitmask != 0; }

    /** @return Number of arguments with at least one selected byte. */
    unsigned argCount() const;
};

/**
 * Derive the check specification for every syscall a profile allows.
 *
 * AllowAll rules (and rules on syscalls with no checkable arguments)
 * become ID-only specs. AllowTuples rules check the full non-pointer
 * bitmask. PerArgValues rules restrict the bitmask to the constrained
 * arguments and enumerate the cross product of their value sets (capped;
 * real rules are single-argument, so the product stays tiny).
 *
 * @param profile Source policy.
 * @return sid → CheckSpec for every allowed syscall.
 */
std::map<uint16_t, CheckSpec> deriveCheckSpecs(
    const seccomp::Profile &profile);

/**
 * Extract the bitmask-selected bytes of an argument vector, in argument
 * order — the byte string both Draco implementations hash and compare.
 */
class ArgKey
{
  public:
    /** Maximum selected bytes (6 args × 8 bytes). */
    static constexpr unsigned kMaxBytes = 48;

    ArgKey() = default;

    /**
     * Build a key by selecting @p bitmask bytes from @p args.
     */
    ArgKey(uint64_t bitmask, const seccomp::ArgVector &args);

    /**
     * Rebuild a key from a previously-extracted byte string — the
     * snapshot decoder's inverse of data()/size(). @p len beyond
     * kMaxBytes is rejected with an empty key.
     */
    static ArgKey fromBytes(const uint8_t *bytes, unsigned len);

    /** @return Selected byte string. */
    const uint8_t *data() const { return _bytes; }

    /** @return Number of selected bytes. */
    unsigned size() const { return _len; }

    bool operator==(const ArgKey &other) const;

  private:
    uint8_t _bytes[kMaxBytes] = {};
    uint8_t _len = 0;
};

} // namespace draco::core

#endif // DRACO_CORE_CHECKSPEC_HH
