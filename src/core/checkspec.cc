#include "core/checkspec.hh"

#include <cstring>

#include "support/logging.hh"

namespace draco::core {

unsigned
CheckSpec::argCount() const
{
    unsigned count = 0;
    for (unsigned arg = 0; arg < os::kMaxSyscallArgs; ++arg)
        if ((bitmask >> (arg * 8)) & 0xff)
            ++count;
    return count;
}

std::map<uint16_t, CheckSpec>
deriveCheckSpecs(const seccomp::Profile &profile)
{
    std::map<uint16_t, CheckSpec> specs;
    for (const auto &[sid, rule] : profile.rules()) {
        const auto *desc = os::syscallById(sid);
        if (!desc)
            continue;

        CheckSpec spec;
        spec.sid = sid;

        switch (rule.kind) {
          case seccomp::RuleKind::AllowAll:
            spec.bitmask = 0;
            spec.estimatedSets = 0;
            break;

          case seccomp::RuleKind::AllowTuples:
            if (desc->checkedArgCount() == 0 || rule.tuples.empty()) {
                spec.bitmask = 0;
                spec.estimatedSets = 0;
            } else {
                spec.bitmask = desc->argumentBitmask();
                spec.estimatedSets = rule.tuples.size();
            }
            break;

          case seccomp::RuleKind::PerArgValues: {
            if (rule.perArg.empty()) {
                spec.bitmask = 0;
                spec.estimatedSets = 0;
                break;
            }
            uint64_t mask = 0;
            size_t product = 1;
            for (const auto &[arg, values] : rule.perArg) {
                // Full 64-bit comparison of each constrained argument.
                mask |= 0xffULL << (arg * 8);
                product *= std::max<size_t>(1, values.size());
            }
            spec.bitmask = mask;
            spec.estimatedSets = product;
            break;
          }
        }
        specs.emplace(sid, spec);
    }
    return specs;
}

ArgKey::ArgKey(uint64_t bitmask, const seccomp::ArgVector &args)
{
    for (unsigned arg = 0; arg < os::kMaxSyscallArgs; ++arg) {
        uint8_t byteMask = (bitmask >> (arg * 8)) & 0xff;
        if (!byteMask)
            continue;
        uint64_t value = args[arg];
        for (unsigned b = 0; b < 8; ++b) {
            if (byteMask & (1u << b)) {
                if (_len >= kMaxBytes)
                    panic("ArgKey overflow");
                _bytes[_len++] =
                    static_cast<uint8_t>((value >> (b * 8)) & 0xff);
            }
        }
    }
}

ArgKey
ArgKey::fromBytes(const uint8_t *bytes, unsigned len)
{
    ArgKey key;
    if (len > kMaxBytes)
        return key;
    std::memcpy(key._bytes, bytes, len);
    key._len = static_cast<uint8_t>(len);
    return key;
}

bool
ArgKey::operator==(const ArgKey &other) const
{
    return _len == other._len &&
        std::memcmp(_bytes, other._bytes, _len) == 0;
}

} // namespace draco::core
