#include "core/hw_structures.hh"

#include <algorithm>

#include "support/logging.hh"

namespace draco::core {

HardwareSpt::HardwareSpt(unsigned entries)
{
    if (entries == 0)
        fatal("HardwareSpt: need at least one entry");
    _entries.assign(entries, HwSptEntry{});
}

std::optional<HwSptEntry>
HardwareSpt::lookup(uint16_t sid)
{
    ++_lookups;
    HwSptEntry &entry = _entries[sid % _entries.size()];
    if (!entry.valid || entry.sid != sid)
        return std::nullopt;
    ++_hits;
    entry.accessed = true;
    return entry;
}

void
HardwareSpt::fill(uint16_t sid, uint64_t bitmask)
{
    HwSptEntry &entry = _entries[sid % _entries.size()];
    entry.valid = true;
    entry.sid = sid;
    entry.bitmask = bitmask;
    entry.accessed = true;
}

void
HardwareSpt::invalidateAll()
{
    std::fill(_entries.begin(), _entries.end(), HwSptEntry{});
}

void
HardwareSpt::clearAccessed()
{
    for (auto &entry : _entries)
        entry.accessed = false;
}

std::vector<HwSptEntry>
HardwareSpt::accessedEntries() const
{
    std::vector<HwSptEntry> out;
    for (const auto &entry : _entries)
        if (entry.valid && entry.accessed)
            out.push_back(entry);
    return out;
}

void
HardwareSpt::exportMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("entries"), entries());
    registry.setCounter(name("lookups"), _lookups);
    registry.setCounter(name("hits"), _hits);
    registry.setGauge(name("hit_rate"),
                      _lookups ? static_cast<double>(_hits) /
                              static_cast<double>(_lookups)
                               : 0.0);
}

namespace {

/** Table II SLB subtable geometries, indexed by argc-1. */
constexpr std::array<TableGeometry, Slb::kMaxArgc> kDefaultSlbGeometry = {{
    {32, 4}, // 1 argument
    {64, 4}, // 2 arguments
    {64, 4}, // 3 arguments
    {32, 4}, // 4 arguments
    {32, 4}, // 5 arguments
    {16, 4}, // 6 arguments
}};

} // namespace

Slb::Slb()
    : Slb(kDefaultSlbGeometry)
{
}

Slb::Slb(const std::array<TableGeometry, kMaxArgc> &geometries)
{
    for (unsigned i = 0; i < kMaxArgc; ++i) {
        const TableGeometry &geom = geometries[i];
        if (geom.entries == 0 || geom.ways == 0 ||
            geom.entries % geom.ways != 0) {
            fatal("Slb: bad geometry for %u-arg subtable", i + 1);
        }
        _subtables[i].geom = geom;
        _subtables[i].entries.assign(geom.entries, SlbEntry{});
    }
}

Slb::Subtable &
Slb::subtableFor(unsigned argc)
{
    if (argc == 0 || argc > kMaxArgc)
        panic("Slb: argument count %u out of range", argc);
    return _subtables[argc - 1];
}

SlbEntry *
Slb::findEntry(Subtable &sub, uint16_t sid, const VatToken *token,
               const ArgKey *key)
{
    unsigned sets = sub.geom.sets();
    unsigned set = sid % sets;
    for (unsigned w = 0; w < sub.geom.ways; ++w) {
        SlbEntry &entry = sub.entries[set * sub.geom.ways + w];
        if (!entry.valid || entry.sid != sid)
            continue;
        if (token && !(entry.token == *token))
            continue;
        if (key && !(entry.key == *key))
            continue;
        return &entry;
    }
    return nullptr;
}

std::optional<VatToken>
Slb::accessLookup(unsigned argc, uint16_t sid, const ArgKey &key)
{
    ++_stats.accesses;
    Subtable &sub = subtableFor(argc);
    SlbEntry *entry = findEntry(sub, sid, nullptr, &key);
    if (!entry)
        return std::nullopt;
    ++_stats.accessHits;
    entry->lruStamp = ++_clock;
    return entry->token;
}

bool
Slb::preloadProbe(unsigned argc, uint16_t sid, const VatToken &token)
{
    ++_stats.preloadProbes;
    Subtable &sub = subtableFor(argc);
    // LRU intentionally untouched: speculative probes must leave no
    // side effects until the non-speculative access (§IX).
    SlbEntry *entry = findEntry(sub, sid, &token, nullptr);
    if (!entry)
        return false;
    ++_stats.preloadHits;
    return true;
}

void
Slb::fill(unsigned argc, uint16_t sid, const VatToken &token,
          const ArgKey &key)
{
    Subtable &sub = subtableFor(argc);
    // Refresh in place when the (sid, args) pair is already present.
    if (SlbEntry *existing = findEntry(sub, sid, nullptr, &key)) {
        existing->token = token;
        existing->lruStamp = ++_clock;
        return;
    }
    unsigned sets = sub.geom.sets();
    unsigned set = sid % sets;
    SlbEntry *victim = nullptr;
    for (unsigned w = 0; w < sub.geom.ways; ++w) {
        SlbEntry &entry = sub.entries[set * sub.geom.ways + w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    victim->valid = true;
    victim->sid = sid;
    victim->token = token;
    victim->key = key;
    victim->lruStamp = ++_clock;
}

void
Slb::invalidateAll()
{
    for (auto &sub : _subtables)
        for (auto &entry : sub.entries)
            entry = SlbEntry{};
}

const TableGeometry &
Slb::geometry(unsigned argc) const
{
    if (argc == 0 || argc > kMaxArgc)
        panic("Slb: argument count %u out of range", argc);
    return _subtables[argc - 1].geom;
}

void
exportStats(const SlbStats &stats, MetricRegistry &registry,
            const std::string &prefix)
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    auto rate = [](uint64_t hits, uint64_t total) {
        return total ? static_cast<double>(hits) /
                static_cast<double>(total)
                     : 0.0;
    };
    registry.setCounter(name("accesses"), stats.accesses);
    registry.setCounter(name("access_hits"), stats.accessHits);
    registry.setCounter(name("preload_probes"), stats.preloadProbes);
    registry.setCounter(name("preload_hits"), stats.preloadHits);
    registry.setGauge(name("access_hit_rate"),
                      rate(stats.accessHits, stats.accesses));
    registry.setGauge(name("preload_hit_rate"),
                      rate(stats.preloadHits, stats.preloadProbes));
}

void
Slb::exportMetrics(MetricRegistry &registry,
                   const std::string &prefix) const
{
    exportStats(_stats, registry, prefix);
}

Stb::Stb(unsigned entries, unsigned ways)
    : _ways(ways), _sets(ways ? entries / ways : 0)
{
    if (ways == 0 || entries == 0 || entries % ways != 0)
        fatal("Stb: bad geometry %u entries / %u ways", entries, ways);
    _entries.assign(entries, Entry{});
}

std::optional<Stb::Prediction>
Stb::lookup(uint64_t pc)
{
    ++_stats.lookups;
    unsigned set = static_cast<unsigned>((pc >> 4) % _sets);
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &entry = _entries[set * _ways + w];
        if (entry.valid && entry.pc == pc) {
            ++_stats.hits;
            entry.lruStamp = ++_clock;
            return Prediction{entry.sid, entry.token};
        }
    }
    return std::nullopt;
}

void
Stb::update(uint64_t pc, uint16_t sid, const VatToken &token)
{
    unsigned set = static_cast<unsigned>((pc >> 4) % _sets);
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &entry = _entries[set * _ways + w];
        if (entry.valid && entry.pc == pc) {
            entry.sid = sid;
            entry.token = token;
            entry.lruStamp = ++_clock;
            return;
        }
    }
    Entry *victim = nullptr;
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &entry = _entries[set * _ways + w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->sid = sid;
    victim->token = token;
    victim->lruStamp = ++_clock;
}

void
Stb::invalidateAll()
{
    std::fill(_entries.begin(), _entries.end(), Entry{});
}

void
exportStats(const StbStats &stats, MetricRegistry &registry,
            const std::string &prefix)
{
    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("lookups"), stats.lookups);
    registry.setCounter(name("hits"), stats.hits);
    registry.setGauge(name("hit_rate"),
                      stats.lookups
                          ? static_cast<double>(stats.hits) /
                              static_cast<double>(stats.lookups)
                          : 0.0);
}

void
Stb::exportMetrics(MetricRegistry &registry,
                   const std::string &prefix) const
{
    registry.setCounter(MetricRegistry::join(prefix, "entries"),
                        entries());
    exportStats(_stats, registry, prefix);
}

void
TemporaryBuffer::stage(const Staged &entry)
{
    if (_entries.size() >= kEntries)
        _entries.erase(_entries.begin());
    _entries.push_back(entry);
}

std::optional<TemporaryBuffer::Staged>
TemporaryBuffer::take(uint16_t sid)
{
    for (auto it = _entries.begin(); it != _entries.end(); ++it) {
        if (it->sid == sid) {
            Staged staged = *it;
            _entries.erase(it);
            return staged;
        }
    }
    return std::nullopt;
}

void
TemporaryBuffer::clear()
{
    _entries.clear();
}

} // namespace draco::core
