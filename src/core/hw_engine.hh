/**
 * @file
 * The hardware implementation of Draco (§VI): a per-core engine that
 * combines the hardware SPT, SLB, STB, and Temporary Buffer, preloads
 * the SLB when a system call enters the ROB, and resolves the check
 * when it reaches the ROB head — reporting which of the paper's six
 * execution flows (Table I) the call took, plus every memory access the
 * flow performed, so the timing model can price it.
 */

#ifndef DRACO_CORE_HW_ENGINE_HH
#define DRACO_CORE_HW_ENGINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/checkspec.hh"
#include "core/hw_structures.hh"
#include "core/software.hh"
#include "core/vat.hh"
#include "obs/tracer.hh"
#include "seccomp/filter_builder.hh"

namespace draco::core {

/**
 * Per-process state the OS maintains for hardware Draco: the profile,
 * its compiled fallback filter, the derived check specs (the software
 * SPT image), and the VAT.
 */
class HwProcessContext
{
  public:
    /**
     * @param profile Policy for this process (copied).
     * @param filter_copies 1, or 2 for syscall-complete-2x.
     */
    explicit HwProcessContext(const seccomp::Profile &profile,
                              unsigned filter_copies = 1);

    /** @return The check spec for @p sid, or nullptr if disallowed. */
    const CheckSpec *spec(uint16_t sid) const;

    /** Export per-process state (the VAT) under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /** @return The process's VAT. */
    Vat &vat() { return _vat; }
    const Vat &vat() const { return _vat; }

    /** Run the fallback filter; @return (allowed, instructions). */
    std::pair<bool, uint64_t> runFilter(const os::SyscallRequest &req);

    /** @return Synthetic address of the software SPT entry for @p sid. */
    uint64_t softSptAddress(uint16_t sid) const;

    /** Saved Accessed-bit SPT entries from the last switch-out. */
    std::vector<HwSptEntry> savedSpt;

  private:
    seccomp::Profile _profile;
    unsigned _filterCopies;
    seccomp::FilterChain _filter;
    std::map<uint16_t, CheckSpec> _specs;
    Vat _vat;
    uint64_t _softSptBase;
};

/** Classification of one hardware-checked system call. */
enum class HwFlow : uint8_t {
    IdOnly = 0,  ///< SPT Valid bit with empty bitmask; no SLB involved.
    F1 = 1,      ///< STB hit, preload hit, access hit (fast).
    F2 = 2,      ///< STB hit, preload hit, access miss (slow).
    F3 = 3,      ///< STB hit, preload miss, access hit (fast).
    F4 = 4,      ///< STB hit, preload miss, access miss (slow).
    F5 = 5,      ///< STB miss, access hit (fast).
    F6 = 6,      ///< STB miss, access miss (slow).
    Denied = 7,  ///< Filter ran and rejected the call.
};

/** Everything that happened while checking one system call. */
struct HwSyscallResult {
    bool allowed = false;
    HwFlow flow = HwFlow::Denied;
    bool stbHit = false;
    bool preloadHit = false;
    bool accessHit = false;

    bool filterRun = false;
    uint64_t filterInsns = 0;
    bool vatInserted = false;

    /** Memory reads issued while stalled at the ROB head. */
    std::vector<uint64_t> headMemAddrs;

    /** Memory reads issued during (hidden) preloading. */
    std::vector<uint64_t> preloadMemAddrs;

    /** @return true for the paper's fast flows (1, 3, 5, IdOnly). */
    bool fast() const
    {
        return flow == HwFlow::IdOnly || flow == HwFlow::F1 ||
            flow == HwFlow::F3 || flow == HwFlow::F5;
    }
};

/** Lifetime flow mix (Table I occupancy) and structure stats. */
struct HwEngineStats {
    std::array<uint64_t, 8> flows{}; ///< Indexed by HwFlow.
    uint64_t syscalls = 0;
    uint64_t contextSwitches = 0;
    uint64_t sptSavedEntries = 0;
    uint64_t sptRestoredEntries = 0;
    uint64_t squashes = 0;
};

/** @return Registry metric name of @p flow ("id_only", "f1", ...). */
const char *hwFlowMetricName(HwFlow flow);

/**
 * Export an engine counter block under @p prefix: syscall/context-
 * switch totals plus the Table-I occupancy as `flows.<name>` counters
 * and fast/slow aggregates.
 */
void exportStats(const HwEngineStats &stats, MetricRegistry &registry,
                 const std::string &prefix);

/**
 * Full geometry of one engine's hardware tables; defaults are Table II.
 * SMT partitions scale every structure down by the context count
 * (§VII-B).
 */
struct EngineGeometry {
    std::array<TableGeometry, Slb::kMaxArgc> slb = {{
        {32, 4}, {64, 4}, {64, 4}, {32, 4}, {32, 4}, {16, 4},
    }};
    unsigned stbEntries = Stb::kEntries;
    unsigned stbWays = Stb::kWays;
    unsigned sptEntries = HardwareSpt::kEntries;

    /**
     * @return The Table II geometry scaled down for one of
     *         @p contexts SMT partitions (associativity shrinks; set
     *         counts are preserved where possible).
     */
    static EngineGeometry smtPartition(unsigned contexts);
};

/**
 * Per-core Draco hardware.
 */
class DracoHardwareEngine
{
  public:
    /**
     * @param preload_enabled When false, the STB never triggers SLB
     *        preloading (the ablation of §XI-B's recommendation).
     */
    explicit DracoHardwareEngine(bool preload_enabled = true);

    /** Custom SLB geometry constructor (sizing ablation). */
    DracoHardwareEngine(bool preload_enabled,
                        const std::array<TableGeometry, Slb::kMaxArgc>
                            &slb_geometry);

    /** Full custom geometry constructor (SMT partitions). */
    DracoHardwareEngine(bool preload_enabled,
                        const EngineGeometry &geometry);

    /**
     * Make @p proc the running process on this core.
     *
     * Switching to a *different* process saves the Accessed-bit SPT
     * entries of the outgoing process (when @p spt_save_restore is on),
     * invalidates SLB/STB/SPT/Temporary Buffer, and restores the
     * incoming process's saved SPT entries. Rescheduling the same
     * process leaves everything intact (§VII-B).
     */
    void switchTo(HwProcessContext *proc, bool spt_save_restore = true);

    /** A system call instruction entered the ROB at @p pc. */
    void onDispatch(uint64_t pc);

    /** The speculative path was squashed; staged preloads vanish. */
    void onSquash();

    /** The system call reached the ROB head; resolve the check. */
    HwSyscallResult onRobHead(const os::SyscallRequest &req);

    /** Convenience: dispatch immediately followed by head resolution. */
    HwSyscallResult onSyscall(const os::SyscallRequest &req);

    /** @return The running process, or nullptr. */
    HwProcessContext *process() { return _proc; }

    /** @return SLB statistics (Fig. 13). */
    const SlbStats &slbStats() const { return _slb.stats(); }

    /** @return STB statistics (Fig. 13). */
    const StbStats &stbStats() const { return _stb.stats(); }

    /** @return Engine-level statistics. */
    const HwEngineStats &stats() const { return _stats; }

    /** @return The SLB (tests and ablations). */
    Slb &slb() { return _slb; }

    /** @return The STB (tests). */
    Stb &stb() { return _stb; }

    /** @return The hardware SPT (tests). */
    HardwareSpt &spt() { return _spt; }

    /** Periodic Accessed-bit sweep (the 500 µs timer, §VII-B). */
    void periodicAccessedClear() { _spt.clearAccessed(); }

    /**
     * Attach @p tracer (nullptr detaches): STB/SLB/Temporary Buffer/
     * SPT/context-switch events from this engine land on its track, and
     * the running process's VAT reports its insertions there too.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Export the whole engine under @p prefix: engine counters and
     * flows, nested `slb`/`stb`/`spt` groups, and — when a process is
     * scheduled — its `vat` group.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Pending {
        bool valid = false;
        uint64_t pc = 0;
        bool stbHit = false;
        bool preloadHit = false;
        std::vector<uint64_t> memAddrs;
    };

    HwProcessContext *_proc = nullptr;
    bool _preloadEnabled;
    HardwareSpt _spt;
    Slb _slb;
    Stb _stb;
    TemporaryBuffer _temp;
    Pending _pending;
    HwEngineStats _stats;
    obs::Tracer *_tracer = nullptr;
};

} // namespace draco::core

#endif // DRACO_CORE_HW_ENGINE_HH
