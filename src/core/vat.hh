/**
 * @file
 * The Validated Argument Table (VAT), §V-B and §VII-A.
 *
 * The VAT is a per-process software structure: one two-way cuckoo hash
 * table per allowed system call, holding the argument sets that have
 * been validated by the Seccomp filter. Lookups hash the Argument-
 * Bitmask-selected bytes with CRC-64 ECMA (way 0) and CRC-64 ¬ECMA
 * (way 1) and probe both ways; both implementations of Draco consult
 * it, and the hardware implementation additionally addresses it by
 * *location* (base + hash) when preloading the SLB. Tables are sized at
 * twice the estimated argument-set count, and a bounded displacement
 * chain on insert evicts one entry when full.
 */

#ifndef DRACO_CORE_VAT_HH
#define DRACO_CORE_VAT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/checkspec.hh"
#include "hash/cuckoo.hh"
#include "obs/tracer.hh"

namespace draco::core {

/** Locates a validated entry inside one VAT table. */
struct VatToken {
    CuckooWay way = CuckooWay::H1; ///< Which hash function found it.
    uint64_t hash = 0;             ///< That function's raw hash value.

    bool operator==(const VatToken &other) const
    {
        return way == other.way && hash == other.hash;
    }
};

/** Result of a VAT lookup. */
struct VatHit {
    VatToken token;       ///< Location of the matching entry.
    uint64_t address = 0; ///< Memory address of the entry (for timing).
};

/**
 * Per-process Validated Argument Table.
 */
class Vat
{
  public:
    Vat() = default;

    /**
     * Create (or reset) the table for @p sid.
     *
     * @param sid System call ID.
     * @param bitmask Argument Bitmask; must be nonzero (ID-only syscalls
     *        have no VAT table).
     * @param estimated_sets Estimated distinct argument sets; the table
     *        is over-provisioned to twice this (rounded up to a power
     *        of two per way).
     */
    void configure(uint16_t sid, uint64_t bitmask, size_t estimated_sets);

    /** @return true when @p sid has a configured table. */
    bool configured(uint16_t sid) const;

    /** @return The Argument Bitmask for @p sid (0 if unconfigured). */
    uint64_t bitmask(uint16_t sid) const;

    /**
     * Probe both ways for the argument key.
     *
     * @return Hit info, or nullopt when the set has not been validated.
     */
    std::optional<VatHit> lookup(uint16_t sid, const ArgKey &key) const;

    /**
     * Record a freshly validated argument set.
     *
     * @return true if an existing victim was evicted to make room.
     */
    bool insert(uint16_t sid, const ArgKey &key);

    /** Remove one validated set (used by tests and eviction studies). */
    bool erase(uint16_t sid, const ArgKey &key);

    /**
     * Read the entry a token points at, whatever it currently holds —
     * the hardware preload path (§VI-B step 4) fetches by location, not
     * by key.
     *
     * @return The stored key, or nullopt when the slot is empty.
     */
    std::optional<ArgKey> slotContents(uint16_t sid,
                                       const VatToken &token) const;

    /** @return Memory address of the slot @p token points at. */
    uint64_t entryAddress(uint16_t sid, const VatToken &token) const;

    /** @return Total bytes of all tables (the §XI-C footprint metric). */
    size_t footprintBytes() const;

    /** @return Number of configured per-syscall tables. */
    size_t tableCount() const { return _tables.size(); }

    /** @return Validated sets currently stored for @p sid. */
    size_t setCount(uint16_t sid) const;

    /** @return Cumulative insert-pressure evictions across tables. */
    uint64_t evictions() const { return _evictions; }

    // ---- snapshot support (lifecycle subsystem) ----

    /**
     * Invoke @p fn(sid, bitmask, cuckoo) on every configured table in
     * ascending sid order — the deterministic enumeration the `.dtss`
     * encoder serializes.
     */
    template <typename Fn>
    void
    forEachTable(Fn &&fn) const
    {
        for (const auto &[sid, table] : _tables)
            fn(sid, table.bitmask, *table.cuckoo);
    }

    /**
     * Place @p key at the exact cuckoo slot (@p way, @p index) of
     * @p sid's table — see CuckooTable::placeAt().
     *
     * @return false when @p sid is unconfigured or the slot placement
     *         was rejected.
     */
    bool placeAt(uint16_t sid, CuckooWay way, uint64_t index,
                 const ArgKey &key);

    /**
     * Replace @p sid's cuckoo behaviour counters (snapshot restore).
     *
     * @return false when @p sid has no configured table.
     */
    bool restoreTableStats(uint16_t sid, const CuckooStats &stats);

    /** Replace the cumulative eviction counter (snapshot restore). */
    void restoreEvictions(uint64_t evictions) { _evictions = evictions; }

    /**
     * Attach @p tracer (nullptr detaches): each insert() records a
     * VatInsert event whose value is the cuckoo displacement count it
     * caused, and a VatEvict event when the chain bound evicted an
     * entry — making displacement storms visible on the timeline.
     */
    void setTracer(obs::Tracer *tracer) { _tracer = tracer; }

    /**
     * Export aggregate VAT metrics under @p prefix: footprint, table
     * count, stored sets, and the cuckoo counters summed across every
     * per-syscall table (lookups/hits give the VAT hit rate).
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Table {
        uint64_t bitmask = 0;
        uint64_t baseAddr = 0;
        size_t entryBytes = 0;
        std::unique_ptr<CuckooTable<ArgKey>> cuckoo;
    };

    const Table *tableFor(uint16_t sid) const;

    std::map<uint16_t, Table> _tables;
    uint64_t _evictions = 0;
    obs::Tracer *_tracer = nullptr;
};

/** @return CRC-64 over the key bytes for @p way. */
uint64_t vatHash(CuckooWay way, const ArgKey &key);

} // namespace draco::core

#endif // DRACO_CORE_VAT_HH
