/**
 * @file
 * Draco's per-core hardware tables (§VI, Table II).
 *
 * - HardwareSpt: 384-entry direct-mapped System Call Permissions Table
 *   with per-entry Accessed bits (context-switch save/restore, §VII-B).
 * - Slb: the System Call Lookaside Buffer — one set-associative subtable
 *   per argument count, caching validated {SID, Hash, ArgKey} triples.
 *   Preload probes deliberately do not touch LRU state (§IX).
 * - Stb: the System Call Target Buffer — PC-indexed predictor of the
 *   {SID, Hash} an upcoming syscall will need, enabling SLB preloading.
 * - TemporaryBuffer: holds speculatively preloaded VAT entries until the
 *   non-speculative access commits them into the SLB; squashes clear it,
 *   leaving no architectural side effects (§IX).
 */

#ifndef DRACO_CORE_HW_STRUCTURES_HH
#define DRACO_CORE_HW_STRUCTURES_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/vat.hh"

namespace draco::core {

/** Geometry of one set-associative hardware table. */
struct TableGeometry {
    unsigned entries = 0;
    unsigned ways = 1;

    unsigned sets() const { return entries / ways; }
};

/** Hardware SPT entry (§V-A, §V-B). */
struct HwSptEntry {
    bool valid = false;
    uint16_t sid = 0;
    uint64_t bitmask = 0;  ///< Argument Bitmask; 0 = ID-only allow.
    bool accessed = false; ///< For selective context-switch save.
};

/**
 * Direct-mapped hardware SPT (Table II: 384 entries).
 */
class HardwareSpt
{
  public:
    /** Table II geometry: 384 entries, direct mapped. */
    static constexpr unsigned kEntries = 384;

    /**
     * @param entries Entry count; SMT partitions use kEntries / contexts.
     */
    explicit HardwareSpt(unsigned entries = kEntries);

    /** @return The entry for @p sid, or nullopt on tag mismatch/invalid. */
    std::optional<HwSptEntry> lookup(uint16_t sid);

    /** Install the entry for @p sid (fill from the software SPT). */
    void fill(uint16_t sid, uint64_t bitmask);

    /** Drop every entry (context switch to a different process). */
    void invalidateAll();

    /** Clear all Accessed bits (the periodic 500 µs sweep). */
    void clearAccessed();

    /** @return Entries whose Accessed bit is set (save candidates). */
    std::vector<HwSptEntry> accessedEntries() const;

    /** @return Lookup count. */
    uint64_t lookups() const { return _lookups; }

    /** @return Hit count. */
    uint64_t hits() const { return _hits; }

    /** Export lookup/hit counters under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /** @return Configured entry count. */
    unsigned entries() const
    {
        return static_cast<unsigned>(_entries.size());
    }

  private:
    std::vector<HwSptEntry> _entries;
    uint64_t _lookups = 0;
    uint64_t _hits = 0;
};

/** One SLB entry (Fig. 6). */
struct SlbEntry {
    bool valid = false;
    uint16_t sid = 0;
    VatToken token{}; ///< The hash that fetched this entry from the VAT.
    ArgKey key{};     ///< The validated argument set.
    uint64_t lruStamp = 0;
};

/** SLB statistics (drives Fig. 13). */
struct SlbStats {
    uint64_t accesses = 0;
    uint64_t accessHits = 0;
    uint64_t preloadProbes = 0;
    uint64_t preloadHits = 0;
};

/** Export an SLB counter block (plus hit-rate gauges) under @p prefix. */
void exportStats(const SlbStats &stats, MetricRegistry &registry,
                 const std::string &prefix);

/**
 * The System Call Lookaside Buffer.
 */
class Slb
{
  public:
    /** Subtables are selected by checked-argument count 1..6. */
    static constexpr unsigned kMaxArgc = os::kMaxSyscallArgs;

    /** Construct with the paper's Table II subtable geometries. */
    Slb();

    /**
     * Construct with custom per-argc geometries (sizing ablation).
     *
     * @param geometries Index 0 = 1-arg subtable, ... index 5 = 6-arg.
     */
    explicit Slb(const std::array<TableGeometry, kMaxArgc> &geometries);

    /**
     * Non-speculative access at the ROB head: match SID and argument
     * set. Updates LRU on hit.
     *
     * @return The matching entry's VAT token on hit.
     */
    std::optional<VatToken> accessLookup(unsigned argc, uint16_t sid,
                                         const ArgKey &key);

    /**
     * Speculative preload probe: match SID and hash token only (the
     * argument set is not yet known, Fig. 6). Never updates LRU.
     *
     * @return true when a plausible entry is already cached.
     */
    bool preloadProbe(unsigned argc, uint16_t sid, const VatToken &token);

    /** Install (or refresh) an entry; evicts LRU within the set. */
    void fill(unsigned argc, uint16_t sid, const VatToken &token,
              const ArgKey &key);

    /** Drop everything (context switch to a different process). */
    void invalidateAll();

    /** @return Counter block. */
    const SlbStats &stats() const { return _stats; }

    /** Export access/preload counters and hit rates under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /** @return Geometry of the subtable serving @p argc. */
    const TableGeometry &geometry(unsigned argc) const;

  private:
    struct Subtable {
        TableGeometry geom;
        std::vector<SlbEntry> entries; ///< sets × ways, row-major.
    };

    Subtable &subtableFor(unsigned argc);
    SlbEntry *findEntry(Subtable &sub, uint16_t sid,
                        const VatToken *token, const ArgKey *key);

    std::array<Subtable, kMaxArgc> _subtables;
    SlbStats _stats;
    uint64_t _clock = 0;
};

/** STB statistics. */
struct StbStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
};

/** Export an STB counter block (plus hit-rate gauge) under @p prefix. */
void exportStats(const StbStats &stats, MetricRegistry &registry,
                 const std::string &prefix);

/**
 * The System Call Target Buffer (Fig. 8): PC → {SID, Hash}.
 */
class Stb
{
  public:
    /** Table II geometry: 256 entries, 2-way. */
    static constexpr unsigned kEntries = 256;
    static constexpr unsigned kWays = 2;

    /**
     * @param entries Total entries (must be a multiple of @p ways).
     * @param ways Associativity.
     */
    explicit Stb(unsigned entries = kEntries, unsigned ways = kWays);

    /** Prediction returned on a hit. */
    struct Prediction {
        uint16_t sid = 0;
        VatToken token{};
    };

    /** Look up @p pc; hits update LRU. */
    std::optional<Prediction> lookup(uint64_t pc);

    /** Install or update the mapping for @p pc. */
    void update(uint64_t pc, uint16_t sid, const VatToken &token);

    /** Drop everything. */
    void invalidateAll();

    /** @return Counter block. */
    const StbStats &stats() const { return _stats; }

    /** Export lookup/hit counters under @p prefix. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /** @return Configured entry count. */
    unsigned entries() const
    {
        return static_cast<unsigned>(_entries.size());
    }

  private:
    struct Entry {
        bool valid = false;
        uint64_t pc = 0;
        uint16_t sid = 0;
        VatToken token{};
        uint64_t lruStamp = 0;
    };

    unsigned _ways;
    unsigned _sets;
    std::vector<Entry> _entries;
    StbStats _stats;
    uint64_t _clock = 0;
};

/**
 * Squash-safe staging buffer for speculative preloads (§IX).
 */
class TemporaryBuffer
{
  public:
    /** Table II geometry: 8 entries. */
    static constexpr unsigned kEntries = 8;

    /** Staged entry. */
    struct Staged {
        uint16_t sid = 0;
        unsigned argc = 0;
        VatToken token{};
        ArgKey key{};
    };

    /** Stage a preloaded VAT entry; oldest is dropped when full. */
    void stage(const Staged &entry);

    /**
     * Commit and remove the staged entry for @p sid, if any — called by
     * the non-speculative access at the ROB head.
     */
    std::optional<Staged> take(uint16_t sid);

    /** Squash: discard all staged entries, leaving no side effects. */
    void clear();

    /** @return Number of staged entries. */
    size_t size() const { return _entries.size(); }

  private:
    std::vector<Staged> _entries;
};

} // namespace draco::core

#endif // DRACO_CORE_HW_STRUCTURES_HH
