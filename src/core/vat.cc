#include "core/vat.hh"

#include <atomic>
#include <bit>

#include "hash/crc64.hh"
#include "support/logging.hh"

namespace draco::core {

namespace {

/**
 * Global bump allocator for table base addresses so that distinct VAT
 * instances (distinct processes) never alias in the cache model.
 */
std::atomic<uint64_t> g_nextVatBase{0x600000000000ULL};

uint64_t
allocateVatRegion(uint64_t bytes)
{
    uint64_t pages = (bytes + 4095) / 4096 * 4096;
    return g_nextVatBase.fetch_add(pages, std::memory_order_relaxed);
}

} // namespace

uint64_t
vatHash(CuckooWay way, const ArgKey &key)
{
    // CRC per the paper (§VII-A), diffused through mix64 so structured
    // argument values index uniformly — see mix64's doc comment.
    const Crc64 &engine =
        way == CuckooWay::H1 ? crc64Ecma() : crc64NotEcma();
    return mix64(engine.compute(key.data(), key.size()));
}

void
Vat::configure(uint16_t sid, uint64_t bitmask, size_t estimated_sets)
{
    if (bitmask == 0)
        fatal("Vat::configure: sid %u has no checked bytes", sid);

    size_t buckets = std::bit_ceil(std::max<size_t>(2, estimated_sets));

    Table table;
    table.bitmask = bitmask;
    unsigned keyBytes = static_cast<unsigned>(std::popcount(bitmask));
    // One entry: stored key rounded to 8 bytes, plus valid/metadata word.
    table.entryBytes = ((keyBytes + 7) / 8) * 8 + 8;
    table.baseAddr = allocateVatRegion(2 * buckets * table.entryBytes);

    table.cuckoo = std::make_unique<CuckooTable<ArgKey>>(
        buckets,
        [](const ArgKey &k) { return vatHash(CuckooWay::H1, k); },
        [](const ArgKey &k) { return vatHash(CuckooWay::H2, k); });

    _tables[sid] = std::move(table);
}

const Vat::Table *
Vat::tableFor(uint16_t sid) const
{
    auto it = _tables.find(sid);
    return it == _tables.end() ? nullptr : &it->second;
}

bool
Vat::configured(uint16_t sid) const
{
    return tableFor(sid) != nullptr;
}

uint64_t
Vat::bitmask(uint16_t sid) const
{
    const Table *table = tableFor(sid);
    return table ? table->bitmask : 0;
}

std::optional<VatHit>
Vat::lookup(uint16_t sid, const ArgKey &key) const
{
    const Table *table = tableFor(sid);
    if (!table)
        return std::nullopt;
    auto found = table->cuckoo->lookup(key);
    if (!found)
        return std::nullopt;
    VatHit hit;
    hit.token = VatToken{found->way, found->hash};
    hit.address = entryAddress(sid, hit.token);
    return hit;
}

bool
Vat::insert(uint16_t sid, const ArgKey &key)
{
    auto it = _tables.find(sid);
    if (it == _tables.end())
        panic("Vat::insert: sid %u not configured", sid);
    ArgKey victim;
    uint64_t before = it->second.cuckoo->stats().displacements;
    auto result = it->second.cuckoo->insert(key, &victim);
    if (_tracer) {
        _tracer->record(obs::EventKind::VatInsert, sid, 0, 0,
                        it->second.cuckoo->stats().displacements - before);
    }
    if (result == CuckooInsert::EvictedVictim) {
        ++_evictions;
        if (_tracer)
            _tracer->record(obs::EventKind::VatEvict, sid);
        return true;
    }
    return false;
}

bool
Vat::placeAt(uint16_t sid, CuckooWay way, uint64_t index,
             const ArgKey &key)
{
    auto it = _tables.find(sid);
    if (it == _tables.end())
        return false;
    return it->second.cuckoo->placeAt(way, index, key);
}

bool
Vat::restoreTableStats(uint16_t sid, const CuckooStats &stats)
{
    auto it = _tables.find(sid);
    if (it == _tables.end())
        return false;
    it->second.cuckoo->restoreStats(stats);
    return true;
}

bool
Vat::erase(uint16_t sid, const ArgKey &key)
{
    auto it = _tables.find(sid);
    if (it == _tables.end())
        return false;
    return it->second.cuckoo->erase(key);
}

std::optional<ArgKey>
Vat::slotContents(uint16_t sid, const VatToken &token) const
{
    const Table *table = tableFor(sid);
    if (!table)
        return std::nullopt;
    const ArgKey *stored = table->cuckoo->at(token.way, token.hash);
    if (!stored)
        return std::nullopt;
    return *stored;
}

uint64_t
Vat::entryAddress(uint16_t sid, const VatToken &token) const
{
    const Table *table = tableFor(sid);
    if (!table)
        panic("Vat::entryAddress: sid %u not configured", sid);
    uint64_t buckets = table->cuckoo->buckets();
    uint64_t slot =
        static_cast<uint64_t>(token.way) * buckets + token.hash % buckets;
    return table->baseAddr + slot * table->entryBytes;
}

size_t
Vat::footprintBytes() const
{
    size_t total = 0;
    for (const auto &[sid, table] : _tables)
        total += table.cuckoo->capacity() * table.entryBytes;
    return total;
}

size_t
Vat::setCount(uint16_t sid) const
{
    const Table *table = tableFor(sid);
    return table ? table->cuckoo->size() : 0;
}

void
Vat::exportMetrics(MetricRegistry &registry,
                   const std::string &prefix) const
{
    CuckooStats total;
    size_t sets = 0;
    size_t capacity = 0;
    for (const auto &[sid, table] : _tables) {
        const CuckooStats &s = table.cuckoo->stats();
        total.lookups += s.lookups;
        total.hits += s.hits;
        total.insertions += s.insertions;
        total.displacements += s.displacements;
        total.evictions += s.evictions;
        sets += table.cuckoo->size();
        capacity += table.cuckoo->capacity();
    }

    auto name = [&](const char *metric) {
        return MetricRegistry::join(prefix, metric);
    };
    registry.setCounter(name("tables"), _tables.size());
    registry.setCounter(name("sets"), sets);
    registry.setCounter(name("capacity"), capacity);
    registry.setCounter(name("footprint_bytes"), footprintBytes());
    registry.setCounter(name("lookups"), total.lookups);
    registry.setCounter(name("hits"), total.hits);
    registry.setCounter(name("insertions"), total.insertions);
    registry.setCounter(name("displacements"), total.displacements);
    registry.setCounter(name("cuckoo_evictions"), total.evictions);
    registry.setCounter(name("evictions"), _evictions);
    registry.setGauge(name("hit_rate"),
                      total.lookups
                          ? static_cast<double>(total.hits) /
                              static_cast<double>(total.lookups)
                          : 0.0);
}

} // namespace draco::core
