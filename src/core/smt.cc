#include "core/smt.hh"

#include "support/logging.hh"

namespace draco::core {

SmtDracoEngine::SmtDracoEngine(unsigned contexts, bool preload_enabled)
    : _geometry(EngineGeometry::smtPartition(contexts))
{
    if (contexts == 0)
        fatal("SmtDracoEngine: need at least one context");
    for (unsigned ctx = 0; ctx < contexts; ++ctx) {
        _partitions.push_back(std::make_unique<DracoHardwareEngine>(
            preload_enabled, _geometry));
    }
}

DracoHardwareEngine &
SmtDracoEngine::context(unsigned ctx)
{
    if (ctx >= _partitions.size())
        panic("SmtDracoEngine: context %u out of range", ctx);
    return *_partitions[ctx];
}

void
SmtDracoEngine::switchTo(unsigned ctx, HwProcessContext *proc,
                         bool spt_save_restore)
{
    context(ctx).switchTo(proc, spt_save_restore);
}

HwSyscallResult
SmtDracoEngine::onSyscall(unsigned ctx, const os::SyscallRequest &req)
{
    return context(ctx).onSyscall(req);
}

} // namespace draco::core
