/**
 * @file
 * SMT support for hardware Draco (§VII-B, §IX).
 *
 * The paper supports simultaneous multithreading by *partitioning* the
 * three hardware structures and giving one partition to each hardware
 * context: each context only ever accesses its own partition, which
 * both shares the silicon and closes the cross-context side channel a
 * shared SLB/STB/SPT would open. SmtDracoEngine models one physical
 * core's worth of partitions; each partition behaves exactly like a
 * (smaller) DracoHardwareEngine.
 */

#ifndef DRACO_CORE_SMT_HH
#define DRACO_CORE_SMT_HH

#include <memory>
#include <vector>

#include "core/hw_engine.hh"

namespace draco::core {

/**
 * One physical core running @p contexts SMT hardware contexts, each
 * with a private partition of the Draco structures.
 */
class SmtDracoEngine
{
  public:
    /**
     * @param contexts Number of hardware contexts (≥1).
     * @param preload_enabled Propagated to every partition.
     */
    explicit SmtDracoEngine(unsigned contexts,
                            bool preload_enabled = true);

    /** @return Number of hardware contexts. */
    unsigned contexts() const
    {
        return static_cast<unsigned>(_partitions.size());
    }

    /** @return Context @p ctx's private engine partition. */
    DracoHardwareEngine &context(unsigned ctx);

    /** Schedule @p proc onto context @p ctx (isolating switch rules). */
    void switchTo(unsigned ctx, HwProcessContext *proc,
                  bool spt_save_restore = true);

    /** Full check of one syscall on context @p ctx. */
    HwSyscallResult onSyscall(unsigned ctx,
                              const os::SyscallRequest &req);

    /** @return The geometry every partition was built with. */
    const EngineGeometry &partitionGeometry() const { return _geometry; }

  private:
    EngineGeometry _geometry;
    std::vector<std::unique_ptr<DracoHardwareEngine>> _partitions;
};

} // namespace draco::core

#endif // DRACO_CORE_SMT_HH
