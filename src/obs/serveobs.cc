#include "obs/serveobs.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/logging.hh"

namespace draco::obs {

namespace {

/** Append printf-formatted text to @p out. */
void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                         sizeof(buf) - 1));
}

/** Format a double for exposition/JSON: compact, locale-free. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

const double kSummaryQuantiles[] = {0.5, 0.95, 0.99, 0.999};
const char *const kSummaryQuantileNames[] = {"0.5", "0.95", "0.99",
                                             "0.999"};

} // namespace

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Parse: return "parse";
      case Stage::Submit: return "submit";
      case Stage::Queue: return "queue";
      case Stage::Check: return "check";
      case Stage::Reply: return "reply";
      case Stage::Total: return "total";
    }
    return "?";
}

double
StageRecord::stageUs(Stage stage) const
{
    auto delta = [](uint64_t from, uint64_t to) {
        return to > from ? static_cast<double>(to - from) / 1000.0 : 0.0;
    };
    switch (stage) {
      case Stage::Parse: return delta(admitNs, parseNs);
      case Stage::Submit: return delta(parseNs, enqueueNs);
      case Stage::Queue: return delta(enqueueNs, drainStartNs);
      case Stage::Check: return delta(drainStartNs, checkDoneNs);
      case Stage::Reply: return delta(checkDoneNs, flushedNs);
      case Stage::Total: return delta(admitNs, flushedNs);
    }
    return 0.0;
}

void
BoundedSketch::add(double x)
{
    ++_seen;
    if (_stride > 1 && (_seen % _stride) != 0)
        return;
    if (_xs.size() >= _cap) {
        // Decimate: keep every other retained sample and double the
        // input stride, preserving a uniform subsample of the stream.
        size_t w = 0;
        for (size_t i = 0; i < _xs.size(); i += 2)
            _xs[w++] = _xs[i];
        _xs.resize(w);
        _stride *= 2;
        if ((_seen % _stride) != 0)
            return;
    }
    _xs.push_back(x);
}

void
BoundedSketch::mergeInto(QuantileSketch &out) const
{
    for (double x : _xs)
        out.add(x);
}

ServeObs::ServeObs(const ServeObsOptions &options)
    : _options(options)
{
    if (_options.loops == 0)
        _options.loops = 1;
    if (_options.shards == 0)
        _options.shards = 1;
    _slots.reserve(_options.loops);
    for (unsigned l = 0; l < _options.loops; ++l) {
        auto slot = std::make_unique<Slot>();
        slot->shards.resize(_options.shards);
        for (PerShard &ps : slot->shards) {
            ps.hist.reserve(kStageCount);
            ps.sketch.reserve(kStageCount);
            for (size_t s = 0; s < kStageCount; ++s) {
                ps.hist.emplace_back(0.0, _options.histHiUs,
                                     _options.histBuckets);
                ps.sketch.emplace_back(_options.sketchSamples);
            }
        }
        _slots.push_back(std::move(slot));
    }
}

void
ServeObs::commit(size_t loop, const StageRecord &rec)
{
    Slot &slot = *_slots[loop % _slots.size()];
    const unsigned shard =
        rec.shard < _options.shards ? rec.shard : 0;
    const double totalUs = rec.stageUs(Stage::Total);
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        PerShard &ps = slot.shards[shard];
        for (size_t i = 0; i < kStageCount; ++i) {
            const double us = rec.stageUs(static_cast<Stage>(i));
            ps.hist[i].add(us);
            ps.sketch[i].add(us);
        }
        ++slot.committed;
    }
    if (_options.slowUs > 0 &&
        totalUs >= static_cast<double>(_options.slowUs))
        captureSlow(rec, totalUs);
}

void
ServeObs::recordDropped(size_t loop, uint64_t n)
{
    Slot &slot = *_slots[loop % _slots.size()];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.dropped += n;
}

void
ServeObs::captureSlow(const StageRecord &rec, double)
{
    std::lock_guard<std::mutex> lock(_slowMutex);
    SlowRecord slow;
    slow.seq = _slowSeq++;
    slow.rec = rec;
    _slow.push_back(slow);
    while (_slow.size() > _options.slowCapacity)
        _slow.pop_front();
}

uint64_t
ServeObs::committed() const
{
    uint64_t total = 0;
    for (const auto &slot : _slots) {
        std::lock_guard<std::mutex> lock(slot->mutex);
        total += slot->committed;
    }
    return total;
}

uint64_t
ServeObs::dropped() const
{
    uint64_t total = 0;
    for (const auto &slot : _slots) {
        std::lock_guard<std::mutex> lock(slot->mutex);
        total += slot->dropped;
    }
    return total;
}

uint64_t
ServeObs::slowTotal() const
{
    std::lock_guard<std::mutex> lock(_slowMutex);
    return _slowSeq;
}

std::vector<SlowRecord>
ServeObs::slowRecords() const
{
    std::lock_guard<std::mutex> lock(_slowMutex);
    return std::vector<SlowRecord>(_slow.begin(), _slow.end());
}

ServeObs::MergedCell
ServeObs::mergeCell(unsigned shard, Stage stage) const
{
    MergedCell cell(_options);
    const size_t idx = static_cast<size_t>(stage);
    for (const auto &slot : _slots) {
        std::lock_guard<std::mutex> lock(slot->mutex);
        const PerShard &ps = slot->shards[shard];
        cell.hist.merge(ps.hist[idx]);
        ps.sketch[idx].mergeInto(cell.sketch);
    }
    return cell;
}

void
ServeObs::exportMetrics(MetricRegistry &registry,
                        const std::string &prefix) const
{
    for (unsigned shard = 0; shard <= _options.shards; ++shard) {
        // Index _options.shards is the all-shard merge.
        const bool all = shard == _options.shards;
        const std::string sp = MetricRegistry::join(
            prefix + ".stages",
            all ? std::string("all") : "s" + std::to_string(shard));
        for (size_t i = 0; i < kStageCount; ++i) {
            const Stage stage = static_cast<Stage>(i);
            MergedCell cell(_options);
            if (all) {
                for (unsigned s = 0; s < _options.shards; ++s) {
                    MergedCell c = mergeCell(s, stage);
                    cell.hist.merge(c.hist);
                    cell.sketch.merge(c.sketch);
                }
            } else {
                cell = mergeCell(shard, stage);
            }
            const std::string base =
                MetricRegistry::join(sp, std::string(stageName(stage)) +
                                             "_us");
            registry.setQuantiles(base, cell.sketch);
            registry.setHistogram(base + "_hist", cell.hist);
        }
    }
    registry.setCounter(prefix + ".records", committed());
    registry.setCounter(prefix + ".dropped", dropped());
    registry.setCounter(prefix + ".slow.total", slowTotal());
    {
        std::lock_guard<std::mutex> lock(_slowMutex);
        registry.setCounter(prefix + ".slow.captured", _slow.size());
    }
    registry.setGauge(prefix + ".slow.threshold_us",
                      static_cast<double>(_options.slowUs));
}

namespace {

/** @return "{labels}" or "" when @p labels is empty. */
std::string
wrapLabels(const std::string &labels)
{
    return labels.empty() ? std::string() : "{" + labels + "}";
}

/** Emit sparse cumulative le buckets + _count for @p hist. */
void
renderHistogram(std::string &out, const std::string &name,
                const std::string &labels, const Histogram &hist)
{
    const std::string sep = labels.empty() ? "" : ",";
    const double width = (hist.hi() - hist.lo()) /
                         static_cast<double>(hist.buckets());
    uint64_t cum = hist.underflow();
    for (size_t b = 0; b < hist.buckets(); ++b) {
        // Sparse rendering: only emit buckets that gained samples —
        // any le subset is valid exposition, and most of a wide
        // latency range is empty.
        if (hist.bucketCount(b) == 0) {
            continue;
        }
        cum += hist.bucketCount(b);
        appendf(out, "%s_bucket{%s%sle=\"%s\"} %" PRIu64 "\n",
                name.c_str(), labels.c_str(), sep.c_str(),
                num(hist.bucketLo(b) + width).c_str(), cum);
    }
    appendf(out, "%s_bucket{%s%sle=\"+Inf\"} %" PRIu64 "\n",
            name.c_str(), labels.c_str(), sep.c_str(), hist.total());
    appendf(out, "%s_count%s %" PRIu64 "\n", name.c_str(),
            wrapLabels(labels).c_str(), hist.total());
}

/** Emit quantile series + _count for @p sketch. */
void
renderSummary(std::string &out, const std::string &name,
              const std::string &labels, const QuantileSketch &sketch)
{
    const std::string sep = labels.empty() ? "" : ",";
    for (size_t q = 0; q < 4; ++q)
        appendf(out, "%s{%s%squantile=\"%s\"} %s\n", name.c_str(),
                labels.c_str(), sep.c_str(), kSummaryQuantileNames[q],
                num(sketch.quantile(kSummaryQuantiles[q])).c_str());
    appendf(out, "%s_count%s %zu\n", name.c_str(),
            wrapLabels(labels).c_str(), sketch.count());
}

} // namespace

std::string
ServeObs::renderPrometheus(const MetricRegistry &extra) const
{
    std::string out;
    out += "# HELP draco_serve_stage_latency_us Per-stage serving "
           "latency (microseconds).\n";
    out += "# TYPE draco_serve_stage_latency_us summary\n";
    std::vector<MergedCell> cells; // [shard * kStageCount + stage]
    for (unsigned shard = 0; shard < _options.shards; ++shard)
        for (size_t i = 0; i < kStageCount; ++i)
            cells.push_back(mergeCell(shard, static_cast<Stage>(i)));
    for (unsigned shard = 0; shard < _options.shards; ++shard) {
        for (size_t i = 0; i < kStageCount; ++i) {
            const std::string labels =
                "shard=\"" + std::to_string(shard) + "\",stage=\"" +
                stageName(static_cast<Stage>(i)) + "\"";
            renderSummary(out, "draco_serve_stage_latency_us", labels,
                          cells[shard * kStageCount + i].sketch);
        }
    }
    out += "# TYPE draco_serve_stage_latency_us_hist histogram\n";
    for (unsigned shard = 0; shard < _options.shards; ++shard) {
        for (size_t i = 0; i < kStageCount; ++i) {
            const std::string labels =
                "shard=\"" + std::to_string(shard) + "\",stage=\"" +
                stageName(static_cast<Stage>(i)) + "\"";
            renderHistogram(out, "draco_serve_stage_latency_us_hist",
                            labels,
                            cells[shard * kStageCount + i].hist);
        }
    }
    out += "# TYPE draco_serve_obs_records_total counter\n";
    appendf(out, "draco_serve_obs_records_total %" PRIu64 "\n",
            committed());
    out += "# TYPE draco_serve_obs_dropped_total counter\n";
    appendf(out, "draco_serve_obs_dropped_total %" PRIu64 "\n",
            dropped());
    out += "# TYPE draco_serve_obs_slow_captured_total counter\n";
    appendf(out, "draco_serve_obs_slow_captured_total %" PRIu64 "\n",
            slowTotal());
    out += "# TYPE draco_serve_obs_slow_threshold_us gauge\n";
    appendf(out, "draco_serve_obs_slow_threshold_us %u\n",
            _options.slowUs);
    renderRegistry(extra, out);
    return out;
}

std::string
ServeObs::slowzJson() const
{
    std::vector<SlowRecord> records = slowRecords();
    std::string out = "{\n";
    appendf(out, "  \"threshold_us\": %u,\n", _options.slowUs);
    appendf(out, "  \"capacity\": %zu,\n", _options.slowCapacity);
    appendf(out, "  \"total_slow\": %" PRIu64 ",\n", slowTotal());
    out += "  \"records\": [";
    for (size_t i = 0; i < records.size(); ++i) {
        const SlowRecord &s = records[i];
        out += i ? ",\n    " : "\n    ";
        appendf(out,
                "{\"seq\": %" PRIu64 ", \"tenant\": %u, "
                "\"shard\": %u, \"batch_id\": %" PRIu64
                ", \"batch\": %u, \"allowed\": %u, \"denied\": %u, "
                "\"shed\": %u",
                s.seq, s.rec.tenant, s.rec.shard, s.rec.batchId,
                s.rec.batchSize, s.rec.allowed, s.rec.denied,
                s.rec.shed);
        for (size_t st = 0; st < kStageCount; ++st) {
            const Stage stage = static_cast<Stage>(st);
            appendf(out, ", \"%s_us\": %s", stageName(stage),
                    num(s.rec.stageUs(stage)).c_str());
        }
        out += "}";
    }
    out += records.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
ServeObs::renderRegistry(const MetricRegistry &registry,
                         std::string &out)
{
    registry.visit([&out](const MetricView &view) {
        const std::string name = promMetricName(view.name);
        switch (view.kind) {
          case MetricKind::Counter:
            appendf(out, "# TYPE %s counter\n", name.c_str());
            appendf(out, "%s %" PRIu64 "\n", name.c_str(),
                    view.counter);
            break;
          case MetricKind::Gauge:
            appendf(out, "# TYPE %s gauge\n", name.c_str());
            appendf(out, "%s %s\n", name.c_str(),
                    num(view.gauge).c_str());
            break;
          case MetricKind::Text:
            appendf(out, "# TYPE %s_info gauge\n", name.c_str());
            appendf(out, "%s_info{value=\"%s\"} 1\n", name.c_str(),
                    promEscapeLabel(*view.text).c_str());
            break;
          case MetricKind::Stat:
            appendf(out, "# TYPE %s_count counter\n", name.c_str());
            appendf(out, "%s_count %" PRIu64 "\n", name.c_str(),
                    view.stat->count());
            appendf(out, "%s_sum %s\n", name.c_str(),
                    num(view.stat->sum()).c_str());
            appendf(out, "%s_min %s\n", name.c_str(),
                    num(view.stat->min()).c_str());
            appendf(out, "%s_max %s\n", name.c_str(),
                    num(view.stat->max()).c_str());
            appendf(out, "%s_mean %s\n", name.c_str(),
                    num(view.stat->mean()).c_str());
            break;
          case MetricKind::Sketch:
            appendf(out, "# TYPE %s summary\n", name.c_str());
            renderSummary(out, name, "", *view.sketch);
            break;
          case MetricKind::Hist:
            if (!view.hist)
                break;
            appendf(out, "# TYPE %s histogram\n", name.c_str());
            renderHistogram(out, name, "", *view.hist);
            break;
        }
    });
}

std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
promMetricName(const std::string &dotted)
{
    std::string out = "draco_";
    for (char c : dotted) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

std::string
httpResponse(int status, const std::string &contentType,
             const std::string &body)
{
    const char *reason = "OK";
    switch (status) {
      case 200: reason = "OK"; break;
      case 400: reason = "Bad Request"; break;
      case 404: reason = "Not Found"; break;
      case 405: reason = "Method Not Allowed"; break;
      default: reason = "Error"; break;
    }
    std::string out;
    appendf(out, "HTTP/1.0 %d %s\r\n", status, reason);
    appendf(out, "Content-Type: %s\r\n", contentType.c_str());
    appendf(out, "Content-Length: %zu\r\n", body.size());
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace draco::obs
