/**
 * @file
 * Trace exporters and the `.devt` event-trace file format.
 *
 * Two on-disk representations of a recorded trace:
 *
 *  - Chrome/Perfetto `trace_event` JSON: one Perfetto thread per track,
 *    syscall checks as duration spans named by their Table-I flow,
 *    structure events as instants, SLB preloads as async flow arrows
 *    from the preload to the syscall span they raced, and telemetry
 *    channels as counter tracks. Loads directly in ui.perfetto.dev or
 *    chrome://tracing.
 *
 *  - `.devt`: a compact binary format sharing the `.dtrc` framing
 *    discipline (LEB128 varints, zigzag deltas against running
 *    predecessors, CRC-64-ECMA per payload, magic header and footer).
 *    Unlike JSON it is cheap to re-load, which is what `obstool`
 *    consumes.
 *
 * Both writers walk tracks in the caller-provided order; TraceSession
 * hands them name-sorted tracks, which is what makes the output
 * byte-identical at any thread count.
 */

#ifndef DRACO_OBS_EXPORT_HH
#define DRACO_OBS_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/tracer.hh"

namespace draco::obs {

/** Borrowed view of one track's data (adapts Tracer and TrackStore). */
struct TrackView {
    const std::string *name = nullptr;
    uint64_t dropped = 0;
    const std::vector<Event> *events = nullptr;
    const std::vector<uint64_t> *sampleCycles = nullptr;
    const std::vector<Series> *series = nullptr;
};

/** @return A view of @p tracer's recorded data. */
TrackView viewOf(const Tracer &tracer);

/** One track loaded back from a `.devt` file (owning). */
struct TrackStore {
    std::string name;
    uint64_t dropped = 0;
    std::vector<Event> events;
    std::vector<uint64_t> sampleCycles;
    std::vector<Series> series;
};

/** @return A view of @p store's data. */
TrackView viewOf(const TrackStore &store);

/** A whole trace loaded from a `.devt` file, tracks in file order. */
struct LoadedTrace {
    std::vector<TrackStore> tracks;

    /** @return Views of all tracks, in file (name) order. */
    std::vector<TrackView> views() const;
};

// ---- Perfetto / Chrome trace_event JSON ----

/** Write @p tracks as trace_event JSON to @p out. */
void writePerfettoJson(const std::vector<TrackView> &tracks,
                       std::ostream &out);

/** Write @p tracks as trace_event JSON to @p path; false on I/O error. */
bool writePerfettoJson(const std::vector<TrackView> &tracks,
                       const std::string &path);

/** Convenience overload for a live session's tracks. */
bool writePerfettoJson(const std::vector<const Tracer *> &tracks,
                       const std::string &path);

// ---- .devt binary format ----

/** Write @p tracks as a `.devt` file to @p out. */
void writeDevt(const std::vector<TrackView> &tracks, std::ostream &out);

/** Write @p tracks as a `.devt` file to @p path; false on I/O error. */
bool writeDevt(const std::vector<TrackView> &tracks,
               const std::string &path);

/** Convenience overload for a live session's tracks. */
bool writeDevt(const std::vector<const Tracer *> &tracks,
               const std::string &path);

/**
 * Load a `.devt` file.
 *
 * @param path File to read.
 * @param out Receives the decoded tracks.
 * @param error Receives a one-line description on failure.
 * @return true when the whole file decoded and every CRC matched.
 */
bool loadDevt(const std::string &path, LoadedTrace &out,
              std::string &error);

} // namespace draco::obs

#endif // DRACO_OBS_EXPORT_HH
