/**
 * @file
 * Typed event vocabulary of the tracing subsystem.
 *
 * Every instrumentation point in the simulator emits one of these
 * compact records: a kind tag, the simulated cycle it happened at, the
 * core/track and process it belongs to, and the syscall identity
 * (SID, PC) plus a small kind-specific payload. Syscall checks are
 * duration spans classified by their Table-I execution flow; everything
 * else is an instant. The record layout is fixed-size POD so a per-core
 * ring buffer of them is a single allocation and recording is a handful
 * of stores.
 */

#ifndef DRACO_OBS_EVENTS_HH
#define DRACO_OBS_EVENTS_HH

#include <cstdint>

namespace draco::obs {

/** What happened. Values are stable — they appear in `.devt` files. */
enum class EventKind : uint8_t {
    Syscall = 0,        ///< Span: one checked syscall; arg = FlowCode.
    StbHit = 1,         ///< STB predicted a SID for this PC.
    StbMiss = 2,        ///< No STB prediction at dispatch.
    SlbPreloadHit = 3,  ///< Predicted entry already in the SLB.
    SlbPreloadMiss = 4, ///< Preload fetched the VAT line speculatively.
    SlbAccessHit = 5,   ///< Non-speculative SLB lookup hit.
    SlbAccessMiss = 6,  ///< Non-speculative SLB lookup missed.
    TempCommit = 7,     ///< Temporary Buffer entry committed to the SLB.
    TempSquash = 8,     ///< Squash dropped staged entries.
    TempStaleDrop = 9,  ///< Stale staged entries dropped at the head.
    VatInsert = 10,     ///< Validated set cached; value = displacements.
    VatEvict = 11,      ///< Displacement chain bound hit; victim evicted.
    SptSave = 12,       ///< Accessed SPT entries saved; value = count.
    SptRestore = 13,    ///< Saved SPT entries restored; value = count.
    ContextSwitch = 14, ///< A different process was scheduled.
    CacheFill = 15,     ///< Line filled; arg = MemLevel, value = line id.
    FilterRun = 16,     ///< Fallback filter executed; value = insns.
    SwCheck = 17,       ///< Software-Draco check; arg = FlowCode.
    TenantSnapshot = 18,///< Cold tenant serialized; value = .dtss bytes.
    TenantRestore = 19, ///< Tenant state rebuilt; value = .dtss bytes
                        ///< read (0 when rebuilt fresh from profile).
};

/** Number of distinct EventKind values (array sizing). */
inline constexpr unsigned kEventKinds = 20;

/** @return Stable lower-case name of @p kind ("syscall", "stb_hit"...). */
const char *eventKindName(EventKind kind);

/**
 * Span classification: the paper's Table-I hardware flows first (their
 * values match core::HwFlow so the engine can cast directly), then the
 * software-checker paths and the plain mechanisms. Values are stable —
 * they appear in `.devt` files and as Perfetto span names.
 */
enum class FlowCode : uint8_t {
    IdOnly = 0,        ///< SPT Valid bit, empty bitmask.
    F1 = 1,            ///< STB hit, preload hit, access hit.
    F2 = 2,            ///< STB hit, preload hit, access miss.
    F3 = 3,            ///< STB hit, preload miss, access hit.
    F4 = 4,            ///< STB hit, preload miss, access miss.
    F5 = 5,            ///< STB miss, access hit.
    F6 = 6,            ///< STB miss, access miss.
    Denied = 7,        ///< Check rejected the call.
    SptAllowAll = 8,   ///< Software Draco: SPT Valid, no argument check.
    VatHit = 9,        ///< Software Draco: argument set already valid.
    FilterAllowed = 10,///< Software Draco: filter ran and allowed.
    Seccomp = 11,      ///< Plain Seccomp filter execution.
    Unchecked = 12,    ///< Insecure baseline: no check performed.
};

/** Number of distinct FlowCode values (array sizing). */
inline constexpr unsigned kFlowCodes = 13;

/** @return Stable name of @p flow ("f1".."f6", "denied", ...). */
const char *flowCodeName(FlowCode flow);

/**
 * One recorded event. 40 bytes, trivially copyable; the ring buffer
 * stores these by value.
 */
struct Event {
    uint64_t cycle = 0; ///< Sim cycle (2 GHz) the event begins at.
    uint64_t pc = 0;    ///< Syscall site PC (0 when not applicable).
    uint64_t value = 0; ///< Kind-specific payload (counts, insns...).
    uint32_t dur = 0;   ///< Span length in cycles (0 for instants).
    uint32_t pid = 0;   ///< Simulated process id (0 when single-process).
    uint16_t sid = 0;   ///< Syscall id (0 when not applicable).
    EventKind kind = EventKind::Syscall;
    uint8_t arg = 0;    ///< FlowCode / MemLevel / small payload.
};

static_assert(sizeof(Event) == 40, "Event layout is part of the ABI");

} // namespace draco::obs

#endif // DRACO_OBS_EVENTS_HH
