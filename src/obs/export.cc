#include "obs/export.hh"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "hash/crc64.hh"
#include "support/binio.hh"
#include "support/logging.hh"

namespace draco::obs {

using namespace binio;

namespace {

constexpr char kDevtMagic[8] = {'d', 'e', 'v', 't', '-', 'v', '1', '\n'};
constexpr char kDevtEnd[8] = {'d', 'e', 'v', 't', 'e', 'n', 'd', '\n'};
constexpr uint32_t kDevtVersion = 1;

} // namespace

TrackView
viewOf(const Tracer &tracer)
{
    return TrackView{&tracer.track(), tracer.dropped(), &tracer.events(),
                     &tracer.sampleCycles(), &tracer.series()};
}

TrackView
viewOf(const TrackStore &store)
{
    return TrackView{&store.name, store.dropped, &store.events,
                     &store.sampleCycles, &store.series};
}

std::vector<TrackView>
LoadedTrace::views() const
{
    std::vector<TrackView> out;
    out.reserve(tracks.size());
    for (const TrackStore &t : tracks)
        out.push_back(viewOf(t));
    return out;
}

namespace {

std::vector<TrackView>
viewsOf(const std::vector<const Tracer *> &tracks)
{
    std::vector<TrackView> out;
    out.reserve(tracks.size());
    for (const Tracer *t : tracks)
        out.push_back(viewOf(*t));
    return out;
}

// ---- Perfetto JSON ----

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a cycle count as microseconds at the 2 GHz sim clock. */
std::string
cyclesToUs(uint64_t cycles)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.4f",
                  static_cast<double>(cycles) * 0.0005);
    return buf;
}

class JsonEventList
{
  public:
    explicit JsonEventList(std::ostream &out) : _out(out)
    {
        _out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    }

    ~JsonEventList() { _out << "\n]}\n"; }

    /** Begin one event object (adds the separating comma). */
    std::ostream &
    next()
    {
        if (!_first)
            _out << ",\n";
        _first = false;
        return _out;
    }

  private:
    std::ostream &_out;
    bool _first = true;
};

void
emitMetadata(JsonEventList &list, unsigned tid, const std::string &name)
{
    list.next() << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
                << "\"tid\":" << tid << ",\"args\":{\"name\":\""
                << jsonEscape(name) << "\"}}";
}

void
emitInstant(JsonEventList &list, unsigned tid, const Event &e)
{
    list.next() << "{\"ph\":\"i\",\"name\":\""
                << eventKindName(e.kind)
                << "\",\"cat\":\"hw\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << cyclesToUs(e.cycle)
                << ",\"args\":{\"sid\":" << e.sid
                << ",\"value\":" << e.value
                << ",\"arg\":" << static_cast<unsigned>(e.arg) << "}}";
}

void
emitSpan(JsonEventList &list, unsigned tid, const Event &e)
{
    const char *name = flowCodeName(static_cast<FlowCode>(e.arg));
    list.next() << "{\"ph\":\"X\",\"name\":\"" << name
                << "\",\"cat\":\"flow\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << cyclesToUs(e.cycle)
                << ",\"dur\":" << cyclesToUs(e.dur)
                << ",\"args\":{\"sid\":" << e.sid
                << ",\"pc\":" << e.pc
                << ",\"spid\":" << e.pid << "}}";
}

void
emitArrow(JsonEventList &list, unsigned tid, uint64_t id,
          uint64_t fromCycle, uint64_t toCycle)
{
    list.next() << "{\"ph\":\"s\",\"name\":\"preload\",\"cat\":\"preload\","
                << "\"id\":" << id << ",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << cyclesToUs(fromCycle) << "}";
    list.next() << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"preload\","
                << "\"cat\":\"preload\",\"id\":" << id
                << ",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << cyclesToUs(toCycle) << "}";
}

void
emitCounter(JsonEventList &list, unsigned tid, const std::string &name,
            uint64_t cycle, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    list.next() << "{\"ph\":\"C\",\"name\":\"" << jsonEscape(name)
                << "\",\"pid\":0,\"tid\":" << tid
                << ",\"ts\":" << cyclesToUs(cycle)
                << ",\"args\":{\"value\":" << buf << "}}";
}

} // namespace

void
writePerfettoJson(const std::vector<TrackView> &tracks, std::ostream &out)
{
    JsonEventList list(out);
    list.next() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
                << "\"tid\":0,\"args\":{\"name\":\"draco-sim\"}}";
    uint64_t arrowId = 0;
    for (size_t tid = 0; tid < tracks.size(); ++tid) {
        const TrackView &track = tracks[tid];
        emitMetadata(list, tid, *track.name);
        // A preload miss launches a speculative VAT fetch; draw an async
        // arrow from it to the syscall span whose check it raced.
        bool preloadPending = false;
        uint64_t preloadCycle = 0;
        for (const Event &e : *track.events) {
            switch (e.kind) {
              case EventKind::Syscall:
                if (preloadPending) {
                    emitArrow(list, tid, arrowId++, preloadCycle, e.cycle);
                    preloadPending = false;
                }
                emitSpan(list, tid, e);
                break;
              case EventKind::SlbPreloadMiss:
                preloadPending = true;
                preloadCycle = e.cycle;
                emitInstant(list, tid, e);
                break;
              default:
                emitInstant(list, tid, e);
                break;
            }
        }
        for (const Series &s : *track.series) {
            std::string name = *track.name + "." + s.name;
            for (size_t i = 0; i < track.sampleCycles->size(); ++i) {
                emitCounter(list, tid, name, (*track.sampleCycles)[i],
                            s.values[i]);
            }
        }
    }
}

bool
writePerfettoJson(const std::vector<TrackView> &tracks,
                  const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writePerfettoJson(tracks, out);
    out.flush();
    return out.good();
}

bool
writePerfettoJson(const std::vector<const Tracer *> &tracks,
                  const std::string &path)
{
    return writePerfettoJson(viewsOf(tracks), path);
}

// ---- .devt ----

namespace {

/** Encode one track's events and samples into a varint payload. */
std::vector<uint8_t>
encodePayload(const TrackView &track)
{
    std::vector<uint8_t> payload;
    uint64_t prevCycle = 0, prevPc = 0, prevPid = 0;
    for (const Event &e : *track.events) {
        putDelta(payload, e.cycle, prevCycle);
        prevCycle = e.cycle;
        putVarint(payload, static_cast<uint64_t>(e.kind));
        putVarint(payload, e.sid);
        putDelta(payload, e.pc, prevPc);
        prevPc = e.pc;
        putVarint(payload, e.arg);
        putVarint(payload, e.dur);
        putVarint(payload, e.value);
        putDelta(payload, e.pid, prevPid);
        prevPid = e.pid;
    }
    uint64_t prevSample = 0;
    std::vector<uint64_t> prevBits(track.series->size(), 0);
    for (size_t i = 0; i < track.sampleCycles->size(); ++i) {
        putDelta(payload, (*track.sampleCycles)[i], prevSample);
        prevSample = (*track.sampleCycles)[i];
        for (size_t c = 0; c < track.series->size(); ++c) {
            // XOR against the previous sample: slowly-moving telemetry
            // zeroes the exponent/sign bits, so the varint stays short.
            uint64_t bits =
                std::bit_cast<uint64_t>((*track.series)[c].values[i]);
            putVarint(payload, bits ^ prevBits[c]);
            prevBits[c] = bits;
        }
    }
    return payload;
}

bool
decodePayload(const std::vector<uint8_t> &payload, uint32_t eventCount,
              uint32_t sampleCount, TrackStore &track, std::string &error)
{
    size_t pos = 0;
    uint64_t prevCycle = 0, prevPc = 0, prevPid = 0;
    track.events.reserve(eventCount);
    for (uint32_t i = 0; i < eventCount; ++i) {
        Event e;
        uint64_t kind, sid, arg, dur, value;
        if (!takeDelta(payload, pos, prevCycle, e.cycle) ||
            !takeVarint(payload, pos, kind) ||
            !takeVarint(payload, pos, sid) ||
            !takeDelta(payload, pos, prevPc, e.pc) ||
            !takeVarint(payload, pos, arg) ||
            !takeVarint(payload, pos, dur) ||
            !takeVarint(payload, pos, value)) {
            error = "truncated event payload";
            return false;
        }
        uint64_t pid;
        if (!takeDelta(payload, pos, prevPid, pid)) {
            error = "truncated event payload";
            return false;
        }
        if (kind >= kEventKinds) {
            error = "invalid event kind";
            return false;
        }
        prevCycle = e.cycle;
        prevPc = e.pc;
        prevPid = pid;
        e.kind = static_cast<EventKind>(kind);
        e.sid = static_cast<uint16_t>(sid);
        e.arg = static_cast<uint8_t>(arg);
        e.dur = static_cast<uint32_t>(dur);
        e.value = value;
        e.pid = static_cast<uint32_t>(pid);
        track.events.push_back(e);
    }
    uint64_t prevSample = 0;
    std::vector<uint64_t> prevBits(track.series.size(), 0);
    track.sampleCycles.reserve(sampleCount);
    for (uint32_t i = 0; i < sampleCount; ++i) {
        uint64_t cycle;
        if (!takeDelta(payload, pos, prevSample, cycle)) {
            error = "truncated sample payload";
            return false;
        }
        prevSample = cycle;
        track.sampleCycles.push_back(cycle);
        for (size_t c = 0; c < track.series.size(); ++c) {
            uint64_t xorBits;
            if (!takeVarint(payload, pos, xorBits)) {
                error = "truncated sample payload";
                return false;
            }
            prevBits[c] ^= xorBits;
            track.series[c].values.push_back(
                std::bit_cast<double>(prevBits[c]));
        }
    }
    if (pos != payload.size()) {
        error = "trailing bytes in track payload";
        return false;
    }
    return true;
}

} // namespace

void
writeDevt(const std::vector<TrackView> &tracks, std::ostream &out)
{
    std::string head;
    head.append(kDevtMagic, sizeof(kDevtMagic));
    putU32(head, kDevtVersion);
    putU32(head, static_cast<uint32_t>(tracks.size()));
    out.write(head.data(), static_cast<std::streamsize>(head.size()));

    uint64_t totalEvents = 0;
    for (const TrackView &track : tracks) {
        std::vector<uint8_t> payload = encodePayload(track);
        std::string header;
        putU32(header, static_cast<uint32_t>(track.name->size()));
        header += *track.name;
        putU64(header, track.dropped);
        putU32(header, static_cast<uint32_t>(track.series->size()));
        for (const Series &s : *track.series) {
            putU32(header, static_cast<uint32_t>(s.name.size()));
            header += s.name;
        }
        putU32(header, static_cast<uint32_t>(track.events->size()));
        putU32(header, static_cast<uint32_t>(track.sampleCycles->size()));
        putU32(header, static_cast<uint32_t>(payload.size()));
        putU64(header, crc64Ecma().compute(payload.data(), payload.size()));
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        totalEvents += track.events->size();
    }

    std::string tail;
    putU64(tail, totalEvents);
    tail.append(kDevtEnd, sizeof(kDevtEnd));
    out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
}

bool
writeDevt(const std::vector<TrackView> &tracks, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writeDevt(tracks, out);
    out.flush();
    return out.good();
}

bool
writeDevt(const std::vector<const Tracer *> &tracks,
          const std::string &path)
{
    return writeDevt(viewsOf(tracks), path);
}

namespace {

bool
readString(std::istream &in, std::string &out)
{
    uint32_t len;
    if (!readU32(in, len) || len > (1u << 24))
        return false;
    out.resize(len);
    return len == 0 || readExact(in, out.data(), len);
}

} // namespace

bool
loadDevt(const std::string &path, LoadedTrace &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    char magic[8];
    if (!readExact(in, magic, sizeof(magic)) ||
        std::memcmp(magic, kDevtMagic, sizeof(magic)) != 0) {
        error = "not a .devt file (bad magic)";
        return false;
    }
    uint32_t version, trackCount;
    if (!readU32(in, version) || !readU32(in, trackCount)) {
        error = "truncated header";
        return false;
    }
    if (version != kDevtVersion) {
        error = "unsupported .devt version " + std::to_string(version);
        return false;
    }
    out.tracks.clear();
    for (uint32_t t = 0; t < trackCount; ++t) {
        TrackStore track;
        if (!readString(in, track.name)) {
            error = "truncated track header";
            return false;
        }
        uint32_t channelCount;
        if (!readU64(in, track.dropped) || !readU32(in, channelCount) ||
            channelCount > (1u << 16)) {
            error = "truncated track header";
            return false;
        }
        track.series.resize(channelCount);
        for (uint32_t c = 0; c < channelCount; ++c) {
            if (!readString(in, track.series[c].name)) {
                error = "truncated channel table";
                return false;
            }
        }
        uint32_t eventCount, sampleCount, payloadBytes;
        uint64_t crc;
        if (!readU32(in, eventCount) || !readU32(in, sampleCount) ||
            !readU32(in, payloadBytes) || !readU64(in, crc)) {
            error = "truncated track header";
            return false;
        }
        std::vector<uint8_t> payload(payloadBytes);
        if (payloadBytes != 0 &&
            !readExact(in, payload.data(), payloadBytes)) {
            error = "truncated track payload";
            return false;
        }
        if (crc64Ecma().compute(payload.data(), payload.size()) != crc) {
            error = "CRC mismatch in track '" + track.name + "'";
            return false;
        }
        if (!decodePayload(payload, eventCount, sampleCount, track,
                           error)) {
            error += " in track '" + track.name + "'";
            return false;
        }
        out.tracks.push_back(std::move(track));
    }
    uint64_t totalEvents;
    char end[8];
    if (!readU64(in, totalEvents) || !readExact(in, end, sizeof(end)) ||
        std::memcmp(end, kDevtEnd, sizeof(end)) != 0) {
        error = "truncated footer";
        return false;
    }
    uint64_t counted = 0;
    for (const TrackStore &track : out.tracks)
        counted += track.events.size();
    if (counted != totalEvents) {
        error = "footer event count mismatch";
        return false;
    }
    return true;
}

} // namespace draco::obs
