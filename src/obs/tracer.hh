/**
 * @file
 * Low-overhead deterministic event tracing and telemetry.
 *
 * A Tracer is one track of a trace: a single-writer, preallocated ring
 * of typed events plus an optional columnar telemetry sampler. The
 * simulator's instrumentation points hold a `Tracer *` that is null (or
 * a disabled Tracer) when tracing is off, so the disabled path is one
 * predictable branch — no events, no allocations, no locks. When
 * enabled, recording is a bounds check and a few stores into memory
 * allocated once up front; a full buffer drops events and counts the
 * drops instead of growing, so tracing memory is strictly bounded.
 *
 * A TraceSession owns one Tracer per track (per simulated core, or per
 * sweep cell) and merges them at export time in *name* order with each
 * track's events in cycle order — never in creation or completion
 * order — so the exported bytes are identical at any `--threads N`.
 *
 * The tracer never consumes randomness and never feeds back into the
 * simulation: a traced run produces bit-identical RunResults to an
 * untraced one.
 */

#ifndef DRACO_OBS_TRACER_HH
#define DRACO_OBS_TRACER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "support/metrics.hh"

namespace draco::obs {

/** Knobs of one track's tracer. */
struct TracerConfig {
    /**
     * Event-ring capacity (events). Allocated once at enable time;
     * recording beyond it increments the drop counter instead of
     * growing. ~40 MB per million events.
     */
    size_t capacity = 1 << 20;

    /** Record discrete events (false: telemetry sampling only). */
    bool recordEvents = true;

    /** Telemetry sample interval in sim cycles (0 = sampling off). */
    uint64_t sampleEveryCycles = 0;
};

/** One telemetry channel: a name and its sampled values (columnar). */
struct Series {
    std::string name;
    std::vector<double> values; ///< Aligned with Tracer::sampleCycles().
};

/**
 * One track's event recorder and telemetry sampler.
 */
class Tracer
{
  public:
    /** Disabled tracer: record() is a no-op, nothing is allocated. */
    Tracer() = default;

    /**
     * Enabled tracer.
     *
     * @param config Capacity and sampling knobs.
     * @param track Track name (stable export identity).
     */
    Tracer(const TracerConfig &config, std::string track);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** @return true when this tracer records anything at all. */
    bool enabled() const { return _enabled; }

    /** @return The track name ("" for a disabled tracer). */
    const std::string &track() const { return _track; }

    // ---- clock and identity context (set by the driving loop) ----

    /** Set the current sim time in cycles. */
    void setNow(uint64_t cycle) { _now = cycle; }

    /** Set the current sim time from nanoseconds (2 GHz clock). */
    void setNowNs(double ns)
    {
        _now = static_cast<uint64_t>(ns * 2.0 + 0.5);
    }

    /** @return The current sim cycle. */
    uint64_t now() const { return _now; }

    /** Set the simulated process id stamped on subsequent events. */
    void setPid(uint32_t pid) { _pid = pid; }

    // ---- event recording (hot path) ----

    /** Record one instant event at the current cycle. */
    void
    record(EventKind kind, uint16_t sid = 0, uint64_t pc = 0,
           uint8_t arg = 0, uint64_t value = 0)
    {
        if (!_recordEvents)
            return;
        if (_events.size() >= _capacity) {
            noteDrop();
            return;
        }
        Event &e = _events.emplace_back();
        e.cycle = _now;
        e.pc = pc;
        e.value = value;
        e.pid = _pid;
        e.sid = sid;
        e.kind = kind;
        e.arg = arg;
    }

    /**
     * Open a syscall-check span at the current cycle. The matching
     * endSyscall() closes it with its flow classification; sub-events
     * recorded in between land inside the span.
     */
    void
    beginSyscall(uint16_t sid, uint64_t pc)
    {
        _spanOpen = _enabled;
        _spanCycle = _now;
        _spanSid = sid;
        _spanPc = pc;
    }

    /** Close the open span, classified as @p flow. */
    void
    endSyscall(FlowCode flow)
    {
        if (!_spanOpen)
            return;
        _spanOpen = false;
        if (!_recordEvents)
            return;
        if (_events.size() >= _capacity) {
            noteDrop();
            return;
        }
        Event &e = _events.emplace_back();
        e.cycle = _spanCycle;
        e.pc = _spanPc;
        e.dur = static_cast<uint32_t>(_now - _spanCycle);
        e.pid = _pid;
        e.sid = _spanSid;
        e.kind = EventKind::Syscall;
        e.arg = static_cast<uint8_t>(flow);
    }

    // ---- telemetry sampling ----

    /**
     * Register (or re-register) a telemetry channel. The provider is
     * polled at every sample point; it must stay valid for the duration
     * of the run that registered it.
     */
    void addChannel(const std::string &name,
                    std::function<double()> provider);

    /**
     * Sample all channels if the current cycle crossed the sampling
     * interval; cheap no-op otherwise (or when sampling is off).
     */
    void
    maybeSample()
    {
        if (_sampleEvery == 0 || _now < _nextSample)
            return;
        takeSample();
    }

    // ---- inspection and export ----

    /** @return Recorded events, in recording (cycle) order. */
    const std::vector<Event> &events() const { return _events; }

    /** @return Events dropped because the ring was full. */
    uint64_t dropped() const { return _dropped; }

    /** @return Bytes of event storage allocated (0 when disabled). */
    size_t capacityBytes() const { return _capacity * sizeof(Event); }

    /** @return Cycles at which telemetry samples were taken. */
    const std::vector<uint64_t> &sampleCycles() const
    {
        return _sampleCycles;
    }

    /** @return Telemetry channels, in registration order. */
    const std::vector<Series> &series() const { return _series; }

  private:
    void noteDrop();
    void takeSample();

    bool _enabled = false;
    bool _recordEvents = false;
    size_t _capacity = 0;
    std::string _track;
    uint64_t _now = 0;
    uint32_t _pid = 0;
    uint64_t _dropped = 0;
    std::vector<Event> _events;

    bool _spanOpen = false;
    uint64_t _spanCycle = 0;
    uint64_t _spanPc = 0;
    uint16_t _spanSid = 0;

    uint64_t _sampleEvery = 0;
    uint64_t _nextSample = 0;
    std::vector<uint64_t> _sampleCycles;
    std::vector<Series> _series;
    std::vector<std::function<double()>> _providers;
};

/** Session-level configuration. */
struct SessionConfig {
    /**
     * Export destination. Extension selects the format: `.json` writes
     * Chrome/Perfetto trace-event JSON, anything else the compact
     * binary `.devt` format. Empty leaves the session disabled.
     */
    std::string outPath;

    /** Per-track tracer knobs. */
    TracerConfig tracer;
};

/**
 * A set of per-track tracers with deterministic merged export.
 *
 * tracer() hands out one Tracer per track name, creating it on first
 * request (thread-safe: concurrent sweep cells may each claim their own
 * track; the per-event record path stays lock-free because each track
 * has exactly one writer). Export walks tracks sorted by name, so the
 * output is independent of creation order and thread count.
 */
class TraceSession
{
  public:
    /** Disabled session: tracer() returns nullptr, exports are no-ops. */
    TraceSession() = default;

    /** Enable with @p config (outPath must be non-empty). */
    explicit TraceSession(const SessionConfig &config);

    /** Enable a default-constructed session; fatal if already enabled. */
    void configure(const SessionConfig &config);

    /** @return true when tracing is on. */
    bool enabled() const { return _enabled; }

    /** @return The configured export path ("" when disabled). */
    const std::string &outPath() const { return _config.outPath; }

    /**
     * @return The tracer of @p track (created on first use), or nullptr
     *         when the session is disabled.
     */
    Tracer *tracer(const std::string &track);

    /** @return All tracers, sorted by track name. */
    std::vector<const Tracer *> tracks() const;

    /** @return Events recorded across all tracks. */
    uint64_t totalEvents() const;

    /** @return Events dropped across all tracks. */
    uint64_t totalDropped() const;

    /** @return Telemetry samples taken across all tracks. */
    uint64_t totalSamples() const;

    /**
     * Export `obs.*` session counters (tracks, events, drops, samples)
     * under @p prefix.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Write the configured output file (format from the extension).
     * No-op when disabled; returns false (with a warning) when the file
     * cannot be written.
     */
    bool writeOutput() const;

  private:
    bool _enabled = false;
    SessionConfig _config;
    mutable std::mutex _mutex; ///< Guards _tracers (creation only).
    std::map<std::string, std::unique_ptr<Tracer>> _tracers;
};

} // namespace draco::obs

#endif // DRACO_OBS_TRACER_HH
