/**
 * @file
 * Live serving observability for dracod: the request-stage latency
 * pipeline, the Prometheus scrape surface, and the slow-request ring.
 *
 * Every check batch flowing through the SocketServer carries one
 * StageRecord stamped at six points of its life:
 *
 *   admitNs ──> parseNs ──> enqueueNs ──> drainStartNs ──> checkDoneNs
 *   (socket     (frame      (submit       (shard worker    (verdicts
 *    read)       decoded)    accepted)     picks it up)     written)
 *                                                              │
 *                                            flushedNs <──────┘
 *                                            (reply bytes on the wire)
 *
 * from which five stage latencies plus the total are derived. Records
 * are committed into per-event-loop slots — each slot holds per-shard,
 * per-stage Histogram + BoundedSketch instruments and is written only
 * by its owning loop thread — so the hot path never touches a shared
 * lock. A scrape walks the slots, merging them under each slot's
 * (uncontended) mutex, and renders Prometheus text exposition format
 * 0.0.4 with `stage` / `shard` labels and p50/p95/p99/p999 quantiles.
 *
 * Requests whose total latency exceeds a threshold (`--slow-us`) are
 * additionally captured into a bounded ring with their full stage
 * breakdown, tenant, shard, batch size, and verdict counts; the ring
 * is dumpable as JSON via `/slowz` and pretty-printed by
 * `obstool slowz`.
 *
 * Determinism contract: nothing in here feeds back into check results.
 * Verdict streams and tenant fingerprints are byte-identical whether
 * observability is enabled or not (test-enforced).
 */

#ifndef DRACO_OBS_SERVEOBS_HH
#define DRACO_OBS_SERVEOBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.hh"
#include "support/stats.hh"

namespace draco::obs {

/** @return Steady-clock nanoseconds; the timebase for all stamps. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Derived pipeline stages, in timestamp order. */
enum class Stage {
    Parse,  ///< admit -> parse: frame decode on the event loop
    Submit, ///< parse -> enqueue: admission control + shard handoff
    Queue,  ///< enqueue -> drain-start: wait in the shard queue
    Check,  ///< drain-start -> check-done: batch drain + checking
    Reply,  ///< check-done -> flushed: encode, loop wakeup, send()
    Total,  ///< admit -> flushed
};

constexpr size_t kStageCount = 6;

/** @return Lowercase stable name of @p stage ("parse", "queue", ...). */
const char *stageName(Stage stage);

/**
 * One check batch's trip through the pipeline. Stamped incrementally
 * by the event loop (admit/parse/flushed) and the shard worker
 * (enqueue/drain-start/check-done); committed once the reply bytes hit
 * the socket. Timestamps are obs::nowNs() values; later stamps default
 * to earlier ones so a record shed before some stage still yields
 * non-negative stage latencies.
 */
struct StageRecord {
    uint64_t admitNs = 0;
    uint64_t parseNs = 0;
    uint64_t enqueueNs = 0;
    uint64_t drainStartNs = 0;
    uint64_t checkDoneNs = 0;
    uint64_t flushedNs = 0;

    uint64_t batchId = 0;
    uint32_t tenant = 0;
    uint32_t shard = 0;
    uint32_t batchSize = 0;
    uint32_t allowed = 0;
    uint32_t denied = 0;
    uint32_t shed = 0;

    /** @return The latency of @p stage in microseconds (>= 0). */
    double stageUs(Stage stage) const;
};

/** A captured slow request: the record plus a capture sequence. */
struct SlowRecord {
    uint64_t seq = 0;
    StageRecord rec;
};

/**
 * Quantile sketch with bounded retention. Wraps the exact
 * QuantileSketch with deterministic decimation: once the retained set
 * hits the cap, every other sample is dropped and the input stride
 * doubles, so a long-running daemon keeps a uniform (every Nth)
 * subsample of the stream in O(cap) memory.
 */
class BoundedSketch
{
  public:
    explicit BoundedSketch(size_t cap = 8192) : _cap(cap ? cap : 1) {}

    /** Record one sample (possibly skipped by the current stride). */
    void add(double x);

    /** @return Samples offered via add(), before decimation. */
    uint64_t seen() const { return _seen; }

    /** @return Samples currently retained. */
    size_t retained() const { return _xs.size(); }

    /** @return Current input stride (1 until the first decimation). */
    uint64_t stride() const { return _stride; }

    /** Append the retained samples into @p out. */
    void mergeInto(QuantileSketch &out) const;

  private:
    size_t _cap;
    uint64_t _seen = 0;
    uint64_t _stride = 1;
    std::vector<double> _xs;
};

/** Configuration for ServeObs. */
struct ServeObsOptions {
    unsigned loops = 1;       ///< event-loop slot count
    unsigned shards = 1;      ///< service shard count (label space)
    uint32_t slowUs = 0;      ///< slow-capture threshold; 0 disables
    size_t slowCapacity = 256;    ///< slow ring size (newest kept)
    size_t sketchSamples = 8192;  ///< BoundedSketch retention cap
    double histHiUs = 100000.0;   ///< histogram range [0, hi) in us
    size_t histBuckets = 200;     ///< linear bucket count
};

/**
 * The serving-observability hub owned by the SocketServer.
 *
 * Threading: commit() and recordDropped() are called with the caller's
 * loop index; each loop index maps to a private slot whose mutex is
 * only ever contended by a scrape (exportMetrics / renderPrometheus /
 * slowzJson), so steady-state commits are an uncontended lock plus a
 * few histogram adds. The slow ring is global but guarded by a
 * threshold test before its lock — slow requests are rare by
 * definition.
 */
class ServeObs
{
  public:
    explicit ServeObs(const ServeObsOptions &options);

    unsigned loops() const { return _options.loops; }
    unsigned shards() const { return _options.shards; }
    uint32_t slowUs() const { return _options.slowUs; }

    /**
     * Fold one completed record into loop slot @p loop. Also captures
     * into the slow ring when total latency >= the threshold.
     */
    void commit(size_t loop, const StageRecord &rec);

    /**
     * Count @p n records whose replies were discarded before flush
     * (connection died / output overflow) and thus never committed.
     */
    void recordDropped(size_t loop, uint64_t n);

    /** @return Total records committed across slots (scrape-path). */
    uint64_t committed() const;

    /** @return Total records dropped across slots (scrape-path). */
    uint64_t dropped() const;

    /** @return Total slow captures (including ones evicted). */
    uint64_t slowTotal() const;

    /** @return The current slow-ring contents, oldest first. */
    std::vector<SlowRecord> slowRecords() const;

    /**
     * Merge every slot and export into @p registry under @p prefix:
     * per-shard per-stage quantile sketches (`...stages.s0.check_us`)
     * and histograms (`..._hist`), the all-shard merge under
     * `...stages.all.*`, and the commit/drop/slow counters.
     */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix = "serve.obs") const;

    /**
     * Render the full Prometheus scrape body: the native stage
     * metrics (`draco_serve_stage_latency_us{stage=,shard=,quantile=}`
     * summaries plus `_hist` le-bucket histograms) followed by every
     * leaf of @p extra mapped through renderRegistry().
     */
    std::string renderPrometheus(const MetricRegistry &extra) const;

    /** @return The slow ring as a JSON document (see DESIGN.md §14). */
    std::string slowzJson() const;

    /**
     * Render an arbitrary registry as Prometheus text exposition:
     * Counter -> counter, Gauge -> gauge, Stat -> _count/_sum/_min/
     * _max/_mean gauges, Sketch -> summary with quantile labels,
     * Hist -> histogram with cumulative le buckets, Text -> info-style
     * gauge with the value as a label. Dots in names become '_' and
     * everything is prefixed `draco_`.
     */
    static void renderRegistry(const MetricRegistry &registry,
                               std::string &out);

  private:
    /** Per-shard instruments: [shard][stage] for hist and sketch. */
    struct PerShard {
        std::vector<Histogram> hist;      // kStageCount entries
        std::vector<BoundedSketch> sketch; // kStageCount entries
    };

    /** One event loop's private instrument slot. */
    struct Slot {
        mutable std::mutex mutex;
        std::vector<PerShard> shards;
        uint64_t committed = 0;
        uint64_t dropped = 0;
    };

    /** Merged view of one (shard, stage) cell across slots. */
    struct MergedCell {
        Histogram hist;
        QuantileSketch sketch;
        explicit MergedCell(const ServeObsOptions &o)
            : hist(0.0, o.histHiUs, o.histBuckets) {}
    };

    void captureSlow(const StageRecord &rec, double totalUs);
    MergedCell mergeCell(unsigned shard, Stage stage) const;

    ServeObsOptions _options;
    std::vector<std::unique_ptr<Slot>> _slots;

    mutable std::mutex _slowMutex;
    std::deque<SlowRecord> _slow;
    uint64_t _slowSeq = 0;
};

/**
 * Escape a Prometheus label value: backslash, double quote, and
 * newline become \\, \", and \n.
 */
std::string promEscapeLabel(const std::string &value);

/** @return A dotted metric path as a `draco_`-prefixed metric name. */
std::string promMetricName(const std::string &dotted);

/**
 * Build a minimal HTTP/1.0 response with Content-Length and
 * `Connection: close`, ready to append to a connection's output
 * buffer.
 */
std::string httpResponse(int status, const std::string &contentType,
                         const std::string &body);

} // namespace draco::obs

#endif // DRACO_OBS_SERVEOBS_HH
