#include "obs/events.hh"

namespace draco::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Syscall: return "syscall";
      case EventKind::StbHit: return "stb_hit";
      case EventKind::StbMiss: return "stb_miss";
      case EventKind::SlbPreloadHit: return "slb_preload_hit";
      case EventKind::SlbPreloadMiss: return "slb_preload_miss";
      case EventKind::SlbAccessHit: return "slb_access_hit";
      case EventKind::SlbAccessMiss: return "slb_access_miss";
      case EventKind::TempCommit: return "temp_commit";
      case EventKind::TempSquash: return "temp_squash";
      case EventKind::TempStaleDrop: return "temp_stale_drop";
      case EventKind::VatInsert: return "vat_insert";
      case EventKind::VatEvict: return "vat_evict";
      case EventKind::SptSave: return "spt_save";
      case EventKind::SptRestore: return "spt_restore";
      case EventKind::ContextSwitch: return "context_switch";
      case EventKind::CacheFill: return "cache_fill";
      case EventKind::FilterRun: return "filter_run";
      case EventKind::SwCheck: return "sw_check";
      case EventKind::TenantSnapshot: return "tenant_snapshot";
      case EventKind::TenantRestore: return "tenant_restore";
    }
    return "unknown";
}

const char *
flowCodeName(FlowCode flow)
{
    switch (flow) {
      case FlowCode::IdOnly: return "id_only";
      case FlowCode::F1: return "f1";
      case FlowCode::F2: return "f2";
      case FlowCode::F3: return "f3";
      case FlowCode::F4: return "f4";
      case FlowCode::F5: return "f5";
      case FlowCode::F6: return "f6";
      case FlowCode::Denied: return "denied";
      case FlowCode::SptAllowAll: return "spt_allow_all";
      case FlowCode::VatHit: return "vat_hit";
      case FlowCode::FilterAllowed: return "filter_allowed";
      case FlowCode::Seccomp: return "seccomp";
      case FlowCode::Unchecked: return "unchecked";
    }
    return "unknown";
}

} // namespace draco::obs
