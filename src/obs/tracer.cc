#include "obs/tracer.hh"

#include <algorithm>

#include "obs/export.hh"
#include "support/logging.hh"

namespace draco::obs {

Tracer::Tracer(const TracerConfig &config, std::string track)
    : _enabled(true), _recordEvents(config.recordEvents),
      _capacity(config.recordEvents ? config.capacity : 0),
      _track(std::move(track)),
      _sampleEvery(config.sampleEveryCycles),
      _nextSample(config.sampleEveryCycles)
{
    _events.reserve(_capacity);
}

void
Tracer::noteDrop()
{
    if (_dropped++ == 0) {
        ScopedLogContext ctx(_track);
        warn("tracer: event ring full (capacity %zu), dropping further "
             "events", _capacity);
    }
}

void
Tracer::addChannel(const std::string &name,
                   std::function<double()> provider)
{
    if (!_enabled || _sampleEvery == 0)
        return;
    for (size_t i = 0; i < _series.size(); ++i) {
        if (_series[i].name == name) {
            _providers[i] = std::move(provider);
            return;
        }
    }
    Series s;
    s.name = name;
    // Channels registered after sampling started backfill with zeros so
    // every column stays aligned with sampleCycles().
    s.values.assign(_sampleCycles.size(), 0.0);
    _series.push_back(std::move(s));
    _providers.push_back(std::move(provider));
}

void
Tracer::takeSample()
{
    _sampleCycles.push_back(_now);
    for (size_t i = 0; i < _series.size(); ++i)
        _series[i].values.push_back(_providers[i] ? _providers[i]() : 0.0);
    // One sample per crossing: skip intervals the sim jumped over.
    while (_nextSample <= _now)
        _nextSample += _sampleEvery;
}

TraceSession::TraceSession(const SessionConfig &config)
{
    configure(config);
}

void
TraceSession::configure(const SessionConfig &config)
{
    if (_enabled)
        fatal("TraceSession: already configured (out '%s')",
              _config.outPath.c_str());
    if (config.outPath.empty())
        fatal("TraceSession: empty output path");
    _config = config;
    _enabled = true;
}

Tracer *
TraceSession::tracer(const std::string &track)
{
    if (!_enabled)
        return nullptr;
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _tracers.find(track);
    if (it == _tracers.end()) {
        it = _tracers.emplace(
            track, std::make_unique<Tracer>(_config.tracer, track)).first;
    }
    return it->second.get();
}

std::vector<const Tracer *>
TraceSession::tracks() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<const Tracer *> out;
    out.reserve(_tracers.size());
    for (const auto &[name, tracer] : _tracers)
        out.push_back(tracer.get());
    return out; // std::map iterates in name order already.
}

uint64_t
TraceSession::totalEvents() const
{
    uint64_t total = 0;
    for (const Tracer *t : tracks())
        total += t->events().size();
    return total;
}

uint64_t
TraceSession::totalDropped() const
{
    uint64_t total = 0;
    for (const Tracer *t : tracks())
        total += t->dropped();
    return total;
}

uint64_t
TraceSession::totalSamples() const
{
    uint64_t total = 0;
    for (const Tracer *t : tracks())
        total += t->sampleCycles().size() * t->series().size();
    return total;
}

void
TraceSession::exportMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    if (!_enabled)
        return;
    registry.counter(prefix + ".tracks") += tracks().size();
    registry.counter(prefix + ".events") += totalEvents();
    registry.counter(prefix + ".dropped") += totalDropped();
    registry.counter(prefix + ".samples") += totalSamples();
}

bool
TraceSession::writeOutput() const
{
    if (!_enabled)
        return true;
    std::vector<const Tracer *> sorted = tracks();
    bool ok;
    if (_config.outPath.size() >= 5 &&
        _config.outPath.rfind(".json") == _config.outPath.size() - 5) {
        ok = writePerfettoJson(sorted, _config.outPath);
    } else {
        ok = writeDevt(sorted, _config.outPath);
    }
    if (!ok)
        warn("TraceSession: failed to write '%s'", _config.outPath.c_str());
    return ok;
}

} // namespace draco::obs
