/**
 * @file
 * O(1) LRU order over a shard's resident tenants.
 *
 * Each shard worker owns one ResidentLru (single writer, no locks):
 * every processed check touches the tenant to the hot end, and the
 * post-drain cap enforcement pops coldest() until the shard is back
 * under its resident budget. Ids, not pointers, so the structure is
 * oblivious to tenant lifetime.
 */

#ifndef DRACO_LIFECYCLE_RESIDENT_LRU_HH
#define DRACO_LIFECYCLE_RESIDENT_LRU_HH

#include <cstdint>
#include <list>
#include <unordered_map>

namespace draco::lifecycle {

/** Intrusive-free LRU list of tenant ids (see file comment). */
class ResidentLru
{
  public:
    /** Mark @p id most-recently-used (inserting it when absent). */
    void
    touch(uint32_t id)
    {
        auto it = _where.find(id);
        if (it != _where.end())
            _order.erase(it->second);
        _order.push_back(id);
        _where[id] = std::prev(_order.end());
    }

    /** Remove @p id. @return false when it was not tracked. */
    bool
    erase(uint32_t id)
    {
        auto it = _where.find(id);
        if (it == _where.end())
            return false;
        _order.erase(it->second);
        _where.erase(it);
        return true;
    }

    /** @return true when @p id is tracked. */
    bool contains(uint32_t id) const { return _where.count(id) != 0; }

    /** @return The least-recently-used id (0 when empty). */
    uint32_t coldest() const { return _order.empty() ? 0 : _order.front(); }

    /** @return Tracked id count. */
    size_t size() const { return _where.size(); }

    bool empty() const { return _where.empty(); }

  private:
    std::list<uint32_t> _order; ///< front = coldest, back = hottest.
    std::unordered_map<uint32_t, std::list<uint32_t>::iterator> _where;
};

} // namespace draco::lifecycle

#endif // DRACO_LIFECYCLE_RESIDENT_LRU_HH
