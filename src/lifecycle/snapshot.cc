#include "lifecycle/snapshot.hh"

#include <cstring>

#include "hash/crc64.hh"
#include "support/binio.hh"

namespace draco::lifecycle {

namespace {

/** Set @p error (when asked for) and return false. */
bool
failDecode(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Append one framed block: type, length, payload, trailing CRC. */
void
putBlock(std::vector<uint8_t> &out, BlockType type,
         const std::vector<uint8_t> &payload)
{
    size_t start = out.size();
    binio::putU8(out, static_cast<uint8_t>(type));
    binio::putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    uint64_t crc = crc64Ecma().compute(out.data() + start,
                                       out.size() - start);
    binio::putU64(out, crc);
}

void
putCheckStats(std::vector<uint8_t> &out, const core::SwCheckStats &s)
{
    binio::putVarint(out, s.checks);
    binio::putVarint(out, s.sptAllowAll);
    binio::putVarint(out, s.vatHits);
    binio::putVarint(out, s.filterRuns);
    binio::putVarint(out, s.denials);
    binio::putVarint(out, s.filterInsns);
    binio::putVarint(out, s.vatInsertions);
}

bool
takeCheckStats(const std::vector<uint8_t> &buf, size_t &pos,
               core::SwCheckStats &s)
{
    return binio::takeVarint(buf, pos, s.checks) &&
        binio::takeVarint(buf, pos, s.sptAllowAll) &&
        binio::takeVarint(buf, pos, s.vatHits) &&
        binio::takeVarint(buf, pos, s.filterRuns) &&
        binio::takeVarint(buf, pos, s.denials) &&
        binio::takeVarint(buf, pos, s.filterInsns) &&
        binio::takeVarint(buf, pos, s.vatInsertions);
}

void
putCuckooStats(std::vector<uint8_t> &out, const CuckooStats &s)
{
    binio::putVarint(out, s.lookups);
    binio::putVarint(out, s.hits);
    binio::putVarint(out, s.insertions);
    binio::putVarint(out, s.displacements);
    binio::putVarint(out, s.evictions);
}

bool
takeCuckooStats(const std::vector<uint8_t> &buf, size_t &pos,
                CuckooStats &s)
{
    return binio::takeVarint(buf, pos, s.lookups) &&
        binio::takeVarint(buf, pos, s.hits) &&
        binio::takeVarint(buf, pos, s.insertions) &&
        binio::takeVarint(buf, pos, s.displacements) &&
        binio::takeVarint(buf, pos, s.evictions);
}

struct MetaFields {
    std::string tenant;
    uint64_t policyKey = 0;
    uint64_t filterCopies = 1;
    core::SwCheckStats stats;
    uint64_t vatEvictions = 0;
    uint64_t tableCount = 0;
};

bool
decodeMeta(const RawBlock &block, MetaFields &meta, std::string *error)
{
    size_t pos = 0;
    if (!binio::takeString(block.payload, pos, meta.tenant) ||
        !binio::takeU64(block.payload, pos, meta.policyKey) ||
        !binio::takeVarint(block.payload, pos, meta.filterCopies) ||
        !takeCheckStats(block.payload, pos, meta.stats) ||
        !binio::takeVarint(block.payload, pos, meta.vatEvictions) ||
        !binio::takeVarint(block.payload, pos, meta.tableCount))
        return failDecode(error, "truncated Meta block");
    if (pos != block.payload.size())
        return failDecode(error, "trailing bytes in Meta block");
    return true;
}

struct TableHeader {
    uint64_t sid = 0;
    uint64_t bitmask = 0;
    uint64_t buckets = 0;
    CuckooStats stats;
    uint64_t entries = 0;
};

bool
decodeTableHeader(const std::vector<uint8_t> &payload, size_t &pos,
                  TableHeader &header, std::string *error)
{
    if (!binio::takeVarint(payload, pos, header.sid) ||
        !binio::takeU64(payload, pos, header.bitmask) ||
        !binio::takeVarint(payload, pos, header.buckets) ||
        !takeCuckooStats(payload, pos, header.stats) ||
        !binio::takeVarint(payload, pos, header.entries))
        return failDecode(error, "truncated Table block header");
    if (header.sid > UINT16_MAX)
        return failDecode(error, "Table sid out of range");
    return true;
}

} // namespace

std::vector<uint8_t>
encodeSnapshot(const std::string &tenant,
               const core::DracoSoftwareChecker &checker,
               unsigned filterCopies)
{
    std::vector<uint8_t> out;
    out.insert(out.end(), kSnapshotMagic,
               kSnapshotMagic + sizeof(kSnapshotMagic));
    binio::putU16(out, kSnapshotVersion);

    const core::Vat &vat = checker.vat();

    std::vector<uint8_t> meta;
    binio::putString(meta, tenant);
    binio::putU64(meta, checker.policy()->programKey);
    binio::putVarint(meta, filterCopies);
    putCheckStats(meta, checker.stats());
    binio::putVarint(meta, vat.evictions());
    binio::putVarint(meta, vat.tableCount());
    putBlock(out, BlockType::Meta, meta);

    uint64_t tables = 0;
    vat.forEachTable([&](uint16_t sid, uint64_t bitmask,
                         const CuckooTable<core::ArgKey> &cuckoo) {
        std::vector<uint8_t> body;
        binio::putVarint(body, sid);
        binio::putU64(body, bitmask);
        binio::putVarint(body, cuckoo.buckets());
        putCuckooStats(body, cuckoo.stats());
        binio::putVarint(body, cuckoo.size());
        cuckoo.forEachSlot([&](CuckooWay way, uint64_t index,
                               const core::ArgKey &key) {
            binio::putU8(body, static_cast<uint8_t>(way));
            binio::putVarint(body, index);
            binio::putU8(body, static_cast<uint8_t>(key.size()));
            body.insert(body.end(), key.data(), key.data() + key.size());
        });
        putBlock(out, BlockType::Table, body);
        ++tables;
    });

    std::vector<uint8_t> end;
    binio::putVarint(end, tables);
    putBlock(out, BlockType::End, end);
    return out;
}

bool
parseSnapshotBlocks(const std::vector<uint8_t> &bytes,
                    std::vector<RawBlock> &blocks, std::string *error)
{
    blocks.clear();
    if (bytes.size() < sizeof(kSnapshotMagic) + 2)
        return failDecode(error, "file shorter than the header");
    if (std::memcmp(bytes.data(), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) != 0)
        return failDecode(error, "bad magic (not a .dtss snapshot)");
    size_t pos = sizeof(kSnapshotMagic);
    uint16_t version = 0;
    binio::takeU16(bytes, pos, version);
    if (version != kSnapshotVersion)
        return failDecode(error,
                          "unsupported version " + std::to_string(version));

    bool sawEnd = false;
    uint64_t endTables = 0;
    while (pos < bytes.size()) {
        if (sawEnd)
            return failDecode(error, "bytes after the End block");
        size_t blockStart = pos;
        uint8_t type = 0;
        uint32_t len = 0;
        if (!binio::takeU8(bytes, pos, type) ||
            !binio::takeU32(bytes, pos, len))
            return failDecode(error, "truncated block header");
        if (pos + len + 8 > bytes.size())
            return failDecode(error, "truncated block payload");
        uint64_t expect = crc64Ecma().compute(bytes.data() + blockStart,
                                              1 + 4 + len);
        size_t crcPos = pos + len;
        uint64_t stored = 0;
        binio::takeU64(bytes, crcPos, stored);
        if (stored != expect)
            return failDecode(error, "block CRC mismatch");

        RawBlock block;
        block.type = type;
        block.payload.assign(bytes.begin() + pos, bytes.begin() + pos + len);
        pos += len + 8;

        if (type == static_cast<uint8_t>(BlockType::End)) {
            size_t epos = 0;
            if (!binio::takeVarint(block.payload, epos, endTables))
                return failDecode(error, "truncated End block");
            sawEnd = true;
            continue;
        }
        blocks.push_back(std::move(block));
    }
    if (!sawEnd)
        return failDecode(error, "missing End block (truncated file)");

    uint64_t tables = 0;
    for (const RawBlock &block : blocks)
        if (block.type == static_cast<uint8_t>(BlockType::Table))
            ++tables;
    if (tables != endTables)
        return failDecode(error, "End block table count mismatch");
    return true;
}

std::vector<uint8_t>
serializeSnapshotBlocks(const std::vector<RawBlock> &blocks)
{
    std::vector<uint8_t> out;
    out.insert(out.end(), kSnapshotMagic,
               kSnapshotMagic + sizeof(kSnapshotMagic));
    binio::putU16(out, kSnapshotVersion);
    uint64_t tables = 0;
    for (const RawBlock &block : blocks) {
        putBlock(out, static_cast<BlockType>(block.type), block.payload);
        if (block.type == static_cast<uint8_t>(BlockType::Table))
            ++tables;
    }
    std::vector<uint8_t> end;
    binio::putVarint(end, tables);
    putBlock(out, BlockType::End, end);
    return out;
}

bool
inspectSnapshot(const std::vector<uint8_t> &bytes, SnapshotInfo &info,
                std::string *error)
{
    std::vector<RawBlock> blocks;
    if (!parseSnapshotBlocks(bytes, blocks, error))
        return false;
    if (blocks.empty() ||
        blocks.front().type != static_cast<uint8_t>(BlockType::Meta))
        return failDecode(error, "first block is not Meta");

    MetaFields meta;
    if (!decodeMeta(blocks.front(), meta, error))
        return false;

    info = SnapshotInfo{};
    info.tenant = meta.tenant;
    info.policyKey = meta.policyKey;
    info.version = kSnapshotVersion;
    info.filterCopies = static_cast<unsigned>(meta.filterCopies);
    info.stats = meta.stats;
    info.vatEvictions = meta.vatEvictions;
    info.bytes = bytes.size();

    for (size_t i = 1; i < blocks.size(); ++i) {
        const RawBlock &block = blocks[i];
        if (block.type != static_cast<uint8_t>(BlockType::Table))
            return failDecode(error, "unexpected block type " +
                                         std::to_string(block.type));
        size_t pos = 0;
        TableHeader header;
        if (!decodeTableHeader(block.payload, pos, header, error))
            return false;
        SnapshotTableInfo table;
        table.sid = static_cast<uint16_t>(header.sid);
        table.bitmask = header.bitmask;
        table.buckets = header.buckets;
        table.sets = header.entries;
        info.tables.push_back(table);
    }
    if (info.tables.size() != meta.tableCount)
        return failDecode(error, "Meta table count mismatch");
    return true;
}

bool
peekSnapshotPolicyKey(const std::vector<uint8_t> &bytes,
                      uint64_t &policyKey, std::string *error)
{
    // A deliberate partial parse: header plus the first block only.
    // The probe answers "which policy does this snapshot belong to?"
    // without paying for every table's CRC — the full restore (or its
    // fail-closed rejection) still re-verifies everything it uses.
    if (bytes.size() < sizeof(kSnapshotMagic) + 2)
        return failDecode(error, "file shorter than the header");
    if (std::memcmp(bytes.data(), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) != 0)
        return failDecode(error, "bad magic (not a .dtss snapshot)");
    size_t pos = sizeof(kSnapshotMagic);
    uint16_t version = 0;
    binio::takeU16(bytes, pos, version);
    if (version != kSnapshotVersion)
        return failDecode(error,
                          "unsupported version " + std::to_string(version));

    size_t blockStart = pos;
    uint8_t type = 0;
    uint32_t len = 0;
    if (!binio::takeU8(bytes, pos, type) ||
        !binio::takeU32(bytes, pos, len))
        return failDecode(error, "truncated block header");
    if (type != static_cast<uint8_t>(BlockType::Meta))
        return failDecode(error, "first block is not Meta");
    if (pos + len + 8 > bytes.size())
        return failDecode(error, "truncated block payload");
    uint64_t expect = crc64Ecma().compute(bytes.data() + blockStart,
                                          1 + 4 + len);
    size_t crcPos = pos + len;
    uint64_t stored = 0;
    binio::takeU64(bytes, crcPos, stored);
    if (stored != expect)
        return failDecode(error, "block CRC mismatch");

    RawBlock block;
    block.type = type;
    block.payload.assign(bytes.begin() + pos, bytes.begin() + pos + len);
    MetaFields meta;
    if (!decodeMeta(block, meta, error))
        return false;
    policyKey = meta.policyKey;
    return true;
}

bool
restoreSnapshot(const std::vector<uint8_t> &bytes,
                const std::string &expectTenant, uint64_t expectPolicyKey,
                unsigned expectFilterCopies,
                core::DracoSoftwareChecker &checker, std::string *error)
{
    std::vector<RawBlock> blocks;
    if (!parseSnapshotBlocks(bytes, blocks, error))
        return false;
    if (blocks.empty() ||
        blocks.front().type != static_cast<uint8_t>(BlockType::Meta))
        return failDecode(error, "first block is not Meta");

    MetaFields meta;
    if (!decodeMeta(blocks.front(), meta, error))
        return false;
    if (meta.tenant != expectTenant)
        return failDecode(error, "snapshot names tenant '" + meta.tenant +
                                     "', expected '" + expectTenant + "'");
    if (meta.policyKey != expectPolicyKey)
        return failDecode(error, "policy key mismatch (profile changed "
                                 "since the snapshot was taken)");
    if (meta.filterCopies != expectFilterCopies)
        return failDecode(error, "filter copy count mismatch");
    if (blocks.size() - 1 != meta.tableCount)
        return failDecode(error, "Meta table count mismatch");

    core::Vat &vat = checker.mutableVat();
    for (size_t i = 1; i < blocks.size(); ++i) {
        const RawBlock &block = blocks[i];
        if (block.type != static_cast<uint8_t>(BlockType::Table))
            return failDecode(error, "unexpected block type " +
                                         std::to_string(block.type));
        size_t pos = 0;
        TableHeader header;
        if (!decodeTableHeader(block.payload, pos, header, error))
            return false;
        auto sid = static_cast<uint16_t>(header.sid);

        // The table must exactly match what the shared policy
        // configured — a skewed profile or sizing change invalidates
        // the layout, and a verbatim slot restore into a differently
        // sized table would scatter keys to wrong indices.
        if (!vat.configured(sid))
            return failDecode(error, "snapshot table sid " +
                                         std::to_string(sid) +
                                         " not configured by the policy");
        if (vat.bitmask(sid) != header.bitmask)
            return failDecode(error, "bitmask mismatch for sid " +
                                         std::to_string(sid));
        uint64_t buckets = 0;
        vat.forEachTable([&](uint16_t tsid, uint64_t,
                             const CuckooTable<core::ArgKey> &cuckoo) {
            if (tsid == sid)
                buckets = cuckoo.buckets();
        });
        if (buckets != header.buckets)
            return failDecode(error, "table size mismatch for sid " +
                                         std::to_string(sid));

        for (uint64_t e = 0; e < header.entries; ++e) {
            uint8_t way = 0;
            uint64_t index = 0;
            uint8_t keyLen = 0;
            if (!binio::takeU8(block.payload, pos, way) ||
                !binio::takeVarint(block.payload, pos, index) ||
                !binio::takeU8(block.payload, pos, keyLen))
                return failDecode(error, "truncated Table entry");
            if (way > 1 || keyLen > core::ArgKey::kMaxBytes ||
                pos + keyLen > block.payload.size())
                return failDecode(error, "malformed Table entry");
            core::ArgKey key = core::ArgKey::fromBytes(
                block.payload.data() + pos, keyLen);
            pos += keyLen;
            if (!vat.placeAt(sid, static_cast<CuckooWay>(way), index, key))
                return failDecode(error, "slot placement rejected for sid " +
                                             std::to_string(sid));
        }
        if (pos != block.payload.size())
            return failDecode(error, "trailing bytes in Table block");
        vat.restoreTableStats(sid, header.stats);
    }

    vat.restoreEvictions(meta.vatEvictions);
    checker.restoreStats(meta.stats);
    return true;
}

} // namespace draco::lifecycle
