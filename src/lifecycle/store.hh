/**
 * @file
 * Snapshot storage backends.
 *
 * The serving layer treats snapshot storage as a key → bytes map with
 * explicit failure: put/get return false instead of throwing, and the
 * caller's fail-closed contract (keep the tenant resident on a failed
 * put, rebuild fresh on a failed get) means a flaky backend can cost
 * warm-up time but never a wrong verdict. Two backends:
 *
 *  - MemorySnapshotStore: a mutex-guarded map; the default when dracod
 *    runs without --snapshot-dir, and what the benches use.
 *  - DirSnapshotStore: one `<dir>/<sanitized-key>-<hash>.dtss` file
 *    per tenant, written tmp-then-rename so a crash mid-put never
 *    leaves a torn snapshot under the final name.
 */

#ifndef DRACO_LIFECYCLE_STORE_HH
#define DRACO_LIFECYCLE_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace draco::lifecycle {

/**
 * Abstract key → snapshot-bytes store (see file comment).
 *
 * Implementations are thread-safe: shard workers on different threads
 * evict and restore concurrently.
 */
class SnapshotStore
{
  public:
    virtual ~SnapshotStore() = default;

    /** Store @p bytes under @p key (replacing any prior value). */
    virtual bool put(const std::string &key,
                     const std::vector<uint8_t> &bytes) = 0;

    /** Load the value of @p key. @return false when absent/unreadable. */
    virtual bool get(const std::string &key,
                     std::vector<uint8_t> &bytes) const = 0;

    /** Drop @p key. @return false when it was not present. */
    virtual bool remove(const std::string &key) = 0;

    /** @return All stored keys (sorted). */
    virtual std::vector<std::string> keys() const = 0;

    /** @return Total stored snapshot bytes. */
    virtual uint64_t totalBytes() const = 0;

    /** @return Stable backend name ("memory", "dir"). */
    virtual const char *kind() const = 0;
};

/** In-memory backend. */
class MemorySnapshotStore final : public SnapshotStore
{
  public:
    bool put(const std::string &key,
             const std::vector<uint8_t> &bytes) override;
    bool get(const std::string &key,
             std::vector<uint8_t> &bytes) const override;
    bool remove(const std::string &key) override;
    std::vector<std::string> keys() const override;
    uint64_t totalBytes() const override;
    const char *kind() const override { return "memory"; }

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::vector<uint8_t>> _entries;
    uint64_t _bytes = 0;
};

/** Directory-backed backend: one `.dtss` file per key. */
class DirSnapshotStore final : public SnapshotStore
{
  public:
    /**
     * @param dir Snapshot directory; created (with parents) when
     *        missing. ok() reports whether it is usable.
     */
    explicit DirSnapshotStore(std::string dir);

    /** @return true when the directory exists and is writable. */
    bool ok() const { return _ok; }

    /** @return The file a snapshot for @p key lives in. */
    std::string pathFor(const std::string &key) const;

    bool put(const std::string &key,
             const std::vector<uint8_t> &bytes) override;
    bool get(const std::string &key,
             std::vector<uint8_t> &bytes) const override;
    bool remove(const std::string &key) override;
    std::vector<std::string> keys() const override;
    uint64_t totalBytes() const override;
    const char *kind() const override { return "dir"; }

  private:
    std::string _dir;
    bool _ok = false;
    mutable std::mutex _mutex;
    /** key → stored byte count, mirroring the directory. */
    std::map<std::string, uint64_t> _sizes;
};

/** Read a whole file. @return false on any I/O failure. */
bool readSnapshotFile(const std::string &path,
                      std::vector<uint8_t> &bytes);

/** Write a whole file via tmp + rename. @return false on failure. */
bool writeSnapshotFile(const std::string &path,
                       const std::vector<uint8_t> &bytes);

} // namespace draco::lifecycle

#endif // DRACO_LIFECYCLE_STORE_HH
