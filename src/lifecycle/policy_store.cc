#include "lifecycle/policy_store.hh"

#include "hash/crc64.hh"
#include "support/binio.hh"

namespace draco::lifecycle {

uint64_t
profileContentKey(const seccomp::Profile &profile,
                  seccomp::DispatchShape shape)
{
    std::vector<uint8_t> bytes;
    binio::putU8(bytes, static_cast<uint8_t>(shape));
    binio::putU32(bytes, profile.denyValue());
    binio::putVarint(bytes, profile.rules().size());
    for (const auto &[sid, rule] : profile.rules()) {
        binio::putVarint(bytes, sid);
        binio::putU8(bytes, static_cast<uint8_t>(rule.kind));
        binio::putU8(bytes, rule.runtimeRequired ? 1 : 0);
        binio::putVarint(bytes, rule.tuples.size());
        for (const seccomp::ArgVector &tuple : rule.tuples)
            for (uint64_t value : tuple)
                binio::putU64(bytes, value);
        binio::putVarint(bytes, rule.perArg.size());
        for (const auto &[arg, values] : rule.perArg) {
            binio::putVarint(bytes, arg);
            binio::putVarint(bytes, values.size());
            for (uint64_t value : values)
                binio::putU64(bytes, value);
        }
    }
    return crc64Ecma().compute(bytes.data(), bytes.size());
}

std::shared_ptr<const core::CompiledPolicy>
PolicyStore::intern(const seccomp::Profile &profile,
                    seccomp::DispatchShape shape)
{
    uint64_t key = profileContentKey(profile, shape);
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _byContentKey.find(key);
    if (it != _byContentKey.end()) {
        ++_hits;
        return it->second;
    }
    auto policy = core::CompiledPolicy::compile(profile, shape);
    _byContentKey.emplace(key, policy);
    return policy;
}

size_t
PolicyStore::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _byContentKey.size();
}

uint64_t
PolicyStore::hits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hits;
}

uint64_t
PolicyStore::compiles() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _byContentKey.size();
}

void
PolicyStore::exportMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    registry.setCounter(MetricRegistry::join(prefix, "policies"),
                        _byContentKey.size());
    registry.setCounter(MetricRegistry::join(prefix, "hits"), _hits);
    registry.setCounter(MetricRegistry::join(prefix, "compiles"),
                        _byContentKey.size());
}

} // namespace draco::lifecycle
