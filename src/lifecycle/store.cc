#include "lifecycle/store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "hash/crc64.hh"
#include "support/logging.hh"

namespace draco::lifecycle {

namespace fs = std::filesystem;

// ---- MemorySnapshotStore ----

bool
MemorySnapshotStore::put(const std::string &key,
                         const std::vector<uint8_t> &bytes)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it != _entries.end())
        _bytes -= it->second.size();
    _bytes += bytes.size();
    _entries[key] = bytes;
    return true;
}

bool
MemorySnapshotStore::get(const std::string &key,
                         std::vector<uint8_t> &bytes) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it == _entries.end())
        return false;
    bytes = it->second;
    return true;
}

bool
MemorySnapshotStore::remove(const std::string &key)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it == _entries.end())
        return false;
    _bytes -= it->second.size();
    _entries.erase(it);
    return true;
}

std::vector<std::string>
MemorySnapshotStore::keys() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const auto &[key, bytes] : _entries)
        out.push_back(key);
    return out;
}

uint64_t
MemorySnapshotStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _bytes;
}

// ---- file helpers ----

bool
readSnapshotFile(const std::string &path, std::vector<uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    std::streamoff size = in.tellg();
    if (size < 0)
        return false;
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    return static_cast<std::streamoff>(in.gcount()) == size && !in.bad();
}

bool
writeSnapshotFile(const std::string &path,
                  const std::vector<uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

// ---- DirSnapshotStore ----

DirSnapshotStore::DirSnapshotStore(std::string dir) : _dir(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(_dir, ec);
    _ok = fs::is_directory(_dir, ec);
    if (!_ok) {
        warn("DirSnapshotStore: '%s' is not usable", _dir.c_str());
        return;
    }
    // Adopt snapshots a previous daemon left behind so restarts keep
    // their warm state.
    for (const auto &entry : fs::directory_iterator(_dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() < 5 || name.substr(name.size() - 5) != ".dtss")
            continue;
        _sizes[name] = static_cast<uint64_t>(entry.file_size(ec));
    }
}

std::string
DirSnapshotStore::pathFor(const std::string &key) const
{
    // Sanitize for the filesystem, then disambiguate sanitize
    // collisions ("a/b" vs "a_b") with a short content hash of the
    // raw key.
    std::string safe;
    safe.reserve(key.size());
    for (char c : key) {
        bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        safe.push_back(keep ? c : '_');
    }
    if (safe.size() > 128)
        safe.resize(128);
    uint64_t hash = crc64Ecma().compute(key.data(), key.size());
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016llx.dtss",
                  static_cast<unsigned long long>(hash));
    return _dir + "/" + safe + suffix;
}

bool
DirSnapshotStore::put(const std::string &key,
                      const std::vector<uint8_t> &bytes)
{
    if (!_ok)
        return false;
    std::string path = pathFor(key);
    if (!writeSnapshotFile(path, bytes))
        return false;
    std::lock_guard<std::mutex> lock(_mutex);
    _sizes[fs::path(path).filename().string()] = bytes.size();
    return true;
}

bool
DirSnapshotStore::get(const std::string &key,
                      std::vector<uint8_t> &bytes) const
{
    if (!_ok)
        return false;
    return readSnapshotFile(pathFor(key), bytes);
}

bool
DirSnapshotStore::remove(const std::string &key)
{
    if (!_ok)
        return false;
    std::string path = pathFor(key);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _sizes.erase(fs::path(path).filename().string());
    }
    return std::remove(path.c_str()) == 0;
}

std::vector<std::string>
DirSnapshotStore::keys() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> out;
    out.reserve(_sizes.size());
    for (const auto &[name, size] : _sizes)
        out.push_back(name);
    return out;
}

uint64_t
DirSnapshotStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    uint64_t total = 0;
    for (const auto &[name, size] : _sizes)
        total += size;
    return total;
}

} // namespace draco::lifecycle
