/**
 * @file
 * The `.dtss` tenant snapshot format.
 *
 * A snapshot is the *mutable* half of a tenant's checking state — the
 * lifetime counters and the exact VAT layout — serialized so a cold
 * tenant can be dropped from memory and rebuilt bit-identically on its
 * next request. The immutable half (profile, compiled filter, specs)
 * is NOT stored: the snapshot references it by the policy's programKey
 * and the restorer re-attaches the shared CompiledPolicy.
 *
 * Layout (all little-endian, same binio primitives as `.dtrc`):
 *
 *   "dtss-v1\n"  8-byte magic
 *   u16          format version (kSnapshotVersion)
 *   blocks...    each: u8 type | u32 payloadLen | payload | u64 crc
 *
 * The trailing CRC-64 (ECMA) covers the type byte, the length bytes,
 * and the payload, so a flipped bit anywhere in a block is caught
 * before its contents are trusted. Block types:
 *
 *   Meta  (1): tenant name, policy programKey, filter copies, the
 *              seven SwCheckStats counters, the VAT eviction counter,
 *              and the table count that must follow.
 *   Table (2): sid, bitmask, buckets-per-way, the five CuckooStats
 *              counters, then each occupied slot as (way, index,
 *              keyLen, key bytes) in way-major order — restore places
 *              slots verbatim instead of replaying inserts, so
 *              post-restore displacement behaviour is identical to
 *              never having snapshotted.
 *   End   (3): table count again — a truncated file that still ends
 *              on a block boundary is caught here.
 *
 * Every decoder is total: malformed input returns false with a
 * diagnostic, never a crash and never a partially-trusted restore.
 * Fail-closed contract: when restore fails the caller rebuilds the
 * checker fresh from the profile — verdicts stay correct (the VAT is
 * only a cache); only the warm-up cost is lost.
 */

#ifndef DRACO_LIFECYCLE_SNAPSHOT_HH
#define DRACO_LIFECYCLE_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/software.hh"

namespace draco::lifecycle {

/** `.dtss` file magic. */
inline constexpr char kSnapshotMagic[8] = {'d', 't', 's', 's',
                                           '-', 'v', '1', '\n'};

/** Current format version. */
inline constexpr uint16_t kSnapshotVersion = 1;

/** Block type tags. */
enum class BlockType : uint8_t {
    Meta = 1,
    Table = 2,
    End = 3,
};

/** One structurally-verified block (type + payload, CRC stripped). */
struct RawBlock {
    uint8_t type = 0;
    std::vector<uint8_t> payload;
};

/** Per-table summary reported by inspectSnapshot(). */
struct SnapshotTableInfo {
    uint16_t sid = 0;
    uint64_t bitmask = 0;
    uint64_t buckets = 0; ///< Slots per way.
    uint64_t sets = 0;    ///< Occupied slots serialized.
};

/** Whole-snapshot summary reported by inspectSnapshot(). */
struct SnapshotInfo {
    std::string tenant;
    uint64_t policyKey = 0;
    uint16_t version = 0;
    unsigned filterCopies = 1;
    core::SwCheckStats stats;
    uint64_t vatEvictions = 0;
    std::vector<SnapshotTableInfo> tables;
    size_t bytes = 0; ///< Encoded size.
};

/**
 * Serialize @p checker's restorable state for tenant @p tenant into
 * `.dtss` bytes.
 */
std::vector<uint8_t> encodeSnapshot(
    const std::string &tenant, const core::DracoSoftwareChecker &checker,
    unsigned filterCopies);

/**
 * Structure-level parse: verify magic, version, every block's CRC, and
 * the End terminator. Needs no policy — lifecycletool verifies
 * snapshots it cannot semantically restore.
 *
 * @param blocks Receives the verified blocks (End excluded).
 * @return false (with @p error set) on any malformation.
 */
bool parseSnapshotBlocks(const std::vector<uint8_t> &bytes,
                         std::vector<RawBlock> &blocks,
                         std::string *error);

/**
 * Re-serialize @p blocks into a fresh `.dtss` byte string (header and
 * End block re-emitted) — lifecycletool's compact path rewrites a
 * verified parse, dropping any trailing garbage.
 */
std::vector<uint8_t> serializeSnapshotBlocks(
    const std::vector<RawBlock> &blocks);

/**
 * Summarize a snapshot without restoring it (lifecycletool inspect).
 *
 * @return false (with @p error set) on any malformation.
 */
bool inspectSnapshot(const std::vector<uint8_t> &bytes,
                     SnapshotInfo &info, std::string *error);

/**
 * Read just the policy programKey @p bytes references, verifying the
 * header and the Meta block's CRC on the way — the cheap staleness
 * probe a restorer runs before committing to a full restore. A
 * snapshot whose key no longer matches the tenant's current policy
 * epoch must be discarded, never restored: its VAT encodes verdicts of
 * a retired policy.
 *
 * @return false (with @p error set when non-null) when @p bytes is not
 *         a structurally valid snapshot up to and including Meta.
 */
bool peekSnapshotPolicyKey(const std::vector<uint8_t> &bytes,
                           uint64_t &policyKey, std::string *error);

/**
 * Restore @p checker — freshly constructed from the shared policy —
 * from @p bytes.
 *
 * The snapshot must name @p expectTenant, reference policy
 * @p expectPolicyKey, and agree with the checker's configured tables
 * (bitmask and buckets per sid); any mismatch, bad CRC, truncation,
 * or version skew fails. On failure the checker may hold a partial
 * restore — the caller MUST discard and rebuild it (fail-closed).
 *
 * @return false (with @p error set) when the restore was rejected.
 */
bool restoreSnapshot(const std::vector<uint8_t> &bytes,
                     const std::string &expectTenant,
                     uint64_t expectPolicyKey, unsigned expectFilterCopies,
                     core::DracoSoftwareChecker &checker,
                     std::string *error);

} // namespace draco::lifecycle

#endif // DRACO_LIFECYCLE_SNAPSHOT_HH
