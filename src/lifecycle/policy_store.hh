/**
 * @file
 * Content-addressed store of compiled policies.
 *
 * In real fleets almost every container runs the identical
 * docker-default seccomp profile (PAPER §II), so compiling and holding
 * one filter chain + SPT template *per tenant* wastes both startup
 * time and resident memory linearly in tenant count. The PolicyStore
 * keys compiled policies by the CRC-64 of the profile's canonical
 * semantic bytes (name excluded — "tenant-000001" and
 * "tenant-999999" on docker-default share one entry) and hands out
 * shared_ptr<const CompiledPolicy> handles: a million tenants on one
 * profile hold exactly one compiled filter and one spec map, shared
 * copy-on-write — the mutable VAT and counters stay per-tenant.
 */

#ifndef DRACO_LIFECYCLE_POLICY_STORE_HH
#define DRACO_LIFECYCLE_POLICY_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/software.hh"
#include "support/metrics.hh"

namespace draco::lifecycle {

/**
 * CRC-64 (ECMA) over the canonical semantic bytes of (@p profile,
 * @p shape): deny value, dispatch shape, and every rule's kind,
 * tuples, and per-argument value sets — the profile *name* is
 * excluded so identically-constrained profiles collide on purpose.
 */
uint64_t profileContentKey(const seccomp::Profile &profile,
                           seccomp::DispatchShape shape);

/**
 * Thread-safe content-addressed policy interner (see file comment).
 */
class PolicyStore
{
  public:
    /**
     * Return the shared compile of (@p profile, @p shape), compiling
     * it on first sight. A repeat intern of semantically identical
     * content returns the existing policy and counts a dedup hit.
     */
    std::shared_ptr<const core::CompiledPolicy> intern(
        const seccomp::Profile &profile,
        seccomp::DispatchShape shape = seccomp::DispatchShape::Linear);

    /** @return Distinct policies compiled and held. */
    size_t size() const;

    /** @return Interns served by an existing entry. */
    uint64_t hits() const;

    /** @return Interns that had to compile. */
    uint64_t compiles() const;

    /** Export `<prefix>.{policies,hits,compiles}`. */
    void exportMetrics(MetricRegistry &registry,
                       const std::string &prefix) const;

  private:
    mutable std::mutex _mutex;
    std::map<uint64_t, std::shared_ptr<const core::CompiledPolicy>>
        _byContentKey;
    uint64_t _hits = 0;
};

} // namespace draco::lifecycle

#endif // DRACO_LIFECYCLE_POLICY_STORE_HH
