#include "seccomp/bpf.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace draco::seccomp {

BpfInsn
stmt(uint16_t code, uint32_t k)
{
    return BpfInsn{code, 0, 0, k};
}

BpfInsn
jump(uint16_t code, uint32_t k, uint8_t jt, uint8_t jf)
{
    return BpfInsn{code, jt, jf, k};
}

BpfProgram::BpfProgram(std::vector<BpfInsn> insns)
    : _insns(std::move(insns))
{
}

namespace {

constexpr uint16_t kClassMask = 0x07;

bool
isValidSeccompLoad(const BpfInsn &insn, std::string *error)
{
    uint16_t mode = insn.code & 0xe0;
    uint16_t size = insn.code & 0x18;
    if (mode == op::ABS) {
        if (size != op::W) {
            if (error)
                *error = "ABS load must be word-sized";
            return false;
        }
        if (insn.k % 4 != 0 || insn.k + 4 > sizeof(os::SeccompData)) {
            if (error)
                *error = "ABS load offset out of seccomp_data bounds";
            return false;
        }
        return true;
    }
    if (mode == op::IMM || mode == op::LEN)
        return true;
    if (mode == op::MEM) {
        if (insn.k >= kBpfMemWords) {
            if (error)
                *error = "MEM load index out of range";
            return false;
        }
        return true;
    }
    if (error)
        *error = "load mode not permitted by seccomp";
    return false;
}

} // namespace

bool
BpfProgram::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg, size_t pc) {
        if (error)
            *error = "insn " + std::to_string(pc) + ": " + msg;
        return false;
    };

    if (_insns.empty()) {
        if (error)
            *error = "empty program";
        return false;
    }
    if (_insns.size() > kBpfMaxInsns) {
        if (error)
            *error = "program exceeds BPF_MAXINSNS";
        return false;
    }

    for (size_t pc = 0; pc < _insns.size(); ++pc) {
        const BpfInsn &insn = _insns[pc];
        std::string sub;
        switch (insn.code & kClassMask) {
          case op::LD:
          case op::LDX:
            if (!isValidSeccompLoad(insn, &sub))
                return fail(sub, pc);
            break;
          case op::ST:
          case op::STX:
            if (insn.k >= kBpfMemWords)
                return fail("store index out of range", pc);
            break;
          case op::ALU: {
            uint16_t aluOp = insn.code & 0xf0;
            if (aluOp > op::XOR)
                return fail("unknown ALU op", pc);
            bool srcIsK = (insn.code & op::X) == 0;
            if ((aluOp == op::DIV || aluOp == op::MOD) && srcIsK &&
                insn.k == 0) {
                return fail("constant division by zero", pc);
            }
            break;
          }
          case op::JMP: {
            uint16_t jop = insn.code & 0xf0;
            if (jop != op::JA && jop != op::JEQ && jop != op::JGT &&
                jop != op::JGE && jop != op::JSET) {
                return fail("unknown jump op", pc);
            }
            // Seccomp only allows forward jumps that stay in bounds.
            size_t maxOff = jop == op::JA
                ? insn.k
                : std::max<uint32_t>(insn.jt, insn.jf);
            if (pc + 1 + maxOff >= _insns.size())
                return fail("jump target out of bounds", pc);
            break;
          }
          case op::RET:
            break;
          case op::MISC: {
            uint16_t mop = insn.code & 0xf8;
            if (mop != op::TAX && mop != op::TXA)
                return fail("unknown MISC op", pc);
            break;
          }
          default:
            return fail("unknown instruction class", pc);
        }
    }

    // The last reachable instruction must be a RET; since all jumps are
    // forward and bounded, requiring the final instruction to be RET
    // guarantees termination with a result.
    if ((_insns.back().code & kClassMask) != op::RET)
        return fail("program must end with RET", _insns.size() - 1);

    return true;
}

bool
BpfProgram::compile(std::string *error)
{
    if (!validate(error))
        return false;

    using Op = BpfDecodedInsn::Op;
    std::vector<BpfDecodedInsn> decoded;
    decoded.reserve(_insns.size());

    for (const BpfInsn &insn : _insns) {
        BpfDecodedInsn out;
        out.jt = insn.jt;
        out.jf = insn.jf;
        out.k = insn.k;
        uint16_t cls = insn.code & kClassMask;
        uint16_t mode = insn.code & 0xe0;
        bool srcX = (insn.code & op::X) != 0;
        switch (cls) {
          case op::LD:
            out.op = mode == op::ABS ? Op::LdAbs
                : mode == op::IMM    ? Op::LdImm
                : mode == op::LEN    ? Op::LdLen
                                     : Op::LdMem;
            break;
          case op::LDX:
            out.op = mode == op::IMM ? Op::LdxImm
                : mode == op::LEN    ? Op::LdxLen
                                     : Op::LdxMem;
            break;
          case op::ST:
            out.op = Op::St;
            break;
          case op::STX:
            out.op = Op::Stx;
            break;
          case op::ALU:
            switch (insn.code & 0xf0) {
              case op::ADD: out.op = srcX ? Op::AluAddX : Op::AluAddK; break;
              case op::SUB: out.op = srcX ? Op::AluSubX : Op::AluSubK; break;
              case op::MUL: out.op = srcX ? Op::AluMulX : Op::AluMulK; break;
              case op::DIV: out.op = srcX ? Op::AluDivX : Op::AluDivK; break;
              case op::MOD: out.op = srcX ? Op::AluModX : Op::AluModK; break;
              case op::OR:  out.op = srcX ? Op::AluOrX  : Op::AluOrK;  break;
              case op::AND: out.op = srcX ? Op::AluAndX : Op::AluAndK; break;
              case op::XOR: out.op = srcX ? Op::AluXorX : Op::AluXorK; break;
              case op::LSH:
                out.op = srcX ? Op::AluLshX : Op::AluLshK;
                // Constant over-shifts always yield 0 (see run()):
                // strength-reduce to a masked clear.
                if (!srcX && insn.k >= 32) {
                    out.op = Op::AluAndK;
                    out.k = 0;
                }
                break;
              case op::RSH:
                out.op = srcX ? Op::AluRshX : Op::AluRshK;
                if (!srcX && insn.k >= 32) {
                    out.op = Op::AluAndK;
                    out.k = 0;
                }
                break;
              case op::NEG: out.op = Op::AluNeg; break;
            }
            break;
          case op::JMP:
            switch (insn.code & 0xf0) {
              case op::JA:   out.op = Op::Ja; break;
              case op::JEQ:  out.op = srcX ? Op::JeqX  : Op::JeqK;  break;
              case op::JGT:  out.op = srcX ? Op::JgtX  : Op::JgtK;  break;
              case op::JGE:  out.op = srcX ? Op::JgeX  : Op::JgeK;  break;
              case op::JSET: out.op = srcX ? Op::JsetX : Op::JsetK; break;
            }
            break;
          case op::RET:
            out.op = (insn.code & 0x18) == op::A ? Op::RetA : Op::RetK;
            break;
          case op::MISC:
            out.op = (insn.code & 0xf8) == op::TAX ? Op::Tax : Op::Txa;
            break;
        }
        decoded.push_back(out);
    }

    _decoded = std::move(decoded);
    return true;
}

BpfResult
BpfProgram::run(const os::SeccompData &data) const
{
    if (_decoded.empty())
        return runInterpreted(data);

    using Op = BpfDecodedInsn::Op;
    uint32_t acc = 0;
    uint32_t idx = 0;
    uint32_t mem[kBpfMemWords] = {};
    const auto *bytes = reinterpret_cast<const uint8_t *>(&data);

    // The validator guarantees every jump lands in bounds and every
    // path terminates in RET, so the loop needs no pc bounds check.
    const BpfDecodedInsn *insn = _decoded.data();
    uint64_t executed = 0;
    for (;;) {
        ++executed;
        switch (insn->op) {
          case Op::LdAbs: std::memcpy(&acc, bytes + insn->k, 4); break;
          case Op::LdImm: acc = insn->k; break;
          case Op::LdLen: acc = sizeof(os::SeccompData); break;
          case Op::LdMem: acc = mem[insn->k]; break;
          case Op::LdxImm: idx = insn->k; break;
          case Op::LdxLen: idx = sizeof(os::SeccompData); break;
          case Op::LdxMem: idx = mem[insn->k]; break;
          case Op::St: mem[insn->k] = acc; break;
          case Op::Stx: mem[insn->k] = idx; break;
          case Op::AluAddK: acc += insn->k; break;
          case Op::AluSubK: acc -= insn->k; break;
          case Op::AluMulK: acc *= insn->k; break;
          case Op::AluDivK: acc /= insn->k; break; // k!=0 validated
          case Op::AluModK: acc %= insn->k; break; // k!=0 validated
          case Op::AluOrK: acc |= insn->k; break;
          case Op::AluAndK: acc &= insn->k; break;
          case Op::AluXorK: acc ^= insn->k; break;
          case Op::AluLshK: acc <<= insn->k; break; // k<32 after compile
          case Op::AluRshK: acc >>= insn->k; break; // k<32 after compile
          case Op::AluAddX: acc += idx; break;
          case Op::AluSubX: acc -= idx; break;
          case Op::AluMulX: acc *= idx; break;
          case Op::AluDivX: acc = idx == 0 ? 0 : acc / idx; break;
          case Op::AluModX: acc = idx == 0 ? 0 : acc % idx; break;
          case Op::AluOrX: acc |= idx; break;
          case Op::AluAndX: acc &= idx; break;
          case Op::AluXorX: acc ^= idx; break;
          case Op::AluLshX: acc = idx < 32 ? acc << idx : 0; break;
          case Op::AluRshX: acc = idx < 32 ? acc >> idx : 0; break;
          case Op::AluNeg:
            acc = static_cast<uint32_t>(-static_cast<int32_t>(acc));
            break;
          case Op::Ja: insn += insn->k; break;
          case Op::JeqK: insn += acc == insn->k ? insn->jt : insn->jf; break;
          case Op::JgtK: insn += acc > insn->k ? insn->jt : insn->jf; break;
          case Op::JgeK: insn += acc >= insn->k ? insn->jt : insn->jf; break;
          case Op::JsetK:
            insn += (acc & insn->k) != 0 ? insn->jt : insn->jf;
            break;
          case Op::JeqX: insn += acc == idx ? insn->jt : insn->jf; break;
          case Op::JgtX: insn += acc > idx ? insn->jt : insn->jf; break;
          case Op::JgeX: insn += acc >= idx ? insn->jt : insn->jf; break;
          case Op::JsetX:
            insn += (acc & idx) != 0 ? insn->jt : insn->jf;
            break;
          case Op::RetK: return BpfResult{insn->k, executed};
          case Op::RetA: return BpfResult{acc, executed};
          case Op::Tax: idx = acc; break;
          case Op::Txa: acc = idx; break;
        }
        ++insn;
    }
}

BpfResult
BpfProgram::runInterpreted(const os::SeccompData &data) const
{
    if (_insns.empty())
        panic("BpfProgram::run on empty program");

    uint32_t acc = 0;
    uint32_t idx = 0;
    uint32_t mem[kBpfMemWords] = {};
    const auto *bytes = reinterpret_cast<const uint8_t *>(&data);

    BpfResult result;
    size_t pc = 0;
    while (pc < _insns.size()) {
        const BpfInsn &insn = _insns[pc];
        ++result.insnsExecuted;
        uint16_t cls = insn.code & kClassMask;
        switch (cls) {
          case op::LD: {
            uint16_t mode = insn.code & 0xe0;
            if (mode == op::ABS) {
                uint32_t w;
                std::memcpy(&w, bytes + insn.k, 4);
                acc = w;
            } else if (mode == op::IMM) {
                acc = insn.k;
            } else if (mode == op::LEN) {
                acc = sizeof(os::SeccompData);
            } else { // MEM
                acc = mem[insn.k];
            }
            break;
          }
          case op::LDX: {
            uint16_t mode = insn.code & 0xe0;
            if (mode == op::IMM)
                idx = insn.k;
            else if (mode == op::LEN)
                idx = sizeof(os::SeccompData);
            else // MEM
                idx = mem[insn.k];
            break;
          }
          case op::ST:
            mem[insn.k] = acc;
            break;
          case op::STX:
            mem[insn.k] = idx;
            break;
          case op::ALU: {
            uint32_t src = (insn.code & op::X) ? idx : insn.k;
            switch (insn.code & 0xf0) {
              case op::ADD: acc += src; break;
              case op::SUB: acc -= src; break;
              case op::MUL: acc *= src; break;
              case op::DIV:
                acc = src == 0 ? 0 : acc / src;
                break;
              case op::MOD:
                acc = src == 0 ? 0 : acc % src;
                break;
              case op::OR: acc |= src; break;
              case op::AND: acc &= src; break;
              case op::XOR: acc ^= src; break;
              case op::LSH: acc = src < 32 ? acc << src : 0; break;
              case op::RSH: acc = src < 32 ? acc >> src : 0; break;
              case op::NEG: acc = static_cast<uint32_t>(-static_cast<int32_t>(acc)); break;
              default:
                panic("BpfProgram::run: unvalidated ALU op");
            }
            break;
          }
          case op::JMP: {
            uint16_t jop = insn.code & 0xf0;
            if (jop == op::JA) {
                pc += insn.k;
                break;
            }
            uint32_t src = (insn.code & op::X) ? idx : insn.k;
            bool taken = false;
            switch (jop) {
              case op::JEQ: taken = acc == src; break;
              case op::JGT: taken = acc > src; break;
              case op::JGE: taken = acc >= src; break;
              case op::JSET: taken = (acc & src) != 0; break;
              default:
                panic("BpfProgram::run: unvalidated jump op");
            }
            pc += taken ? insn.jt : insn.jf;
            break;
          }
          case op::RET: {
            uint16_t rsrc = insn.code & 0x18;
            result.action = rsrc == op::A ? acc : insn.k;
            return result;
          }
          case op::MISC:
            if ((insn.code & 0xf8) == op::TAX)
                idx = acc;
            else
                acc = idx;
            break;
          default:
            panic("BpfProgram::run: unvalidated instruction class");
        }
        ++pc;
    }
    panic("BpfProgram::run: fell off the end of a validated program");
}

std::string
BpfProgram::disassemble() const
{
    std::string out;
    char buf[128];
    for (size_t pc = 0; pc < _insns.size(); ++pc) {
        const BpfInsn &insn = _insns[pc];
        const char *mnemonic = "?";
        switch (insn.code & kClassMask) {
          case op::LD: mnemonic = "ld"; break;
          case op::LDX: mnemonic = "ldx"; break;
          case op::ST: mnemonic = "st"; break;
          case op::STX: mnemonic = "stx"; break;
          case op::ALU: mnemonic = "alu"; break;
          case op::JMP: mnemonic = "jmp"; break;
          case op::RET: mnemonic = "ret"; break;
          case op::MISC: mnemonic = "misc"; break;
        }
        std::snprintf(buf, sizeof(buf),
                      "%4zu: %-4s code=0x%04x jt=%u jf=%u k=0x%08x\n", pc,
                      mnemonic, insn.code, insn.jt, insn.jf, insn.k);
        out += buf;
    }
    return out;
}

} // namespace draco::seccomp
